"""Parity suite for hoisted rotations and NTT-resident execution.

Covers the PR-3 pipeline across every functional params.py prime/degree
combination, including the <= 32-bit single-word fast path:

* domain residency: ``to_eval``/``to_coeff`` round trips, eval-domain
  add/mul/automorphism/rescale bit-exact against the coefficient domain,
* the evaluation-domain Galois gather identity
  ``NTT(sigma_g(x)) == gather_g(NTT(x))`` (what lets hoisted rotations
  permute already-transformed keyswitch digits),
* hoisted keyswitch (``hoist_decompose`` + ``keyswitch_hoisted``) bit-exact
  against the naive ``hybrid_keyswitch`` pipeline, on both backends and
  cross-backend,
* ``rotate_hoisted`` cross-backend bit-exactness and (with the encoder)
  agreement with the naive per-rotation path up to keyswitch noise,
* NTT-resident HMult/Rescale chains bit-exact against the coefficient
  reference pipeline,
* the BSGS linear transform: numerical correctness and the cross-check that
  its functional rotation counts match the cost model's
  ``(baby-1) hoisted + (giant-1) outer`` HRotate accounting
  (``bootstrap.linear_transform_plan``),
* the generalized (non-power-of-two) ``inner_sum``.

The raw-polynomial tests run on the pure-python backend alone, so this file
is part of the no-numpy CI leg; encoder-based semantic tests skip without
numpy.
"""

import random

import pytest

from repro.fhe.backend import PythonBackend, available_backends, use_backend
from repro.fhe.ckks.bootstrap import linear_transform_plan
from repro.fhe.ckks.ciphertext import CKKSCiphertext
from repro.fhe.ckks.evaluator import CKKSEvaluator
from repro.fhe.ckks.keys import CKKSKeyGenerator, galois_element_for_rotation
from repro.fhe.ckks.keyswitch import (
    hoist_decompose,
    hybrid_keyswitch,
    keyswitch_hoisted,
)
from repro.fhe.params import CKKSParameters
from repro.fhe.polynomial import Polynomial, galois_eval_spec
from repro.fhe.rns import RNSPolynomial, _limb_contexts

numpy_missing = "numpy" not in available_backends()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")

PYTHON = PythonBackend()

if not numpy_missing:
    from repro.fhe.backend import NumpyBackend

    #: Thresholds at 0: force the vectorized paths at every ring size.
    PACKED = NumpyBackend(min_vector_length=0, min_ntt_length=0)
    BACKENDS = [PYTHON, PACKED]
else:  # pragma: no cover - exercised only on numpy-less installs
    PACKED = None
    BACKENDS = [PYTHON]


#: Every params.py shape family, including a word-size (<= 32-bit) chain that
#: exercises the direct single-word kernels end to end.
PARAM_SETS = [
    CKKSParameters.toy(),
    CKKSParameters.toy(ring_degree=128, max_level=4, dnum=2),
    CKKSParameters.small(ring_degree=256),
    CKKSParameters(
        ring_degree=64, max_level=3, dnum=2, scale_bits=24, modulus_bits=28,
        special_modulus_bits=30, security_bits=0, name="ckks-u32",
    ),
]
PARAM_IDS = [
    f"{p.name}-N{p.ring_degree}-L{p.max_level}-{p.modulus_bits}bit"
    for p in PARAM_SETS
]

GALOIS_ELEMENTS = [5, 25, 3]  # rotations by 1 and 2, plus a non-group element


def _random_poly(params, seed, level=None, basis=None):
    degree = params.ring_degree
    if basis is None:
        basis = params.basis(params.max_level if level is None else level)
    rng = random.Random(seed ^ 0x40157)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _rows(poly):
    return poly.coefficient_rows()


@pytest.fixture(scope="module", params=list(zip(PARAM_SETS, PARAM_IDS)),
                ids=[i for i in PARAM_IDS])
def keyed(request):
    """(params, keys, relin key, a deterministic ciphertext-shaped pair)."""
    params, _ = request.param
    keygen = CKKSKeyGenerator(params, seed=11, error_stddev=0.0)
    keys = keygen.generate()
    level = params.max_level
    relin = keygen.make_relinearization_key(keys, level)
    ct = CKKSCiphertext(
        c0=_random_poly(params, 21), c1=_random_poly(params, 22),
        level=level, scale=float(params.scale),
    )
    return params, keys, relin, ct


@pytest.mark.parametrize("params", PARAM_SETS, ids=PARAM_IDS)
class TestDomainResidency:
    """to_eval/to_coeff and eval-domain arithmetic are exact on every backend."""

    def test_roundtrip_and_arithmetic(self, params):
        for backend in BACKENDS:
            with use_backend(backend):
                x = _random_poly(params, 1)
                y = _random_poly(params, 2)
                xe, ye = x.to_eval(), y.to_eval()
                assert xe.domain == "eval" and x.domain == "coeff"
                assert _rows(xe.to_coeff()) == _rows(x)
                assert _rows((xe + ye).to_coeff()) == _rows(x + y)
                assert _rows((xe - ye).to_coeff()) == _rows(x - y)
                assert _rows((-xe).to_coeff()) == _rows(-x)
                assert _rows((xe * 12345).to_coeff()) == _rows(x * 12345)
                # Pointwise eval product == negacyclic convolution.
                assert _rows((xe * ye).to_coeff()) == _rows(x * y)

    def test_domain_mismatch_raises(self, params):
        x = _random_poly(params, 3)
        with pytest.raises(ValueError):
            x + x.to_eval()

    def test_rescale_eval_matches_coeff(self, params):
        for backend in BACKENDS:
            with use_backend(backend):
                x = _random_poly(params, 4)
                rescaled = x.to_eval().rescale()
                assert rescaled.domain == "eval"
                assert _rows(rescaled.to_coeff()) == _rows(x.rescale())

    def test_eval_automorphism_is_the_galois_gather(self, params):
        """NTT(sigma_g(x)) == gather_g(NTT(x)), bit-exact — the identity the
        hoisted rotations rely on."""
        degree = params.ring_degree
        for backend in BACKENDS:
            with use_backend(backend):
                x = _random_poly(params, 5)
                for g in GALOIS_ELEMENTS + [2 * degree - 1]:
                    lhs = x.automorphism(g).to_eval()
                    rhs = x.to_eval().automorphism(g)
                    assert _rows(lhs) == _rows(rhs), (backend.name, g)
        spec = galois_eval_spec(degree, 5)
        assert sorted(spec.src) == list(range(degree))  # a pure permutation

    def test_cross_backend_eval_rows_match(self, params):
        if numpy_missing:
            pytest.skip("needs both backends")
        x = _random_poly(params, 6)
        with use_backend(PYTHON):
            expected = _rows(x.to_eval())
        with use_backend(PACKED):
            assert _rows(x.to_eval()) == expected


class TestHoistedKeyswitch:
    """hoist+apply == the naive hybrid keyswitch, exactly."""

    def test_matches_hybrid(self, keyed):
        params, _keys, relin, ct = keyed
        level = params.max_level
        for backend in BACKENDS:
            with use_backend(backend):
                naive = hybrid_keyswitch(ct.c1, relin, params, level)
                hoisted = keyswitch_hoisted(
                    hoist_decompose(ct.c1, params, level), relin
                )
                assert _rows(hoisted[0]) == _rows(naive[0]), backend.name
                assert _rows(hoisted[1]) == _rows(naive[1]), backend.name

    def test_galois_apply_cross_backend(self, keyed):
        """The eval-domain gather application agrees across backends (and the
        hoist is reusable across several keys)."""
        if numpy_missing:
            pytest.skip("needs both backends")
        params, keys, _relin, ct = keyed
        level = params.max_level
        elements = [galois_element_for_rotation(params.ring_degree, s)
                    for s in (1, 2, 3)]
        results = {}
        for backend in BACKENDS:
            with use_backend(backend):
                hoisted = hoist_decompose(ct.c1, params, level)
                results[backend.name] = [
                    tuple(map(tuple, _rows(part)))
                    for g in elements
                    for part in keyswitch_hoisted(
                        hoisted, keys.galois_key(g, level), galois_element=g
                    )
                ]
        assert results["python"] == results["numpy"]

    def test_hoist_accepts_eval_resident_input(self, keyed):
        params, _keys, relin, ct = keyed
        level = params.max_level
        for backend in BACKENDS:
            with use_backend(backend):
                from_coeff = keyswitch_hoisted(
                    hoist_decompose(ct.c1, params, level), relin
                )
                from_eval = keyswitch_hoisted(
                    hoist_decompose(ct.c1.to_eval(), params, level), relin
                )
                assert _rows(from_eval[0]) == _rows(from_coeff[0])
                assert _rows(from_eval[1]) == _rows(from_coeff[1])

    def test_digit_count_mismatch_raises(self, keyed):
        params, _keys, relin, ct = keyed
        hoisted = hoist_decompose(ct.c1.keep_limbs(1), params, 0)
        assert hoisted.num_digits == 1 != relin.num_digits
        with pytest.raises(ValueError):
            keyswitch_hoisted(hoisted, relin)


class TestEvaluatorParity:
    """Evaluator-level NTT residency: bit-exact against the coefficient path."""

    def _evaluator(self, params, keys, backend):
        return CKKSEvaluator(params, keys, backend=backend)

    def test_multiply_matches_coeff_reference(self, keyed):
        params, keys, _relin, ct = keyed
        other = CKKSCiphertext(
            c0=_random_poly(params, 31), c1=_random_poly(params, 32),
            level=params.max_level, scale=float(params.scale),
        )
        reference = None
        for backend in BACKENDS:
            evaluator = self._evaluator(params, keys, backend)
            resident = evaluator.multiply(ct, other)
            assert resident.domain == "eval"
            coeff = evaluator._multiply_coeff(ct, other)
            assert coeff.domain == "coeff"
            converted = evaluator.to_coeff(resident)
            rows = (_rows(converted.c0), _rows(converted.c1))
            assert rows == (_rows(coeff.c0), _rows(coeff.c1)), backend.name
            if reference is None:
                reference = rows
            else:
                assert rows == reference  # cross-backend

    def test_multiply_rescale_multiply_chain(self, keyed):
        """The benchmark's chain shape, bit-exact end to end."""
        params, keys, _relin, ct = keyed
        if params.max_level < 2:
            pytest.skip("chain needs two rescale levels")
        other = CKKSCiphertext(
            c0=_random_poly(params, 33), c1=_random_poly(params, 34),
            level=params.max_level, scale=float(params.scale),
        )
        for backend in BACKENDS:
            evaluator = self._evaluator(params, keys, backend)
            lower = evaluator.mod_down_to(ct, params.max_level - 1)

            resident = evaluator.multiply(ct, other)
            resident = evaluator.rescale(resident)
            assert resident.domain == "eval"
            resident = evaluator.multiply(resident, lower)
            resident = evaluator.to_coeff(resident)

            coeff = evaluator._multiply_coeff(ct, other)
            coeff = evaluator.rescale(coeff)
            coeff = evaluator._multiply_coeff(coeff, lower)

            assert _rows(resident.c0) == _rows(coeff.c0), backend.name
            assert _rows(resident.c1) == _rows(coeff.c1), backend.name

    def test_rotate_hoisted_cross_backend(self, keyed):
        if numpy_missing:
            pytest.skip("needs both backends")
        params, keys, _relin, ct = keyed
        steps = [0, 1, 2, 5]
        results = {}
        for backend in BACKENDS:
            evaluator = self._evaluator(params, keys, backend)
            rotated = evaluator.rotate_hoisted(ct, steps)
            results[backend.name] = [
                (tuple(map(tuple, _rows(r.c0))), tuple(map(tuple, _rows(r.c1))))
                for r in rotated
            ]
        assert results["python"] == results["numpy"]

    def test_rotate_hoisted_domain_and_identity(self, keyed):
        params, keys, _relin, ct = keyed
        evaluator = self._evaluator(params, keys, BACKENDS[-1])
        rotated = evaluator.rotate_hoisted(ct, [0, 1])
        assert rotated[0].domain == "coeff"
        assert _rows(rotated[0].c0) == _rows(ct.c0)  # step 0 is the identity
        resident = evaluator.to_eval(ct)
        rotated_eval = evaluator.rotate_hoisted(resident, [1])
        assert rotated_eval[0].domain == "eval"
        converted = evaluator.to_coeff(rotated_eval[0])
        assert _rows(converted.c0) == _rows(rotated[1].c0)
        assert _rows(converted.c1) == _rows(rotated[1].c1)


# ---------------------------------------------------------------------------
# Encoder-based semantic tests (slot values; need numpy)
# ---------------------------------------------------------------------------

@needs_numpy
class TestSemantics:
    @pytest.fixture(scope="class")
    def context(self):
        from repro.fhe.ckks import CKKSContext

        return CKKSContext(
            CKKSParameters.toy(ring_degree=64, max_level=3, dnum=2), seed=7
        )

    def _decode(self, context, ct, count=None):
        return context.decrypt_vector(ct, num_values=count)

    def test_rotate_hoisted_matches_naive_rotation(self, context):
        slots = context.params.slots
        values = [float(i % 9) - 4 for i in range(slots)]
        ct = context.encrypt_vector(values)
        evaluator = context.evaluator
        steps = [1, 2, 3, 7]
        for steps_i, hoisted in zip(steps, evaluator.rotate_hoisted(ct, steps)):
            naive = evaluator.rotate(ct, steps_i)
            expected = values[steps_i:] + values[:steps_i]
            got_h = self._decode(context, hoisted)
            got_n = self._decode(context, naive)
            assert max(abs(a - e) for a, e in zip(got_h, expected)) < 0.1
            # Hoisting reorders sigma_g and BConv, which only perturbs the
            # keyswitch noise — decoded slots agree tightly with the naive path.
            assert max(abs(a - b) for a, b in zip(got_h, got_n)) < 1e-2

    def test_inner_sum_any_count(self, context):
        slots = context.params.slots
        values = [((3 * i) % 11 - 5) / 4.0 for i in range(slots)]
        evaluator = context.evaluator
        for count in (1, 2, 3, 5, 6, 7, 8, 12, slots):
            ct = context.encrypt_vector(values)
            summed = evaluator.inner_sum(ct, count)
            expected = sum(values[:count])
            got = self._decode(context, summed, 1)[0].real
            assert abs(got - expected) < 0.25, (count, got, expected)

    def test_inner_sum_rejects_nonpositive(self, context):
        ct = context.encrypt_vector([1.0])
        with pytest.raises(ValueError):
            context.evaluator.inner_sum(ct, 0)

    def test_bsgs_matvec_matches_cleartext(self, context):
        from repro.fhe.ckks import BSGSLinearTransform

        dim = 8
        slots = context.params.slots
        matrix = [
            [((3 * i + 5 * j) % 7 - 3) / 4.0 for j in range(dim)]
            for i in range(dim)
        ]
        x = [0.5, -1.0, 2.0, 0.25, -0.75, 1.5, -0.5, 1.0]
        transform = BSGSLinearTransform.from_matrix(context.encoder, matrix)
        generated = transform.generate_rotation_keys(context.keys)
        baby, giant = transform.rotation_steps()
        assert sorted(generated) == sorted(baby + giant)
        ct = context.encrypt_vector(x * (slots // dim))
        out = context.evaluator.rescale(transform.apply(context.evaluator, ct))
        got = [v.real for v in self._decode(context, out, dim)]
        expected = [sum(matrix[i][j] * x[j] for j in range(dim)) for i in range(dim)]
        assert max(abs(a - e) for a, e in zip(got, expected)) < 0.05

    def test_bsgs_rotation_counts_match_cost_model(self, context):
        """Functional hoisted-BSGS rotation counts == the cost model's
        ``(baby-1) hoisted + (giant-1) outer`` HRotate accounting
        (bootstrap.linear_transform_plan / LinearTransformPlan.num_rotations)."""
        from repro.fhe.ckks import BSGSLinearTransform

        dim = 16
        slots = context.params.slots
        matrix = [[(i + 2 * j) % 5 - 2 for j in range(dim)] for i in range(dim)]
        transform = BSGSLinearTransform.from_matrix(context.encoder, matrix)
        transform.generate_rotation_keys(context.keys)
        ct = context.encrypt_vector([1.0] * slots)
        transform.apply(context.evaluator, ct)

        plan = linear_transform_plan(slots, context.params.max_level, diagonals=dim)
        assert transform.plan.baby_steps == plan.baby_steps
        assert transform.plan.giant_steps == plan.giant_steps
        stats = transform.last_stats
        assert stats["hoisted_rotations"] == plan.baby_steps - 1
        assert stats["outer_rotations"] == plan.giant_steps - 1
        assert stats["rotations"] == plan.num_rotations
        assert stats["plain_multiplies"] == plan.num_plain_multiplies

    def test_multiply_plain_eval_resident(self, context):
        values = [1.0, -2.0, 0.5]
        ct = context.evaluator.to_eval(context.encrypt_vector(values))
        pt = context.encoder.encode([2.0, 3.0, -4.0])
        product = context.evaluator.multiply_plain(ct, pt)
        assert product.domain == "eval"
        rescaled = context.evaluator.rescale(product)
        got = self._decode(context, rescaled, 3)
        for a, e in zip(got, [2.0, -6.0, -2.0]):
            assert abs(a - e) < 0.1
