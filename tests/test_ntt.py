"""Unit and property tests for the negacyclic NTT and the four-step NTT."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath
from repro.fhe.backend import NumpyBackend, PythonBackend, available_backends, use_backend
from repro.fhe.ntt import NTTContext, bit_reverse_permutation, four_step_intt, four_step_ntt


def make_context(degree=64, bits=24):
    return NTTContext(degree, modmath.find_ntt_prime(bits, degree))


def _backend_instances():
    """Both backends, with the numpy thresholds forced to 0 so the
    vectorized paths are exercised at every test size."""
    backends = [PythonBackend()]
    if "numpy" in available_backends():
        backends.append(NumpyBackend(min_vector_length=0, min_ntt_length=0))
    return backends


BACKENDS = _backend_instances()
BACKEND_IDS = [backend.name for backend in BACKENDS]


def naive_negacyclic_multiply(a, b, modulus):
    n = len(a)
    result = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            term = a[i] * b[j]
            if k >= n:
                result[k - n] = (result[k - n] - term) % modulus
            else:
                result[k] = (result[k] + term) % modulus
    return result


class TestBitReverse:
    def test_length_8(self):
        assert bit_reverse_permutation(8) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_length_1(self):
        assert bit_reverse_permutation(1) == [0]

    def test_is_an_involution(self):
        perm = bit_reverse_permutation(64)
        assert [perm[perm[i]] for i in range(64)] == list(range(64))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_permutation(12)


class TestNTTContext:
    @pytest.mark.parametrize("degree", [4, 16, 64, 256, 1024])
    def test_forward_inverse_roundtrip(self, degree):
        context = make_context(degree)
        rng = random.Random(degree)
        coeffs = [rng.randrange(context.modulus) for _ in range(degree)]
        assert context.inverse(context.forward(coeffs)) == coeffs

    def test_forward_of_constant_one(self):
        context = make_context(16)
        values = context.forward([1] + [0] * 15)
        assert values == [1] * 16

    def test_forward_is_linear(self):
        context = make_context(32)
        rng = random.Random(7)
        q = context.modulus
        a = [rng.randrange(q) for _ in range(32)]
        b = [rng.randrange(q) for _ in range(32)]
        fa, fb = context.forward(a), context.forward(b)
        fsum = context.forward([(x + y) % q for x, y in zip(a, b)])
        assert fsum == [(x + y) % q for x, y in zip(fa, fb)]

    @pytest.mark.parametrize("degree", [8, 32, 128])
    def test_convolution_matches_schoolbook(self, degree):
        context = make_context(degree)
        rng = random.Random(degree * 3)
        q = context.modulus
        a = [rng.randrange(q) for _ in range(degree)]
        b = [rng.randrange(q) for _ in range(degree)]
        assert context.negacyclic_convolution(a, b) == naive_negacyclic_multiply(a, b, q)

    def test_convolution_with_x_is_a_shift(self):
        context = make_context(16)
        q = context.modulus
        a = list(range(1, 17))
        x = [0, 1] + [0] * 14
        result = context.negacyclic_convolution(a, x)
        expected = [(-a[15]) % q] + a[:15]
        assert result == expected

    def test_wrong_length_raises(self):
        context = make_context(16)
        with pytest.raises(ValueError):
            context.forward([1, 2, 3])
        with pytest.raises(ValueError):
            context.inverse([1, 2, 3])

    def test_rejects_non_ntt_friendly_modulus(self):
        with pytest.raises(ValueError):
            NTTContext(64, 17)  # 17 - 1 is not divisible by 128

    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            NTTContext(64, 128 * 4 + 1)  # 513 = 27 * 19

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_parseval_like_energy_preservation(self, seed):
        # The NTT is a bijection: distinct inputs map to distinct outputs.
        context = make_context(32)
        rng = random.Random(seed)
        q = context.modulus
        a = [rng.randrange(q) for _ in range(32)]
        b = list(a)
        b[0] = (b[0] + 1) % q
        assert context.forward(a) != context.forward(b)


class TestFourStepNTT:
    @pytest.mark.parametrize("degree,rows", [(16, 4), (64, 8), (256, 16), (256, 4), (1024, 32)])
    def test_matches_direct_forward(self, degree, rows):
        context = make_context(degree)
        rng = random.Random(degree + rows)
        coeffs = [rng.randrange(context.modulus) for _ in range(degree)]
        assert four_step_ntt(context, coeffs, rows) == context.forward(coeffs)

    @pytest.mark.parametrize("degree,rows", [(64, 8), (256, 16)])
    def test_inverse_roundtrip(self, degree, rows):
        context = make_context(degree)
        rng = random.Random(degree * 7)
        coeffs = [rng.randrange(context.modulus) for _ in range(degree)]
        values = four_step_ntt(context, coeffs, rows)
        assert four_step_intt(context, values, rows) == coeffs

    def test_rejects_rows_not_dividing_degree(self):
        context = make_context(64)
        with pytest.raises(ValueError):
            four_step_ntt(context, [0] * 64, 24)


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestNTTPropertiesPerBackend:
    """The satellite property suite: every law must hold on every backend."""

    @pytest.mark.parametrize("degree", [8, 64, 1024])
    def test_roundtrip(self, backend, degree):
        """intt(ntt(x)) == x at N in {8, 64, 1024}."""
        context = make_context(degree, bits=40)
        rng = random.Random(degree * 11)
        coeffs = [rng.randrange(context.modulus) for _ in range(degree)]
        with use_backend(backend):
            assert context.inverse(context.forward(coeffs)) == coeffs

    @pytest.mark.parametrize("degree,rows", [(8, 2), (64, 8), (1024, 32), (1024, 8)])
    def test_four_step_matches_direct(self, backend, degree, rows):
        """Four-step decomposition vs the direct transform, both directions."""
        context = make_context(degree, bits=40)
        rng = random.Random(degree + rows)
        coeffs = [rng.randrange(context.modulus) for _ in range(degree)]
        with use_backend(backend):
            values = four_step_ntt(context, coeffs, rows)
            assert values == context.forward(coeffs)
            assert four_step_intt(context, values, rows) == coeffs

    @pytest.mark.parametrize("degree", [8, 64, 1024])
    def test_convolution_matches_schoolbook(self, backend, degree):
        """NTT negacyclic convolution vs the O(N^2) schoolbook multiply."""
        context = make_context(degree, bits=40)
        rng = random.Random(degree * 13)
        q = context.modulus
        a = [rng.randrange(q) for _ in range(degree)]
        b = [rng.randrange(q) for _ in range(degree)]
        expected = naive_negacyclic_multiply(a, b, q)
        with use_backend(backend):
            assert context.negacyclic_convolution(a, b) == expected

    def test_linearity_and_convolution_theorem(self, backend):
        """forward is linear and diagonalizes the ring product."""
        context = make_context(64, bits=40)
        rng = random.Random(17)
        q = context.modulus
        a = [rng.randrange(q) for _ in range(64)]
        b = [rng.randrange(q) for _ in range(64)]
        with use_backend(backend):
            fa, fb = context.forward(a), context.forward(b)
            fsum = context.forward([(x + y) % q for x, y in zip(a, b)])
            assert fsum == [(x + y) % q for x, y in zip(fa, fb)]
            product = context.inverse(context.pointwise_multiply(fa, fb))
            assert product == context.negacyclic_convolution(a, b)

    def test_pinned_backend_on_context(self, backend):
        """An NTTContext constructed with backend= uses it regardless of the
        process-wide selection."""
        degree = 64
        q = modmath.find_ntt_prime(40, degree)
        pinned = NTTContext(degree, q, backend=backend)
        rng = random.Random(19)
        coeffs = [rng.randrange(q) for _ in range(degree)]
        reference = NTTContext(degree, q)
        with use_backend(PythonBackend()):
            expected = reference.forward(coeffs)
        assert pinned.forward(coeffs) == expected
        assert pinned.active_backend() is backend
