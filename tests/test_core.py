"""Tests for the Trinity hardware model: config, components, mapping, simulator."""

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TrinityAccelerator,
    TrinityConfig,
    TrinitySimulator,
    F1LikeNTT,
    FABLikeNTT,
    TrinityNTT,
)
from repro.core.area_power import AreaPowerModel, TABLE_XI_PAPER_VALUES
from repro.core.components import build_cluster_units
from repro.core.config import DEFAULT_TRINITY_CONFIG
from repro.core.mapping import (
    kernel_work,
    select_mapping,
    trinity_ckks_mapping,
    trinity_tfhe_mapping,
)
from repro.core.noc import InterClusterNoC
from repro.core.ntt_strategies import POLYNOMIAL_LENGTH_SWEEP
from repro.core.variants import (
    trinity_ckks_ip_use_ewe,
    trinity_tfhe_with_cu,
    trinity_tfhe_without_cu,
    trinity_with_clusters,
)
from repro.fhe.params import CKKS_DEFAULT, TFHE_SET_I, TFHE_SET_III
from repro.kernels import Kernel, KernelKind, KernelTrace, hmult_flow, keyswitch_flow, pbs_flow


class TestTrinityConfig:
    def test_default_matches_table_iii(self):
        config = DEFAULT_TRINITY_CONFIG
        assert config.clusters == 4
        assert config.word_bits == 36
        assert config.nttu.rows == 128
        assert config.nttu.butterfly_stages == 8
        assert config.cu_rows == 128
        assert sorted(config.cu_columns) == [1, 2, 2, 2, 2, 3]

    def test_derived_throughputs(self):
        config = DEFAULT_TRINITY_CONFIG
        assert config.nttu.elements_per_cycle == 256
        assert config.nttu.butterflies_per_cycle == 1024
        assert config.nttu_butterflies_per_cluster == 2048
        assert config.total_cu_columns == 12
        assert config.cu_mac_lanes_per_cluster == 12 * 128

    def test_with_clusters(self):
        scaled = DEFAULT_TRINITY_CONFIG.with_clusters(8)
        assert scaled.clusters == 8
        assert scaled.nttus_per_cluster == DEFAULT_TRINITY_CONFIG.nttus_per_cluster

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TrinityConfig(clusters=0)
        with pytest.raises(ValueError):
            TrinityConfig(nttus_per_cluster=-1)
        with pytest.raises(ValueError):
            TrinityConfig(cu_columns=(), nttus_per_cluster=0)

    def test_cycles_to_seconds(self):
        config = DEFAULT_TRINITY_CONFIG
        assert config.cycles_to_seconds(1e9) == pytest.approx(1.0)


class TestComponents:
    def test_unit_inventory(self):
        units = {u.name: u for u in build_cluster_units(DEFAULT_TRINITY_CONFIG)}
        assert "NTTU#1" in units and "NTTU#2" in units
        assert "CU-1" in units and "CU-3" in units
        assert {"CU-2#1", "CU-2#2", "CU-2#3", "CU-2#4"} <= set(units)
        assert {"EWE", "AutoU", "Rotator", "VPU"} <= set(units)

    def test_cu_supports_both_modes(self):
        units = {u.name: u for u in build_cluster_units(DEFAULT_TRINITY_CONFIG)}
        cu = units["CU-2#1"]
        assert cu.ntt_butterflies == 256
        assert cu.mac_lanes == 256
        assert cu.supports("ntt") and cu.supports("mac")

    def test_nttu_is_ntt_only(self):
        units = {u.name: u for u in build_cluster_units(DEFAULT_TRINITY_CONFIG)}
        assert not units["NTTU#1"].supports("mac")

    def test_unknown_work_class_raises(self):
        units = build_cluster_units(DEFAULT_TRINITY_CONFIG)
        with pytest.raises(ValueError):
            units[0].throughput("bogus")


class TestNTTStrategies:
    def test_f1_like_peaks_at_largest_length(self):
        f1 = F1LikeNTT()
        curve = [f1.utilization(n) for n in POLYNOMIAL_LENGTH_SWEEP]
        assert curve[-1] == max(curve)
        assert curve == sorted(curve)

    def test_fab_like_peaks_at_smallest_length(self):
        fab = FABLikeNTT()
        curve = [fab.utilization(n) for n in POLYNOMIAL_LENGTH_SWEEP]
        assert curve[0] == max(curve)
        assert curve[-1] < curve[0]

    def test_trinity_stays_high_everywhere(self):
        trinity = TrinityNTT()
        for n in POLYNOMIAL_LENGTH_SWEEP:
            assert trinity.utilization(n) > 0.6

    def test_trinity_beats_f1_on_average(self):
        assert TrinityNTT().average_utilization() > F1LikeNTT().average_utilization()

    @given(st.sampled_from(POLYNOMIAL_LENGTH_SWEEP), st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_utilization_is_a_fraction(self, n, batch):
        for model in (F1LikeNTT(), FABLikeNTT(), TrinityNTT()):
            value = model.utilization(n, batch)
            assert 0.0 < value <= 1.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            F1LikeNTT().utilization(1000)


class TestMapping:
    def test_ckks_mapping_covers_every_kernel_kind(self):
        mapping = trinity_ckks_mapping(DEFAULT_TRINITY_CONFIG)
        for kind in KernelKind:
            assert mapping.units_for(kind), f"no unit assigned for {kind}"

    def test_tfhe_mapping_covers_every_kernel_kind(self):
        mapping = trinity_tfhe_mapping(DEFAULT_TRINITY_CONFIG)
        for kind in KernelKind:
            assert mapping.units_for(kind), f"no unit assigned for {kind}"

    def test_tfhe_mapping_uses_cus_for_ntt(self):
        mapping = trinity_tfhe_mapping(DEFAULT_TRINITY_CONFIG, use_cu=True)
        ntt_units = {u.name for u in mapping.units_for(KernelKind.NTT)}
        assert any(name.startswith("CU") for name in ntt_units)

    def test_tfhe_mapping_without_cu_restricts_ntt_to_nttu(self):
        mapping = trinity_tfhe_mapping(DEFAULT_TRINITY_CONFIG, use_cu=False)
        ntt_units = {u.name for u in mapping.units_for(KernelKind.NTT)}
        assert all(name.startswith("NTTU") for name in ntt_units)

    def test_select_mapping(self):
        assert select_mapping("ckks", DEFAULT_TRINITY_CONFIG).scheme == "ckks"
        assert select_mapping("tfhe", DEFAULT_TRINITY_CONFIG).scheme == "tfhe"
        assert select_mapping("conversion", DEFAULT_TRINITY_CONFIG).scheme == "conversion"
        with pytest.raises(ValueError):
            select_mapping("bogus", DEFAULT_TRINITY_CONFIG)

    def test_kernel_work_units(self):
        ntt = Kernel(KernelKind.NTT, 1024, count=2)
        assert kernel_work(ntt) == 2 * 512 * 10
        mac = Kernel(KernelKind.MAC, 256, count=3, inner=4)
        assert kernel_work(mac) == 3 * 256 * 4

    def test_unknown_unit_in_assignment_raises(self):
        mapping = trinity_ckks_mapping(DEFAULT_TRINITY_CONFIG)
        from repro.core.mapping import MappingPolicy
        with pytest.raises(ValueError):
            MappingPolicy(name="bad", scheme="ckks", units=mapping.units,
                          assignments={KernelKind.NTT: ("NoSuchUnit",)})


class TestSimulator:
    def test_latency_is_positive_and_throughput_not_larger(self):
        simulator = TrinitySimulator(DEFAULT_TRINITY_CONFIG)
        report = simulator.run(hmult_flow(CKKS_DEFAULT, 20))
        assert report.latency_cycles > 0
        assert 0 < report.throughput_cycles <= report.latency_cycles

    def test_more_clusters_is_faster(self):
        trace = keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level)
        small = TrinitySimulator(trinity_with_clusters(2)).run(trace)
        large = TrinitySimulator(trinity_with_clusters(8)).run(trace)
        assert large.latency_cycles < small.latency_cycles

    def test_deeper_keyswitch_is_slower(self):
        simulator = TrinitySimulator(DEFAULT_TRINITY_CONFIG)
        shallow = simulator.run(keyswitch_flow(CKKS_DEFAULT, 5))
        deep = simulator.run(keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level))
        assert deep.latency_cycles > shallow.latency_cycles

    def test_utilization_bounded_by_one(self):
        simulator = TrinitySimulator(DEFAULT_TRINITY_CONFIG)
        report = simulator.run(pbs_flow(TFHE_SET_I))
        for value in report.utilization().values():
            assert 0.0 <= value <= 1.0

    def test_run_many_adds_latencies(self):
        simulator = TrinitySimulator(DEFAULT_TRINITY_CONFIG)
        single = simulator.run(hmult_flow(CKKS_DEFAULT, 20)).latency_cycles
        double = simulator.run_many([hmult_flow(CKKS_DEFAULT, 20)] * 2).latency_cycles
        assert double == pytest.approx(2 * single, rel=1e-6)

    def test_report_unit_busy_matches_mapping_units(self):
        accelerator = TrinityAccelerator()
        report = accelerator.run_ckks_operation("HMult", 20)
        assert set(report.unit_busy_cycles) == set(accelerator.ckks_mapping.unit_names())

    def test_pbs_throughput_exceeds_latency_rate(self):
        accelerator = TrinityAccelerator()
        report = accelerator.run_pbs(TFHE_SET_I)
        assert report.operations_per_second > 1.0 / report.latency_seconds


class TestAcceleratorFacade:
    def test_pbs_throughput_ordering_across_sets(self):
        accelerator = TrinityAccelerator()
        assert accelerator.pbs_throughput(TFHE_SET_I) > accelerator.pbs_throughput(TFHE_SET_III)

    def test_conversion_experiments_run(self):
        accelerator = TrinityAccelerator()
        to_tfhe = accelerator.run_conversion_to_tfhe(CKKS_DEFAULT, nslot=8)
        to_ckks = accelerator.run_conversion_to_ckks(CKKS_DEFAULT, nslot=8)
        assert to_tfhe.latency_cycles < to_ckks.latency_cycles  # extraction is trivial

    def test_describe_includes_area_power(self):
        summary = TrinityAccelerator().describe()
        assert summary["area_mm2"] > 0
        assert summary["power_w"] > 0


class TestVariants:
    def test_ip_use_ewe_is_slower_on_keyswitch_heavy_work(self):
        config, mapping = trinity_ckks_ip_use_ewe()
        variant = TrinitySimulator(config, mapping)
        default = TrinitySimulator(DEFAULT_TRINITY_CONFIG,
                                   trinity_ckks_mapping(DEFAULT_TRINITY_CONFIG))
        trace = keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level)
        assert variant.run(trace).latency_cycles > default.run(trace).latency_cycles

    def test_tfhe_variant_with_cu_beats_without(self):
        with_config, with_mapping = trinity_tfhe_with_cu()
        without_config, without_mapping = trinity_tfhe_without_cu()
        trace = pbs_flow(TFHE_SET_I)
        ops_with = TrinitySimulator(with_config, with_mapping).run(trace).operations_per_second
        ops_without = TrinitySimulator(without_config, without_mapping).run(trace).operations_per_second
        assert ops_with > ops_without

    def test_variants_are_single_cluster(self):
        config, _ = trinity_tfhe_with_cu()
        assert config.clusters == 1


class TestAreaPower:
    def test_total_matches_table_xi_within_five_percent(self):
        model = AreaPowerModel()
        breakdown = model.component_table(DEFAULT_TRINITY_CONFIG)
        paper_area, paper_power = TABLE_XI_PAPER_VALUES["Total"]
        assert abs(breakdown.total_area_mm2 - paper_area) / paper_area < 0.05
        assert abs(breakdown.total_power_w - paper_power) / paper_power < 0.05

    def test_cluster_breakdown_component_count(self):
        model = AreaPowerModel()
        breakdown = model.cluster_breakdown(DEFAULT_TRINITY_CONFIG)
        assert len([k for k in breakdown if k.startswith("CU")]) == 6

    def test_area_grows_with_clusters(self):
        model = AreaPowerModel()
        areas = [model.total_area_mm2(trinity_with_clusters(c)) for c in (2, 4, 8)]
        assert areas == sorted(areas)

    def test_area_grows_with_cu_columns(self):
        model = AreaPowerModel()
        small = replace(DEFAULT_TRINITY_CONFIG, cu_columns=(1, 2), name="small")
        assert model.total_area_mm2(small) < model.total_area_mm2(DEFAULT_TRINITY_CONFIG)

    def test_trinity_smaller_than_sharp_plus_morphling(self):
        """Headline claim: Trinity area ~85% of SHARP + Morphling combined."""
        model = AreaPowerModel()
        trinity_area = model.total_area_mm2(DEFAULT_TRINITY_CONFIG)
        sharp_plus_morphling = 178.8 + 4.0
        assert 0.75 < trinity_area / sharp_plus_morphling < 0.95


class TestNoC:
    def test_layout_switch_cost_scales_with_data(self):
        noc = InterClusterNoC(DEFAULT_TRINITY_CONFIG)
        small = noc.layout_switch_cycles(poly_length=2 ** 12, limbs=4)
        large = noc.layout_switch_cycles(poly_length=2 ** 16, limbs=36)
        assert large > small > 0

    def test_single_cluster_has_no_switch_cost(self):
        noc = InterClusterNoC(trinity_with_clusters(2).with_clusters(1))
        assert noc.layout_switch_cycles(2 ** 16, 36) == 0.0

    def test_broadcast_cost_positive(self):
        noc = InterClusterNoC(DEFAULT_TRINITY_CONFIG)
        assert noc.broadcast_cycles(2 ** 14, 8) > 0
