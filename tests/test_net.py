"""Suite for the ``repro.serve.net`` streaming gateway.

* **Framing**: envelope round-trips, transport counters, and strict frame
  validation — unknown tags, truncation, checksum mismatches, oversize
  length prefixes, and mid-frame EOF all raise typed
  :class:`ProtocolError`.
* **Wire errors**: the stable code registry is total and collision-free,
  every error round-trips through ``to_wire()`` / ``error_from_wire`` with
  its machine-readable details (missing keys, retry-after), and unknown
  codes degrade without losing the code.
* **Security**: secret keys are refused on both sides of the wire — the
  client cannot encode one and the gateway answers a hand-crafted
  secret-key frame with the :class:`SecretKeyOnWireError` code and hangs
  up.
* **Differential**: the loopback gate — concurrent requests through
  ``ServingClient -> ServingGateway`` decrypt bit-exact to the same
  requests via in-process ``InferenceServer.submit`` and the eager
  reference.
* **Liveness**: gateway drain with in-flight wire requests, client
  timeouts with orphaned-reply accounting, backpressure windows, and a
  >=500-request loopback chaos soak (rate-limited tenant + injected
  kernel faults) through :func:`chaos_soak_gate` where every wire
  rejection carries its stable error code.

Everything here runs on the pure-python backend: this file is part of the
no-numpy CI leg.
"""

import asyncio
import random
import struct
import zlib

import pytest

from repro.fhe.backend import PythonBackend
from repro.fhe.ckks.ciphertext import CKKSCiphertext, CKKSPlaintext
from repro.fhe.ckks.evaluator import CKKSEvaluator
from repro.fhe.ckks.keys import CKKSKeyGenerator
from repro.fhe.params import CKKSParameters
from repro.fhe.polynomial import Polynomial
from repro.fhe.program import HETrace, ProgramExecutor
from repro.fhe.rns import RNSPolynomial
from repro.serve import (
    AdmissionController,
    CircuitOpenError,
    ConnectionClosedError,
    DeadlineExceededError,
    ExecutionError,
    FaultInjectingBackend,
    FaultSchedule,
    FaultSpec,
    InferenceRequest,
    InferenceServer,
    LoadGenerator,
    ManualClock,
    MissingKeyError,
    OverloadedError,
    ProtocolError,
    RateLimitedError,
    ResiliencePolicy,
    RetryPolicy,
    SchemeMismatchError,
    SecretKeyOnWireError,
    SerializationError,
    ServeError,
    ServingClient,
    ServingGateway,
    UnknownProgramError,
    UnknownTenantError,
    chaos_soak_gate,
    error_from_wire,
    kind_name,
    payload_kind,
    serialize_ciphertext,
    serialize_secret_key,
    wire_code_registry,
)
from repro.serve import errors as errors_mod
from repro.serve.net.framing import (
    PROTOCOL_VERSION,
    TAG_REQUEST,
    Error,
    FrameTransport,
    Goodbye,
    Hello,
    HelloAck,
    Request,
    Response,
    _F64,
    _U16,
    _U32,
    _U64,
    _U8,
    decode_envelope,
    encode_envelope,
    encode_frame,
)
from repro.serve.serialization import KIND_CIPHERTEXT, KIND_SECRET_KEY

PYTHON = PythonBackend()
TOY = CKKSParameters.toy()


# ---------------------------------------------------------------------------
# Helpers (shared idiom with tests/test_serve.py)
# ---------------------------------------------------------------------------

def _random_poly(params, seed, level=None):
    degree = params.ring_degree
    basis = params.basis(params.max_level if level is None else level)
    rng = random.Random(seed ^ 0x53EB7E)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _random_ct(params, seed, level=None, scale=None):
    level = params.max_level if level is None else level
    return CKKSCiphertext(
        c0=_random_poly(params, seed, level),
        c1=_random_poly(params, seed + 1, level),
        level=level,
        scale=float(params.scale) if scale is None else float(scale),
    )


def _random_pt(params, seed, level=None):
    level = params.max_level if level is None else level
    return CKKSPlaintext(poly=_random_poly(params, seed, level), level=level,
                         scale=float(params.scale))


def _keyed(params, seed=11):
    return CKKSKeyGenerator(params, seed=seed, error_stddev=0.0).generate()


def _rows(ct):
    c0 = ct.c0.to_coeff()
    c1 = ct.c1.to_coeff()
    return (
        tuple(map(tuple, c0.coefficient_rows())),
        tuple(map(tuple, c1.coefficient_rows())),
    )


def _dense_tracer(pts):
    def tracer(x):
        acc = x.rotate(1) * pts[0] + x.rotate(2) * pts[1] + x * pts[2]
        return acc + x.conjugate() * pts[3]
    return tracer


def _dense_server(params, backend, seed=11, tenants=("t0",), **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    server = InferenceServer(params, backend=backend, **kwargs)
    keys = _keyed(params, seed)
    for tenant in tenants:
        server.register_tenant(tenant, keys)
    pts = [_random_pt(params, 400 + j) for j in range(4)]
    tracer = _dense_tracer(pts)
    server.register_program("dense", tracer)
    return server, keys, tracer


def _eager_outputs(params, keys, backend, tracer, cts):
    evaluator = CKKSEvaluator(params, keys, backend=backend)
    outputs = []
    for ct in cts:
        trace = HETrace(params)
        x = trace.input("x", level=ct.level, scale=ct.scale)
        trace.output("y", tracer(x))
        outputs.append(
            ProgramExecutor(evaluator).run_eager(trace.program, {"x": ct})["y"]
        )
    return outputs


class _NullWriter:
    """Just enough StreamWriter surface for receive-only transports."""

    def write(self, data):
        pass

    async def drain(self):
        pass

    def is_closing(self):
        return False

    def close(self):
        pass

    async def wait_closed(self):
        pass

    def get_extra_info(self, name):
        return None


def _fed_transport(*chunks, limit=None):
    """A transport whose read side holds exactly ``chunks`` then EOF.

    Must be called from inside a running event loop (StreamReader binds
    to it).
    """
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    kwargs = {} if limit is None else {"max_frame_bytes": limit}
    return FrameTransport(reader, _NullWriter(), **kwargs)


def _receive_fed(*chunks, limit=None):
    """Receive one envelope from fed bytes, in a fresh loop."""
    async def scenario():
        return await _fed_transport(*chunks, limit=limit).receive()

    return asyncio.run(scenario())


async def _raw_connect(gateway, tenant="t0", version=PROTOCOL_VERSION):
    """A hand-driven connection below the ServingClient conveniences."""
    reader, writer = await asyncio.open_connection(*gateway.address)
    transport = FrameTransport(reader, writer)
    await transport.send(Hello(protocol_version=version, tenant_id=tenant))
    ack = await transport.receive()
    return transport, ack


async def _poll(predicate, *, timeout=5.0, drain=None):
    """Await a condition the event loop resolves asynchronously."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if drain is not None:
            drain()
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# Framing: envelope codec round-trips
# ---------------------------------------------------------------------------

_CT_BLOB = serialize_ciphertext(_random_ct(TOY, 1))

ENVELOPES = [
    Hello(protocol_version=1, tenant_id="org-a", client_name="edge-7"),
    HelloAck(protocol_version=1, server_name="gw", max_inflight=16),
    Request(request_id=9, program="dense", payloads=[_CT_BLOB, _CT_BLOB],
            deadline_seconds=None),
    Request(request_id=2 ** 40, program="dense", payloads=[_CT_BLOB],
            deadline_seconds=1.5),
    Response(request_id=9, payloads=[_CT_BLOB], batch_size=5, batched=True,
             latency_seconds=0.25),
    Error(request_id=3, code=28, message="slow down",
          details={"retry_after_seconds": 0.5}),
    Error(request_id=0, code=60, message="bad frame", details={}),
    Goodbye(reason="draining"),
]


@pytest.mark.parametrize("envelope", ENVELOPES,
                         ids=lambda e: type(e).__name__)
def test_envelope_roundtrip(envelope):
    assert decode_envelope(encode_envelope(envelope)) == envelope


def test_transport_roundtrip_counts_frames_and_bytes():
    frames = b"".join(encode_frame(e) for e in ENVELOPES)

    async def scenario():
        transport = _fed_transport(frames)
        received = []
        while True:
            envelope = await transport.receive()
            if envelope is None:
                break
            received.append(envelope)
        # A second receive after clean EOF stays None instead of raising.
        assert await transport.receive() is None
        return received, transport

    received, transport = asyncio.run(scenario())
    assert received == ENVELOPES
    assert transport.frames_received == len(ENVELOPES)
    assert transport.bytes_received == len(frames)


@pytest.mark.parametrize("mutate, match", [
    (lambda body: _U8.pack(200) + body[1:], "unknown envelope tag"),
    (lambda body: body[:-3], "truncated"),
    (lambda body: body + b"\x00\x00", "trailing bytes"),
], ids=["unknown-tag", "truncated", "trailing"])
def test_malformed_envelopes_raise_protocol_error(mutate, match):
    body = encode_envelope(Goodbye(reason="ok"))
    with pytest.raises(ProtocolError, match=match):
        decode_envelope(mutate(body))


def test_corrupted_frame_fails_checksum():
    frame = bytearray(encode_frame(Hello(1, "org-a")))
    frame[7] ^= 0x40  # flip one bit inside the body
    with pytest.raises(ProtocolError, match="checksum"):
        _receive_fed(bytes(frame))


def test_eof_inside_a_frame_raises():
    frame = encode_frame(Goodbye(reason="interrupted"))
    with pytest.raises(ProtocolError, match="closed inside a frame"):
        _receive_fed(frame[:-2])
    with pytest.raises(ProtocolError, match="length prefix"):
        _receive_fed(frame[:2])


def test_oversize_frame_refused_before_buffering():
    frame = encode_frame(Request(request_id=1, program="dense",
                                 payloads=[_CT_BLOB]))
    with pytest.raises(ProtocolError, match="exceeds the"):
        _receive_fed(frame, limit=64)


# ---------------------------------------------------------------------------
# Wire error codes
# ---------------------------------------------------------------------------

def test_wire_code_registry_is_total_and_collision_free():
    registry = wire_code_registry()
    classes = [getattr(errors_mod, name) for name in errors_mod.__all__
               if isinstance(getattr(errors_mod, name), type)]
    assert len(classes) >= 21
    for cls in classes:
        assert isinstance(cls.__dict__.get("code"), int), cls
        assert registry[cls.code] is cls
    codes = [cls.code for cls in classes]
    assert len(codes) == len(set(codes))


def test_error_wire_roundtrips_preserve_details():
    missing = MissingKeyError("keys absent",
                              missing=[("galois", 3, 2), ("relin", 1)])
    wire = missing.to_wire()
    back = error_from_wire(wire["code"], wire["message"], wire["details"])
    assert isinstance(back, MissingKeyError)
    assert back.missing == [("galois", 3, 2), ("relin", 1)]

    limited = RateLimitedError("slow down", retry_after_seconds=0.75)
    wire = limited.to_wire()
    back = error_from_wire(wire["code"], wire["message"], wire["details"])
    assert isinstance(back, RateLimitedError)
    assert back.retry_after_seconds == pytest.approx(0.75)

    opened = CircuitOpenError("shedding", retry_after_seconds=2.0)
    back = Error.from_exception(opened, request_id=5).to_exception()
    assert isinstance(back, CircuitOpenError)
    assert back.retry_after_seconds == pytest.approx(2.0)

    failure = ExecutionError("kernel down")
    failure.__cause__ = RuntimeError("boom")
    assert failure.to_wire()["details"] == {"cause": "RuntimeError"}


def test_scheme_mismatch_holds_code_31_and_roundtrips():
    registry = wire_code_registry()
    assert registry[31] is SchemeMismatchError
    mismatch = SchemeMismatchError("hybrid program, CKKS-only tenant",
                                   expected="hybrid", got="ckks")
    wire = mismatch.to_wire()
    assert wire["code"] == 31
    assert wire["details"] == {"expected": "hybrid", "got": "ckks"}
    back = error_from_wire(wire["code"], wire["message"], wire["details"])
    assert isinstance(back, SchemeMismatchError)
    assert isinstance(back, errors_mod.RequestRejected)  # pre-execution reject
    assert back.expected == "hybrid" and back.got == "ckks"

    back = Error.from_exception(mismatch, request_id=9).to_exception()
    assert isinstance(back, SchemeMismatchError)
    assert back.expected == "hybrid" and back.got == "ckks"


def test_duplicate_wire_codes_are_rejected_at_class_definition():
    """The registry auto-fills from the hierarchy; a class reusing a
    shipped code (31 belongs to SchemeMismatchError) cannot be defined."""
    with pytest.raises(TypeError, match="already belongs"):
        type("RogueError", (ServeError,), {"code": 31})
    with pytest.raises(TypeError, match="stable wire"):
        type("CodelessError", (ServeError,), {})


def test_unknown_wire_code_degrades_without_losing_it():
    exc = error_from_wire(9001, "from the future", {"x": 1})
    assert type(exc) is ServeError
    assert exc.code == 9001


def test_new_error_classes_must_declare_fresh_codes():
    with pytest.raises(TypeError, match="must declare"):
        type("Anonymous", (ServeError,), {})
    with pytest.raises(TypeError, match="already belongs"):
        type("Imposter", (ServeError,), {"code": ProtocolError.code})


# ---------------------------------------------------------------------------
# Payload kind peeking and the secret-key guard
# ---------------------------------------------------------------------------

def test_payload_kind_peeks_the_header():
    assert payload_kind(_CT_BLOB) == KIND_CIPHERTEXT
    assert kind_name(KIND_CIPHERTEXT) == "ciphertext"
    keys = _keyed(TOY)
    blob = serialize_secret_key(keys.secret)
    assert payload_kind(blob) == KIND_SECRET_KEY
    assert kind_name(KIND_SECRET_KEY) == "secret_key"
    with pytest.raises(SerializationError):
        payload_kind(b"nope")
    with pytest.raises(SerializationError):
        payload_kind(b"JUNKjunkJUNK")


def test_secret_key_refused_at_encode_time_both_envelopes():
    blob = serialize_secret_key(_keyed(TOY).secret)
    with pytest.raises(SecretKeyOnWireError):
        encode_envelope(Request(request_id=1, program="dense",
                                payloads=[blob]))
    with pytest.raises(SecretKeyOnWireError):
        encode_envelope(Response(request_id=1, payloads=[blob]))
    # ...and at decode time, for a peer that bypassed the send-side guard.
    body = (_U8.pack(TAG_REQUEST) + _U64.pack(1)
            + _U16.pack(len(b"dense")) + b"dense"
            + _F64.pack(float("nan"))
            + _U16.pack(1) + _U32.pack(len(blob)) + blob)
    with pytest.raises(SecretKeyOnWireError):
        decode_envelope(body)


def test_gateway_refuses_secret_key_frames_and_hangs_up():
    async def scenario():
        server, keys, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        try:
            transport, ack = await _raw_connect(gateway)
            assert isinstance(ack, HelloAck)
            blob = serialize_secret_key(keys.secret)
            # Hand-craft the frame the framing layer refuses to build.
            body = (_U8.pack(TAG_REQUEST) + _U64.pack(1)
                    + _U16.pack(len(b"dense")) + b"dense"
                    + _F64.pack(float("nan"))
                    + _U16.pack(1) + _U32.pack(len(blob)) + blob)
            frame = (_U32.pack(len(body) + 4) + body
                     + _U32.pack(zlib.crc32(body) & 0xFFFFFFFF))
            transport.writer.write(frame)
            await transport.writer.drain()
            refusal = await transport.receive()
            assert isinstance(refusal, Error)
            assert refusal.request_id == 0
            assert refusal.code == SecretKeyOnWireError.code
            assert isinstance(refusal.to_exception(), SecretKeyOnWireError)
            assert await transport.receive() is None  # connection closed
            transport.close()
        finally:
            await gateway.close()
        assert gateway.stats()["secret_key_refusals"] == 1

    asyncio.run(scenario())


def test_client_submit_refuses_secret_key_payload():
    async def scenario():
        server, keys, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        try:
            host, port = gateway.address
            async with await ServingClient.connect(
                    host, port, tenant_id="t0") as client:
                with pytest.raises(SecretKeyOnWireError):
                    await client.transport.send(Request(
                        request_id=1, program="dense",
                        payloads=[serialize_secret_key(keys.secret)]))
                assert client.transport.frames_sent == 1  # only the HELLO
        finally:
            await gateway.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Loopback differential gate
# ---------------------------------------------------------------------------

def test_loopback_wire_path_is_bit_exact_vs_in_process():
    server, keys, tracer = _dense_server(TOY, PYTHON)
    cts = [_random_ct(TOY, 7 * i) for i in range(5)]

    async def scenario():
        gateway = await ServingGateway(server).start()
        host, port = gateway.address
        async with await ServingClient.connect(
                host, port, tenant_id="t0", client_name="diff") as client:
            futures = [await client.submit("dense", [ct]) for ct in cts]
            wired = await asyncio.gather(*futures)
        gw_stats = gateway.stats()
        await gateway.close()
        return wired, gw_stats

    wired, gw_stats = asyncio.run(scenario())
    # Same requests, in-process — and the eager sequential reference.
    direct = server.serve(
        [InferenceRequest.single("t0", "dense", ct) for ct in cts])
    references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
    for wire_response, direct_response, reference in zip(
            wired, direct, references):
        assert wire_response.batched and wire_response.batch_size == 5
        assert _rows(wire_response.ciphertexts[0]) == _rows(reference)
        assert _rows(direct_response.ciphertexts[0]) == _rows(reference)
        assert wire_response.server_latency_seconds > 0
        assert wire_response.latency_seconds >= \
            wire_response.server_latency_seconds

    assert gw_stats["responses"] == 5 and gw_stats["wire_errors"] == 0
    totals = gw_stats["transport_totals"]
    assert totals["frames_received"] >= 6  # HELLO + 5 requests
    assert totals["bytes_sent"] > 5 * len(_CT_BLOB)  # responses went back

    stats = server.stats()
    assert stats["tenants"]["t0"]["submitted"] == 10
    assert stats["tenants"]["t0"]["served"] == 10
    assert stats["tenants"]["t0"]["rejected"] == 0
    assert stats["tenants"]["t0"]["failed"] == 0


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------

def test_handshake_rejects_unknown_tenant():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        try:
            host, port = gateway.address
            with pytest.raises(UnknownTenantError):
                await ServingClient.connect(host, port, tenant_id="ghost")
        finally:
            await gateway.close()
        assert gateway.stats()["handshake_failures"] == 1

    asyncio.run(scenario())


def test_handshake_rejects_protocol_version_mismatch():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        try:
            transport, reply = await _raw_connect(gateway, version=99)
            assert isinstance(reply, Error)
            assert reply.code == ProtocolError.code
            assert "version 99" in reply.message
            transport.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_first_envelope_must_be_hello():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        try:
            reader, writer = await asyncio.open_connection(*gateway.address)
            transport = FrameTransport(reader, writer)
            await transport.send(Request(request_id=1, program="dense",
                                         payloads=[_CT_BLOB]))
            reply = await transport.receive()
            assert isinstance(reply, Error)
            assert reply.code == ProtocolError.code
            assert "HELLO" in reply.message
            transport.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Typed error propagation over the wire
# ---------------------------------------------------------------------------

def test_unknown_program_arrives_typed():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        try:
            host, port = gateway.address
            async with await ServingClient.connect(
                    host, port, tenant_id="t0") as client:
                future = await client.submit("nope", [_random_ct(TOY, 1)])
                with pytest.raises(UnknownProgramError, match="nope"):
                    await future
                assert client.stats()["errors"] == 1
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_rate_limit_crosses_wire_with_retry_after():
    async def scenario():
        clock = ManualClock()
        server, _, _ = _dense_server(
            TOY, PYTHON, clock=clock,
            admission=AdmissionController(
                tenant_limits={"t0": (1.0, 1.0)}, clock=clock))
        gateway = await ServingGateway(server).start()
        try:
            host, port = gateway.address
            async with await ServingClient.connect(
                    host, port, tenant_id="t0") as client:
                first = await client.submit("dense", [_random_ct(TOY, 1)])
                second = await client.submit("dense", [_random_ct(TOY, 2)])
                with pytest.raises(RateLimitedError) as info:
                    await second
                assert info.value.retry_after_seconds is not None
                assert info.value.retry_after_seconds > 0
                assert info.value.code == RateLimitedError.code
                await first
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_client_retry_honours_server_retry_after_hint():
    async def scenario():
        clock = ManualClock()
        server, _, _ = _dense_server(
            TOY, PYTHON, clock=clock,
            admission=AdmissionController(
                tenant_limits={"t0": (1.0, 1.0)}, clock=clock))
        gateway = await ServingGateway(server).start()
        try:
            host, port = gateway.address
            delays = []

            async def sleeper(seconds):
                delays.append(seconds)
                clock.advance(seconds)  # refills the token bucket
                await asyncio.sleep(0)

            async with await ServingClient.connect(
                    host, port, tenant_id="t0",
                    retry=RetryPolicy(max_attempts=3),
                    sleep=sleeper) as client:
                await (await client.submit(
                    "dense", [_random_ct(TOY, 1)]))  # drains the bucket
                response = await client.call("dense", [_random_ct(TOY, 2)])
                assert response.ciphertexts
                stats = client.stats()
                assert stats["retries"] >= 1
            # The bucket refills one token per second; the backoff the
            # client actually waited was stretched to the server's hint.
            assert delays and delays[0] >= 1.0
        finally:
            await gateway.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Backpressure: the per-connection in-flight window
# ---------------------------------------------------------------------------

def test_window_overflow_is_refused_on_the_wire():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON, batch_window=60.0)
        gateway = await ServingGateway(
            server, max_inflight_per_connection=2).start()
        try:
            transport, ack = await _raw_connect(gateway)
            assert ack.max_inflight == 2
            for rid in (1, 2, 3):
                await transport.send(Request(
                    request_id=rid, program="dense",
                    payloads=[serialize_ciphertext(_random_ct(TOY, rid))]))
            refusal = await transport.receive()
            assert isinstance(refusal, Error)
            assert refusal.request_id == 3
            assert refusal.code == OverloadedError.code
            assert isinstance(refusal.to_exception(), OverloadedError)
            # The two admitted requests still complete once flushed.
            server.drain()
            answered = {(await transport.receive()).request_id
                        for _ in range(2)}
            assert answered == {1, 2}
            await transport.send(Goodbye())
            transport.close()
        finally:
            await gateway.close()
        assert gateway.stats()["window_rejections"] == 1

    asyncio.run(scenario())


def test_client_blocks_on_the_advertised_window():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON, batch_window=60.0)
        gateway = await ServingGateway(
            server, max_inflight_per_connection=2).start()
        try:
            host, port = gateway.address
            async with await ServingClient.connect(
                    host, port, tenant_id="t0") as client:
                assert client.max_inflight == 2
                first = await client.submit("dense", [_random_ct(TOY, 1)])
                second = await client.submit("dense", [_random_ct(TOY, 2)])
                third = asyncio.ensure_future(
                    client.submit("dense", [_random_ct(TOY, 3)]))
                await asyncio.sleep(0.05)
                assert not third.done()  # blocked on the window, not wired
                assert client.transport.frames_sent == 3  # HELLO + 2
                await _poll(lambda: server.queue_depth == 2)
                server.drain()
                await asyncio.gather(first, second)
                future3 = await third  # window slot freed, request sent
                await _poll(lambda: future3.done(), drain=server.drain)
                assert (await future3).ciphertexts
                assert client.stats()["served"] == 3
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_duplicate_request_id_is_a_protocol_error():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON, batch_window=60.0)
        gateway = await ServingGateway(server).start()
        try:
            transport, _ = await _raw_connect(gateway)
            payload = [serialize_ciphertext(_random_ct(TOY, 4))]
            await transport.send(Request(request_id=7, program="dense",
                                         payloads=payload))
            await transport.send(Request(request_id=7, program="dense",
                                         payloads=payload))
            refusal = await transport.receive()
            assert isinstance(refusal, Error)
            assert refusal.request_id == 7
            assert refusal.code == ProtocolError.code
            server.drain()
            answer = await transport.receive()
            assert isinstance(answer, Response) and answer.request_id == 7
            transport.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Drain, shutdown, and client liveness
# ---------------------------------------------------------------------------

def test_gateway_drain_resolves_every_inflight_wire_request():
    async def scenario():
        server, keys, tracer = _dense_server(TOY, PYTHON, batch_window=60.0)
        gateway = await ServingGateway(server).start()
        host, port = gateway.address
        cts = [_random_ct(TOY, 31 * i) for i in range(4)]
        client = await ServingClient.connect(host, port, tenant_id="t0")
        futures = [await client.submit("dense", [ct]) for ct in cts]
        # Nothing resolves on its own: the batch window is an hour.
        await asyncio.sleep(0.05)
        assert not any(f.done() for f in futures)
        await gateway.drain()
        results = await asyncio.gather(*futures)
        references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
        for result, reference in zip(results, references):
            assert _rows(result.ciphertexts[0]) == _rows(reference)
        # The GOODBYE reached the client: it is closed, nothing pending.
        await _poll(lambda: client.closed)
        assert client.inflight == 0
        with pytest.raises(ConnectionClosedError):
            await client.submit("dense", [cts[0]])
        await client.close()
        await gateway.close()
        assert gateway.open_connections == 0
        assert server.pending_count == 0 and server.queue_depth == 0

    asyncio.run(scenario())


def test_client_goodbye_closes_cleanly_and_fails_nothing():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON)
        gateway = await ServingGateway(server).start()
        host, port = gateway.address
        async with await ServingClient.connect(
                host, port, tenant_id="t0", client_name="brief") as client:
            response = await (await client.submit(
                "dense", [_random_ct(TOY, 5)]))
            assert response.ciphertexts
        assert client.closed and client.inflight == 0
        await _poll(lambda: gateway.open_connections == 0)
        stats = gateway.stats()
        assert stats["connections_opened"] == 1
        assert stats["connections_closed"] == 1
        # Closed-connection transport counters fold into the totals.
        assert stats["transport_totals"]["frames_received"] >= 3
        await gateway.close()

    asyncio.run(scenario())


def test_client_timeout_raises_and_orphans_the_late_reply():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON, batch_window=60.0)
        gateway = await ServingGateway(server).start()
        try:
            host, port = gateway.address
            async with await ServingClient.connect(
                    host, port, tenant_id="t0") as client:
                with pytest.raises(DeadlineExceededError):
                    await client.call("dense", [_random_ct(TOY, 6)],
                                      timeout=0.05, max_attempts=1)
                server.drain()  # the reply still arrives — late
                await _poll(lambda: client.stats()["orphaned"] == 1)
                assert client.inflight == 0
                assert client.stats()["timeouts"] == 1
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_connection_loss_fails_pending_futures():
    async def scenario():
        server, _, _ = _dense_server(TOY, PYTHON, batch_window=60.0)
        gateway = await ServingGateway(server).start()
        host, port = gateway.address
        client = await ServingClient.connect(host, port, tenant_id="t0")
        future = await client.submit("dense", [_random_ct(TOY, 8)])
        # Kill the server side abruptly: no GOODBYE, no drain.
        for conn in list(gateway._connections):
            conn.transport.close()
        with pytest.raises((ConnectionClosedError, ServeError)):
            await future
        assert client.inflight == 0
        await client.close()
        server.drain()
        await gateway.close()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Loopback chaos soak through the wire
# ---------------------------------------------------------------------------

def test_wire_chaos_soak_resolves_every_request_with_stable_codes():
    clock = ManualClock()
    schedule = FaultSchedule(
        [FaultSpec("limbs_eval_mac", "raise", start_call=40,
                   max_injections=4)], seed=9)
    chaos = FaultInjectingBackend(PYTHON, schedule)
    tenants = ["org-a", "org-b", "org-c/free", "org-d"]
    server, keys, tracer = _dense_server(
        TOY, chaos, tenants=tuple(tenants), clock=clock,
        admission=AdmissionController(
            tenant_limits={"org-c/free": (50.0, 4.0)}, clock=clock),
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1),
            failure_threshold=1, reset_timeout=0.5))

    reference_cache = {}

    def reference_rows(ct):
        key = _rows(ct)
        if key not in reference_cache:
            reference_cache[key] = _rows(_eager_outputs(
                TOY, keys, PYTHON, tracer, [ct])[0])
        return reference_cache[key]

    def verify(request, response):
        return _rows(response.ciphertexts[0]) == \
            reference_rows(request.ciphertexts[0])

    pool = [_random_ct(TOY, 1000 + i) for i in range(4)]
    wire_rejections = []

    async def soak():
        gateway = await ServingGateway(server).start()
        host, port = gateway.address
        clients = {tenant: await ServingClient.connect(
            host, port, tenant_id=tenant) for tenant in tenants}

        async def submit_over_wire(request):
            client = clients[request.tenant_id]
            try:
                return await (await client.submit(
                    request.program, request.ciphertexts,
                    deadline_seconds=request.deadline_seconds))
            except ServeError as exc:
                wire_rejections.append(exc)
                raise

        generator = LoadGenerator(
            server, tenants, ["dense"],
            lambda tenant, rng: rng.choice(pool),
            seed=3, requests_per_pass=26, verify_fn=verify,
            submit_async=submit_over_wire)
        for _ in range(15):
            await generator.run_pass_async()
            clock.advance(0.5)  # breakers half-open, buckets refill
        assert schedule.exhausted()
        clock.advance(0.5)
        for _ in range(5):  # recovery tail: breakers probe and close
            await generator.run_pass_async()
            clock.advance(0.5)
        for client in clients.values():
            await client.close()
        gw_stats = gateway.stats()
        await gateway.close()
        return generator, gw_stats

    generator, gw_stats = asyncio.run(soak())
    agg = chaos_soak_gate(generator, min_requests=500, min_tenants=3)
    assert agg["requests"] == 520
    assert agg["served"] + agg["rejected"] + agg["failed"] == 520
    assert agg["failed"] >= 1        # injected kernel faults bit someone
    assert agg["mismatched"] == 0    # every served response bit-exact
    assert agg["rejection_types"].get("RateLimitedError", 0) >= 1
    assert agg["gates"]["breaker_opened"] >= 1
    assert agg["gates"]["breaker_closed"] >= 1

    # Every wire-delivered rejection arrived typed, carrying the stable
    # code its class owns in the registry.
    assert wire_rejections
    registry = wire_code_registry()
    for exc in wire_rejections:
        assert registry[exc.code] is type(exc)

    # The gateway pushed every request through one transport layer.
    assert gw_stats["requests"] == 520
    assert gw_stats["responses"] == agg["served"]
    assert gw_stats["wire_errors"] == agg["rejected"] + agg["failed"]

    # Per-tenant accounting survived the trip.
    tenant_stats = server.stats()["tenants"]
    assert sum(t["submitted"] for t in tenant_stats.values()) == 520
    assert tenant_stats["org-c/free"]["rejected"] >= 1
