"""Functional packed bootstrapping + bootstrap cost-model suite.

* **Cost model** (no numpy): the ``BootstrapPlan.operations()`` contract
  holds both ways (padding when the pipeline under-consumes, ``ValueError``
  when it over-consumes — the silent ``end_level`` disagreement regression),
  sparse-diagonal ``LinearTransformPlan`` accounting, and the
  :class:`EvalModPlan` counting algebra.
* **Evaluator bugfix regressions** (no numpy): ``inner_sum`` merges its two
  per-iteration rotations into one hoist (counted via a shim),
  ``rotate_hoisted`` pays the per-key phase once for duplicate steps, and
  ``mod_down_to`` runs under the evaluator's pinned backend scope.
* **Functional bootstrap** (numpy for the DFT matrices + encoder): the
  radix-2 special-FFT factorization is numerically exact, a level-0
  ciphertext refreshes through trace -> plan -> execute and decrypts
  correctly on both backends, planned == eager bit-exact, the traced stage
  histograms reconcile with ``BootstrapPlan.stage_operations()`` stage by
  stage, and dead-code elimination + ``required_galois_elements`` drive a
  *minimal* key set that provably suffices (a frozen key set with exactly
  those keys bootstraps successfully).

The numpy-free half of this file runs on the no-numpy CI leg.
"""

import math

import pytest

from repro.fhe.backend import PythonBackend, available_backends, use_backend
from repro.fhe.ckks import evaluator as evaluator_module
from repro.fhe.ckks.bootstrap import (
    BootstrapPlan,
    EvalModPlan,
    HomomorphicOp,
    linear_transform_plan,
)
from repro.fhe.ckks.ciphertext import CKKSCiphertext
from repro.fhe.ckks.evaluator import CKKSEvaluator
from repro.fhe.ckks.keys import CKKSKeyGenerator, CKKSKeySet
from repro.fhe.params import CKKSParameters
from repro.fhe.polynomial import Polynomial
from repro.fhe.rns import RNSPolynomial

numpy_missing = "numpy" not in available_backends()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")

PYTHON = PythonBackend()

if not numpy_missing:
    from repro.fhe.backend import NumpyBackend

    PACKED = NumpyBackend(min_vector_length=0, min_ntt_length=0)
    BACKENDS = [PYTHON, PACKED]
else:  # pragma: no cover - exercised only on numpy-less installs
    PACKED = None
    BACKENDS = [PYTHON]


#: The bootstrappable functional parameter set: equal scale/modulus bits so
#: rescaling keeps the scale at Delta, enough levels for 2 + 8 + 2 stages.
BOOT_PARAMS = CKKSParameters(
    ring_degree=128, max_level=13, dnum=4, scale_bits=40, modulus_bits=40,
    special_modulus_bits=42, security_bits=0, name="ckks-boot-test",
)


def _random_poly(params, seed, level=None):
    import random

    degree = params.ring_degree
    basis = params.basis(params.max_level if level is None else level)
    rng = random.Random(seed ^ 0xB007)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _random_ct(params, seed, level=None):
    level = params.max_level if level is None else level
    return CKKSCiphertext(
        c0=_random_poly(params, seed, level),
        c1=_random_poly(params, seed + 1, level),
        level=level,
        scale=float(params.scale),
    )


def _rows(ct):
    c0 = ct.c0.to_coeff()
    c1 = ct.c1.to_coeff()
    return (
        tuple(map(tuple, c0.coefficient_rows())),
        tuple(map(tuple, c1.coefficient_rows())),
    )


# ---------------------------------------------------------------------------
# Cost model: the levels_consumed contract and the stage accountings
# ---------------------------------------------------------------------------

class TestBootstrapPlanContract:
    def test_default_plan_consumes_exactly_fifteen(self):
        """The paper's configuration: 3 + 9 + 3 levels, no padding needed."""
        plan = BootstrapPlan()
        stages = plan.stage_operations()
        assert [name for name, _ in stages] == [
            "c2s_0", "c2s_1", "c2s_2", "evalmod", "s2c_0", "s2c_1", "s2c_2",
        ]
        assert plan.end_level == 20

    def test_end_level_agrees_with_operations_for_valid_configs(self):
        """Walking the op stream's rescales lands exactly on end_level."""
        configs = [
            BootstrapPlan(),
            BootstrapPlan(ring_degree=4096, start_level=20, levels_consumed=15,
                          slots=2048),
            BootstrapPlan(ring_degree=256, start_level=18, levels_consumed=14,
                          c2s_stages=2, s2c_stages=2, sine_degree=15),
            BootstrapPlan(ring_degree=256, start_level=30, levels_consumed=20,
                          sine_degree=7, double_angle_iters=1),
        ]
        for plan in configs:
            ops = plan.operations()
            level = plan.start_level
            for op in ops:
                assert op.level <= level
                if op.name == "Rescale":
                    level = op.level - 1
            assert level == plan.end_level, plan

    def test_overconsuming_pipeline_raises(self):
        """Regression: declaring fewer levels than the schedule consumes must
        fail loudly instead of silently disagreeing with end_level."""
        plan = BootstrapPlan(start_level=20, levels_consumed=5)
        with pytest.raises(ValueError, match="consumes 15 levels"):
            plan.operations()
        with pytest.raises(ValueError, match="levels_consumed=5"):
            plan.stage_operations()

    def test_underconsuming_pipeline_pads(self):
        plan = BootstrapPlan(start_level=35, levels_consumed=20)
        stages = plan.stage_operations()
        assert stages[-1][0] == "pad"
        ops = plan.operations()
        rescales = sum(op.count for op in ops if op.name == "Rescale")
        level = plan.start_level
        for op in ops:
            if op.name == "Rescale":
                level = op.level - 1
        assert level == plan.end_level == 15
        assert rescales >= 5                     # the padding rescales

    def test_operation_levels_never_increase(self):
        plan = BootstrapPlan(ring_degree=4096, start_level=20,
                             levels_consumed=15, slots=2048)
        levels = [op.level for op in plan.operations()]
        assert levels == sorted(levels, reverse=True)


class TestSparseLinearTransformPlan:
    def test_dense_accounting_unchanged(self):
        dense = linear_transform_plan(slots=4096, level=30)
        assert dense.num_rotations == dense.baby_steps + dense.giant_steps - 2
        assert dense.num_plain_multiplies == dense.baby_steps * dense.giant_steps

    def test_sparse_charges_only_touched_steps(self):
        # n1 = 8 for 64 diagonals; actives {0, 16, 48} all have i = 0.
        plan = linear_transform_plan(slots=64, level=3,
                                     active_diagonals=(0, 16, 48))
        assert plan.baby_steps == 8
        assert plan.num_rotations == 2           # two giant blocks, no babies
        assert plan.num_plain_multiplies == 3
        assert plan.num_additions == 2
        mixed = linear_transform_plan(slots=64, level=3,
                                      active_diagonals=(1, 9, 17))
        assert mixed.num_rotations == 1 + 2      # baby 1 + giant blocks 1, 2

    def test_active_indices_validated(self):
        with pytest.raises(ValueError, match="active"):
            linear_transform_plan(slots=64, level=3, active_diagonals=())
        with pytest.raises(ValueError, match="lie in"):
            linear_transform_plan(slots=64, level=3, active_diagonals=(64,))


class TestEvalModPlan:
    def test_counts_are_deterministic_and_structured(self):
        plan = EvalModPlan(level=12, sine_degree=15, double_angle_iters=2)
        histogram = plan.operation_histogram()
        assert histogram["Conjugate"] == 1
        assert histogram["HMult"] > 0
        assert histogram["PMult"] > 0
        assert plan.levels_consumed == 8
        again = EvalModPlan(level=12, sine_degree=15, double_angle_iters=2)
        assert again.operation_histogram() == histogram

    def test_levels_scale_with_degree_and_iterations(self):
        base = EvalModPlan(level=20, sine_degree=15, double_angle_iters=1)
        deeper = EvalModPlan(level=20, sine_degree=31, double_angle_iters=3)
        assert deeper.levels_consumed > base.levels_consumed

    def test_operations_sorted_by_level(self):
        ops = EvalModPlan(level=12, sine_degree=15).operations()
        levels = [op.level for op in ops]
        assert levels == sorted(levels, reverse=True)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            EvalModPlan(level=12, sine_degree=2)
        with pytest.raises(ValueError):
            EvalModPlan(level=12, baby_steps=3)
        with pytest.raises(ValueError, match="out of levels"):
            EvalModPlan(level=3, sine_degree=31).operations()


# ---------------------------------------------------------------------------
# Evaluator bugfix regressions
# ---------------------------------------------------------------------------

def _toy_evaluator(seed=11):
    params = CKKSParameters.toy()
    keys = CKKSKeyGenerator(params, seed=seed, error_stddev=0.0).generate()
    return params, CKKSEvaluator(params, keys, backend=PYTHON)


class TestInnerSumHoistMerge:
    def _count_hoists(self, monkeypatch):
        calls = []
        original = evaluator_module.hoist_decompose

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(evaluator_module, "hoist_decompose", counting)
        return calls

    def test_merged_iterations_hoist_once(self, monkeypatch):
        """count = 7 needs rotations in 3 iterations; the old code paid 4
        hoists (combine + double separately in the middle iteration)."""
        params, evaluator = _toy_evaluator()
        calls = self._count_hoists(monkeypatch)
        with use_backend(PYTHON):
            ct = _random_ct(params, 21)
            evaluator.inner_sum(ct, 7)
        assert len(calls) == 3

    def test_results_match_unmerged_reference(self, monkeypatch):
        """Bit-exact against the pre-fix algorithm (two rotate_hoisted calls
        per doubling iteration) — the merged call shares the same hoisted
        digits, so the integers cannot change."""
        params, evaluator = _toy_evaluator()
        for count in (1, 2, 3, 5, 6, 7, 8, 12):
            with use_backend(PYTHON):
                ct = _random_ct(params, 100 + count)
                merged = evaluator.inner_sum(ct, count)
                # The pre-fix reference implementation.
                result = None
                processed = 0
                acc = ct
                bit = 1
                while bit <= count:
                    if count & bit:
                        if result is None:
                            result = acc
                        else:
                            result = evaluator.add(
                                result, evaluator.rotate_hoisted(acc, [processed])[0]
                            )
                        processed += bit
                    if (bit << 1) <= count:
                        acc = evaluator.add(
                            acc, evaluator.rotate_hoisted(acc, [bit])[0]
                        )
                    bit <<= 1
                assert _rows(merged) == _rows(result), count


class TestRotateHoistedDedupe:
    def test_duplicate_steps_pay_per_key_phase_once(self, monkeypatch):
        params, evaluator = _toy_evaluator()
        calls = []
        original = evaluator_module.keyswitch_hoisted

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(evaluator_module, "keyswitch_hoisted", counting)
        with use_backend(PYTHON):
            ct = _random_ct(params, 31)
            results = evaluator.rotate_hoisted(ct, [1, 3, 1, 3, 0])
        assert len(calls) == 2                    # unique non-identity steps
        assert _rows(results[0]) == _rows(results[2])
        assert _rows(results[1]) == _rows(results[3])
        assert _rows(results[4]) == _rows(ct)
        with use_backend(PYTHON):
            singles = evaluator.rotate_hoisted(ct, [1, 3])
        assert _rows(results[0]) == _rows(singles[0])
        assert _rows(results[1]) == _rows(singles[1])

    def test_steps_sharing_a_galois_element_deduplicate(self, monkeypatch):
        """steps and steps + n map to the same Galois element (5^n = 1 mod 2N)."""
        params, evaluator = _toy_evaluator()
        n = params.slots
        calls = []
        original = evaluator_module.keyswitch_hoisted

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(evaluator_module, "keyswitch_hoisted", counting)
        with use_backend(PYTHON):
            ct = _random_ct(params, 41)
            results = evaluator.rotate_hoisted(ct, [2, n + 2])
        assert len(calls) == 1
        assert _rows(results[0]) == _rows(results[1])


class TestModDownBackendScope:
    def test_mod_down_runs_under_pinned_backend(self):
        params, evaluator = _toy_evaluator()
        entered = []
        original = evaluator._arith

        def recording():
            entered.append(1)
            return original()

        evaluator._arith = recording
        with use_backend(PYTHON):
            ct = _random_ct(params, 51)
        result = evaluator.mod_down_to(ct, 1)
        assert entered, "mod_down_to bypassed the evaluator's backend scope"
        assert result.level == 1
        with use_backend(PYTHON):
            assert result.c0.coefficient_rows() == [
                row for row in ct.c0.coefficient_rows()[:2]
            ]


# ---------------------------------------------------------------------------
# The special-FFT factorization (numerical ground truth)
# ---------------------------------------------------------------------------

@needs_numpy
class TestDFTFactorization:
    @pytest.mark.parametrize("ring_degree", [16, 64, 256])
    def test_factor_product_is_bit_reversed_vandermonde(self, ring_degree):
        import numpy as np

        from repro.fhe.ckks.bootstrap_exec import _dft_factors, _invert_factor

        n = ring_degree // 2
        t = n.bit_length() - 1
        vandermonde = np.zeros((n, n), dtype=np.complex128)
        for j in range(n):
            g = pow(5, j, 2 * ring_degree)
            for k in range(n):
                vandermonde[j, k] = np.exp(
                    1j * math.pi * ((g * k) % (2 * ring_degree)) / ring_degree
                )
        reverse = [
            int(format(k, f"0{t}b")[::-1], 2) if t else 0 for k in range(n)
        ]
        factors = _dft_factors(ring_degree)
        assert len(factors) == t
        product = np.eye(n, dtype=np.complex128)
        for factor in factors:
            product = product @ factor
        assert np.allclose(product, vandermonde[:, reverse])
        for factor in factors:
            assert np.allclose(factor @ _invert_factor(factor), np.eye(n))

    def test_grouped_factors_stay_rotation_sparse(self):
        import numpy as np

        from repro.fhe.ckks.bootstrap_exec import (
            _dft_factors,
            _matrix_diagonals,
            _partition,
        )

        factors = _dft_factors(128)
        for stages in (2, 3):
            for lo, hi in _partition(len(factors), stages):
                group = np.eye(64, dtype=np.complex128)
                for factor in factors[lo:hi]:
                    group = group @ factor
                diagonals = _matrix_diagonals(group)
                # g merged radix-2 levels have at most 2^(g+1) - 1 diagonals.
                assert len(diagonals) <= 2 ** (hi - lo + 1) - 1


# ---------------------------------------------------------------------------
# Functional packed bootstrapping
# ---------------------------------------------------------------------------

@needs_numpy
class TestPackedBootstrap:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.fhe.ckks import CKKSContext, PackedBootstrap

        context = CKKSContext(BOOT_PARAMS, seed=7, error_stddev=0.0,
                              secret_hamming_weight=2)
        bootstrap = PackedBootstrap(
            context.encoder, c2s_stages=2, s2c_stages=2, sine_degree=15,
            double_angle_iters=2, integer_bound=3,
        )
        bootstrap.generate_keys(context.keys)
        return context, bootstrap

    def test_end_to_end_refresh(self, setup):
        """Encrypt -> exhaust the levels -> bootstrap -> decrypt correctly."""
        context, bootstrap = setup
        params = context.params
        evaluator = context.evaluator
        values = [0.04 * math.sin(1.0 + 3 * i) for i in range(params.slots)]
        ct = context.encrypt_vector(values, level=2)
        # Burn the remaining levels like a real workload would.
        halve = context.encoder.encode([0.5] * params.slots, level=2)
        ct = evaluator.rescale(evaluator.multiply_plain(ct, halve))
        ct = evaluator.mod_down_to(ct, 0)
        assert ct.level == 0
        refreshed = bootstrap.refresh(evaluator, ct)
        assert refreshed.level == bootstrap.end_level >= 1
        got = context.decrypt_vector(refreshed)
        expected = [0.5 * v for v in values]
        worst = max(abs(g - e) for g, e in zip(got, expected))
        assert worst < 1e-3, worst
        # The refreshed ciphertext is *usable*: one more multiply works.
        squared = evaluator.rescale(evaluator.multiply(refreshed, refreshed))
        got_sq = context.decrypt_vector(squared)
        worst_sq = max(abs(g - e * e) for g, e in zip(got_sq, expected))
        assert worst_sq < 1e-3, worst_sq

    def test_planned_matches_eager_on_both_backends(self, setup):
        context, bootstrap = setup
        params = context.params
        values = [0.03 * math.cos(0.3 * i) for i in range(params.slots)]
        ct = context.encrypt_vector(values, level=0)
        reference = None
        for backend in BACKENDS:
            evaluator = CKKSEvaluator(params, context.keys, backend=backend)
            planned = bootstrap.refresh(evaluator, ct)
            eager = bootstrap.refresh(evaluator, ct, eager=True)
            with use_backend(backend):
                rows = _rows(planned)
                assert rows == _rows(eager), backend.name
            assert planned.level == eager.level == bootstrap.end_level
            assert abs(planned.scale / eager.scale - 1) < 1e-9
            if reference is None:
                reference = rows
            else:
                assert rows == reference          # cross-backend bit-exact

    def test_stage_histograms_match_cost_model(self, setup):
        """The traced bootstrap's lowered histogram == BootstrapPlan's,
        stage by stage (the shared-structure reconciliation gate)."""
        context, bootstrap = setup
        plan = bootstrap.plan()
        assert plan.end_level == bootstrap.end_level
        traced = dict(bootstrap.stage_histograms())
        model = dict(plan.stage_histograms())
        assert set(traced) == set(model)          # no padding stage either
        for name in traced:
            assert traced[name] == model[name], name
        # Aggregate view agrees too.
        total = {}
        for histogram in traced.values():
            for key, value in histogram.items():
                total[key] = total.get(key, 0) + value
        assert total == plan.operation_histogram()

    def test_no_waterline_rescues_inserted(self, setup):
        """Scale bookkeeping is exact by construction: the planner never has
        to insert a rescue rescale (which would break the reconciliation)."""
        _, bootstrap = setup
        for name, planned in bootstrap.stage_programs():
            assert planned.stats["rescales_inserted"] == 0, name

    def test_dce_prunes_sparse_stage_rotations(self, setup):
        """The sparse FFT stage matrices leave most BSGS baby rotations
        unused; DCE removes them and the key requirement shrinks."""
        _, bootstrap = setup
        dead = {
            name: planned.stats["dead_nodes_removed"]
            for name, planned in bootstrap.stage_programs()
        }
        # The top-factor stage groups are the sparsest; at least one BSGS
        # stage must shed unused baby rotations (e.g. 7 of c2s_0's at n=64).
        assert max(dead.values()) > 0, dead
        # The planned key set is strictly smaller than the dense BSGS need.
        dense_need = set()
        for transform in bootstrap.c2s_transforms + bootstrap.s2c_transforms:
            baby, giant = transform.rotation_steps()
            for step in baby + giant:
                dense_need.add((step, transform.level))
        assert len(bootstrap.required_galois_elements()) < len(dense_need)

    def test_minimal_key_set_suffices(self, setup):
        """A frozen key set holding exactly required_galois_elements() (plus
        the relinearization keys the multiplies need) bootstraps fine —
        required_galois_elements is complete, not just small."""
        context, bootstrap = setup
        params = context.params
        keys = context.keys
        bootstrap.generate_keys(keys)
        for _, planned in bootstrap.stage_programs():
            for node in planned.program.nodes:
                if node.op == "multiply":
                    keys.relinearization_key(node.level)
        frozen = CKKSKeySet(
            params=params, secret=keys.secret, public=keys.public,
            _relin_keys=dict(keys._relin_keys),
            _galois_keys={
                pair: keys._galois_keys[pair]
                for pair in bootstrap.required_galois_elements()
            },
        )
        evaluator = CKKSEvaluator(params, frozen, backend=PYTHON)
        values = [0.02] * params.slots
        ct = context.encrypt_vector(values, level=0)
        refreshed = bootstrap.refresh(evaluator, ct)
        got = context.decrypt_vector(refreshed)
        assert max(abs(g - v) for g, v in zip(got, values)) < 1e-3

    def test_refresh_validates_input_level(self, setup):
        context, bootstrap = setup
        ct = context.encrypt_vector([0.01], level=1)
        with pytest.raises(ValueError, match="level-0"):
            bootstrap.refresh(context.evaluator, ct)

    def test_mod_raise_requires_level_zero(self, setup):
        from repro.fhe.ckks import mod_raise

        context, _ = setup
        ct = context.encrypt_vector([0.01], level=1)
        with pytest.raises(ValueError, match="level-0"):
            mod_raise(ct, context.params)

    def test_planner_stats_recorded_per_stage(self, setup):
        context, bootstrap = setup
        ct = context.encrypt_vector([0.01] * context.params.slots, level=0)
        bootstrap.refresh(context.evaluator, ct)
        assert set(bootstrap.last_stats) == {
            name for name, _ in bootstrap.stage_programs()
        }
        for name, stats in bootstrap.last_stats.items():
            if name != "evalmod":
                assert stats["rotations"] > 0, name
        # At least one stage matrix has in-block diagonals, whose baby
        # rotations share a fused hoist (top-factor stages may legitimately
        # be giant-only: their diagonals are all multiples of n1).
        assert any(
            stats["hoisted_rotations"] > 0
            for name, stats in bootstrap.last_stats.items()
            if name != "evalmod"
        )

    def test_trinity_estimate_positive(self, setup):
        _, bootstrap = setup
        report = bootstrap.trinity_cycle_estimate()
        assert report.latency_cycles > 0
