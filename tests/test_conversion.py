"""Integration tests for the CKKS <-> TFHE scheme conversion (Algorithms 3-5)."""

import pytest

from repro.fhe.ckks import CKKSContext
from repro.fhe.conversion import (
    ckks_to_lwe_ciphertexts,
    lwe_to_rlwe_embedding,
    pack_lwes,
    repack_lwe_ciphertexts,
    sample_extract_rlwe,
)
from repro.fhe.params import CKKSParameters
from repro.fhe.tfhe.lwe import LWECiphertext, LWESecretKey, LWEContext
from repro.fhe.params import TFHEParameters


@pytest.fixture(scope="module")
def ckks_context():
    # Single-level context: conversion operates on level-0 (single-limb) data.
    params = CKKSParameters(
        ring_degree=64, max_level=1, dnum=1, scale_bits=12, modulus_bits=30,
        special_modulus_bits=32, security_bits=0, name="ckks-conversion-test",
    )
    return CKKSContext(params, seed=11, error_stddev=0.0)


def lwe_phase(lwe: LWECiphertext, secret_coefficients) -> int:
    q = lwe.modulus
    inner = sum(a * s for a, s in zip(lwe.a, secret_coefficients)) % q
    value = (lwe.b - inner) % q
    return value - q if value > q // 2 else value


class TestCKKSToTFHE:
    def test_sample_extract_recovers_coefficient(self, ckks_context):
        params = ckks_context.params
        coefficients = [100 * (i + 1) for i in range(8)]
        plaintext = ckks_context.encoder.encode_coefficients(coefficients, level=0)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        secret = ckks_context.keys.secret.coefficients
        for index in range(8):
            lwe = sample_extract_rlwe(ciphertext, index)
            assert lwe_phase(lwe, secret) == coefficients[index]

    def test_extract_requires_level_zero(self, ckks_context):
        plaintext = ckks_context.encoder.encode_coefficients([1], level=1)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        with pytest.raises(ValueError):
            sample_extract_rlwe(ciphertext, 0)

    def test_algorithm3_extracts_strided_slots(self, ckks_context):
        params = ckks_context.params
        n = params.ring_degree
        nslot = 4
        stride = n // nslot
        coefficients = [0] * n
        for j in range(nslot):
            coefficients[j * stride] = 500 + j
        plaintext = ckks_context.encoder.encode_coefficients(coefficients, level=0)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        lwes = ckks_to_lwe_ciphertexts(ciphertext, nslot)
        secret = ckks_context.keys.secret.coefficients
        for j, lwe in enumerate(lwes):
            assert lwe_phase(lwe, secret) == 500 + j

    def test_extracted_lwe_feeds_tfhe_linear_ops(self, ckks_context):
        """Extracted LWE ciphertexts support TFHE-style additive homomorphism."""
        coefficients = [300, 150] + [0] * 62
        plaintext = ckks_context.encoder.encode_coefficients(coefficients, level=0)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        lwe0 = sample_extract_rlwe(ciphertext, 0)
        lwe1 = sample_extract_rlwe(ciphertext, 1)
        secret = ckks_context.keys.secret.coefficients
        assert lwe_phase(lwe0 + lwe1, secret) == 450
        assert lwe_phase(lwe0 - lwe1, secret) == 150


class TestTFHEToCKKS:
    def test_ring_embedding_preserves_constant_coefficient(self, ckks_context):
        coefficients = [1234] + [0] * 63
        plaintext = ckks_context.encoder.encode_coefficients(coefficients, level=0)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        lwe = sample_extract_rlwe(ciphertext, 0)
        embedded = lwe_to_rlwe_embedding(lwe, ckks_context.evaluator)
        decrypted = ckks_context.decrypt(embedded)
        constant = decrypted.poly.to_polynomial().centered_coefficients()[0]
        assert constant == 1234

    def test_pack_two_lwes(self, ckks_context):
        # Messages are scaled up so the (absolute) keyswitch noise of the
        # packing automorphisms stays small relative to them.
        params = ckks_context.params
        n = params.ring_degree
        scale = params.scale
        messages = [700 * scale, -300 * scale]
        coefficients = [messages[0], messages[1]] + [0] * (n - 2)
        plaintext = ckks_context.encoder.encode_coefficients(coefficients, level=0)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        lwes = [sample_extract_rlwe(ciphertext, i) for i in range(2)]
        packed = repack_lwe_ciphertexts(lwes, ckks_context.evaluator)
        decrypted = ckks_context.decrypt(packed).poly.to_polynomial().centered_coefficients()
        stride = n // 2
        noise_budget = scale // 2
        assert abs(decrypted[0] - messages[0]) <= noise_budget
        assert abs(decrypted[stride] - messages[1]) <= noise_budget

    @pytest.mark.parametrize("nslot", [4, 8])
    def test_full_repacking_round_trip(self, ckks_context, nslot):
        """CKKS -> LWE extraction -> repacking -> CKKS recovers the messages."""
        params = ckks_context.params
        n = params.ring_degree
        scale = params.scale
        messages = [100 * scale * (j + 1) * (-1) ** j for j in range(nslot)]
        coefficients = [0] * n
        for j, message in enumerate(messages):
            coefficients[j] = message
        plaintext = ckks_context.encoder.encode_coefficients(coefficients, level=0)
        ciphertext = ckks_context.encrypt_symmetric(plaintext)
        lwes = [sample_extract_rlwe(ciphertext, j) for j in range(nslot)]
        packed = repack_lwe_ciphertexts(lwes, ckks_context.evaluator)
        decrypted = ckks_context.decrypt(packed).poly.to_polynomial().centered_coefficients()
        stride = n // nslot
        noise_budget = scale // 2
        for j, message in enumerate(messages):
            assert abs(decrypted[j * stride] - message) <= noise_budget, (
                f"slot {j}: got {decrypted[j * stride]}, want {message}"
            )

    def test_pack_rejects_non_power_of_two(self, ckks_context):
        lwe = LWECiphertext(a=[0] * 64, b=0, modulus=ckks_context.params.basis(0).moduli[0])
        embedded = lwe_to_rlwe_embedding(lwe, ckks_context.evaluator)
        with pytest.raises(ValueError):
            pack_lwes([embedded] * 3, ckks_context.evaluator)

    def test_pack_rejects_empty_list(self, ckks_context):
        with pytest.raises(ValueError):
            pack_lwes([], ckks_context.evaluator)

    def test_embedding_dimension_mismatch_raises(self, ckks_context):
        lwe = LWECiphertext(a=[0] * 10, b=0, modulus=ckks_context.params.basis(0).moduli[0])
        with pytest.raises(ValueError):
            lwe_to_rlwe_embedding(lwe, ckks_context.evaluator)
