"""Shared test configuration: a hang guard for the whole suite.

The resilience/chaos tests are built around injectable clocks and sleeps so
they never wait on wall time — but a regression there (a future that never
resolves, a retry loop that really sleeps) would show up as a *hang*, which
is the worst possible CI failure mode.  ``REPRO_TEST_TIMEOUT`` (seconds)
arms a SIGALRM-based per-test timeout: any single test exceeding it fails
with a clear message instead of wedging the job.  Unset or ``0`` disables
the guard (the local default); CI sets it on every leg.  This is the
stdlib-only equivalent of pytest-timeout, which is not a dependency of
this repo.
"""

import os
import signal

import pytest

_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or "0")
_HAS_ALARM = hasattr(signal, "SIGALRM")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _TIMEOUT <= 0 or not _HAS_ALARM:
        yield
        return

    def _abort(signum, frame):
        pytest.fail(
            f"{item.nodeid} exceeded REPRO_TEST_TIMEOUT={_TIMEOUT:g}s "
            f"(likely a hung future or a real sleep in a resilience path)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.setitimer(signal.ITIMER_REAL, _TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
