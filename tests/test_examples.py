"""Smoke tests: every example script runs to completion and prints sane output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=900, check=True,
    )
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "CKKS (arithmetic FHE)" in output
        assert "TFHE (logic FHE)" in output
        assert "Trinity hardware model" in output
        assert "PBS/s" in output

    def test_hybrid_database_query(self):
        output = run_example("hybrid_database_query.py")
        assert "SUM(price)" in output
        assert "planned vs eager: bit-exact [ok]" in output
        assert "SUM(price) WHERE price <= 200: 195 (expected 195) [ok]" \
            in output
        assert "grand total: 1445" in output
        assert "batched PBS dispatch of 4 bootstraps" in output
        assert "co-scheduling gain" in output
        assert "SchemeMismatchError (stable code 31" in output
        assert "HE3DB-4096" in output and "HE3DB-16384" in output
        assert "MISMATCH" not in output

    def test_encrypted_inference(self):
        output = run_example("encrypted_inference.py")
        assert "encrypted prediction" in output
        assert "traced HEProgram" in output
        assert "hoist groups" in output
        assert "stacked MAC groups" in output
        assert "Trinity estimate:" in output
        assert "ResNet-20" in output
        assert "NN-100" in output

    def test_bootstrap_demo(self):
        output = run_example("bootstrap_demo.py")
        assert "Functional packed bootstrapping" in output
        assert "refreshed:" in output and "max slot error" in output
        assert "[ok]" in output and "MISMATCH" not in output
        assert "Trinity estimate:" in output

    def test_serving_demo(self):
        output = run_example("serving_demo.py")
        assert "multi-tenant encrypted-inference serving" in output
        assert "p99" in output
        assert "batching efficiency" in output
        assert "rejected with MissingKeyError" in output
        assert "rate limited (retry after" in output
        assert "circuit breaker OPEN: request shed" in output
        assert "breaker closed again" in output
        assert "serialization round-trip: ok" in output
        assert "network gateway: loopback client session" in output
        assert "bit-exact vs in-process: ok" in output
        assert "typed wire rejection: UnknownProgramError (stable code 22)" \
            in output
        assert "gateway drained clean" in output
        assert "0 connections left open" in output
        assert "[ok]" in output and "MISMATCH" not in output

    def test_design_space_exploration(self):
        output = run_example("design_space_exploration.py")
        assert "Cluster count" in output
        assert "Configurable-unit inventory" in output
