"""Parity suite for packed limb-major RNS execution.

The packed path (one ``(L, N)`` backend matrix per RNS polynomial, one
batched kernel dispatch per RNS operation) must be bit-exact against the
per-limb golden reference — the pure-python backend looping the original
scalar kernels — for every prime/degree combination the parameter sets in
:mod:`repro.fhe.params` produce.  Three dispatch shapes are compared:

* ``python``          — per-limb loops over exact big-int kernels (golden),
* ``numpy-per-limb``  — per-limb loops over vectorized kernels (the PR-1
                        shape, via :class:`PerLimbNumpyBackend`),
* ``numpy``           — fully packed single-dispatch kernels, with the
                        crossover thresholds at 0 so the vectorized paths
                        run even at tiny ring degrees.

Covered: rescale, exact and fast basis conversion, ModDown, the full hybrid
keyswitch (twice — the second call exercises the evaluation-domain key
cache), element-wise arithmetic, limb-stack convolution (including the
direct single-word path on <= 32-bit TFHE-style moduli), automorphisms and
monomial rotations, gadget decomposition, and cross-backend store interop.
"""

import random

import pytest

from repro.fhe import modmath
from repro.fhe.backend import (
    PerLimbNumpyBackend,
    PythonBackend,
    available_backends,
    use_backend,
)
from repro.fhe.ckks.keys import CKKSKeyGenerator
from repro.fhe.ckks.keyswitch import hybrid_keyswitch, mod_down
from repro.fhe.params import CKKSParameters, TFHEParameters
from repro.fhe.polynomial import Polynomial, automorphism_spec, monomial_spec
from repro.fhe.rns import (
    RNSBasis,
    RNSPolynomial,
    _bconv_plan,
    _limb_contexts,
    exact_basis_conversion,
    fast_basis_conversion,
)

numpy_missing = "numpy" not in available_backends()

PYTHON = PythonBackend()

if not numpy_missing:
    from repro.fhe.backend import NumpyBackend

    #: Thresholds at 0: force the vectorized paths at every size.
    PACKED = NumpyBackend(min_vector_length=0, min_ntt_length=0)
    PER_LIMB = PerLimbNumpyBackend(min_vector_length=0, min_ntt_length=0)
    #: The narrow (uint32-at-rest) storage mode for word-size moduli.
    PACKED_U32 = NumpyBackend(min_vector_length=0, min_ntt_length=0,
                              store_uint32=True)
    FAST_BACKENDS = [PACKED, PER_LIMB]
else:  # pragma: no cover - exercised only on numpy-less installs
    PACKED = PER_LIMB = PACKED_U32 = None
    FAST_BACKENDS = []

needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")


def _bases():
    """Every multi-limb basis the functional parameter sets give rise to."""
    cases = []
    for params in (CKKSParameters.toy(), CKKSParameters.small(ring_degree=256)):
        cases.append((params.ring_degree, params.basis()))
        cases.append((params.ring_degree, params.extended_basis()))
    # TFHE-style word-size primes: exercises the direct single-word (u32)
    # packed kernels with a multi-limb stack.
    for degree in (TFHEParameters.toy().polynomial_size,
                   TFHEParameters.small().polynomial_size):
        moduli = [modmath.find_ntt_prime(30 + i, degree, index=i) for i in range(3)]
        cases.append((degree, RNSBasis(moduli)))
    return cases


BASES = _bases()
BASIS_IDS = [f"N{n}-L{len(b)}-{max(b.moduli).bit_length()}bit" for n, b in BASES]


def _random_poly(degree, basis, seed):
    rng = random.Random(seed ^ 0xBA5E)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _rows(poly):
    return poly.coefficient_rows()


@needs_numpy
@pytest.mark.parametrize("degree,basis", BASES, ids=BASIS_IDS)
class TestPackedParity:
    """Packed numpy vs per-limb python golden, bit-exact, per basis."""

    def _golden_and_packed(self, operation, *polys):
        with use_backend(PYTHON):
            expected = operation(*polys)
        with use_backend(PACKED):
            actual = operation(*polys)
        return expected, actual

    def test_arithmetic(self, degree, basis):
        a = _random_poly(degree, basis, 1)
        b = _random_poly(degree, basis, 2)
        for op in (
            lambda x, y: x + y,
            lambda x, y: x - y,
            lambda x, y: -x,
            lambda x, y: x * 12345,
        ):
            expected, actual = self._golden_and_packed(op, a, b)
            assert _rows(actual) == _rows(expected)

    def test_limb_convolution(self, degree, basis):
        a = _random_poly(degree, basis, 3)
        b = _random_poly(degree, basis, 4)
        expected, actual = self._golden_and_packed(lambda x, y: x * y, a, b)
        assert _rows(actual) == _rows(expected)

    def test_rescale(self, degree, basis):
        poly = _random_poly(degree, basis, 5)
        expected, actual = self._golden_and_packed(lambda p: p.rescale(), poly)
        assert _rows(actual) == _rows(expected)

    def test_fast_basis_conversion(self, degree, basis):
        poly = _random_poly(degree, basis, 6)
        target = RNSBasis(
            [modmath.find_ntt_prime(44, degree, index=50 + i) for i in range(3)]
        )
        expected, actual = self._golden_and_packed(
            lambda p: fast_basis_conversion(p, target), poly
        )
        assert _rows(actual) == _rows(expected)

    def test_exact_basis_conversion(self, degree, basis):
        poly = _random_poly(degree, basis, 7)
        target = RNSBasis(
            [modmath.find_ntt_prime(44, degree, index=60 + i) for i in range(2)]
        )
        expected, actual = self._golden_and_packed(
            lambda p: exact_basis_conversion(p, target), poly
        )
        assert _rows(actual) == _rows(expected)

    def test_automorphism_and_monomial(self, degree, basis):
        poly = _random_poly(degree, basis, 8)
        for op in (
            lambda p: p.automorphism(5),
            lambda p: p.automorphism(2 * degree - 1),
            lambda p: p.multiply_by_monomial(3),
            lambda p: p.multiply_by_monomial(-7),
        ):
            expected, actual = self._golden_and_packed(op, poly)
            assert _rows(actual) == _rows(expected)

    def test_batched_ntt_roundtrip(self, degree, basis):
        contexts = _limb_contexts(degree, basis)
        poly = _random_poly(degree, basis, 9)
        with use_backend(PACKED):
            store = poly.store()
            fwd = PACKED.batched_ntt(contexts, store)
            back = PACKED.batched_intt(contexts, fwd)
        expected_fwd = [
            PYTHON.ntt_forward(ctx, row)
            for ctx, row in zip(contexts, poly.coefficient_rows())
        ]
        assert PACKED.store_rows(fwd) == expected_fwd
        assert PACKED.store_rows(back) == poly.coefficient_rows()

    def test_eval_key_mac(self, degree, basis):
        contexts = _limb_contexts(degree, basis)
        x = _random_poly(degree, basis, 10)
        k0 = _random_poly(degree, basis, 11)
        k1 = _random_poly(degree, basis, 12)
        with use_backend(PYTHON):
            expected = [_rows(x * k0), _rows(x * k1)]
        with use_backend(PACKED):
            handles = [
                PACKED.limbs_eval_key(contexts, k0.store()),
                PACKED.limbs_eval_key(contexts, k1.store()),
            ]
            results = PACKED.limbs_mac_eval(contexts, x.store(), handles)
        assert [PACKED.store_rows(r) for r in results] == expected

    def test_store_interop(self, degree, basis):
        poly = _random_poly(degree, basis, 13)
        rows = poly.coefficient_rows()
        # Pack under numpy, consume under python (and vice versa).
        with use_backend(PACKED):
            packed_poly = RNSPolynomial._from_store(
                degree, basis, PACKED.pack_limbs(rows, tuple(basis.moduli))
            )
        with use_backend(PYTHON):
            total = packed_poly + poly
            assert _rows(total) == _rows(poly + poly)
        with use_backend(PACKED):
            assert packed_poly.limbs == poly.limbs
        assert packed_poly.keep_limbs(1).coefficient_rows() == [rows[0]]
        assert packed_poly.limb_slice(0, 2).coefficient_rows() == rows[:2]


@needs_numpy
class TestPerLimbShapeParity:
    """The PR-1 dispatch shape (PerLimbNumpyBackend) also matches golden."""

    @pytest.mark.parametrize("degree,basis", BASES[:3], ids=BASIS_IDS[:3])
    def test_rescale_and_bconv(self, degree, basis):
        poly = _random_poly(degree, basis, 14)
        target = RNSBasis(
            [modmath.find_ntt_prime(44, degree, index=70 + i) for i in range(2)]
        )
        with use_backend(PYTHON):
            expected = (_rows(poly.rescale()),
                        _rows(fast_basis_conversion(poly, target)))
        with use_backend(PER_LIMB):
            actual = (_rows(poly.rescale()),
                      _rows(fast_basis_conversion(poly, target)))
        assert actual == expected


@needs_numpy
class TestKeyswitchParity:
    """End-to-end hybrid keyswitch: identical on every dispatch shape."""

    @pytest.fixture(scope="class")
    def fixture(self):
        params = CKKSParameters.toy(ring_degree=64, max_level=3, dnum=2)
        keygen = CKKSKeyGenerator(params, seed=3, error_stddev=0.0)
        keys = keygen.generate()
        level = params.max_level
        relin = keygen.make_relinearization_key(keys, level)
        d = _random_poly(params.ring_degree, params.basis(level), 15)
        return params, relin, d, level

    def _run(self, fixture, backend):
        params, relin, d, level = fixture
        c0, c1 = hybrid_keyswitch(d, relin, params, level, backend=backend)
        return _rows(c0), _rows(c1)

    def test_all_backends_agree(self, fixture):
        expected = self._run(fixture, PYTHON)
        assert self._run(fixture, PACKED) == expected
        assert self._run(fixture, PER_LIMB) == expected
        # Second packed call exercises the evaluation-domain key cache.
        assert self._run(fixture, PACKED) == expected

    def test_mod_down_parity(self, fixture):
        params, _relin, _d, level = fixture
        poly = _random_poly(
            params.ring_degree, params.extended_basis(level), 16
        )
        with use_backend(PYTHON):
            expected = _rows(mod_down(poly, params, level))
        with use_backend(PACKED):
            actual = _rows(mod_down(poly, params, level))
        assert actual == expected


@needs_numpy
class TestGadgetDecomposeParity:
    @pytest.mark.parametrize("bits", [20, 32, 40, 62])
    def test_matches_reference(self, bits):
        degree = 64
        q = modmath.find_ntt_prime(bits, degree)
        rng = random.Random(bits)
        # Include boundary values around the centring threshold.
        coeffs = [rng.randrange(q) for _ in range(degree - 4)]
        coeffs += [0, q - 1, q // 2, q // 2 + 1]
        factors = [q // (8 ** (j + 1)) for j in range(5)]
        expected = PYTHON.gadget_decompose(coeffs, q, factors)
        assert PACKED.gadget_decompose(coeffs, q, factors) == expected

    @pytest.mark.parametrize("bits", [32, 62])
    def test_matches_centered_reference(self, bits):
        """Digit extraction must centre with the exact integer threshold of
        modmath.centered — the float-rounded q/2 diverges above 2^53."""
        q = modmath.find_ntt_prime(bits, 64)
        coeffs = [0, 1, q - 1, q // 2, q // 2 + 1, q // 2 + 2]
        factors = [q // (16 ** (j + 1)) for j in range(3)]
        expected = []
        for _ in factors:
            expected.append([0] * len(coeffs))
        for idx, c in enumerate(coeffs):
            residual = modmath.centered(c, q)
            for level, factor in enumerate(factors):
                digit = 0 if factor == 0 else (2 * residual + factor) // (2 * factor)
                residual -= digit * factor
                expected[level][idx] = digit % q
        assert PYTHON.gadget_decompose(coeffs, q, factors) == expected
        assert PACKED.gadget_decompose(coeffs, q, factors) == expected

    def test_polynomial_decompose_both_backends(self):
        q = modmath.find_ntt_prime(32, 128)
        rng = random.Random(99)
        poly = Polynomial(128, q, [rng.randrange(q) for _ in range(128)])
        with use_backend(PYTHON):
            expected = poly.decompose(1 << 7, 3)
        with use_backend(PACKED):
            actual = poly.decompose(1 << 7, 3)
        assert actual == expected


@needs_numpy
class TestU32StorageMode:
    """The uint32 storage mode: half-width stores, bit-exact arithmetic.

    With ``store_uint32=True`` every limb store whose moduli all fit 32 bits
    (and the cached eval-domain key transforms on the direct single-word
    path) is held as uint32 — kernels upcast on load and downcast on store,
    so results must stay identical to the python golden reference, and wide
    (> 32-bit) bases must keep their uint64 stores untouched.
    """

    def _u32_bases(self):
        return [
            (degree, basis) for degree, basis in BASES
            if max(basis.moduli).bit_length() <= 32
        ]

    def test_u32_bases_exist(self):
        assert self._u32_bases(), "params must include word-size chains"

    def test_store_dtype(self):
        import numpy as np

        for degree, basis in self._u32_bases():
            poly = _random_poly(degree, basis, 40)
            with use_backend(PACKED_U32):
                store = poly.store()
                assert store.dtype == np.uint32
                total = poly + poly
                assert total.store().dtype == np.uint32
                assert (poly * poly).store().dtype == np.uint32
        # Wide moduli stay uint64.
        degree, basis = BASES[0]
        assert max(basis.moduli).bit_length() > 32
        with use_backend(PACKED_U32):
            assert _random_poly(degree, basis, 41).store().dtype == np.uint64

    def test_arithmetic_parity(self):
        for degree, basis in self._u32_bases():
            a = _random_poly(degree, basis, 42)
            b = _random_poly(degree, basis, 43)
            for op in (
                lambda x, y: x + y,
                lambda x, y: x - y,
                lambda x, y: -x,
                lambda x, y: x * 9876,
                lambda x, y: x * y,
                lambda x, y: x.rescale(),
                lambda x, y: x.automorphism(5),
                lambda x, y: x.multiply_by_monomial(3),
                lambda x, y: x.to_eval().to_coeff(),
            ):
                with use_backend(PYTHON):
                    expected = _rows(op(a, b))
                with use_backend(PACKED_U32):
                    actual = _rows(op(a, b))
                assert actual == expected

    def test_bconv_parity(self):
        for degree, basis in self._u32_bases():
            poly = _random_poly(degree, basis, 44)
            target = RNSBasis(
                [modmath.find_ntt_prime(30, degree, index=80 + i) for i in range(2)]
            )
            with use_backend(PYTHON):
                expected = _rows(fast_basis_conversion(poly, target))
            with use_backend(PACKED_U32):
                actual = _rows(fast_basis_conversion(poly, target))
            assert actual == expected

    def test_keyswitch_parity_word_size_params(self):
        import numpy as np

        params = CKKSParameters(
            ring_degree=64, max_level=3, dnum=2, scale_bits=24, modulus_bits=28,
            special_modulus_bits=30, security_bits=0, name="ckks-u32-store",
        )
        keygen = CKKSKeyGenerator(params, seed=13, error_stddev=0.0)
        keys = keygen.generate()
        level = params.max_level
        relin = keygen.make_relinearization_key(keys, level)
        d = _random_poly(params.ring_degree, params.basis(level), 45)
        with use_backend(PYTHON):
            expected = [_rows(part) for part in
                        hybrid_keyswitch(d, relin, params, level)]
        with use_backend(PACKED_U32):
            actual = [_rows(part) for part in
                      hybrid_keyswitch(d, relin, params, level)]
            # The cached eval-domain key transforms ride the narrow dtype.
            handles = relin._eval_cache[PACKED_U32.name]
            assert all(h[1].dtype == np.uint32 for pair in handles for h in pair)
        assert actual == expected

    def test_store_interop_with_wide_backend(self):
        """uint32 stores are consumed transparently by the default backend."""
        degree, basis = self._u32_bases()[0]
        poly = _random_poly(degree, basis, 46)
        with use_backend(PACKED_U32):
            narrow = RNSPolynomial._from_store(
                degree, basis, PACKED_U32.pack_limbs(
                    poly.coefficient_rows(), tuple(basis.moduli)
                )
            )
        with use_backend(PACKED):
            total = narrow + poly
            assert _rows(total) == _rows(poly + poly)
        with use_backend(PYTHON):
            total = narrow + poly
            assert _rows(total) == _rows(poly + poly)


class TestBasisHashingAndPlans:
    """RNSBasis is hashable and BConv plans are cached per basis pair."""

    def test_hash_consistent_with_eq(self):
        a = RNSBasis([5, 7, 9])
        b = RNSBasis([5, 7, 9])
        c = RNSBasis([5, 7, 11])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_bconv_plan_cached_per_pair(self):
        degree = 16
        source = RNSBasis([modmath.find_ntt_prime(24, degree, index=i) for i in range(2)])
        target = RNSBasis([modmath.find_ntt_prime(30, degree, index=5)])
        plan_a = _bconv_plan(source, target)
        plan_b = _bconv_plan(
            RNSBasis(list(source.moduli)), RNSBasis(list(target.moduli))
        )
        assert plan_a is plan_b
        assert plan_a.weights == tuple(
            tuple(comp % p for comp in source._crt_complements)
            for p in target.moduli
        )

    def test_python_packed_semantics(self):
        """The packed entry points work (as per-limb loops) without numpy."""
        degree = 16
        basis = RNSBasis([modmath.find_ntt_prime(24, degree, index=i) for i in range(3)])
        poly = _random_poly(degree, basis, 17)
        with use_backend(PYTHON):
            total = poly + poly
            assert _rows(total) == [
                [(2 * c) % q for c in row]
                for row, q in zip(poly.coefficient_rows(), basis.moduli)
            ]
            assert _rows(poly.rescale()) is not None
            assert poly.store() == poly.coefficient_rows()
