"""Differential and pass-level suite for the ``repro.fhe.program`` API.

* **Differential**: every traced program executes bit-exact against the
  eager evaluator call sequence (``ProgramExecutor.run`` vs ``run_eager``),
  on both backends, cross-backend, across every params.py prime/degree
  combination including the <= 32-bit single-word fast path and the
  ``REPRO_U32_STORE=1`` narrow-storage mode.
* **Pass-level**: hoist-fusion groups, inserted conversion counts, the
  rescale/mod_down waterline, pmult_mac batching (including the mixed-tree
  BSGS shape), and the lowered ``HomomorphicOp`` histogram cross-checked
  against ``bootstrap.linear_transform_plan``'s accounting.
* **Kernels**: the new stacked backend entry points
  (``stacked_intt``/``stacked_ntt``/``stacked_gather``/``stacked_pmult_mac``)
  are bit-exact against their per-store loops and across backends.
* **Fix regression**: ``rotate_hoisted`` validates rotation keys *before*
  hoisting and raises the same ``KeyError`` shape as ``rotate``.

The raw-polynomial tests run on the pure-python backend alone, so this file
is part of the no-numpy CI leg; encoder-based semantic tests skip without
numpy.
"""

import random

import pytest

from repro.fhe.backend import PythonBackend, available_backends, use_backend
from repro.fhe.ckks.bootstrap import linear_transform_plan
from repro.fhe.ckks.ciphertext import CKKSCiphertext, CKKSPlaintext
from repro.fhe.ckks.evaluator import CKKSEvaluator
from repro.fhe.ckks.keys import CKKSKeyGenerator, CKKSKeySet
from repro.fhe.conversion.bridge import SchemeBridge
from repro.fhe.params import CKKSParameters, TFHEParameters
from repro.fhe.polynomial import Polynomial, galois_eval_spec, sample_uniform
from repro.fhe.program import (
    HETrace,
    ProgramExecutor,
    SCHEME_SWITCH_OPS,
    TFHE_OPS,
    conversion_counts,
    hybrid_cycle_estimate,
    hybrid_kernel_histogram,
    lower_hybrid_to_workloads,
    lower_to_operations,
    operation_histogram,
    plan_program,
)
from repro.fhe.rns import RNSPolynomial, _limb_contexts
from repro.fhe.tfhe import TFHEContext
from repro.workloads.hybrid_workloads import (
    hybrid_query_parameters,
    hybrid_query_workloads,
)

numpy_missing = "numpy" not in available_backends()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")

PYTHON = PythonBackend()

if not numpy_missing:
    from repro.fhe.backend import NumpyBackend

    #: Thresholds at 0: force the vectorized paths at every ring size.
    PACKED = NumpyBackend(min_vector_length=0, min_ntt_length=0)
    #: The REPRO_U32_STORE=1 narrow-storage mode.
    PACKED_U32 = NumpyBackend(min_vector_length=0, min_ntt_length=0,
                              store_uint32=True)
    BACKENDS = [PYTHON, PACKED, PACKED_U32]
else:  # pragma: no cover - exercised only on numpy-less installs
    PACKED = PACKED_U32 = None
    BACKENDS = [PYTHON]

BACKEND_IDS = [b.name if i < 2 else "numpy-u32" for i, b in enumerate(BACKENDS)]

#: Every params.py shape family, including a word-size (<= 32-bit) chain that
#: exercises the direct single-word kernels end to end.
PARAM_SETS = [
    CKKSParameters.toy(),
    CKKSParameters.toy(ring_degree=128, max_level=4, dnum=2),
    CKKSParameters.small(ring_degree=256),
    CKKSParameters(
        ring_degree=64, max_level=3, dnum=2, scale_bits=24, modulus_bits=28,
        special_modulus_bits=30, security_bits=0, name="ckks-u32",
    ),
]
PARAM_IDS = [
    f"{p.name}-N{p.ring_degree}-L{p.max_level}-{p.modulus_bits}bit"
    for p in PARAM_SETS
]


def _random_poly(params, seed, level=None):
    degree = params.ring_degree
    basis = params.basis(params.max_level if level is None else level)
    rng = random.Random(seed ^ 0x9E0681)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _random_ct(params, seed, level=None, scale=None):
    level = params.max_level if level is None else level
    return CKKSCiphertext(
        c0=_random_poly(params, seed, level),
        c1=_random_poly(params, seed + 1, level),
        level=level,
        scale=float(params.scale) if scale is None else float(scale),
    )


def _random_pt(params, seed, level=None, scale=None):
    level = params.max_level if level is None else level
    return CKKSPlaintext(
        poly=_random_poly(params, seed, level),
        level=level,
        scale=float(params.scale) if scale is None else float(scale),
    )


def _rows(ct):
    """Coefficient rows of both components (domain-normalized, hashable)."""
    c0 = ct.c0.to_coeff()
    c1 = ct.c1.to_coeff()
    return (
        tuple(map(tuple, c0.coefficient_rows())),
        tuple(map(tuple, c1.coefficient_rows())),
    )


def _keyed(params, seed=11):
    keygen = CKKSKeyGenerator(params, seed=seed, error_stddev=0.0)
    return keygen.generate()


# ---------------------------------------------------------------------------
# Tracer / IR
# ---------------------------------------------------------------------------

class TestTracer:
    PARAMS = CKKSParameters.toy()

    def test_metadata_propagation(self):
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        assert x.level == params.max_level and x.scale == float(params.scale)
        pt = _random_pt(params, 5)
        y = x * pt
        assert y.scale == x.scale * pt.scale and y.level == x.level
        z = y.rescale()
        assert z.level == x.level - 1
        assert z.scale == y.scale / params.moduli[x.level]
        assert x.rotate(0) is x                      # identity adds no node
        assert (x * 3).scale == x.scale              # scalar mult keeps scale

    def test_cse_merges_identical_subexpressions(self):
        t = HETrace(self.PARAMS)
        x = t.input("x")
        a = x.rotate(2)
        b = x.rotate(2)
        assert a.id == b.id                          # hash-consed
        pt = _random_pt(self.PARAMS, 7)
        assert (x * pt).id == (x * pt).id
        assert (x * pt).id != (a * pt).id

    def test_mixed_traces_rejected(self):
        t1 = HETrace(self.PARAMS)
        t2 = HETrace(self.PARAMS)
        x1, x2 = t1.input("x"), t2.input("x")
        with pytest.raises(ValueError):
            x1 + x2

    def test_trace_time_errors(self):
        t = HETrace(self.PARAMS)
        x = t.input("x", level=0)
        with pytest.raises(ValueError):
            x.rescale()
        with pytest.raises(ValueError):
            x.mod_down_to(1)
        with pytest.raises(ValueError):
            t.input("x")                             # duplicate name


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------

class TestPasses:
    PARAMS = CKKSParameters.toy()

    def test_waterline_inserts_rescale_and_mod_down(self):
        """Adding a Delta^2 product to a Delta input auto-rescales and
        mod-downs — the alignment the eager API makes callers do by hand."""
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        pt = _random_pt(params, 3)
        t.output("y", x * pt + x)                    # scales Delta^2 vs Delta
        planned = plan_program(t.program)
        assert planned.stats["rescales_inserted"] == 1
        assert planned.stats["mod_downs_inserted"] == 1
        ops = {node.op for node in planned.program.nodes}
        assert "rescale" in ops and "mod_down" in ops

    def test_irreconcilable_scales_fail_at_plan_time(self):
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        weird = t.input("w", scale=float(params.scale) * 3.0)
        t.output("y", x + weird)
        with pytest.raises(ValueError, match="scale"):
            plan_program(t.program)

    def test_level_alignment(self):
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        low = t.input("low", level=params.max_level - 2)
        t.output("y", x * low)
        planned = plan_program(t.program)
        assert planned.stats["mod_downs_inserted"] == 1
        out = planned.program.node(planned.program.outputs["y"])
        assert out.level == params.max_level - 2

    def test_domain_planning_multiply_chain_stays_resident(self):
        """multiply -> rescale -> multiply: eval inputs converted once each,
        nothing converts back to coefficients mid-chain."""
        params = self.PARAMS
        t = HETrace(params)
        a, b = t.input("a"), t.input("b")
        c = t.input("c", level=params.max_level - 1)
        t.output("y", (a * b).rescale() * c)
        planned = plan_program(t.program)
        counts = conversion_counts(planned)
        assert counts == {"to_eval": 3, "to_coeff": 0}
        for node in planned.program.nodes:
            if node.op in ("multiply", "rescale"):
                assert node.domain == "eval"

    def test_hoist_fusion_groups_by_source(self):
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        rotations = [x.rotate(s) for s in (1, 2, 3)]
        y = rotations[0] + rotations[1] + rotations[2] + x.conjugate()
        z = y.rotate(1)
        t.output("y", z)
        planned = plan_program(t.program)
        stats = planned.stats
        # x's 3 rotations + conjugate share one hoist; y's rotation is alone.
        assert stats["hoist_groups"] == 2
        assert stats["hoisted_rotations"] == 4
        assert stats["outer_rotations"] == 1
        groups = {}
        for node in planned.program.nodes:
            if node.op in ("rotate", "conjugate"):
                groups.setdefault(node.attrs["hoist_group"], []).append(node.id)
        assert sorted(len(g) for g in groups.values()) == [1, 4]

    def test_pmult_mac_fusion_of_pure_and_mixed_trees(self):
        """A pure PMult sum fuses whole; a BSGS-shaped mixed accumulation
        fuses its inner blocks and keeps the outer adds."""
        params = self.PARAMS
        pts = [_random_pt(params, 20 + i) for i in range(4)]
        t = HETrace(params)
        x = t.input("x")
        babies = [x.rotate(i) for i in range(2)]
        inner0 = babies[0] * pts[0] + babies[1] * pts[1]
        inner1 = (babies[0] * pts[2] + babies[1] * pts[3]).rotate(2)
        t.output("y", inner0 + inner1)               # mixed: add(mac, rotate)
        planned = plan_program(t.program)
        assert planned.stats["batched_groups"] == 2
        assert planned.stats["batched_pmults"] == 4
        macs = [n for n in planned.program.nodes if n.op == "pmult_mac"]
        assert len(macs) == 2
        assert all(len(n.args) == 2 == len(n.attrs["plaintexts"]) for n in macs)
        assert planned.stats["plain_multiplies"] == 4

    def test_pmult_mac_fuses_when_tree_is_a_program_output(self):
        """Regression: a pure PMult sum whose only use is a program output
        (no consuming node) must still fuse, not crash."""
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        p1, p2 = _random_pt(params, 30), _random_pt(params, 31)
        t.output("y", x * p1 + x * p2)
        planned = plan_program(t.program)
        assert planned.stats["batched_groups"] == 1
        assert planned.stats["batched_pmults"] == 2
        keys = _keyed(params)
        executor = ProgramExecutor(CKKSEvaluator(params, keys, backend=PYTHON))
        with use_backend(PYTHON):
            inputs = {"x": _random_ct(params, 32)}
            planned_out = executor.run(planned, inputs)["y"]
            eager_out = executor.run_eager(t.program, inputs)["y"]
            assert _rows(planned_out) == _rows(eager_out)

    def test_replanning_a_planned_program_is_stable(self):
        """Regression: plan_program over an already-planned program (with
        pmult_mac and to_eval nodes) must not crash and stays executable."""
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        pts = [_random_pt(params, 33 + i) for i in range(2)]
        t.output("y", (x.rotate(1) * pts[0] + x.rotate(2) * pts[1]) * x)
        planned = plan_program(t.program)
        replanned = plan_program(planned.program)    # idempotent re-plan
        assert replanned.stats["batched_groups"] == 0   # already fused
        keys = _keyed(params)
        executor = ProgramExecutor(CKKSEvaluator(params, keys, backend=PYTHON))
        with use_backend(PYTHON):
            inputs = {"x": _random_ct(params, 35)}
            first = executor.run(planned, inputs)["y"]
            again = executor.run(replanned, inputs)["y"]
            eager = executor.run_eager(t.program, inputs)["y"]
            assert _rows(first) == _rows(again) == _rows(eager)

    def test_reused_subexpression_executes_once(self):
        params = self.PARAMS
        t = HETrace(params)
        x = t.input("x")
        r = x.rotate(1)
        t.output("y", r + r)                         # same node twice
        planned = plan_program(t.program)
        assert sum(1 for n in planned.program.nodes if n.op == "rotate") == 1


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

class TestLowering:
    def test_histogram_matches_linear_transform_plan(self):
        """A hand-traced BSGS dense layer lowers to exactly the cost model's
        (baby-1)+(giant-1) HRotate / n1*n2 PMult / n1*n2-1 HAdd accounting."""
        params = CKKSParameters.toy(ring_degree=128, max_level=3, dnum=2)
        dim = 16
        plan = linear_transform_plan(params.slots, params.max_level,
                                     diagonals=dim)
        n1, n2 = plan.baby_steps, plan.giant_steps
        pts = {
            (j, i): _random_pt(params, 100 + j * n1 + i)
            for j in range(n2) for i in range(n1)
        }
        t = HETrace(params)
        x = t.input("x")
        babies = [x.rotate(i) for i in range(n1)]
        result = None
        for j in range(n2):
            inner = None
            for i in range(n1):
                term = babies[i] * pts[(j, i)]
                inner = term if inner is None else inner + term
            if j:
                inner = inner.rotate(j * n1)
            result = inner if result is None else result + inner
        t.output("y", result.rescale())
        planned = plan_program(t.program)
        histogram = operation_histogram(planned)
        assert histogram["HRotate"] == plan.num_rotations
        assert histogram["PMult"] == plan.num_plain_multiplies
        assert histogram["HAdd"] == plan.num_additions
        assert histogram["Rescale"] == 1
        # The same accounting must hold for the *unoptimized* stream (fusion
        # cannot change the math the cost model charges).
        eager_hist = operation_histogram(plan_program(t.program, optimize=False))
        assert eager_hist == histogram

    def test_levels_annotated_and_conversions_excluded(self):
        params = CKKSParameters.toy()
        t = HETrace(params)
        a, b = t.input("a"), t.input("b")
        t.output("y", (a * b).rescale() + b.mod_down_to(params.max_level - 1))
        planned = plan_program(t.program)
        ops = lower_to_operations(planned)
        assert all(op.name in ("HMult", "Rescale", "HAdd") for op in ops)
        hmult = next(op for op in ops if op.name == "HMult")
        assert hmult.level == params.max_level
        hadd = next(op for op in ops if op.name == "HAdd")
        assert hadd.level == params.max_level - 1


# ---------------------------------------------------------------------------
# Differential: planned == eager call sequence, bit-exact
# ---------------------------------------------------------------------------

def _trace_mixed_program(params, seeds):
    """A program exercising every traceable op (rotations sharing a source,
    conjugation, HMult + relinearization, PMult/PAdd, waterline insertion).

    Plaintext scales are chosen CKKS-consistently for *any* modulus chain
    (``pt_a`` at scale ``q_L`` so its product rescales exactly back to the
    ciphertext scale; ``pt_c`` at the post-rescale scale of ``y``), so the
    waterline pass has legal rescue moves on every params.py family.
    """
    delta = float(params.scale)
    level = params.max_level
    pt_a = _random_pt(params, seeds + 1, scale=float(params.moduli[level]))
    pt_b = _random_pt(params, seeds + 2, scale=delta)
    pt_c = _random_pt(
        params, seeds + 3,
        scale=delta * delta / params.moduli[level - 1],
    )
    t = HETrace(params)
    x = t.input("x")
    w = t.input("w")
    # x*pt_a has scale Delta*q_L vs Delta for the rotations: the waterline
    # pass must insert exactly one rescale plus the mod_downs.
    lin = x * pt_a + x.rotate(1) + x.rotate(2) - x.conjugate()
    quad = lin * w                                    # HMult + relinearization
    y = quad + x * pt_b                               # equal scales, mod_down
    z = (y.rescale() + pt_c) * 3
    t.output("y", y)
    t.output("z", (-z) + z.inner_sum(3))
    return t.program


@pytest.mark.parametrize("params", PARAM_SETS, ids=PARAM_IDS)
class TestDifferential:
    def test_planned_matches_eager_and_cross_backend(self, params):
        program = _trace_mixed_program(params, seeds=40)
        reference = None
        for backend in BACKENDS:
            keys = _keyed(params)
            evaluator = CKKSEvaluator(params, keys, backend=backend)
            executor = ProgramExecutor(evaluator)
            with use_backend(backend):
                inputs = {
                    "x": _random_ct(params, 50),
                    "w": _random_ct(params, 60),
                }
                planned_out = executor.run(program, inputs)
                eager_out = executor.run_eager(program, inputs)
                rows = {
                    name: _rows(ct) for name, ct in planned_out.items()
                }
                for name, ct in eager_out.items():
                    assert rows[name] == _rows(ct), (backend.name, name)
                    assert planned_out[name].level == ct.level
                    assert abs(planned_out[name].scale / ct.scale - 1) < 1e-9
            if reference is None:
                reference = rows
            else:
                assert rows == reference              # cross-backend bit-exact

    def test_planned_rotations_match_rotate_hoisted(self, params):
        """Fused-hoist rotations == the evaluator's rotate_hoisted output."""
        steps = [1, 2, 5]
        t = HETrace(params)
        x = t.input("x")
        for s in steps:
            t.output(f"r{s}", x.rotate(s))
        for backend in BACKENDS:
            keys = _keyed(params)
            evaluator = CKKSEvaluator(params, keys, backend=backend)
            with use_backend(backend):
                ct = _random_ct(params, 70)
                outs = ProgramExecutor(evaluator).run(t.program, {"x": ct})
                expected = evaluator.rotate_hoisted(ct, steps)
                for s, exp in zip(steps, expected):
                    assert _rows(outs[f"r{s}"]) == _rows(exp), (backend.name, s)


class TestExecutorValidation:
    PARAMS = CKKSParameters.toy()

    def _executor(self):
        keys = _keyed(self.PARAMS)
        return ProgramExecutor(CKKSEvaluator(self.PARAMS, keys, backend=PYTHON))

    def test_missing_input_raises(self):
        t = HETrace(self.PARAMS)
        t.output("y", t.input("x").rotate(1))
        with pytest.raises(ValueError, match="missing program inputs"):
            self._executor().run(t.program, {})

    def test_level_mismatch_raises(self):
        t = HETrace(self.PARAMS)
        t.output("y", t.input("x") * 2)
        with use_backend(PYTHON):
            ct = _random_ct(self.PARAMS, 80, level=self.PARAMS.max_level - 1)
        with pytest.raises(ValueError, match="level"):
            self._executor().run(t.program, {"x": ct})

    def test_missing_galois_key_raises_before_hoist(self):
        """Executor key prefetch: a key set without a generator fails with
        the same KeyError shape as evaluator.rotate."""
        params = self.PARAMS
        keys = _keyed(params)
        frozen = CKKSKeySet(params=params, secret=keys.secret, public=keys.public)
        evaluator = CKKSEvaluator(params, frozen, backend=PYTHON)
        t = HETrace(params)
        t.output("y", t.input("x").rotate(1))
        with use_backend(PYTHON):
            ct = _random_ct(params, 81)
        with pytest.raises(KeyError, match="no Galois key"):
            ProgramExecutor(evaluator).run(t.program, {"x": ct})


# ---------------------------------------------------------------------------
# Fix regression: rotate_hoisted validates keys before hoisting
# ---------------------------------------------------------------------------

class TestRotateHoistedKeyValidation:
    def test_missing_key_raises_like_rotate(self):
        params = CKKSParameters.toy()
        keys = _keyed(params)
        frozen = CKKSKeySet(params=params, secret=keys.secret, public=keys.public)
        evaluator = CKKSEvaluator(params, frozen, backend=PYTHON)
        with use_backend(PYTHON):
            ct = _random_ct(params, 90)
        with pytest.raises(KeyError) as via_rotate:
            evaluator.rotate(ct, 3)
        with pytest.raises(KeyError) as via_hoisted:
            evaluator.rotate_hoisted(ct, [1, 3])
        assert "no Galois key" in str(via_hoisted.value)
        # Same KeyError shape: identical message for the same missing key.
        with pytest.raises(KeyError) as via_hoisted_3:
            evaluator.rotate_hoisted(ct, [3])
        assert str(via_hoisted_3.value) == str(via_rotate.value)

    def test_identity_step_needs_no_key(self):
        params = CKKSParameters.toy()
        keys = _keyed(params)
        frozen = CKKSKeySet(params=params, secret=keys.secret, public=keys.public)
        evaluator = CKKSEvaluator(params, frozen, backend=PYTHON)
        with use_backend(PYTHON):
            ct = _random_ct(params, 91)
            (out,) = evaluator.rotate_hoisted(ct, [0])
            assert _rows(out) == _rows(ct)


# ---------------------------------------------------------------------------
# Dead-code elimination + rotation-key planning
# ---------------------------------------------------------------------------

class TestDeadCodeElimination:
    PARAMS = CKKSParameters.toy()

    def _dead_rotation_program(self):
        t = HETrace(self.PARAMS)
        x = t.input("x")
        x.rotate(3)                              # traced, never consumed
        x.rotate(7).conjugate()                  # a dead chain
        t.output("y", x.rotate(1) + x.rotate(2))
        return t.program

    def test_dead_nodes_removed_in_both_modes(self):
        program = self._dead_rotation_program()
        for optimize in (True, False):
            planned = plan_program(program, optimize=optimize)
            assert planned.stats["dead_nodes_removed"] == 3
            ops = [n.op for n in planned.program.nodes if n.op == "rotate"]
            assert len(ops) == 2
            assert not any(
                n.op == "conjugate" for n in planned.program.nodes
            )

    def test_unused_inputs_are_kept(self):
        t = HETrace(self.PARAMS)
        x = t.input("x")
        t.input("unused")
        t.output("y", x.rotate(1))
        planned = plan_program(t.program)
        assert set(planned.program.inputs) == {"x", "unused"}

    def test_required_galois_elements_shrink_with_dce(self):
        program = self._dead_rotation_program()
        planned = plan_program(program)
        ring = self.PARAMS.ring_degree
        level = self.PARAMS.max_level
        expected = sorted(
            (pow(5, s, 2 * ring), level) for s in (1, 2)
        )
        assert planned.required_galois_elements() == expected
        assert planned.required_rotation_steps() == {level: [1, 2]}

    def test_minimal_key_set_executes(self):
        """ensure_galois_keys over the plan's requirement set is sufficient:
        a frozen key set holding exactly those keys runs the program (the
        dead rotations would otherwise demand keys at prefetch time)."""
        program = self._dead_rotation_program()
        planned = plan_program(program)
        keys = _keyed(self.PARAMS)
        generated = keys.ensure_galois_keys(planned.required_galois_elements())
        assert len(generated) == 2
        frozen = CKKSKeySet(
            params=self.PARAMS, secret=keys.secret, public=keys.public,
            _galois_keys=dict(keys._galois_keys),
        )
        evaluator = CKKSEvaluator(self.PARAMS, frozen, backend=PYTHON)
        with use_backend(PYTHON):
            out = ProgramExecutor(evaluator).run(planned, {
                "x": _random_ct(self.PARAMS, 300),
                "unused": _random_ct(self.PARAMS, 301),
            })
        assert out["y"].level == self.PARAMS.max_level

    def test_conjugate_requirement_reported(self):
        t = HETrace(self.PARAMS)
        x = t.input("x")
        t.output("y", x.conjugate())
        planned = plan_program(t.program)
        assert planned.required_galois_elements() == [
            (2 * self.PARAMS.ring_degree - 1, self.PARAMS.max_level)
        ]
        assert planned.required_rotation_steps() == {}


# ---------------------------------------------------------------------------
# Stacked conversion batching
# ---------------------------------------------------------------------------

class TestStackedConversionBatching:
    PARAMS = CKKSParameters.toy()

    def test_sibling_conversions_grouped(self):
        """Two coefficient inputs feeding one multiply convert in a single
        stacked dispatch; the planner annotates them as one group."""
        t = HETrace(self.PARAMS)
        a, b = t.input("a"), t.input("b")
        t.output("y", a * b)
        planned = plan_program(t.program)
        assert planned.stats["stacked_conversion_groups"] == 1
        assert planned.stats["stacked_conversions"] == 2
        groups = [
            n.attrs.get("conv_group") for n in planned.program.nodes
            if n.op == "to_eval"
        ]
        assert groups == [0, 0]

    def test_grouped_execution_is_bit_exact(self):
        pts = [_random_pt(self.PARAMS, 310 + i) for i in range(2)]
        t = HETrace(self.PARAMS)
        a, b, c = t.input("a"), t.input("b"), t.input("c")
        t.output("y", (a * b) + (c * pts[0]) * pts[1])
        planned = plan_program(t.program)
        assert planned.stats["stacked_conversion_groups"] >= 1
        keys = _keyed(self.PARAMS)
        for backend in BACKENDS:
            evaluator = CKKSEvaluator(self.PARAMS, keys, backend=backend)
            executor = ProgramExecutor(evaluator)
            with use_backend(backend):
                inputs = {
                    "a": _random_ct(self.PARAMS, 320),
                    "b": _random_ct(self.PARAMS, 321),
                    "c": _random_ct(self.PARAMS, 322),
                }
                planned_out = executor.run(planned, inputs)["y"]
                eager_out = executor.run_eager(t.program, inputs)["y"]
                assert _rows(planned_out) == _rows(eager_out), backend.name

    def test_group_members_only_share_ready_sources(self):
        """A conversion whose source is computed *after* an earlier group
        opened must start its own group (the stacking invariant)."""
        pt = _random_pt(self.PARAMS, 330)
        t = HETrace(self.PARAMS)
        a, b = t.input("a"), t.input("b")
        first = a * b                            # converts a and b (group 0)
        second = first.rescale() * (a * pt)      # a*pt is eval already
        t.output("y", second)
        planned = plan_program(t.program)
        program = planned.program
        for node in program.nodes:
            if node.op != "to_eval" or "conv_group" not in node.attrs:
                continue
            group_members = [
                n for n in program.nodes
                if n.op == "to_eval"
                and n.attrs.get("conv_group") == node.attrs["conv_group"]
            ]
            first_member = min(n.id for n in group_members)
            for member in group_members:
                assert member.args[0] < first_member


# ---------------------------------------------------------------------------
# Plaintext evaluation-domain encoding cache
# ---------------------------------------------------------------------------

class TestPlaintextEvalCache:
    @pytest.mark.parametrize("params", PARAM_SETS, ids=PARAM_IDS)
    def test_cache_hit_is_exact_and_keyed_per_backend(self, params):
        pt = _random_pt(params, 95)
        reference = None
        for backend in BACKENDS:
            keys = _keyed(params)
            evaluator = CKKSEvaluator(params, keys, backend=backend)
            with use_backend(backend):
                ct = evaluator.to_eval(_random_ct(params, 96))
                first = evaluator.multiply_plain(ct, pt)
                cached = evaluator.multiply_plain(ct, pt)    # cache hit
                assert _rows(first) == _rows(cached)
                padd = evaluator.add_plain(ct, pt)
                # Coefficient path is untouched by the cache.
                coeff = evaluator.multiply_plain(evaluator.to_coeff(ct), pt)
                assert _rows(first) == _rows(coeff)
                if reference is None:
                    reference = (_rows(first), _rows(padd))
                else:
                    assert (_rows(first), _rows(padd)) == reference
        # One entry per (backend, storage mode): the u32 narrow store must
        # not share cached stores with the wide numpy backend.
        assert len(pt._eval_cache) == len(
            {(b.name, getattr(b, "store_uint32", False)) for b in BACKENDS}
        )

    def test_cache_respects_levels(self):
        params = CKKSParameters.toy()
        pt = _random_pt(params, 97)
        keys = _keyed(params)
        evaluator = CKKSEvaluator(params, keys, backend=PYTHON)
        with use_backend(PYTHON):
            high = evaluator.to_eval(_random_ct(params, 98))
            low = evaluator.to_eval(
                _random_ct(params, 99, level=params.max_level - 1)
            )
            a = evaluator.multiply_plain(high, pt)
            b = evaluator.multiply_plain(low, pt)
            assert a.level == params.max_level and b.level == params.max_level - 1
        assert len(pt._eval_cache) == 2              # one entry per level


# ---------------------------------------------------------------------------
# Stacked backend kernels
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("params", PARAM_SETS, ids=PARAM_IDS)
class TestStackedKernels:
    def test_stacked_transforms_match_batched(self, params):
        contexts = _limb_contexts(params.ring_degree, params.basis())
        assert contexts is not None
        for backend in BACKENDS:
            with use_backend(backend):
                polys = [_random_poly(params, 200 + i) for i in range(3)]
                stores = [p.store() for p in polys]
                fwd = backend.stacked_ntt(contexts, stores)
                for got, poly in zip(fwd, polys):
                    expected = backend.batched_ntt(contexts, poly.store())
                    assert backend.store_rows(got) == backend.store_rows(expected)
                inv = backend.stacked_intt(contexts, fwd)
                for got, poly in zip(inv, polys):
                    assert backend.store_rows(got) == poly.coefficient_rows()

    def test_stacked_gather_matches_per_store(self, params):
        spec = galois_eval_spec(params.ring_degree, 5)
        for backend in BACKENDS:
            with use_backend(backend):
                stores = [
                    _random_poly(params, 210 + i).to_eval().store()
                    for i in range(3)
                ]
                stacked = backend.stacked_gather(stores, spec)
                for got, store in zip(stacked, stores):
                    expected = backend.limbs_gather(store, spec)
                    assert backend.store_rows(got) == backend.store_rows(expected)

    def test_stacked_pmult_mac_matches_mul_add_chain(self, params):
        moduli = tuple(params.basis().moduli)
        reference = None
        for backend in BACKENDS:
            with use_backend(backend):
                cts = [
                    (_random_poly(params, 220 + i).to_eval(),
                     _random_poly(params, 230 + i).to_eval())
                    for i in range(4)
                ]
                pts = [
                    _random_poly(params, 240 + i).to_eval() for i in range(4)
                ]
                s0, s1 = backend.stacked_pmult_mac(
                    [c0.store() for c0, _ in cts],
                    [c1.store() for _, c1 in cts],
                    [p.store() for p in pts], moduli,
                )
                acc0 = acc1 = None
                for (c0, c1), p in zip(cts, pts):
                    t0, t1 = c0 * p, c1 * p
                    acc0 = t0 if acc0 is None else acc0 + t0
                    acc1 = t1 if acc1 is None else acc1 + t1
                got = (
                    backend.store_rows(s0), backend.store_rows(s1),
                )
                assert got[0] == backend.store_rows(acc0.store())
                assert got[1] == backend.store_rows(acc1.store())
            if reference is None:
                reference = got
            else:
                assert got == reference


# ---------------------------------------------------------------------------
# Encoder-based semantic tests (slot values; need numpy)
# ---------------------------------------------------------------------------

@needs_numpy
class TestSemantics:
    @pytest.fixture(scope="class")
    def context(self):
        from repro.fhe.ckks import CKKSContext

        return CKKSContext(
            CKKSParameters.toy(ring_degree=128, max_level=3, dnum=2), seed=7
        )

    def test_dense_layer_program_matches_eager_apply(self, context):
        from repro.fhe.ckks import BSGSLinearTransform

        dim = 8
        slots = context.params.slots
        matrix = [
            [((3 * i + 5 * j) % 7 - 3) / 4.0 for j in range(dim)]
            for i in range(dim)
        ]
        x = [0.5, -1.0, 2.0, 0.25, -0.75, 1.5, -0.5, 1.0]
        transform = BSGSLinearTransform.from_matrix(context.encoder, matrix)
        transform.generate_rotation_keys(context.keys)
        ct = context.encrypt_vector(x * (slots // dim))
        reference = None
        for backend in (PYTHON, PACKED):             # bit-exact on BOTH backends
            evaluator = CKKSEvaluator(context.params, context.keys,
                                      backend=backend)
            planned_result = transform.apply(evaluator, ct)
            planned_stats = dict(transform.last_stats)
            eager_result = transform.apply_eager(evaluator, ct)
            with use_backend(backend):
                rows = _rows(planned_result)
                assert rows == _rows(eager_result), backend.name
            assert planned_stats == transform.last_stats
            if reference is None:
                reference = rows
            else:
                assert rows == reference             # and across backends
        evaluator = context.evaluator
        out = evaluator.rescale(planned_result)
        got = [v.real for v in context.decrypt_vector(out, dim)]
        expected = [sum(m * v for m, v in zip(row, x)) for row in matrix]
        assert max(abs(a - e) for a, e in zip(got, expected)) < 0.05

    def test_dense_layer_histogram_matches_cost_model(self, context):
        from repro.fhe.ckks import BSGSLinearTransform

        dim = 16
        matrix = [[(i + 2 * j) % 5 - 2 for j in range(dim)] for i in range(dim)]
        transform = BSGSLinearTransform.from_matrix(context.encoder, matrix)
        planned = transform._planned_program(context.params.max_level)
        plan = linear_transform_plan(context.params.slots,
                                     context.params.max_level, diagonals=dim)
        histogram = operation_histogram(planned)
        assert histogram["HRotate"] == plan.num_rotations
        assert histogram["PMult"] == plan.num_plain_multiplies
        assert histogram["HAdd"] == plan.num_additions

    def test_program_workload_and_cycle_estimate(self, context):
        from repro.fhe.program import trinity_cycle_estimate
        from repro.workloads import program_workload

        params = context.params
        t = HETrace(params)
        a, b = t.input("a"), t.input("b")
        t.output("y", (a * b).rescale() + a.mod_down_to(params.max_level - 1))
        planned = plan_program(t.program)
        workload = program_workload(planned, params=params, name="test-prog")
        assert workload.scheme == "ckks"
        assert workload.metadata["operation_histogram"]["HMult"] == 1
        assert len(workload.traces) == len(lower_to_operations(planned))
        report = trinity_cycle_estimate(planned, params=params)
        assert report.latency_cycles > 0

    def test_traced_sigmoid_neuron_matches_eager_calls(self, context):
        """The quickstart-style classifier traced end to end decodes to the
        same slots as the hand-written eager sequence (bit-exact)."""
        params = context.params
        evaluator = context.evaluator
        encoder = context.encoder
        features = [0.8, -1.2, 0.5, 2.0]
        weights = encoder.encode([0.6, 0.4, -1.0, 0.3])
        ct = context.encrypt_vector(features)

        t = HETrace(params)
        x = t.input("x")
        t.output("z", (x * weights).rescale().inner_sum(4))
        executor = ProgramExecutor(evaluator)
        planned = executor.run(t.program, {"x": ct})["z"]

        eager = evaluator.inner_sum(
            evaluator.rescale(evaluator.multiply_plain(ct, weights)), 4
        )
        assert _rows(planned) == _rows(eager)


# ---------------------------------------------------------------------------
# Hybrid CKKS <-> TFHE programs
# ---------------------------------------------------------------------------

#: (ckks, tfhe, boost, amplitude) combos for the hybrid differential suite.
#: The boost lifts the message far enough above the sign-bootstrap bucket
#: resolution (q_tfhe / 2N_glwe) that the decoded mask bits are exact; the
#: 28-bit chain additionally exercises the <= 32-bit single-word kernels and
#: the REPRO_U32_STORE narrow storage (40-bit limbs stay wide under u32).
HYBRID_PARAM_SETS = [
    hybrid_query_parameters() + (1 << 28, 1 << 16),
    (
        CKKSParameters(
            ring_degree=32, max_level=1, dnum=1, scale_bits=4,
            modulus_bits=28, special_modulus_bits=30, security_bits=0,
            name="ckks-hybrid-u32",
        ),
        TFHEParameters.hybrid(), 1 << 16, 1 << 16,
    ),
    (
        CKKSParameters(
            ring_degree=64, max_level=1, dnum=1, scale_bits=4,
            modulus_bits=40, special_modulus_bits=42, security_bits=0,
            name="ckks-hybrid-small-glwe",
        ),
        TFHEParameters(
            polynomial_size=128, lwe_dimension=8, glwe_dimension=1,
            bsk_levels=5, bsk_base_log=6, ksk_levels=5, ksk_base_log=6,
            modulus_bits=31, plaintext_modulus=4, noise_stddev=0.0,
            security_bits=0, name="tfhe-small-glwe",
        ),
        1 << 28, 1 << 16,
    ),
]
HYBRID_PARAM_IDS = [
    f"{p.name}+{t.name}" for p, t, _, _ in HYBRID_PARAM_SETS
]

#: Threshold-query instance shared by the differential tests: margins of at
#: least 5 on either side of the threshold keep every combo's sign
#: bootstrap away from its bucket boundary.
HYBRID_VALUES = [3, 14, 2, 13]
HYBRID_THRESHOLD = 8


def _encrypt_coefficients(params, keys, coefficients, level, scale, seed=21):
    """Symmetric zero-noise encryption of integer coefficients.

    The hybrid tests run on the no-numpy leg, where ``CKKSContext`` (whose
    encoder is the one hard numpy consumer) is unavailable — so encrypt by
    hand: ``(-(a s) + m, a)`` under the ``_keyed`` secret.
    """
    n = params.ring_degree
    basis = params.basis(level)
    rng = random.Random(seed ^ 0xB1D9E)
    s = keys.secret.as_rns(n, basis)
    a = RNSPolynomial(n, basis, [sample_uniform(n, q, rng) for q in basis])
    pt = RNSPolynomial.from_integer_coefficients(
        n, basis, [int(c) for c in coefficients])
    return CKKSCiphertext(c0=-(a * s) + pt, c1=a, level=level,
                          scale=float(scale))


def _phase_coefficients(params, keys, ct):
    """Centered ``c0 + c1 s`` — decryption without the (numpy) encoder."""
    c0 = ct.c0.to_coeff()
    c1 = ct.c1.to_coeff()
    s = keys.secret.as_rns(params.ring_degree, c0.basis)
    return (c0 + c1 * s).to_polynomial().centered_coefficients()


def _hybrid_threshold_program(params, tparams, boost, amplitude, nslot=4,
                              values=HYBRID_VALUES,
                              threshold=HYBRID_THRESHOLD):
    """The encrypted threshold filter as one traced hybrid program.

    A coefficient-packed CKKS column crosses into TFHE per slot (extract +
    bridge keyswitch), a sign bootstrap evaluates ``value <= threshold``,
    and the mask bits repack into CKKS — the per-slot chains are traced
    interleaved, exactly the shape the PBS wave scheduler must regroup.
    """
    q0, qt = params.moduli[0], tparams.modulus
    encoded_threshold = round(threshold * params.scale * boost * qt / q0)
    t = HETrace(params, tfhe_params=tparams)
    x = t.input("x", level=1, scale=float(params.scale))
    boosted = x * boost
    bits = []
    for lwe in boosted.extract_lwes(nslot):
        diff = (-lwe.keyswitch_to_tfhe()).add_encoded(encoded_threshold)
        bits.append(diff.bootstrap_sign(amplitude))
    t.output("mask", t.repack([bit.keyswitch_to_ckks() for bit in bits]))
    t.output("double", x + x)
    return t.program


def _hybrid_column(params, values=HYBRID_VALUES, nslot=4):
    stride = params.ring_degree // nslot
    coefficients = [0] * params.ring_degree
    for j, value in enumerate(values):
        coefficients[j * stride] = value * params.scale
    return coefficients


@pytest.mark.parametrize(("params", "tparams", "boost", "amplitude"),
                         HYBRID_PARAM_SETS, ids=HYBRID_PARAM_IDS)
class TestHybridDifferential:
    def test_planned_matches_eager_and_decodes_the_filter(
            self, params, tparams, boost, amplitude):
        nslot = len(HYBRID_VALUES)
        stride = params.ring_degree // nslot
        program = _hybrid_threshold_program(params, tparams, boost, amplitude)
        planned = plan_program(program, optimize=True)
        eager = plan_program(program, optimize=False)
        assert planned.stats["pbs_groups"] == 1
        assert planned.stats["grouped_pbs"] == nslot

        reference = None
        for backend in BACKENDS:
            keys = _keyed(params)
            tfhe = TFHEContext(tparams, seed=7)
            bridge = SchemeBridge(params, keys.secret, tfhe, seed=7)
            executor = ProgramExecutor(
                CKKSEvaluator(params, keys, backend=backend),
                tfhe=tfhe, bridge=bridge)
            with use_backend(backend):
                ct = _encrypt_coefficients(
                    params, keys, _hybrid_column(params), level=1,
                    scale=params.scale)
                planned_out = executor.run(planned, {"x": ct})
                eager_out = executor.run_eager(eager, {"x": ct})
                rows = {name: _rows(out) for name, out in planned_out.items()}
                for name, out in eager_out.items():
                    assert rows[name] == _rows(out), (backend.name, name)

                # The mask decodes to the exact predicate bits: the planner's
                # batched-PBS/wave reordering changed nothing semantically.
                encoding = 2 * amplitude * params.moduli[0] / tparams.modulus
                phase = _phase_coefficients(params, keys, planned_out["mask"])
                bits = [round(phase[j * stride] / encoding)
                        for j in range(nslot)]
                assert bits == [1 if v <= HYBRID_THRESHOLD else 0
                                for v in HYBRID_VALUES], backend.name
            if reference is None:
                reference = rows
            else:
                assert rows == reference          # cross-backend bit-exact


class TestHybridDeadCodeElimination:
    PARAMS, TPARAMS = hybrid_query_parameters()

    def _trace(self):
        t = HETrace(self.PARAMS, tfhe_params=self.TPARAMS)
        return t, t.input("x", level=1, scale=float(self.PARAMS.scale))

    def test_scheme_switch_survives_cross_scheme_liveness(self):
        """A ``ckks_to_tfhe`` node whose only consumers live in the TFHE
        subgraph is not dead: liveness must traverse the scheme boundary."""
        t, x = self._trace()
        x.rotate(3)                              # actually dead
        lwe = x.extract_lwe(0).keyswitch_to_tfhe()
        t.output("y", t.repack([lwe.keyswitch_to_ckks()]))
        planned = plan_program(t.program)
        ops = [node.op for node in planned.program.nodes]
        assert "ckks_to_tfhe" in ops and "tfhe_to_ckks" in ops
        assert ops.count("lwe_keyswitch") == 2
        assert "rotate" not in ops
        assert planned.stats["dead_nodes_removed"] == 1
        assert planned.stats["scheme_switches"] == 2

    def test_dead_tfhe_island_is_pruned(self):
        """A TFHE chain nothing consumes disappears wholesale (the switch,
        the bridge keyswitch, the bootstrap and its mod_down)."""
        t, x = self._trace()
        x.extract_lwe(0).keyswitch_to_tfhe().bootstrap_sign(16)
        t.output("y", x + x)
        planned = plan_program(t.program)
        live_ops = {node.op for node in planned.program.nodes}
        assert live_ops.isdisjoint(TFHE_OPS | SCHEME_SWITCH_OPS)
        assert planned.stats["dead_nodes_removed"] == 4
        assert set(planned.program.schemes()) == {"ckks"}
        assert not planned.program.is_hybrid()


class TestHybridPlanner:
    PARAMS, TPARAMS = hybrid_query_parameters()

    def test_interleaved_bootstraps_group_into_one_wave(self):
        """Per-slot chains are traced interleaved; the wave scheduler still
        pulls the four independent bootstraps into one batched dispatch."""
        program = _hybrid_threshold_program(
            self.PARAMS, self.TPARAMS, boost=1 << 28, amplitude=1 << 16)
        planned = plan_program(program)
        assert planned.stats["pbs_groups"] == 1
        assert planned.stats["grouped_pbs"] == 4
        assert planned.stats["scheme_switches"] == 5   # 4 extracts + 1 repack
        groups = {node.attrs.get("pbs_group")
                  for node in planned.program.nodes
                  if node.op == "gate_bootstrap"}
        assert groups == {0}
        planned.program.validate()                     # reorder kept topo order

    def test_dependent_bootstraps_are_not_grouped(self):
        """A bootstrap feeding another sits in a later wave: no batching."""
        t = HETrace(self.PARAMS, tfhe_params=self.TPARAMS)
        x = t.input("x", level=1, scale=float(self.PARAMS.scale))
        first = x.extract_lwe(0).keyswitch_to_tfhe().bootstrap_sign(16)
        second = first.pbs(lambda value: value)
        t.output("y", t.repack([second.keyswitch_to_ckks()]))
        planned = plan_program(t.program)
        assert planned.stats.get("pbs_groups", 0) == 0
        assert planned.stats.get("grouped_pbs", 0) == 0
        assert not any("pbs_group" in node.attrs
                       for node in planned.program.nodes)

    def test_eager_mode_skips_wave_scheduling(self):
        program = _hybrid_threshold_program(
            self.PARAMS, self.TPARAMS, boost=1 << 28, amplitude=1 << 16)
        planned = plan_program(program, optimize=False)
        assert planned.stats.get("pbs_groups", 0) == 0


class TestHybridLowering:
    PARAMS, TPARAMS = hybrid_query_parameters()

    def _query_program(self, nslot=4):
        """The example-shaped program: threshold filter + plaintext fold."""
        q0, qt = self.PARAMS.moduli[0], self.TPARAMS.modulus
        encoded_threshold = round(
            200 * self.PARAMS.scale * (1 << 24) * qt / q0)
        t = HETrace(self.PARAMS, tfhe_params=self.TPARAMS)
        x = t.input("prices", level=1, scale=float(self.PARAMS.scale))
        boosted = x * (1 << 24)
        bits = []
        for lwe in boosted.extract_lwes(nslot):
            diff = (-lwe.keyswitch_to_tfhe()).add_encoded(encoded_threshold)
            bits.append(diff.bootstrap_sign(1 << 16))
        mask = t.repack([bit.keyswitch_to_ckks() for bit in bits])
        t.output("mask", mask)
        t.output("filtered", mask * _random_pt(self.PARAMS, 99, level=0,
                                               scale=1.0))
        return plan_program(t.program)

    def test_lowering_requires_tfhe_params(self):
        t = HETrace(self.PARAMS)
        x = t.input("x")
        t.output("y", x + x)
        with pytest.raises(ValueError, match="TFHE"):
            lower_hybrid_to_workloads(plan_program(t.program))

    def test_workloads_are_scheme_grouped(self):
        workloads = lower_hybrid_to_workloads(self._query_program())
        assert [w.name for w in workloads] == [
            "hybrid.ckks", "hybrid.tfhe", "hybrid.conversion"]
        assert [w.scheme for w in workloads] == [
            "ckks", "tfhe", "conversion"]
        assert workloads[2].metadata["extractions"] == 4

    def test_histogram_reconciles_with_workloads_entry(self):
        """The lowered kernel stream of the planned query program and the
        hand-built ``hybrid_query_workloads`` cost entry agree kernel by
        kernel, so the workloads entry *is* the example's Trinity cost."""
        lowered = hybrid_kernel_histogram(
            lower_hybrid_to_workloads(self._query_program()))
        hand_built = hybrid_kernel_histogram(hybrid_query_workloads(nslot=4))
        assert lowered == hand_built

    def test_cycle_estimate_matches_scheduler_on_workloads_entry(self):
        from repro.core.scheduler import WorkloadScheduler

        planned = self._query_program()
        report = hybrid_cycle_estimate(planned)
        reference = WorkloadScheduler().run_interleaved(
            hybrid_query_workloads(nslot=4))
        assert report.interleaved_cycles == pytest.approx(
            reference.interleaved_cycles)
        assert report.sequential_cycles == pytest.approx(
            reference.sequential_cycles)
        assert report.co_scheduling_gain > 1.0
        round_trip = report.to_dict()
        assert round_trip["interleaved_cycles"] == report.interleaved_cycles
        assert round_trip["workload_names"] == list(report.workload_names)
