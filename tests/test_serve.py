"""Suite for the ``repro.serve`` serving layer.

* **Differential**: ``test_batched_equals_sequential`` — N concurrent
  requests through the batching scheduler decrypt bit-exact to the same
  requests run one-by-one through the eager executor, on both backends and
  across parameter shapes.
* **Serialization**: property-style round-trips (ciphertexts in both
  domains, keyswitch/public/secret keys) across every params.py combo, both
  backends, and the uint32 narrow-store mode; truncated / corrupted /
  wrong-version / wrong-kind payloads raise typed errors.
* **Caches**: LRU eviction order, capacity enforcement, hit/miss/eviction
  counters, and the regression that a plan-cache hit skips re-planning
  (planner-call counter), including ``BSGSLinearTransform``'s migrated
  per-level cache.
* **Fault injection**: unknown tenants/programs, mismatched levels/scales/
  parameters, oversize batches, and missing evaluation keys are rejected
  with typed errors — and the scheduler keeps serving the healthy requests
  in the same pass.

Only the encoder-based tests need numpy; scheduler, serialization, cache,
and fault-injection tests run on the pure-python backend and are part of
the no-numpy CI leg.
"""

import random

import pytest

from repro.fhe.backend import PythonBackend, available_backends, use_backend
from repro.fhe.ckks.ciphertext import CKKSCiphertext, CKKSPlaintext
from repro.fhe.ckks.evaluator import CKKSEvaluator
from repro.fhe.ckks.keys import (
    CKKSKeyGenerator,
    CKKSKeySet,
    galois_element_for_rotation,
)
from repro.fhe.params import CKKSParameters
from repro.fhe.polynomial import Polynomial
from repro.fhe.program import HETrace, LRUCache, ProgramExecutor
from repro.fhe.rns import RNSPolynomial
from repro.serve import (
    CorruptPayloadError,
    ExecutionError,
    InferenceRequest,
    InferenceServer,
    LevelMismatchError,
    MissingKeyError,
    OversizeBatchError,
    ParameterMismatchError,
    PlanCache,
    ScaleMismatchError,
    SchemeMismatchError,
    SerializationError,
    UnknownProgramError,
    UnknownTenantError,
    UnsupportedVersionError,
    deserialize,
    deserialize_ciphertext,
    deserialize_keyswitch_key,
    deserialize_public_key,
    deserialize_rns_polynomial,
    deserialize_secret_key,
    percentile,
    serialize,
    serialize_ciphertext,
    serialize_keyswitch_key,
    serialize_public_key,
    serialize_rns_polynomial,
    serialize_secret_key,
)
from repro.serve import serialization as wire

numpy_missing = "numpy" not in available_backends()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")

PYTHON = PythonBackend()

if not numpy_missing:
    from repro.fhe.backend import NumpyBackend

    PACKED = NumpyBackend(min_vector_length=0, min_ntt_length=0)
    PACKED_U32 = NumpyBackend(min_vector_length=0, min_ntt_length=0,
                              store_uint32=True)
    BACKENDS = [PYTHON, PACKED, PACKED_U32]
else:  # pragma: no cover - exercised only on numpy-less installs
    PACKED = PACKED_U32 = None
    BACKENDS = [PYTHON]

BACKEND_IDS = [b.name if i < 2 else "numpy-u32" for i, b in enumerate(BACKENDS)]

PARAM_SETS = [
    CKKSParameters.toy(),
    CKKSParameters.toy(ring_degree=128, max_level=4, dnum=2),
    CKKSParameters.small(ring_degree=256),
    CKKSParameters(
        ring_degree=64, max_level=3, dnum=2, scale_bits=24, modulus_bits=28,
        special_modulus_bits=30, security_bits=0, name="ckks-u32",
    ),
]
PARAM_IDS = [
    f"{p.name}-N{p.ring_degree}-L{p.max_level}-{p.modulus_bits}bit"
    for p in PARAM_SETS
]

TOY = CKKSParameters.toy()


# ---------------------------------------------------------------------------
# Helpers (the test_program.py idiom)
# ---------------------------------------------------------------------------

def _random_poly(params, seed, level=None):
    degree = params.ring_degree
    basis = params.basis(params.max_level if level is None else level)
    rng = random.Random(seed ^ 0x53EB7E)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _random_ct(params, seed, level=None, scale=None):
    level = params.max_level if level is None else level
    return CKKSCiphertext(
        c0=_random_poly(params, seed, level),
        c1=_random_poly(params, seed + 1, level),
        level=level,
        scale=float(params.scale) if scale is None else float(scale),
    )


def _random_pt(params, seed, level=None, scale=None):
    level = params.max_level if level is None else level
    return CKKSPlaintext(
        poly=_random_poly(params, seed, level),
        level=level,
        scale=float(params.scale) if scale is None else float(scale),
    )


def _keyed(params, seed=11):
    return CKKSKeyGenerator(params, seed=seed, error_stddev=0.0).generate()


def _rows(ct):
    c0 = ct.c0.to_coeff()
    c1 = ct.c1.to_coeff()
    return (
        tuple(map(tuple, c0.coefficient_rows())),
        tuple(map(tuple, c1.coefficient_rows())),
    )


def _poly_rows(poly):
    return tuple(map(tuple, poly.to_coeff().coefficient_rows()))


def _decrypt_rows(keys, ct):
    """c0 + c1*s over the ciphertext basis — the decrypted plaintext rows."""
    s = keys.secret.as_rns(ct.c0.ring_degree, ct.c0.basis)
    return _poly_rows(ct.c0.to_coeff() + ct.c1.to_coeff() * s)


def _dense_tracer(pts):
    """A BSGS-flavoured shape: rotations, conjugation, plaintext MACs."""
    def tracer(x):
        acc = x.rotate(1) * pts[0] + x.rotate(2) * pts[1] + x * pts[2]
        return acc + x.conjugate() * pts[3]
    return tracer


def _dense_server(params, backend, seed=11, **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    server = InferenceServer(params, backend=backend, **kwargs)
    keys = _keyed(params, seed)
    server.register_tenant("t0", keys)
    pts = [_random_pt(params, 400 + j) for j in range(4)]
    tracer = _dense_tracer(pts)
    server.register_program("dense", tracer)
    return server, keys, tracer


def _eager_outputs(params, keys, backend, tracer, cts):
    """The sequential reference: each request alone, eager call sequence."""
    evaluator = CKKSEvaluator(params, keys, backend=backend)
    outputs = []
    for ct in cts:
        trace = HETrace(params)
        x = trace.input("x", level=ct.level, scale=ct.scale)
        trace.output("y", tracer(x))
        outputs.append(
            ProgramExecutor(evaluator).run_eager(trace.program, {"x": ct})["y"]
        )
    return outputs


# ---------------------------------------------------------------------------
# Differential: batched == sequential
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
@pytest.mark.parametrize("params", PARAM_SETS[:2] + PARAM_SETS[3:], ids=[
    PARAM_IDS[0], PARAM_IDS[1], PARAM_IDS[3]])
def test_batched_equals_sequential(params, backend):
    server, keys, tracer = _dense_server(params, backend)
    cts = [_random_ct(params, 7 * i) for i in range(5)]
    requests = [InferenceRequest.single("t0", "dense", ct) for ct in cts]
    responses = server.serve(requests)
    references = _eager_outputs(params, keys, backend, tracer, cts)
    for response, reference in zip(responses, references):
        assert len(response.ciphertexts) == 1
        assert response.batched and response.batch_size == 5
        assert _rows(response.ciphertexts[0]) == _rows(reference)
        assert _decrypt_rows(keys, response.ciphertexts[0]) == \
            _decrypt_rows(keys, reference)
    stats = server.stats()
    assert stats["served"] == 5 and stats["rejected"] == 0
    assert stats["batches"] == 1 and stats["batched_requests"] == 5
    # The joint plan actually batches: one stacked conversion group spans
    # all five requests' input conversions.
    planned = server.plan_cache.get(("dense", params.max_level,
                                     float(params.scale), 5), None)
    assert planned.stats["stacked_conversion_groups"] >= 1


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
def test_multiply_program_batched_equals_sequential(backend):
    """A relin-bearing shape (x*x) batches bit-exact too."""
    params = TOY
    server = InferenceServer(params, backend=backend, batch_window=0.001)
    keys = _keyed(params)
    server.register_tenant("t0", keys)
    tracer = lambda x: (x * x).rescale()  # noqa: E731
    server.register_program("square", tracer)
    cts = [_random_ct(params, 91 * (i + 1)) for i in range(4)]
    responses = server.serve(
        [InferenceRequest.single("t0", "square", ct) for ct in cts])
    references = _eager_outputs(params, keys, backend, tracer, cts)
    for response, reference in zip(responses, references):
        assert _rows(response.ciphertexts[0]) == _rows(reference)


def test_max_batch_size_chunks_oversized_buckets():
    server, keys, tracer = _dense_server(TOY, PYTHON, max_batch_size=2)
    cts = [_random_ct(TOY, 13 * i) for i in range(5)]
    responses = server.serve(
        [InferenceRequest.single("t0", "dense", ct) for ct in cts])
    references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
    for response, reference in zip(responses, references):
        assert _rows(response.ciphertexts[0]) == _rows(reference)
    assert server.stats()["batch_size_histogram"] == {1: 1, 2: 2}


def test_multi_ciphertext_request_and_tenant_key_sharing():
    """Tenants sharing one key set batch together; multi-ct requests fan
    their ciphertexts into the same bucket and reassemble in order."""
    server, keys, tracer = _dense_server(TOY, PYTHON)
    server.register_tenant("t1", keys)       # same key set object: may batch
    cts = [_random_ct(TOY, 17 * i) for i in range(4)]
    requests = [
        InferenceRequest(tenant_id="t0", program="dense",
                         ciphertexts=[cts[0], cts[1]]),
        InferenceRequest.single("t1", "dense", cts[2]),
        InferenceRequest.single("t0", "dense", cts[3]),
    ]
    responses = server.serve(requests)
    references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
    assert [_rows(c) for c in responses[0].ciphertexts] == \
        [_rows(references[0]), _rows(references[1])]
    assert _rows(responses[1].ciphertexts[0]) == _rows(references[2])
    assert _rows(responses[2].ciphertexts[0]) == _rows(references[3])
    stats = server.stats()
    assert stats["batches"] == 1 and stats["batched_requests"] == 4


def test_distinct_key_sets_never_batch_together():
    params = TOY
    server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
    keys_a, keys_b = _keyed(params, 11), _keyed(params, 12)
    server.register_tenant("a", keys_a)
    server.register_tenant("b", keys_b)
    pts = [_random_pt(params, 400 + j) for j in range(4)]
    server.register_program("dense", _dense_tracer(pts))
    requests = [
        InferenceRequest.single("a", "dense", _random_ct(params, 1)),
        InferenceRequest.single("b", "dense", _random_ct(params, 2)),
        InferenceRequest.single("a", "dense", _random_ct(params, 3)),
    ]
    responses = server.serve(requests)
    assert [r.batch_size for r in responses] == [2, 1, 2]
    assert server.stats()["batch_size_histogram"] == {1: 1, 2: 1}


def test_batch_failure_degrades_to_unbatched(monkeypatch):
    server, keys, tracer = _dense_server(TOY, PYTHON)
    cts = [_random_ct(TOY, 31 * i) for i in range(4)]
    real_run = ProgramExecutor.run

    def flaky(self, program, inputs, optimize=True):
        if len(inputs) > 1:
            raise RuntimeError("stacked dispatch exploded")
        return real_run(self, program, inputs, optimize)

    monkeypatch.setattr(ProgramExecutor, "run", flaky)
    responses = server.serve(
        [InferenceRequest.single("t0", "dense", ct) for ct in cts])
    references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
    for response, reference in zip(responses, references):
        assert not response.batched and response.batch_size == 1
        assert _rows(response.ciphertexts[0]) == _rows(reference)
    stats = server.stats()
    assert stats["unbatched_fallbacks"] == 1
    assert stats["served"] == 4


def test_unrecoverable_execution_failure_is_typed(monkeypatch):
    server, _, _ = _dense_server(TOY, PYTHON)

    def broken(self, program, inputs, optimize=True):
        raise RuntimeError("backend on fire")

    monkeypatch.setattr(ProgramExecutor, "run", broken)
    results = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 5))],
        return_exceptions=True)
    assert isinstance(results[0], ExecutionError)
    # The original kernel failure is chained, so its traceback survives
    # into the client-visible error instead of being flattened to a string.
    assert isinstance(results[0].__cause__, RuntimeError)
    assert "backend on fire" in str(results[0].__cause__)


def test_server_roundtrips_serialized_requests():
    """Wire-in, wire-out: a serialized request served and re-serialized."""
    server, keys, tracer = _dense_server(TOY, PYTHON)
    ct = _random_ct(TOY, 77)
    with use_backend(PYTHON):
        arriving = deserialize_ciphertext(serialize_ciphertext(ct))
        response = server.serve(
            [InferenceRequest.single("t0", "dense", arriving)])[0]
        wire_out = serialize_ciphertext(response.ciphertexts[0])
        reference = _eager_outputs(TOY, keys, PYTHON, tracer, [ct])[0]
        assert _rows(deserialize_ciphertext(wire_out)) == _rows(reference)


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
@pytest.mark.parametrize("params", PARAM_SETS, ids=PARAM_IDS)
class TestSerializationRoundTrip:
    def test_ciphertext_both_domains_and_levels(self, params, backend):
        with use_backend(backend):
            for level in (params.max_level, 0):
                ct = _random_ct(params, 5 + level, level=level)
                for domain_ct in (ct, CKKSCiphertext(
                        ct.c0.to_eval(), ct.c1.to_eval(), ct.level, ct.scale)):
                    back = deserialize_ciphertext(
                        serialize_ciphertext(domain_ct))
                    assert back.level == domain_ct.level
                    assert back.scale == domain_ct.scale
                    assert back.c0.domain == domain_ct.c0.domain
                    assert back.c0.basis == domain_ct.c0.basis
                    assert _rows(back) == _rows(ct)

    def test_rns_polynomial(self, params, backend):
        with use_backend(backend):
            poly = _random_poly(params, 21)
            back = deserialize_rns_polynomial(serialize_rns_polynomial(poly))
            assert _poly_rows(back) == _poly_rows(poly)
            eval_poly = poly.to_eval()
            back = deserialize_rns_polynomial(
                serialize_rns_polynomial(eval_poly))
            assert back.domain == "eval"
            assert _poly_rows(back) == _poly_rows(poly)

    def test_keys(self, params, backend):
        with use_backend(backend):
            keys = _keyed(params)
            element = galois_element_for_rotation(params.ring_degree, 1)
            for key in (keys.relinearization_key(params.max_level),
                        keys.galois_key(element, params.max_level)):
                back = deserialize_keyswitch_key(serialize_keyswitch_key(key))
                assert back.level == key.level
                assert len(back.digit_keys) == len(key.digit_keys)
                for (b0, a0), (b1, a1) in zip(key.digit_keys, back.digit_keys):
                    assert _poly_rows(b0) == _poly_rows(b1)
                    assert _poly_rows(a0) == _poly_rows(a1)
            public = deserialize_public_key(serialize_public_key(keys.public))
            assert _poly_rows(public.b) == _poly_rows(keys.public.b)
            assert _poly_rows(public.a) == _poly_rows(keys.public.a)
            secret = deserialize_secret_key(serialize_secret_key(keys.secret))
            assert secret.coefficients == keys.secret.coefficients

    def test_generic_dispatch(self, params, backend):
        with use_backend(backend):
            ct = _random_ct(params, 3)
            assert isinstance(deserialize(serialize(ct)), CKKSCiphertext)
            poly = _random_poly(params, 4)
            assert isinstance(deserialize(serialize(poly)), RNSPolynomial)


def test_deserialized_keys_rotate_identically():
    """A tenant restored purely from serialized key material evaluates
    bit-identically to the original key set."""
    params = TOY
    with use_backend(PYTHON):
        keys = _keyed(params)
        element = galois_element_for_rotation(params.ring_degree, 1)
        galois = deserialize_keyswitch_key(serialize_keyswitch_key(
            keys.galois_key(element, params.max_level)))
        restored = CKKSKeySet(
            params=params,
            secret=deserialize_secret_key(serialize_secret_key(keys.secret)),
            public=deserialize_public_key(serialize_public_key(keys.public)),
            _galois_keys={(element, params.max_level): galois},
        )
        ct = _random_ct(params, 55)
        original = CKKSEvaluator(params, keys, backend=PYTHON).rotate(ct, 1)
        rebuilt = CKKSEvaluator(params, restored, backend=PYTHON).rotate(ct, 1)
        assert _rows(original) == _rows(rebuilt)


def test_word_size_narrows_for_u32_chains():
    """Chains of <= 32-bit moduli serialize with 4-byte words (half cost)."""
    u32_params = PARAM_SETS[3]
    with use_backend(PYTHON):
        narrow = serialize_ciphertext(_random_ct(u32_params, 9))
        assert narrow[7] == 4  # word byte of the container header
        wide = serialize_ciphertext(_random_ct(TOY, 9))
        assert wide[7] == 8
        n, level = u32_params.ring_degree, u32_params.max_level
        payload = 2 * (level + 1) * n
        assert len(narrow) < 4 * payload + 256  # rows dominated by 4B words


@pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")
def test_serialization_cross_backend():
    """Bytes written under one backend load bit-exact under another."""
    ct = _random_ct(TOY, 123)
    with use_backend(PYTHON):
        blob_py = serialize_ciphertext(ct)
    with use_backend(PACKED_U32):
        blob_np = serialize_ciphertext(ct)
        assert blob_py == blob_np
        assert _rows(deserialize_ciphertext(blob_py)) == _rows(ct)
    with use_backend(PYTHON):
        assert _rows(deserialize_ciphertext(blob_np)) == _rows(ct)


class TestSerializationValidation:
    @pytest.fixture()
    def blob(self):
        with use_backend(PYTHON):
            return serialize_ciphertext(_random_ct(TOY, 42))

    def test_truncation(self, blob):
        for cut in (3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SerializationError):
                deserialize_ciphertext(blob[:cut])

    def test_corruption(self, blob):
        for offset in (9, len(blob) // 2, len(blob) - 6):
            broken = bytearray(blob)
            broken[offset] ^= 0xFF
            with pytest.raises(CorruptPayloadError):
                deserialize_ciphertext(bytes(broken))

    def test_trailing_garbage(self, blob):
        with pytest.raises(CorruptPayloadError):
            deserialize_ciphertext(blob + b"\x00")

    def test_wrong_version(self, blob):
        import struct
        import zlib
        future = bytearray(blob)
        future[4:6] = struct.pack("<H", 99)
        body = bytes(future[:-4])
        future[-4:] = struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(UnsupportedVersionError):
            deserialize_ciphertext(bytes(future))

    def test_bad_magic(self, blob):
        with pytest.raises(SerializationError):
            deserialize_ciphertext(b"XXXX" + blob[4:])

    def test_wrong_kind(self):
        with use_backend(PYTHON):
            poly_blob = serialize_rns_polynomial(_random_poly(TOY, 2))
        with pytest.raises(SerializationError, match="expected a ciphertext"):
            deserialize_ciphertext(poly_blob)

    def test_not_bytes_and_empty(self):
        with pytest.raises(SerializationError):
            deserialize(12345)
        with pytest.raises(SerializationError):
            deserialize(b"")

    def test_residue_out_of_range(self):
        """A residue >= its modulus is refused even under a valid checksum."""
        import struct
        with use_backend(PYTHON):
            poly = _random_poly(TOY, 6, level=0)
            blob = serialize_ciphertext(_random_ct(TOY, 6, level=0))
        q = poly.basis.moduli[0]
        payload = bytearray(blob[8:-4])
        # ct head (12) + meta head (9) + one modulus (8) = first row word.
        payload[29:37] = struct.pack("<Q", q)
        with pytest.raises(SerializationError, match="residue out of range"):
            deserialize_ciphertext(
                wire._container(wire.KIND_CIPHERTEXT, 8, bytes(payload)))

    def test_level_limb_mismatch(self):
        """A ciphertext header whose level disagrees with its limb count."""
        import struct
        with use_backend(PYTHON):
            blob = serialize_ciphertext(_random_ct(TOY, 6, level=1))
        payload = bytearray(blob[8:-4])
        payload[0:4] = struct.pack("<i", 0)  # claim level 0, carry 2 limbs
        with pytest.raises(SerializationError, match="must carry"):
            deserialize_ciphertext(
                wire._container(wire.KIND_CIPHERTEXT, 8, bytes(payload)))


# ---------------------------------------------------------------------------
# Cache behavior
# ---------------------------------------------------------------------------

class TestLRUCache:
    def test_capacity_and_eviction_order(self):
        cache = LRUCache(2)
        assert cache.put("a", 1) is None
        assert cache.put("b", 2) is None
        assert cache.put("c", 3) == "a"      # oldest evicted
        assert len(cache) == 2
        assert "a" not in cache and "b" in cache and "c" in cache
        assert list(cache.keys()) == ["b", "c"]

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1           # promotes a over b
        assert cache.put("c", 3) == "b"
        assert list(cache.keys()) == ["a", "c"]

    def test_update_promotes_without_evicting(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) is None
        assert cache.get("a") == 10
        assert cache.put("c", 3) == "b"

    def test_counters_and_stats(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        cache.put("b", 2)
        cache.put("c", 3)
        stats = cache.stats()
        assert stats == {"size": 2, "capacity": 2, "hits": 1, "misses": 1,
                         "evictions": 1, "hit_rate": 0.5}

    def test_get_or_create(self):
        cache = LRUCache(2)
        calls = []
        assert cache.get_or_create("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_create("k", lambda: calls.append(1) or 42) == 41
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestPlanCache:
    def _build(self, level=None):
        params = TOY
        trace = HETrace(params)
        x = trace.input("x", level=level)
        trace.output("y", x.rotate(1) + x)
        return trace.program

    def test_hit_skips_replanning(self):
        cache = PlanCache(capacity=4)
        planned_a = cache.get(("p", 3), self._build)
        assert cache.planner_calls == 1
        planned_b = cache.get(("p", 3), self._build)
        assert planned_b is planned_a          # same object, no re-plan
        assert cache.planner_calls == 1        # the regression counter
        cache.get(("p", 2), lambda: self._build(level=2))
        assert cache.planner_calls == 2
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["planner_calls"] == 2

    def test_capacity_evicts_and_replans(self):
        cache = PlanCache(capacity=1)
        cache.get(("a",), self._build)
        cache.get(("b",), self._build)         # evicts ("a",)
        cache.get(("a",), self._build)         # must re-plan
        assert cache.planner_calls == 3
        assert cache.stats()["evictions"] == 2


def test_server_plan_cache_hit_skips_replanning():
    server, _, _ = _dense_server(TOY, PYTHON)
    cts = [_random_ct(TOY, 3 * i) for i in range(3)]
    server.serve([InferenceRequest.single("t0", "dense", ct) for ct in cts])
    calls_first = server.plan_cache.planner_calls
    server.serve([InferenceRequest.single("t0", "dense", ct) for ct in cts])
    # Second identical pass: every plan (validation width-1 and joint
    # width-3) is a cache hit; the planner never runs again.
    assert server.plan_cache.planner_calls == calls_first
    assert server.stats()["plan_cache"]["hits"] > 0


def test_server_key_cache_reuse_across_batches():
    server, _, _ = _dense_server(TOY, PYTHON)
    request = [InferenceRequest.single("t0", "dense", _random_ct(TOY, 1))]
    server.serve(request)
    misses = server.key_cache.stats()["misses"]
    server.serve([InferenceRequest.single("t0", "dense", _random_ct(TOY, 2))])
    stats = server.key_cache.stats()
    assert stats["misses"] == misses           # no new key materialization
    assert stats["hits"] >= misses


@needs_numpy
def test_bsgs_plan_cache_is_lru_with_stats():
    """The transform's per-level plan dict migrated to the bounded LRU."""
    from repro.fhe.ckks.context import CKKSContext
    from repro.fhe.ckks.linear_transform import BSGSLinearTransform

    params = CKKSParameters.toy()
    context = CKKSContext(params, seed=3, error_stddev=0.0, backend=PACKED)
    dimension = 4
    rng = random.Random(0)
    matrix = [[complex(rng.uniform(-1, 1)) for _ in range(dimension)]
              for _ in range(dimension)]
    transform = BSGSLinearTransform.from_matrix(context.encoder, matrix)
    vector = [complex(rng.uniform(-1, 1)) for _ in range(dimension)]
    tiled = vector * (params.slots // dimension)
    ct = context.encrypt_vector(tiled)
    first = transform.apply(context.evaluator, ct)
    stats = transform._programs.stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    second = transform.apply(context.evaluator, ct)
    stats = transform._programs.stats()
    assert stats["misses"] == 1 and stats["hits"] == 1  # hit skipped re-plan
    assert _rows(first) == _rows(second)
    assert isinstance(transform._programs, LRUCache)


def test_percentile_nearest_rank():
    values = [5.0, 1.0, 4.0, 2.0, 3.0]
    assert percentile(values, 50) == 3.0
    assert percentile(values, 99) == 5.0
    assert percentile(values, 0) == 1.0
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_edge_cases():
    # Singleton: every quantile is the one element.
    assert percentile([3.5], 0) == 3.5
    assert percentile([3.5], 50) == 3.5
    assert percentile([3.5], 100) == 3.5
    # Two elements: nearest-rank puts p50 on the first, p99/p100 on the
    # second, and sorting is the function's job, not the caller's.
    assert percentile([9.0, 1.0], 0) == 1.0
    assert percentile([9.0, 1.0], 50) == 1.0
    assert percentile([9.0, 1.0], 51) == 9.0
    assert percentile([9.0, 1.0], 99) == 9.0
    assert percentile([9.0, 1.0], 100) == 9.0
    # Out-of-range quantiles are rejected, not clamped.
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_drain_flushes_armed_timer_and_inflight_pendings():
    """drain() resolves queued work immediately, without the batch window."""
    import asyncio

    server, keys, tracer = _dense_server(TOY, PYTHON, batch_window=60.0)
    cts = [_random_ct(TOY, 13 * (i + 1)) for i in range(3)]

    async def scenario():
        tasks = [
            asyncio.ensure_future(server.submit(
                InferenceRequest.single("t0", "dense", ct)))
            for ct in cts
        ]
        await asyncio.sleep(0)  # let every submit enqueue and arm the timer
        assert server.queue_depth == 3 and server.pending_count == 3
        assert any(not t.done() for t in server._timers.values())
        server.drain()
        assert server.queue_depth == 0
        return await asyncio.gather(*tasks)

    responses = asyncio.run(scenario())
    references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
    for response, reference in zip(responses, references):
        assert _rows(response.ciphertexts[0]) == _rows(reference)
    stats = server.stats()
    assert stats["served"] == 3 and stats["pending"] == 0
    # the 60s batch window never fired: drain did the flush
    assert stats["batch_size_histogram"] == {3: 1}


def test_drain_is_a_noop_on_an_idle_server():
    server, _, _ = _dense_server(TOY, PYTHON)
    server.drain()
    assert server.queue_depth == 0 and server.pending_count == 0
    assert server.stats()["batches"] == 0


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_unknown_tenant_and_program(self):
        server, _, _ = _dense_server(TOY, PYTHON)
        ct = _random_ct(TOY, 1)
        with pytest.raises(UnknownTenantError):
            server.serve([InferenceRequest.single("ghost", "dense", ct)])
        with pytest.raises(UnknownProgramError):
            server.serve([InferenceRequest.single("t0", "ghost", ct)])

    def test_level_mismatch(self):
        server, _, _ = _dense_server(TOY, PYTHON)
        low = _random_ct(TOY, 1, level=TOY.max_level - 1)
        with pytest.raises(LevelMismatchError):
            server.serve([InferenceRequest.single("t0", "dense", low)])

    def test_scale_mismatch(self):
        params = TOY
        server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
        server.register_tenant("t0", _keyed(params))
        pts = [_random_pt(params, 400 + j) for j in range(4)]
        server.register_program("dense", _dense_tracer(pts),
                                scale=float(params.scale))
        off_scale = _random_ct(params, 1, scale=3.0 * params.scale)
        with pytest.raises(ScaleMismatchError):
            server.serve([InferenceRequest.single("t0", "dense", off_scale)])

    def test_parameter_mismatch(self):
        server, _, _ = _dense_server(TOY, PYTHON)
        foreign = _random_ct(PARAM_SETS[1], 1)
        with pytest.raises(ParameterMismatchError):
            server.serve([InferenceRequest.single("t0", "dense", foreign)])
        with pytest.raises(ParameterMismatchError):
            server.serve([InferenceRequest(
                tenant_id="t0", program="dense", ciphertexts=["junk"])])

    def test_oversize_batch(self):
        server, _, _ = _dense_server(TOY, PYTHON, max_batch_size=2)
        cts = [_random_ct(TOY, i) for i in range(3)]
        with pytest.raises(OversizeBatchError):
            server.serve([InferenceRequest(
                tenant_id="t0", program="dense", ciphertexts=cts)])

    def test_missing_rotation_keys(self):
        """A tenant with a frozen (generator-less) key set lacking the
        program's rotation keys is rejected with the missing list."""
        params = TOY
        server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
        keys = _keyed(params)
        server.register_tenant("frozen", keys.frozen())
        pts = [_random_pt(params, 400 + j) for j in range(4)]
        server.register_program("dense", _dense_tracer(pts))
        with pytest.raises(MissingKeyError) as excinfo:
            server.serve([InferenceRequest.single(
                "frozen", "dense", _random_ct(params, 1))])
        missing = excinfo.value.missing
        assert missing and all(entry[0] == "galois" for entry in missing)

    def test_missing_relin_key(self):
        params = TOY
        server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
        keys = _keyed(params)
        server.register_tenant("frozen", keys.frozen())
        server.register_program("square", lambda x: (x * x).rescale())
        with pytest.raises(MissingKeyError) as excinfo:
            server.serve([InferenceRequest.single(
                "frozen", "square", _random_ct(params, 1))])
        assert ("relin", params.max_level) in excinfo.value.missing

    def test_provisioned_frozen_tenant_is_served(self):
        """Minimal provisioning via the plan's required elements suffices."""
        params = TOY
        keys = _keyed(params)
        pts = [_random_pt(params, 400 + j) for j in range(4)]
        tracer = _dense_tracer(pts)
        # Provision exactly what the plan needs, then freeze.
        probe = InferenceServer(params, backend=PYTHON)
        probe.register_tenant("t", keys)
        probe.register_program("dense", tracer)
        planned = probe._planned(probe._programs["dense"], params.max_level,
                                 float(params.scale), 1)
        keys.ensure_galois_keys(planned.required_galois_elements())
        server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
        server.register_tenant("frozen", keys.frozen())
        server.register_program("dense", tracer)
        ct = _random_ct(params, 8)
        response = server.serve(
            [InferenceRequest.single("frozen", "dense", ct)])[0]
        reference = _eager_outputs(params, keys, PYTHON, tracer, [ct])[0]
        assert _rows(response.ciphertexts[0]) == _rows(reference)

    def test_scheduler_keeps_serving_after_rejections(self):
        """Bad requests fail typed; good requests in the same pass succeed,
        and a later pass still works."""
        server, keys, tracer = _dense_server(TOY, PYTHON)
        good = [_random_ct(TOY, 100 + i) for i in range(2)]
        requests = [
            InferenceRequest.single("ghost", "dense", _random_ct(TOY, 1)),
            InferenceRequest.single("t0", "dense", good[0]),
            InferenceRequest.single("t0", "dense",
                                    _random_ct(TOY, 2, level=0)),
            InferenceRequest.single("t0", "dense", good[1]),
        ]
        results = server.serve(requests, return_exceptions=True)
        assert isinstance(results[0], UnknownTenantError)
        assert isinstance(results[2], LevelMismatchError)
        references = _eager_outputs(TOY, keys, PYTHON, tracer, good)
        assert _rows(results[1].ciphertexts[0]) == _rows(references[0])
        assert _rows(results[3].ciphertexts[0]) == _rows(references[1])
        stats = server.stats()
        assert stats["rejected"] == 2 and stats["served"] == 2
        assert stats["rejections"] == {"UnknownTenantError": 1,
                                       "LevelMismatchError": 1}
        # The scheduler is not wedged: a fresh pass serves normally.
        again = server.serve(
            [InferenceRequest.single("t0", "dense", good[0])])[0]
        assert _rows(again.ciphertexts[0]) == _rows(references[0])

    def test_per_tenant_counters_and_has_tenant(self):
        server, _, _ = _dense_server(TOY, PYTHON)
        server.register_tenant("t1", _keyed(TOY, seed=23))
        assert server.has_tenant("t0") and server.has_tenant("t1")
        assert not server.has_tenant("ghost")
        results = server.serve([
            InferenceRequest.single("t0", "dense", _random_ct(TOY, 1)),
            InferenceRequest.single("t0", "dense", _random_ct(TOY, 2)),
            InferenceRequest.single("t1", "dense", _random_ct(TOY, 3)),
            InferenceRequest.single("t1", "nope", _random_ct(TOY, 4)),
            InferenceRequest.single("ghost", "dense", _random_ct(TOY, 5)),
        ], return_exceptions=True)
        assert isinstance(results[3], UnknownProgramError)
        assert isinstance(results[4], UnknownTenantError)
        tenants = server.stats()["tenants"]
        assert tenants["t0"] == {"submitted": 2, "served": 2,
                                 "rejected": 0, "failed": 0}
        assert tenants["t1"] == {"submitted": 2, "served": 1,
                                 "rejected": 1, "failed": 0}
        # Even never-registered tenant ids are accounted, as rejections.
        assert tenants["ghost"] == {"submitted": 1, "served": 0,
                                    "rejected": 1, "failed": 0}

    def test_registration_validation(self):
        server, _, _ = _dense_server(TOY, PYTHON)
        with pytest.raises(ValueError):
            server.register_tenant("t0", _keyed(TOY))   # duplicate id
        with pytest.raises(ValueError):
            server.register_program("dense", lambda x: x)  # duplicate name
        with pytest.raises(ValueError):
            server.register_tenant("other", _keyed(PARAM_SETS[1]))
        with pytest.raises(ValueError):
            InferenceServer(TOY, max_batch_size=0)


# ---------------------------------------------------------------------------
# Hybrid programs behind the scheduler
# ---------------------------------------------------------------------------

class TestSchemeMismatch:
    """Scheme validation of hosted hybrid programs (wire code 31)."""

    @staticmethod
    def _hybrid_tracer():
        def tracer(x):
            lwe = x.extract_lwe(0).keyswitch_to_tfhe()
            return x.trace.repack([lwe.keyswitch_to_ckks()])
        return tracer

    def _hybrid_server(self):
        from repro.fhe.conversion.bridge import SchemeBridge
        from repro.fhe.tfhe import TFHEContext
        from repro.workloads.hybrid_workloads import hybrid_query_parameters

        params, tparams = hybrid_query_parameters()
        server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
        server.register_program("filter", self._hybrid_tracer(),
                                level=1, scale=float(params.scale),
                                scheme="hybrid", tfhe_params=tparams)
        keys = _keyed(params)
        tfhe = TFHEContext(tparams, seed=7)
        bridge = SchemeBridge(params, keys.secret, tfhe, seed=7)
        server.register_tenant("provisioned", keys, tfhe=tfhe, bridge=bridge)
        server.register_tenant("ckks-only", keys)
        return server, params

    def test_unprovisioned_tenant_is_rejected_with_code_31(self):
        server, params = self._hybrid_server()
        ct = _random_ct(params, 1, level=1)
        with pytest.raises(SchemeMismatchError) as excinfo:
            server.serve([InferenceRequest.single("ckks-only", "filter", ct)])
        assert excinfo.value.code == 31
        assert excinfo.value.expected == "hybrid"
        assert excinfo.value.got == "ckks"

    def test_provisioned_tenant_is_served_after_a_rejection(self):
        """The rejection is per-request: the same server keeps serving a
        tenant that holds TFHE/bridge material."""
        server, params = self._hybrid_server()
        ct = _random_ct(params, 1, level=1)
        with pytest.raises(SchemeMismatchError):
            server.serve([InferenceRequest.single("ckks-only", "filter", ct)])
        response = server.serve(
            [InferenceRequest.single("provisioned", "filter", ct)])[0]
        assert len(response.ciphertexts) == 1
        assert response.ciphertexts[0].level == 0    # repacked at level 0

    def test_lwe_payload_to_ckks_program_is_rejected(self):
        from repro.fhe.params import TFHEParameters
        from repro.fhe.tfhe import LWEContext

        server, _, _ = _dense_server(TOY, PYTHON)
        lwe = LWEContext(TFHEParameters.hybrid(), seed=0).encrypt(1)
        with pytest.raises(SchemeMismatchError) as excinfo:
            server.serve([InferenceRequest(
                tenant_id="t0", program="dense", ciphertexts=[lwe])])
        assert excinfo.value.expected == "ckks"
        assert excinfo.value.got == "tfhe"

    def test_declared_scheme_must_match_the_trace(self):
        """A program whose registration disagrees with what its trace
        actually does is caught when the plan is first built."""
        from repro.workloads.hybrid_workloads import hybrid_query_parameters

        params, tparams = hybrid_query_parameters()
        server = InferenceServer(params, backend=PYTHON, batch_window=0.001)
        server.register_tenant("t0", _keyed(params))
        # Declared hybrid, traces pure CKKS.
        server.register_program("pure", lambda x: x + x, level=1,
                                scale=float(params.scale),
                                scheme="hybrid", tfhe_params=tparams)
        # Declared CKKS, traces hybrid ops.
        server.register_program("sneaky", self._hybrid_tracer(), level=1,
                                scale=float(params.scale),
                                tfhe_params=tparams)
        ct = _random_ct(params, 1, level=1)
        with pytest.raises(SchemeMismatchError):
            server.serve([InferenceRequest.single("t0", "pure", ct)])
        with pytest.raises(SchemeMismatchError):
            server.serve([InferenceRequest.single("t0", "sneaky", ct)])

    def test_hybrid_registration_requires_tfhe_params(self):
        server = InferenceServer(TOY, backend=PYTHON, batch_window=0.001)
        with pytest.raises(ValueError, match="TFHE parameter"):
            server.register_program("filter", self._hybrid_tracer(),
                                    scheme="hybrid")
        with pytest.raises(ValueError, match="scheme"):
            server.register_program("filter", self._hybrid_tracer(),
                                    scheme="bfv")
