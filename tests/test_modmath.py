"""Unit and property tests for repro.fhe.modmath."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert modmath.is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 7917, 7921):
            assert not modmath.is_prime(n)

    def test_negative_numbers_are_not_prime(self):
        assert not modmath.is_prime(-7)

    def test_carmichael_numbers(self):
        # Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not modmath.is_prime(n)

    def test_large_known_prime(self):
        assert modmath.is_prime(2**61 - 1)  # Mersenne prime
        assert not modmath.is_prime(2**67 - 1)  # famously composite

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=200, deadline=None)
    def test_matches_trial_division(self, n):
        def trial(n):
            if n < 2:
                return False
            return all(n % d for d in range(2, int(math.isqrt(n)) + 1))
        assert modmath.is_prime(n) == trial(n)


class TestPrimeSearch:
    def test_next_prime(self):
        assert modmath.next_prime(1) == 2
        assert modmath.next_prime(2) == 3
        assert modmath.next_prime(14) == 17
        assert modmath.next_prime(17) == 19

    def test_previous_prime(self):
        assert modmath.previous_prime(3) == 2
        assert modmath.previous_prime(18) == 17
        assert modmath.previous_prime(17) == 13

    def test_previous_prime_raises_below_two(self):
        with pytest.raises(ValueError):
            modmath.previous_prime(2)

    @pytest.mark.parametrize("bits,degree", [(20, 64), (30, 256), (36, 1024), (40, 4096)])
    def test_find_ntt_prime(self, bits, degree):
        p = modmath.find_ntt_prime(bits, degree)
        assert modmath.is_prime(p)
        assert p % (2 * degree) == 1
        assert p.bit_length() <= bits

    def test_find_ntt_primes_are_distinct_and_decreasing(self):
        primes = modmath.find_ntt_primes(30, 128, 4)
        assert len(set(primes)) == 4
        assert primes == sorted(primes, reverse=True)

    def test_find_ntt_prime_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            modmath.find_ntt_prime(30, 100)


class TestModularArithmetic:
    @given(st.integers(min_value=1, max_value=10**9), st.integers(min_value=3, max_value=10**9))
    @settings(max_examples=100, deadline=None)
    def test_mod_inverse_property(self, value, modulus_seed):
        modulus = modmath.next_prime(modulus_seed)
        value %= modulus
        if value == 0:
            value = 1
        inverse = modmath.mod_inverse(value, modulus)
        assert (value * inverse) % modulus == 1

    def test_mod_inverse_of_zero_raises(self):
        with pytest.raises(ValueError):
            modmath.mod_inverse(0, 17)

    def test_mod_inverse_non_coprime_raises(self):
        with pytest.raises(ValueError):
            modmath.mod_inverse(6, 9)

    def test_centered(self):
        assert modmath.centered(0, 17) == 0
        assert modmath.centered(8, 17) == 8
        assert modmath.centered(9, 17) == -8
        assert modmath.centered(16, 17) == -1

    @given(st.integers(), st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_centered_is_congruent_and_bounded(self, value, modulus):
        c = modmath.centered(value, modulus)
        assert (c - value) % modulus == 0
        assert -modulus / 2 < c <= modulus / 2


class TestRootsOfUnity:
    @pytest.mark.parametrize("degree", [4, 8, 16, 64, 256])
    def test_2nth_root_of_unity(self, degree):
        p = modmath.find_ntt_prime(24, degree)
        psi = modmath.find_2nth_root_of_unity(degree, p)
        assert pow(psi, 2 * degree, p) == 1
        assert pow(psi, degree, p) == p - 1  # psi^N = -1 (primitive)

    def test_primitive_root(self):
        for p in (17, 97, 7681, 12289):
            g = modmath.primitive_root(p)
            # g must not have order dividing (p-1)/f for any prime factor f.
            order = p - 1
            seen = set()
            value = 1
            for _ in range(order):
                value = value * g % p
                seen.add(value)
            assert len(seen) == order

    def test_root_of_unity_requires_divisibility(self):
        with pytest.raises(ValueError):
            modmath.find_primitive_root_of_unity(64, 17)
