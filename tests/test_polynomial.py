"""Unit and property tests for ring-element arithmetic (repro.fhe.polynomial)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath
from repro.fhe.polynomial import (
    Polynomial,
    sample_gaussian,
    sample_ternary,
    sample_uniform,
)

DEGREE = 32
MODULUS = modmath.find_ntt_prime(24, DEGREE)


def random_poly(seed, degree=DEGREE, modulus=MODULUS):
    rng = random.Random(seed)
    return Polynomial(degree, modulus, [rng.randrange(modulus) for _ in range(degree)])


coefficient_lists = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6), min_size=DEGREE, max_size=DEGREE
)


class TestConstruction:
    def test_zero_padding(self):
        poly = Polynomial(8, 17, [1, 2, 3])
        assert poly.coefficients == [1, 2, 3, 0, 0, 0, 0, 0]

    def test_negative_coefficients_are_reduced(self):
        poly = Polynomial(4, 17, [-1, -2, 16, 18])
        assert poly.coefficients == [16, 15, 16, 1]

    def test_too_many_coefficients(self):
        with pytest.raises(ValueError):
            Polynomial(4, 17, [1] * 5)

    def test_non_power_of_two_degree(self):
        with pytest.raises(ValueError):
            Polynomial(12, 17)

    def test_zero_and_one(self):
        zero = Polynomial.zero(8, 17)
        one = Polynomial.one(8, 17)
        assert zero.is_zero()
        assert not one.is_zero()
        assert one.coefficients[0] == 1

    def test_monomial_wraps_negacyclically(self):
        mono = Polynomial.monomial(4, 17, 5, 3)   # 3 * X^5 = -3 * X
        assert mono.coefficients == [0, 14, 0, 0]


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a, b = random_poly(1), random_poly(2)
        assert (a + b) - b == a

    def test_negation(self):
        a = random_poly(3)
        assert (a + (-a)).is_zero()

    @given(coefficient_lists, coefficient_lists)
    @settings(max_examples=30, deadline=None)
    def test_addition_commutes(self, coeffs_a, coeffs_b):
        a = Polynomial(DEGREE, MODULUS, coeffs_a)
        b = Polynomial(DEGREE, MODULUS, coeffs_b)
        assert a + b == b + a

    @given(coefficient_lists, coefficient_lists)
    @settings(max_examples=20, deadline=None)
    def test_multiplication_commutes(self, coeffs_a, coeffs_b):
        a = Polynomial(DEGREE, MODULUS, coeffs_a)
        b = Polynomial(DEGREE, MODULUS, coeffs_b)
        assert a * b == b * a

    @given(coefficient_lists, coefficient_lists, coefficient_lists)
    @settings(max_examples=15, deadline=None)
    def test_distributivity(self, ca, cb, cc):
        a = Polynomial(DEGREE, MODULUS, ca)
        b = Polynomial(DEGREE, MODULUS, cb)
        c = Polynomial(DEGREE, MODULUS, cc)
        assert a * (b + c) == a * b + a * c

    def test_multiplication_by_one_is_identity(self):
        a = random_poly(4)
        assert a * Polynomial.one(DEGREE, MODULUS) == a

    def test_multiplication_matches_schoolbook_for_non_ntt_modulus(self):
        # 23 is prime but 23 != 1 mod 16, so the schoolbook path is used.
        a = Polynomial(8, 23, [1, 2, 3, 4, 5, 6, 7, 8])
        b = Polynomial(8, 23, [8, 7, 6, 5, 4, 3, 2, 1])
        ntt_modulus = modmath.find_ntt_prime(20, 8)
        a2 = Polynomial(8, ntt_modulus, a.coefficients)
        b2 = Polynomial(8, ntt_modulus, b.coefficients)
        # Compare the centred result of both paths on small inputs (no wrap).
        assert (a * b).coefficients == [c % 23 for c in (a2 * b2).centered_coefficients()]

    def test_scalar_multiplication(self):
        a = random_poly(5)
        assert a.scalar_multiply(3) == a + a + a

    def test_incompatible_rings_raise(self):
        a = Polynomial(8, 17, [1])
        b = Polynomial(8, 19, [1])
        with pytest.raises(ValueError):
            _ = a + b

    def test_x_to_the_n_is_minus_one(self):
        x = Polynomial.monomial(DEGREE, MODULUS, 1)
        power = Polynomial.one(DEGREE, MODULUS)
        for _ in range(DEGREE):
            power = power * x
        assert power == -Polynomial.one(DEGREE, MODULUS)


class TestMonomialAndAutomorphism:
    def test_multiply_by_monomial_matches_polynomial_multiplication(self):
        a = random_poly(6)
        for degree in (0, 1, 5, DEGREE - 1, DEGREE, DEGREE + 3, 2 * DEGREE - 1):
            direct = a * Polynomial.monomial(DEGREE, MODULUS, degree)
            assert a.multiply_by_monomial(degree) == direct

    def test_multiply_by_negative_monomial_roundtrip(self):
        a = random_poly(7)
        assert a.multiply_by_monomial(5).multiply_by_monomial(-5) == a

    def test_full_rotation_is_negation(self):
        a = random_poly(8)
        assert a.multiply_by_monomial(DEGREE) == -a
        assert a.multiply_by_monomial(2 * DEGREE) == a

    def test_automorphism_identity(self):
        a = random_poly(9)
        assert a.automorphism(1) == a

    def test_automorphism_composition(self):
        a = random_poly(10)
        g1, g2 = 5, 9
        assert a.automorphism(g1).automorphism(g2) == a.automorphism(g1 * g2 % (2 * DEGREE))

    def test_automorphism_is_ring_homomorphism(self):
        a, b = random_poly(11), random_poly(12)
        g = 5
        assert (a * b).automorphism(g) == a.automorphism(g) * b.automorphism(g)
        assert (a + b).automorphism(g) == a.automorphism(g) + b.automorphism(g)

    def test_automorphism_requires_odd_exponent(self):
        with pytest.raises(ValueError):
            random_poly(13).automorphism(4)


class TestDecomposition:
    @pytest.mark.parametrize("base_log,levels", [(4, 4), (6, 3), (8, 2)])
    def test_reconstruction_error_is_bounded(self, base_log, levels):
        base = 1 << base_log
        modulus = modmath.find_ntt_prime(30, DEGREE)
        rng = random.Random(base_log * levels)
        poly = Polynomial(DEGREE, modulus, [rng.randrange(modulus) for _ in range(DEGREE)])
        digits = poly.decompose(base, levels)
        factors = [modulus // base ** (j + 1) for j in range(levels)]
        reconstructed = Polynomial.zero(DEGREE, modulus)
        for digit, factor in zip(digits, factors):
            reconstructed = reconstructed + digit.scalar_multiply(factor)
        error = (poly - reconstructed).infinity_norm()
        # Error bounded by half the smallest gadget factor (plus digit rounding).
        assert error <= modulus // base ** levels // 2 + base

    def test_digits_are_small(self):
        base, levels = 16, 4
        poly = random_poly(20)
        for digit in poly.decompose(base, levels):
            assert digit.infinity_norm() <= base // 2 + 1

    def test_decompose_zero(self):
        zero = Polynomial.zero(DEGREE, MODULUS)
        for digit in zero.decompose(8, 3):
            assert digit.is_zero()

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            random_poly(21).decompose(1, 3)


class TestModulusSwitching:
    def test_switch_preserves_scaled_value(self):
        q_from = modmath.find_ntt_prime(30, DEGREE)
        q_to = modmath.find_ntt_prime(20, DEGREE)
        rng = random.Random(99)
        coeffs = [rng.randrange(q_from) for _ in range(DEGREE)]
        poly = Polynomial(DEGREE, q_from, coeffs)
        switched = poly.switch_modulus(q_to)
        for original, new in zip(poly.centered_coefficients(), switched.centered_coefficients()):
            expected = original * q_to / q_from
            assert abs(new - expected) <= 1.0

    def test_lift_modulus_preserves_small_values(self):
        poly = Polynomial(DEGREE, 97, [1, -2, 3, -4])
        lifted = poly.lift_modulus(MODULUS)
        assert lifted.centered_coefficients()[:4] == [1, -2, 3, -4]


class TestNTTRepresentation:
    def test_roundtrip(self):
        a = random_poly(30)
        assert Polynomial.from_ntt(DEGREE, MODULUS, a.to_ntt()) == a

    def test_pointwise_multiplication_in_ntt_domain(self):
        a, b = random_poly(31), random_poly(32)
        product_via_ntt = Polynomial.from_ntt(
            DEGREE, MODULUS, [x * y % MODULUS for x, y in zip(a.to_ntt(), b.to_ntt())]
        )
        assert product_via_ntt == a * b

    def test_non_ntt_friendly_modulus_raises(self):
        with pytest.raises(ValueError):
            Polynomial(8, 23, [1, 2]).to_ntt()


class TestSampling:
    def test_uniform_sampling_range(self):
        rng = random.Random(0)
        poly = sample_uniform(64, 97, rng)
        assert all(0 <= c < 97 for c in poly.coefficients)

    def test_ternary_sampling_values(self):
        rng = random.Random(1)
        poly = sample_ternary(64, 97, rng)
        assert set(poly.centered_coefficients()) <= {-1, 0, 1}

    def test_ternary_hamming_weight(self):
        rng = random.Random(2)
        poly = sample_ternary(64, 97, rng, hamming_weight=16)
        assert sum(1 for c in poly.centered_coefficients() if c != 0) == 16

    def test_gaussian_sampling_is_small(self):
        rng = random.Random(3)
        poly = sample_gaussian(64, MODULUS, rng, stddev=3.2)
        assert poly.infinity_norm() < 40
