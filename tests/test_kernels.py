"""Tests for the kernel IR, operation counts, and kernel flows."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.params import CKKS_DEFAULT, CKKS_KEYSWITCH_BREAKDOWN, CKKSParameters, TFHE_SET_I, TFHE_SET_III
from repro.kernels import (
    KERNEL_CLASS,
    Kernel,
    KernelKind,
    KernelStep,
    KernelTrace,
    blind_rotation_flow,
    ckks_operation_flow,
    ckks_to_tfhe_flow,
    external_product_flow,
    hadd_flow,
    hmult_flow,
    hrotate_flow,
    kernel_additions,
    kernel_multiplications,
    keyswitch_flow,
    pbs_flow,
    pmult_flow,
    rescale_flow,
    tfhe_to_ckks_flow,
    trace_multiplications,
    trace_operation_breakdown,
)
from repro.kernels.tfhe_flows import gate_bootstrap_flow, lwe_keyswitch_flow


class TestKernel:
    def test_elements(self):
        kernel = Kernel(KernelKind.NTT, poly_length=1024, count=4)
        assert kernel.elements == 4096

    def test_scaled(self):
        kernel = Kernel(KernelKind.MAC, poly_length=256, count=2, inner=6)
        scaled = kernel.scaled(3)
        assert scaled.count == 6
        assert scaled.inner == 6
        assert scaled.poly_length == 256

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Kernel(KernelKind.NTT, poly_length=0)
        with pytest.raises(ValueError):
            Kernel(KernelKind.NTT, poly_length=8, count=0)
        with pytest.raises(ValueError):
            Kernel(KernelKind.NTT, poly_length=8, inner=0)

    def test_every_kind_has_a_class(self):
        for kind in KernelKind:
            assert kind in KERNEL_CLASS


class TestKernelTrace:
    def test_add_step_and_iteration(self):
        trace = KernelTrace(name="t")
        trace.add_step([Kernel(KernelKind.NTT, 64)], label="a")
        trace.add_step([Kernel(KernelKind.MAC, 64, inner=2)], repeat=3, label="b")
        assert len(trace) == 2
        kinds = [k.kind for k in trace.kernels()]
        assert kinds == [KernelKind.NTT, KernelKind.MAC]

    def test_empty_step_is_skipped(self):
        trace = KernelTrace(name="t")
        trace.add_step([], label="empty")
        assert len(trace) == 0

    def test_repeat_expands_histogram(self):
        trace = KernelTrace(name="t")
        trace.add_step([Kernel(KernelKind.NTT, 64, count=2)], repeat=5)
        histogram = trace.kernel_histogram()
        assert histogram[KernelKind.NTT] == 64 * 2 * 5

    def test_extend_and_concatenate(self):
        a = KernelTrace(name="a")
        a.add_step([Kernel(KernelKind.NTT, 64)])
        b = KernelTrace(name="b")
        b.add_step([Kernel(KernelKind.MODADD, 64)])
        combined = KernelTrace.concatenate("ab", [a, b])
        assert len(combined) == 2
        a.extend(b, repeat=2)
        assert len(a) == 3

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            KernelStep(kernels=[Kernel(KernelKind.NTT, 64)], repeat=0)


class TestOpCounts:
    def test_ntt_multiplication_count(self):
        kernel = Kernel(KernelKind.NTT, poly_length=1024, count=1)
        # N/2 * log2(N) butterflies plus N twisting multiplications.
        assert kernel_multiplications(kernel) == 512 * 10 + 1024

    def test_mac_counts(self):
        kernel = Kernel(KernelKind.BCONV, poly_length=256, count=3, inner=7)
        assert kernel_multiplications(kernel) == 3 * 256 * 7
        assert kernel_additions(kernel) == 3 * 256 * 6

    def test_data_kernels_cost_no_multiplications(self):
        for kind in (KernelKind.AUTO, KernelKind.ROTATE, KernelKind.SAMPLE_EXTRACT,
                     KernelKind.DECOMPOSE, KernelKind.TRANSPOSE):
            assert kernel_multiplications(Kernel(kind, 256, count=4)) == 0

    def test_modadd_has_additions_only(self):
        kernel = Kernel(KernelKind.MODADD, poly_length=128, count=2)
        assert kernel_multiplications(kernel) == 0
        assert kernel_additions(kernel) == 256

    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_multiplications_scale_linearly_with_count(self, log_n, count):
        n = 1 << log_n
        single = Kernel(KernelKind.NTT, n, count=1)
        many = Kernel(KernelKind.NTT, n, count=count)
        assert kernel_multiplications(many) == count * kernel_multiplications(single)


class TestCKKSFlows:
    def test_keyswitch_flow_structure(self):
        params = CKKS_DEFAULT
        trace = keyswitch_flow(params, params.max_level)
        labels = [step.label for step in trace]
        assert labels == ["decompose", "digit-lift", "inner-product", "intt", "moddown"]
        histogram = trace.kernel_histogram()
        assert histogram[KernelKind.NTT] > 0
        assert histogram[KernelKind.BCONV] > 0

    def test_keyswitch_ntt_count_matches_algorithm(self):
        params = CKKS_DEFAULT
        level = params.max_level
        beta = params.beta(level)
        extended = level + 1 + params.num_special_moduli
        trace = keyswitch_flow(params, level)
        ntt_kernels = [k for k in trace.kernels() if k.kind == KernelKind.NTT]
        # Algorithm 1 lines 3-6: beta digits, each NTT-ed over the extended basis.
        assert sum(k.count for k in ntt_kernels) == beta * extended

    def test_keyswitch_work_shrinks_with_level(self):
        params = CKKS_DEFAULT
        high = trace_multiplications(keyswitch_flow(params, params.max_level))
        low = trace_multiplications(keyswitch_flow(params, 5))
        assert low < high

    def test_hmult_includes_keyswitch(self):
        trace = hmult_flow(CKKS_DEFAULT, 10)
        kinds = {k.kind for k in trace.kernels()}
        assert {KernelKind.MODMUL, KernelKind.NTT, KernelKind.BCONV, KernelKind.IP} <= kinds

    def test_hmult_with_rescale_is_larger(self):
        base = trace_multiplications(hmult_flow(CKKS_DEFAULT, 10, include_rescale=False))
        with_rescale = trace_multiplications(hmult_flow(CKKS_DEFAULT, 10, include_rescale=True))
        assert with_rescale > base

    def test_hrotate_includes_automorphism(self):
        trace = hrotate_flow(CKKS_DEFAULT, 10)
        kinds = {k.kind for k in trace.kernels()}
        assert KernelKind.AUTO in kinds

    def test_cheap_operations_have_no_ntt(self):
        for flow in (hadd_flow, pmult_flow):
            kinds = {k.kind for k in flow(CKKS_DEFAULT, 10).kernels()}
            assert KernelKind.NTT not in kinds

    def test_rescale_level_zero_raises(self):
        with pytest.raises(ValueError):
            rescale_flow(CKKS_DEFAULT, 0)

    def test_operation_dispatcher(self):
        for name in ("HMult", "PMult", "HAdd", "PAdd", "HRotate", "Rescale", "Conjugate"):
            trace = ckks_operation_flow(name, CKKS_DEFAULT, 8)
            assert len(trace) >= 1
        with pytest.raises(ValueError):
            ckks_operation_flow("Bogus", CKKS_DEFAULT, 8)

    def test_table_ii_composition(self):
        """Table II: which kernels compose each CKKS operation."""
        expectations = {
            "HMult": {KernelKind.NTT, KernelKind.BCONV, KernelKind.IP,
                      KernelKind.MODMUL, KernelKind.MODADD},
            "PMult": {KernelKind.MODMUL, KernelKind.MODADD},
            "HAdd": {KernelKind.MODADD},
            "PAdd": {KernelKind.MODADD},
            "HRotate": {KernelKind.NTT, KernelKind.BCONV, KernelKind.IP,
                        KernelKind.MODMUL, KernelKind.MODADD, KernelKind.AUTO},
            "Rescale": {KernelKind.NTT, KernelKind.MODADD},
        }
        for name, expected in expectations.items():
            kinds = {k.kind for k in ckks_operation_flow(name, CKKS_DEFAULT, 10).kernels()}
            assert expected <= kinds, f"{name} is missing kernels {expected - kinds}"


class TestTFHEFlows:
    def test_external_product_branches(self):
        trace = external_product_flow(TFHE_SET_I)
        ntt = [k for k in trace.kernels() if k.kind == KernelKind.NTT]
        assert sum(k.count for k in ntt) == TFHE_SET_I.external_product_branches

    def test_blind_rotation_repeats_lwe_dimension_times(self):
        trace = blind_rotation_flow(TFHE_SET_I)
        assert all(step.repeat == TFHE_SET_I.lwe_dimension for step in trace)

    def test_pbs_flow_contains_all_stages(self):
        kinds = {k.kind for k in pbs_flow(TFHE_SET_I).kernels()}
        assert {KernelKind.MODSWITCH, KernelKind.NTT, KernelKind.MAC,
                KernelKind.SAMPLE_EXTRACT, KernelKind.LWE_KEYSWITCH} <= kinds

    def test_pbs_work_grows_with_parameter_strength(self):
        weak = trace_multiplications(pbs_flow(TFHE_SET_I))
        strong = trace_multiplications(pbs_flow(TFHE_SET_III))
        assert strong > weak

    def test_gate_bootstrap_adds_linear_step(self):
        gate = gate_bootstrap_flow(TFHE_SET_I)
        assert len(gate) == len(pbs_flow(TFHE_SET_I)) + 1

    def test_lwe_keyswitch_reduction_depth(self):
        trace = lwe_keyswitch_flow(TFHE_SET_I)
        ks = [k for k in trace.kernels() if k.kind == KernelKind.LWE_KEYSWITCH][0]
        assert ks.inner == TFHE_SET_I.glwe_lwe_dimension * TFHE_SET_I.ksk_levels


class TestConversionFlows:
    def test_ckks_to_tfhe_is_pure_extraction(self):
        trace = ckks_to_tfhe_flow(CKKS_DEFAULT, nslot=32)
        kinds = {k.kind for k in trace.kernels()}
        assert kinds == {KernelKind.SAMPLE_EXTRACT}

    def test_tfhe_to_ckks_uses_ckks_datapath(self):
        params = CKKSParameters(ring_degree=16384, max_level=8, dnum=3, name="conv-test")
        trace = tfhe_to_ckks_flow(params, nslot=8)
        kinds = {k.kind for k in trace.kernels()}
        assert {KernelKind.AUTO, KernelKind.NTT, KernelKind.BCONV, KernelKind.ROTATE} <= kinds

    def test_repacking_work_grows_with_nslot(self):
        params = CKKSParameters(ring_degree=16384, max_level=8, dnum=3, name="conv-test")
        work = [trace_multiplications(tfhe_to_ckks_flow(params, nslot=n)) for n in (2, 8, 32)]
        assert work[0] < work[1] < work[2]

    def test_nslot_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            tfhe_to_ckks_flow(CKKS_DEFAULT, nslot=3)


class TestWorkloadBreakdown:
    def test_figure_2_shape(self):
        """PBS is NTT-dominated; CKKS keyswitch is closer to balanced (Fig. 2)."""
        keyswitch = keyswitch_flow(CKKS_KEYSWITCH_BREAKDOWN, CKKS_KEYSWITCH_BREAKDOWN.max_level)
        ks_breakdown = trace_operation_breakdown(keyswitch)
        ks_ntt_share = ks_breakdown["ntt"] / (ks_breakdown["ntt"] + ks_breakdown["mac"]
                                              + ks_breakdown["elementwise"])
        pbs_breakdown = trace_operation_breakdown(pbs_flow(TFHE_SET_I))
        pbs_ntt_share = pbs_breakdown["ntt"] / (pbs_breakdown["ntt"] + pbs_breakdown["mac"]
                                                + pbs_breakdown["elementwise"])
        assert 0.4 < ks_ntt_share < 0.7
        assert 0.65 < pbs_ntt_share < 0.9
        assert pbs_ntt_share > ks_ntt_share
