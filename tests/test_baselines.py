"""Tests for the comparator accelerator models (CPU, GPU, ASICs, two-chip)."""

import pytest

from repro.baselines import (
    AcceleratorModel,
    SharpPlusMorphling,
    ThroughputSpec,
    ark_model,
    bts_model,
    cpu_ckks_baseline,
    cpu_conversion_baseline,
    cpu_hybrid_baseline,
    cpu_tfhe_baseline,
    craterlake_model,
    f1_model,
    gpu_ckks_baseline,
    gpu_tfhe_baseline,
    matcha_model,
    morphling_1ghz_model,
    morphling_model,
    sharp_model,
    strix_model,
)
from repro.baselines.combined import HybridSegment
from repro.fhe.params import CKKS_DEFAULT, TFHE_SET_I
from repro.kernels import hmult_flow, keyswitch_flow, pbs_flow


class TestThroughputSpec:
    def test_effective_per_cycle(self):
        spec = ThroughputSpec(
            ntt_butterflies_per_cycle=100, mac_lanes_per_cycle=200,
            elementwise_lanes_per_cycle=300, permute_lanes_per_cycle=400,
            ntt_efficiency=0.5, mac_efficiency=0.5,
        )
        assert spec.effective_per_cycle("ntt") == 50
        assert spec.effective_per_cycle("mac") == 100
        with pytest.raises(ValueError):
            spec.effective_per_cycle("bogus")


class TestAcceleratorModel:
    def test_latency_and_throughput_relationship(self):
        model = sharp_model()
        report = model.run(keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level))
        assert report.latency_cycles > 0
        assert report.throughput_cycles <= report.latency_cycles

    def test_run_many_concatenates(self):
        model = sharp_model()
        trace = hmult_flow(CKKS_DEFAULT, 10)
        assert model.run_many([trace, trace]).latency_cycles == pytest.approx(
            2 * model.run(trace).latency_cycles, rel=1e-6
        )

    def test_scheme_support_flags(self):
        assert sharp_model().supports("ckks")
        assert not sharp_model().supports("tfhe")
        assert morphling_model().supports("tfhe")
        assert not morphling_model().supports("ckks")

    def test_frequency_scales_performance(self):
        fast = morphling_model(frequency_ghz=1.2)
        slow = morphling_1ghz_model()
        trace = pbs_flow(TFHE_SET_I)
        assert fast.run(trace).operations_per_second > slow.run(trace).operations_per_second


class TestRelativeOrdering:
    """The qualitative ordering of Tables VI and VII must hold in the models."""

    def test_ckks_ordering_cpu_gpu_asic(self):
        trace = keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level)
        cpu = cpu_ckks_baseline().run(trace).latency_seconds
        gpu = gpu_ckks_baseline().run(trace).latency_seconds
        sharp = sharp_model().run(trace).latency_seconds
        assert sharp < gpu < cpu

    def test_ckks_asic_generations(self):
        trace = keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level)
        bts = bts_model().run(trace).latency_seconds
        ark = ark_model().run(trace).latency_seconds
        sharp = sharp_model().run(trace).latency_seconds
        assert sharp <= ark <= bts

    def test_tfhe_ordering(self):
        trace = pbs_flow(TFHE_SET_I)
        results = {
            model().name if callable(model) else model.name: model().run(trace).operations_per_second
            for model in (cpu_tfhe_baseline, gpu_tfhe_baseline, matcha_model, strix_model,
                          morphling_model)
        }
        assert results["Baseline-TFHE (CPU)"] < results["NuFHE (GPU)"] < results["Matcha"]
        assert results["Matcha"] < results["Strix"] < results["Morphling"]

    def test_craterlake_and_f1_are_slower_than_sharp(self):
        trace = keyswitch_flow(CKKS_DEFAULT, CKKS_DEFAULT.max_level)
        sharp = sharp_model().run(trace).latency_seconds
        assert craterlake_model().run(trace).latency_seconds > sharp * 0.8
        assert f1_model().run(trace).latency_seconds > sharp

    def test_unsupported_kernel_raises(self):
        crippled = AcceleratorModel(
            name="no-ntt",
            spec=ThroughputSpec(ntt_butterflies_per_cycle=0, mac_lanes_per_cycle=1,
                                elementwise_lanes_per_cycle=1, permute_lanes_per_cycle=1),
        )
        with pytest.raises(ValueError):
            crippled.run(keyswitch_flow(CKKS_DEFAULT, 5))


class TestSharpPlusMorphling:
    def test_routes_segments_to_the_right_chip(self):
        system = SharpPlusMorphling()
        ckks_segment = HybridSegment(scheme="ckks",
                                     traces=(hmult_flow(CKKS_DEFAULT, 10),))
        tfhe_segment = HybridSegment(scheme="tfhe", traces=(pbs_flow(TFHE_SET_I),))
        breakdown = system.run_segment_breakdown([ckks_segment, tfhe_segment])
        labels = [label for label, _ in breakdown]
        assert labels == ["segment-0-ckks", "segment-1-tfhe"]

    def test_pcie_transfer_adds_latency(self):
        system = SharpPlusMorphling()
        base = [HybridSegment(scheme="ckks", traces=(hmult_flow(CKKS_DEFAULT, 10),))]
        with_transfer = [HybridSegment(scheme="ckks",
                                       traces=(hmult_flow(CKKS_DEFAULT, 10),),
                                       transfer_bytes=1e9)]
        assert system.run_hybrid(with_transfer) > system.run_hybrid(base)

    def test_transfer_seconds(self):
        system = SharpPlusMorphling(pcie_bandwidth_gbps=128.0)
        assert system.transfer_seconds(128e9) == pytest.approx(1.0)
        assert system.transfer_seconds(0) == 0.0

    def test_combined_area_exceeds_trinity(self):
        from repro.core.area_power import AreaPowerModel
        from repro.core.config import DEFAULT_TRINITY_CONFIG
        system = SharpPlusMorphling()
        trinity_area = AreaPowerModel().total_area_mm2(DEFAULT_TRINITY_CONFIG)
        assert trinity_area < system.area_mm2

    def test_invalid_segment_scheme(self):
        with pytest.raises(ValueError):
            HybridSegment(scheme="bogus", traces=())
