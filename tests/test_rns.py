"""Unit and property tests for the RNS representation and BConv."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath
from repro.fhe.polynomial import Polynomial
from repro.fhe.rns import (
    RNSBasis,
    RNSPolynomial,
    exact_basis_conversion,
    fast_basis_conversion,
)

DEGREE = 16


def make_basis(count, bits=24, offset=0):
    return RNSBasis(
        [modmath.find_ntt_prime(bits, DEGREE, index=offset + i) for i in range(count)]
    )


class TestRNSBasis:
    def test_product(self):
        basis = RNSBasis([5, 7, 9])
        assert basis.product == 315

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            RNSBasis([6, 9])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RNSBasis([7, 7])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RNSBasis([])

    @given(st.integers(min_value=0, max_value=315 - 1))
    @settings(max_examples=100, deadline=None)
    def test_crt_roundtrip(self, value):
        basis = RNSBasis([5, 7, 9])
        assert basis.reconstruct(basis.to_residues(value)) == value

    def test_subset_and_extend(self):
        basis = make_basis(3)
        assert len(basis.subset(2)) == 2
        extra = modmath.find_ntt_prime(26, DEGREE)
        assert len(basis.extend([extra])) == 4

    def test_subset_bounds(self):
        basis = make_basis(2)
        with pytest.raises(ValueError):
            basis.subset(0)
        with pytest.raises(ValueError):
            basis.subset(3)


class TestRNSPolynomial:
    def test_integer_roundtrip(self):
        basis = make_basis(3)
        rng = random.Random(0)
        coeffs = [rng.randrange(basis.product) for _ in range(DEGREE)]
        poly = RNSPolynomial.from_integer_coefficients(DEGREE, basis, coeffs)
        assert poly.to_integer_coefficients() == coeffs

    def test_addition_matches_big_integer_addition(self):
        basis = make_basis(3)
        rng = random.Random(1)
        a_coeffs = [rng.randrange(basis.product) for _ in range(DEGREE)]
        b_coeffs = [rng.randrange(basis.product) for _ in range(DEGREE)]
        a = RNSPolynomial.from_integer_coefficients(DEGREE, basis, a_coeffs)
        b = RNSPolynomial.from_integer_coefficients(DEGREE, basis, b_coeffs)
        expected = [(x + y) % basis.product for x, y in zip(a_coeffs, b_coeffs)]
        assert (a + b).to_integer_coefficients() == expected

    def test_multiplication_matches_big_modulus_polynomial(self):
        basis = make_basis(2)
        rng = random.Random(2)
        a_coeffs = [rng.randrange(1000) for _ in range(DEGREE)]
        b_coeffs = [rng.randrange(1000) for _ in range(DEGREE)]
        a = RNSPolynomial.from_integer_coefficients(DEGREE, basis, a_coeffs)
        b = RNSPolynomial.from_integer_coefficients(DEGREE, basis, b_coeffs)
        big_a = Polynomial(DEGREE, basis.product, a_coeffs)
        big_b = Polynomial(DEGREE, basis.product, b_coeffs)
        assert (a * b).to_integer_coefficients() == (big_a * big_b).coefficients

    def test_scalar_multiplication(self):
        basis = make_basis(2)
        poly = RNSPolynomial.from_integer_coefficients(DEGREE, basis, list(range(DEGREE)))
        tripled = poly * 3
        assert tripled.to_integer_coefficients() == [3 * c for c in range(DEGREE)]

    def test_incompatible_bases_raise(self):
        a = RNSPolynomial(DEGREE, make_basis(2))
        b = RNSPolynomial(DEGREE, make_basis(3))
        with pytest.raises(ValueError):
            _ = a + b

    def test_level_and_drop_last_limb(self):
        basis = make_basis(3)
        poly = RNSPolynomial.from_integer_coefficients(DEGREE, basis, [5] * DEGREE)
        assert poly.level == 2
        dropped = poly.drop_last_limb()
        assert dropped.level == 1
        assert dropped.to_integer_coefficients() == [5] * DEGREE

    def test_cannot_drop_only_limb(self):
        basis = make_basis(1)
        poly = RNSPolynomial(DEGREE, basis)
        with pytest.raises(ValueError):
            poly.drop_last_limb()


class TestRescale:
    def test_rescale_divides_by_last_modulus(self):
        basis = make_basis(3)
        q_last = basis.moduli[-1]
        rng = random.Random(3)
        # Use values that are exact multiples of q_last so rescale is exact.
        coeffs = [rng.randrange(basis.product // q_last) * q_last for _ in range(DEGREE)]
        poly = RNSPolynomial.from_integer_coefficients(DEGREE, basis, coeffs)
        rescaled = poly.rescale()
        assert rescaled.to_integer_coefficients() == [c // q_last for c in coeffs]

    def test_rescale_rounding_error_is_small(self):
        basis = make_basis(3)
        q_last = basis.moduli[-1]
        rng = random.Random(4)
        coeffs = [rng.randrange(basis.product // 4) for _ in range(DEGREE)]
        poly = RNSPolynomial.from_integer_coefficients(DEGREE, basis, coeffs)
        rescaled = poly.rescale().to_integer_coefficients()
        for original, result in zip(coeffs, rescaled):
            assert abs(result - original / q_last) <= 1.0

    def test_rescale_single_limb_raises(self):
        poly = RNSPolynomial(DEGREE, make_basis(1))
        with pytest.raises(ValueError):
            poly.rescale()


class TestBasisConversion:
    def test_exact_conversion_preserves_small_values(self):
        source = make_basis(2)
        target = make_basis(2, bits=26, offset=4)
        coeffs = [5, -7, 123, -456] + [0] * (DEGREE - 4)
        poly = RNSPolynomial.from_integer_coefficients(
            DEGREE, source, [c % source.product for c in coeffs]
        )
        converted = exact_basis_conversion(poly, target)
        centred = converted.to_polynomial().centered_coefficients()
        assert centred[:4] == [5, -7, 123, -456]

    def test_fast_conversion_error_is_a_small_multiple_of_source_product(self):
        # Target basis strictly larger than (len(source)+1) * Q so the value
        # x + u*Q is representable without wrap-around in the target.
        source = make_basis(2, bits=20)
        target = make_basis(3, bits=30, offset=5)
        rng = random.Random(5)
        coeffs = [rng.randrange(source.product) for _ in range(DEGREE)]
        poly = RNSPolynomial.from_integer_coefficients(DEGREE, source, coeffs)
        fast = fast_basis_conversion(poly, target)
        for idx in range(DEGREE):
            residues = [limb.coefficients[idx] for limb in fast.limbs]
            value = target.reconstruct(residues)
            # fast conversion returns x + u * Q with 0 <= u < len(source basis)
            difference = value - coeffs[idx]
            assert difference % source.product == 0
            assert 0 <= difference // source.product < len(source.moduli)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_fast_conversion_of_constants(self, value):
        source = make_basis(2)
        target = make_basis(1, bits=30, offset=6)
        poly = RNSPolynomial.from_integer_coefficients(
            DEGREE, source, [value] + [0] * (DEGREE - 1)
        )
        fast = fast_basis_conversion(poly, target)
        recovered = fast.limbs[0].coefficients[0]
        q = target.moduli[0]
        # Correct up to a small multiple of the source product.
        assert (recovered - value) % q in {
            (k * source.product) % q for k in range(len(source.moduli))
        }
