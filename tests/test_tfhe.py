"""Unit and integration tests for the functional TFHE implementation."""

import itertools
import random

import pytest

from repro.fhe.params import TFHEParameters
from repro.fhe.polynomial import Polynomial
from repro.fhe.tfhe import (
    LWEContext,
    TFHEContext,
    TFHEGateEvaluator,
    external_product,
    gadget_factors,
)
from repro.fhe.tfhe.ggsw import GGSWContext, cmux
from repro.fhe.tfhe.glwe import GLWEContext
from repro.fhe.tfhe.pbs import (
    blind_rotate,
    lwe_keyswitch,
    modulus_switch,
    sample_extract,
    signed_decompose,
)


@pytest.fixture(scope="module")
def toy_params():
    return TFHEParameters.toy()


@pytest.fixture(scope="module")
def toy_context(toy_params):
    return TFHEContext(toy_params, seed=3)


class TestLWE:
    def test_encrypt_decrypt_all_messages(self, toy_params):
        context = LWEContext(toy_params, seed=0)
        for message in range(toy_params.plaintext_modulus):
            assert context.decrypt(context.encrypt(message)) == message

    def test_homomorphic_addition(self, toy_params):
        context = LWEContext(toy_params, seed=1)
        a = context.encrypt(1)
        b = context.encrypt(2)
        assert context.decrypt(a + b) == 3

    def test_homomorphic_subtraction_and_negation(self, toy_params):
        context = LWEContext(toy_params, seed=2)
        a = context.encrypt(3)
        b = context.encrypt(1)
        assert context.decrypt(a - b) == 2
        assert context.decrypt(-b) == (toy_params.plaintext_modulus - 1)

    def test_scalar_multiply(self, toy_params):
        context = LWEContext(toy_params, seed=3)
        a = context.encrypt(1)
        assert context.decrypt(a.scalar_multiply(3)) == 3

    def test_trivial_ciphertext(self, toy_params):
        context = LWEContext(toy_params, seed=4)
        trivial = context.trivial(context.encode(2))
        assert context.decrypt(trivial) == 2
        assert all(x == 0 for x in trivial.a)

    def test_incompatible_ciphertexts_raise(self, toy_params):
        context = LWEContext(toy_params, seed=5)
        a = context.encrypt(0)
        bad = context.trivial(0, dimension=toy_params.lwe_dimension + 1)
        with pytest.raises(ValueError):
            _ = a + bad

    def test_phase_is_centred(self, toy_params):
        context = LWEContext(toy_params, seed=6)
        phase = context.phase(context.encrypt(0))
        assert abs(phase) < toy_params.modulus // 8


class TestGLWE:
    def test_phase_recovers_message(self, toy_params):
        context = GLWEContext(toy_params, seed=0)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        message = Polynomial(n, q, [toy_params.delta * (i % 3) for i in range(n)])
        ciphertext = context.encrypt(message, noise_stddev=0.0)
        assert context.phase(ciphertext) == message

    def test_additive_homomorphism(self, toy_params):
        context = GLWEContext(toy_params, seed=1)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        m1 = Polynomial(n, q, [100, 200, 300])
        m2 = Polynomial(n, q, [50, -100, 25])
        c1 = context.encrypt(m1, noise_stddev=0.0)
        c2 = context.encrypt(m2, noise_stddev=0.0)
        assert context.phase(c1 + c2) == m1 + m2

    def test_monomial_rotation(self, toy_params):
        context = GLWEContext(toy_params, seed=2)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        message = Polynomial(n, q, [1000] + [0] * (n - 1))
        ciphertext = context.encrypt(message, noise_stddev=0.0)
        rotated = ciphertext.multiply_by_monomial(3)
        assert context.phase(rotated) == message.multiply_by_monomial(3)

    def test_trivial_encryption(self, toy_params):
        q = toy_params.modulus
        n = toy_params.polynomial_size
        message = Polynomial(n, q, [42])
        from repro.fhe.tfhe.glwe import GLWECiphertext
        trivial = GLWECiphertext.trivial(message, toy_params.glwe_dimension)
        context = GLWEContext(toy_params, seed=3)
        assert context.phase(trivial) == message


class TestGadgetDecomposition:
    def test_gadget_factors_are_decreasing(self):
        factors = gadget_factors(1 << 32, 1 << 8, 3)
        assert factors == sorted(factors, reverse=True)
        assert factors[0] == (1 << 24)

    @pytest.mark.parametrize("base_log,levels", [(4, 6), (8, 3), (16, 2)])
    def test_scalar_signed_decomposition(self, base_log, levels):
        base = 1 << base_log
        modulus = (1 << 32) - 5
        rng = random.Random(base_log)
        factors = gadget_factors(modulus, base, levels)
        for _ in range(50):
            value = rng.randrange(modulus)
            digits = signed_decompose(value, base, levels, modulus)
            assert all(abs(d) <= base // 2 + 1 for d in digits)
            reconstructed = sum(d * f for d, f in zip(digits, factors)) % modulus
            error = min((reconstructed - value) % modulus, (value - reconstructed) % modulus)
            assert error <= modulus // base ** levels + base


class TestExternalProduct:
    def test_external_product_multiplies_messages(self, toy_params):
        glwe_context = GLWEContext(toy_params, seed=4)
        ggsw_context = GGSWContext(toy_params, glwe_context)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        message = Polynomial(n, q, [toy_params.delta, 0, toy_params.delta // 2])
        glwe = glwe_context.encrypt(message, noise_stddev=0.0)
        for scalar in (0, 1):
            ggsw = ggsw_context.encrypt_scalar(scalar, noise_stddev=0.0)
            result = external_product(ggsw, glwe)
            phase = glwe_context.phase(result)
            expected = message.scalar_multiply(scalar)
            error = (phase - expected).infinity_norm()
            assert error < toy_params.delta // 8

    def test_external_product_by_monomial(self, toy_params):
        glwe_context = GLWEContext(toy_params, seed=5)
        ggsw_context = GGSWContext(toy_params, glwe_context)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        message = Polynomial(n, q, [toy_params.delta] + [0] * (n - 1))
        glwe = glwe_context.encrypt(message, noise_stddev=0.0)
        monomial = Polynomial.monomial(n, q, 2)
        ggsw = ggsw_context.encrypt_polynomial(monomial, noise_stddev=0.0)
        result = external_product(ggsw, glwe)
        phase = glwe_context.phase(result)
        expected = message.multiply_by_monomial(2)
        assert (phase - expected).infinity_norm() < toy_params.delta // 8

    def test_cmux_selects_between_ciphertexts(self, toy_params):
        glwe_context = GLWEContext(toy_params, seed=6)
        ggsw_context = GGSWContext(toy_params, glwe_context)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        m_true = Polynomial(n, q, [toy_params.delta * 1])
        m_false = Polynomial(n, q, [toy_params.delta * 3])
        c_true = glwe_context.encrypt(m_true, noise_stddev=0.0)
        c_false = glwe_context.encrypt(m_false, noise_stddev=0.0)
        for bit, expected in ((1, m_true), (0, m_false)):
            selector = ggsw_context.encrypt_scalar(bit, noise_stddev=0.0)
            chosen = cmux(selector, c_true, c_false)
            phase = glwe_context.phase(chosen)
            assert (phase - expected).infinity_norm() < toy_params.delta // 4


class TestPBSBuildingBlocks:
    def test_modulus_switch_scales_phase(self, toy_params):
        context = LWEContext(toy_params, seed=7)
        ciphertext = context.encrypt(1)
        switched = modulus_switch(ciphertext, 2 * toy_params.polynomial_size)
        assert switched.modulus == 2 * toy_params.polynomial_size
        assert all(0 <= x < switched.modulus for x in switched.a)

    def test_sample_extract_constant_coefficient(self, toy_params):
        glwe_context = GLWEContext(toy_params, seed=8)
        q = toy_params.modulus
        n = toy_params.polynomial_size
        message = Polynomial(n, q, [toy_params.delta * 2, toy_params.delta, 0])
        ciphertext = glwe_context.encrypt(message, noise_stddev=0.0)
        from repro.fhe.tfhe.lwe import LWESecretKey
        flattened = LWESecretKey(tuple(glwe_context.secret.flattened_lwe_coefficients()))
        lwe_context = LWEContext(toy_params, seed=8)
        for index in (0, 1, 2, n - 1):
            extracted = sample_extract(ciphertext, index)
            phase = lwe_context.phase(extracted, secret=flattened)
            expected = message.centered_coefficients()[index]
            assert abs(phase - expected) < toy_params.delta // 8

    def test_sample_extract_index_out_of_range(self, toy_params):
        glwe_context = GLWEContext(toy_params, seed=9)
        ciphertext = glwe_context.encrypt(
            Polynomial(toy_params.polynomial_size, toy_params.modulus, [0]), noise_stddev=0.0
        )
        with pytest.raises(ValueError):
            sample_extract(ciphertext, toy_params.polynomial_size)

    def test_keyswitch_preserves_message(self, toy_context):
        params = toy_context.params
        # Encrypt under the flattened GLWE key, switch to the LWE key.
        from repro.fhe.tfhe.lwe import LWESecretKey
        flattened = LWESecretKey(
            tuple(toy_context.glwe.secret.flattened_lwe_coefficients())
        )
        for message in range(params.plaintext_modulus):
            ciphertext = toy_context.lwe.encrypt(message, secret=flattened)
            switched = lwe_keyswitch(
                ciphertext, toy_context.keyswitching_key, params.lwe_dimension
            )
            assert toy_context.lwe.decrypt(switched) == message


class TestProgrammableBootstrap:
    def test_identity_bootstrap(self, toy_context):
        t = toy_context.params.plaintext_modulus
        for message in range(t // 2):  # padding-bit restriction
            ciphertext = toy_context.encrypt(message)
            refreshed = toy_context.programmable_bootstrap(ciphertext)
            assert toy_context.decrypt(refreshed) == message

    def test_function_bootstrap(self, toy_context):
        t = toy_context.params.plaintext_modulus
        function = lambda m: (3 * m + 1) % (t // 2)
        for message in range(t // 2):
            ciphertext = toy_context.encrypt(message)
            result = toy_context.bootstrap_function(ciphertext, function)
            assert toy_context.decrypt(result) == function(message)

    def test_bootstrap_after_additions(self, toy_context):
        # Accumulate additions, then refresh; message must survive.
        a = toy_context.encrypt(1)
        b = toy_context.encrypt(0)
        combined = a + b
        refreshed = toy_context.programmable_bootstrap(combined)
        assert toy_context.decrypt(refreshed) == 1


class TestGates:
    @pytest.fixture(scope="class")
    def gates(self, toy_context):
        return TFHEGateEvaluator(toy_context)

    def test_encrypt_decrypt_bits(self, gates):
        assert gates.decrypt(gates.encrypt(True)) is True
        assert gates.decrypt(gates.encrypt(False)) is False

    def test_not_gate(self, gates):
        assert gates.decrypt(gates.not_(gates.encrypt(True))) is False
        assert gates.decrypt(gates.not_(gates.encrypt(False))) is True

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_binary_gates(self, gates, a, b):
        ca, cb = gates.encrypt(a), gates.encrypt(b)
        assert gates.decrypt(gates.nand(ca, cb)) == (not (a and b))
        assert gates.decrypt(gates.and_(ca, cb)) == (a and b)
        assert gates.decrypt(gates.or_(ca, cb)) == (a or b)
        assert gates.decrypt(gates.xor(ca, cb)) == (a != b)
        assert gates.decrypt(gates.xnor(ca, cb)) == (a == b)
        assert gates.decrypt(gates.nor(ca, cb)) == (not (a or b))

    @pytest.mark.parametrize("selector", [False, True])
    def test_mux(self, gates, selector):
        result = gates.mux(gates.encrypt(selector), gates.encrypt(True), gates.encrypt(False))
        assert gates.decrypt(result) == selector

    def test_equality_circuit(self, gates):
        a_bits = [gates.encrypt(b) for b in (True, False, True)]
        b_bits = [gates.encrypt(b) for b in (True, False, True)]
        c_bits = [gates.encrypt(b) for b in (True, True, True)]
        assert gates.decrypt(gates.equality(a_bits, b_bits)) is True
        assert gates.decrypt(gates.equality(a_bits, c_bits)) is False

    def test_less_than_circuit(self, gates):
        def encrypt_number(value, width=3):
            return [gates.encrypt(bool((value >> i) & 1)) for i in range(width)]
        assert gates.decrypt(gates.less_than(encrypt_number(2), encrypt_number(5))) is True
        assert gates.decrypt(gates.less_than(encrypt_number(5), encrypt_number(2))) is False
        assert gates.decrypt(gates.less_than(encrypt_number(3), encrypt_number(3))) is False


class TestBatchedBootstrap:
    """The shared-dispatch PBS batching behind the planner's wave groups."""

    @pytest.fixture(scope="class")
    def hybrid_context(self):
        return TFHEContext(TFHEParameters.hybrid(), seed=3)

    def test_batched_pbs_is_bit_identical_to_sequential(self, hybrid_context):
        from repro.fhe.tfhe.batched import batched_programmable_bootstrap

        context = hybrid_context
        messages = [0, 1, 2, 3, 1]
        ciphertexts = [context.encrypt(m) for m in messages]
        batched = batched_programmable_bootstrap(context, ciphertexts)
        for ct, message, out in zip(ciphertexts, messages, batched):
            reference = context.programmable_bootstrap(ct)
            assert out.a == reference.a and out.b == reference.b
            assert context.decrypt(out) == message

    def test_batched_pbs_with_mixed_test_vectors(self, hybrid_context):
        """A sign table and a LUT in one batch (how `pbs` and
        `gate_bootstrap` nodes share a wave) still match sequential PBS."""
        from repro.fhe.tfhe.batched import (
            batched_programmable_bootstrap,
            sign_test_vector,
        )

        context = hybrid_context
        ciphertexts = [context.encrypt(1), context.encrypt(3)]
        vectors = [sign_test_vector(context, 8), context.identity_test_vector()]
        batched = batched_programmable_bootstrap(context, ciphertexts, vectors)
        for ct, tv, out in zip(ciphertexts, vectors, batched):
            reference = context.programmable_bootstrap(ct, tv)
            assert out.a == reference.a and out.b == reference.b

    def test_batched_pbs_rejects_mismatched_vectors(self, hybrid_context):
        from repro.fhe.tfhe.batched import batched_programmable_bootstrap

        with pytest.raises(ValueError, match="one test vector"):
            batched_programmable_bootstrap(
                hybrid_context, [hybrid_context.encrypt(0)], [])
