"""Differential tests: the numpy backend must agree bit-for-bit with python.

The python backend is the golden reference (the original seed
implementation).  For every ported kernel these tests run both backends on
identical randomized (seeded) inputs across every prime/degree combination
the parameter sets in :mod:`repro.fhe.params` produce — CKKS toy/small RNS
chains and special moduli (40-42 bit), the TFHE 32-bit primes, plus stress
primes up to the 61-62-bit word cap — and assert exact equality.

The numpy backend under test is constructed with both crossover thresholds
at 0 so the vectorized code paths are exercised even at tiny ring degrees
(with default thresholds small inputs would silently take the python
fallback and the comparison would be vacuous).
"""

import random

import pytest

from repro.fhe import modmath
from repro.fhe.backend import (
    NumpyBackend,
    PythonBackend,
    available_backends,
    get_backend,
    set_active_backend,
    use_backend,
)
from repro.fhe.ckks.context import CKKSContext
from repro.fhe.ntt import NTTContext, four_step_intt, four_step_ntt
from repro.fhe.params import CKKSParameters, TFHEParameters
from repro.fhe.polynomial import Polynomial
from repro.fhe.rns import RNSBasis, RNSPolynomial, exact_basis_conversion, fast_basis_conversion
from repro.fhe.tfhe.pbs import TFHEContext

numpy_missing = "numpy" not in available_backends()
pytestmark = pytest.mark.skipif(numpy_missing, reason="numpy backend unavailable")

PYTHON = PythonBackend()
#: Thresholds at 0: force the vectorized path at every size.
NUMPY = None if numpy_missing else NumpyBackend(min_vector_length=0, min_ntt_length=0)


def _parameter_set_moduli():
    """Every (modulus, ring_degree) pair the functional parameter sets use."""
    combos = []
    for params in (CKKSParameters.toy(), CKKSParameters.small(ring_degree=256)):
        for q in params.moduli:
            combos.append((q, params.ring_degree))
        for p in params.special_moduli:
            combos.append((p, params.ring_degree))
    for params in (TFHEParameters.toy(), TFHEParameters.small()):
        combos.append((params.modulus, params.polynomial_size))
    # Stress the word-size boundary of the vectorized backend: the largest
    # primes the paper's parameter space can produce are <= 61 bits.
    combos.append((modmath.find_ntt_prime(58, 64), 64))
    combos.append((modmath.find_ntt_prime(61, 128), 128))
    combos.append((modmath.find_ntt_prime(62, 64), 64))
    # De-duplicate while keeping order for stable test IDs.
    seen = set()
    unique = []
    for combo in combos:
        if combo not in seen:
            seen.add(combo)
            unique.append(combo)
    return unique


MODULUS_COMBOS = _parameter_set_moduli()


def _vectors(q, n, seed, count=2):
    rng = random.Random((seed * 0x9E3779B1 + q + n) & 0xFFFFFFFF)
    return [[rng.randrange(q) for _ in range(n)] for _ in range(count)]


@pytest.mark.parametrize("q,n", MODULUS_COMBOS)
class TestElementwiseParity:
    def test_add_sub_neg(self, q, n):
        a, b = _vectors(q, n, 1)
        assert NUMPY.add(a, b, q) == PYTHON.add(a, b, q)
        assert NUMPY.sub(a, b, q) == PYTHON.sub(a, b, q)
        assert NUMPY.neg(a, q) == PYTHON.neg(a, q)

    def test_mul(self, q, n):
        a, b = _vectors(q, n, 2)
        assert NUMPY.mul(a, b, q) == PYTHON.mul(a, b, q)

    def test_scalar_mul(self, q, n):
        (a,) = _vectors(q, n, 3, count=1)
        for scalar in (0, 1, q - 1, q // 3):
            assert NUMPY.scalar_mul(a, scalar, q) == PYTHON.scalar_mul(a, scalar, q)

    def test_sub_scaled(self, q, n):
        a, b = _vectors(q, n, 4)
        for scalar in (1, q - 1, q // 7 + 1):
            assert NUMPY.sub_scaled(a, b, scalar, q) == PYTHON.sub_scaled(a, b, scalar, q)

    def test_weighted_sum(self, q, n):
        rows = _vectors(q, n, 5, count=4)
        rng = random.Random(q ^ n)
        weights = [rng.randrange(q) for _ in rows]
        assert NUMPY.weighted_sum(rows, weights, q) == PYTHON.weighted_sum(rows, weights, q)

    def test_modmath_batched_wrappers(self, q, n):
        """The public batched_mod_* entry points honour backend= and agree."""
        a, b = _vectors(q, n, 20)
        scalar = q // 5 + 1
        rows = _vectors(q, n, 21, count=3)
        weights = [3, q - 2, 7]
        for op, args in (
            (modmath.batched_mod_add, (a, b, q)),
            (modmath.batched_mod_sub, (a, b, q)),
            (modmath.batched_mod_neg, (a, q)),
            (modmath.batched_mod_mul, (a, b, q)),
            (modmath.batched_mod_scalar_mul, (a, scalar, q)),
            (modmath.batched_mod_sub_scaled, (a, b, scalar, q)),
            (modmath.batched_mod_weighted_sum, (rows, weights, q)),
        ):
            assert op(*args, backend=NUMPY) == op(*args, backend=PYTHON)
        # backend=None uses the active backend.
        with use_backend(PYTHON):
            assert modmath.batched_mod_add(a, b, q) == PYTHON.add(a, b, q)


@pytest.mark.parametrize("q,n", MODULUS_COMBOS)
class TestNTTParity:
    def test_forward_inverse(self, q, n):
        context = NTTContext(n, q)
        (a,) = _vectors(q, n, 6, count=1)
        fwd_py = PYTHON.ntt_forward(context, a)
        fwd_np = NUMPY.ntt_forward(context, a)
        assert fwd_np == fwd_py
        assert NUMPY.ntt_inverse(context, fwd_np) == PYTHON.ntt_inverse(context, fwd_py) == a

    def test_negacyclic_convolution(self, q, n):
        context = NTTContext(n, q)
        a, b = _vectors(q, n, 7)
        assert NUMPY.negacyclic_convolution(context, a, b) == \
            PYTHON.negacyclic_convolution(context, a, b)

    def test_cyclic_ntt_batch(self, q, n):
        context = NTTContext(n, q)
        rows = _vectors(q, n, 8, count=3)
        assert NUMPY.cyclic_ntt_batch(rows, context.omega, q) == \
            PYTHON.cyclic_ntt_batch(rows, context.omega, q)

    def test_four_step(self, q, n):
        context = NTTContext(n, q)
        (a,) = _vectors(q, n, 9, count=1)
        rows = 1 << (n.bit_length() // 2)
        with use_backend(PYTHON):
            expected = four_step_ntt(context, a, rows)
            assert four_step_intt(context, expected, rows) == a
        with use_backend(NUMPY):
            assert four_step_ntt(context, a, rows) == expected
            assert four_step_intt(context, expected, rows) == a


class TestUnreducedInputParity:
    """Backends must agree even on not-yet-reduced / negative inputs."""

    def test_out_of_range_values(self):
        q = modmath.find_ntt_prime(40, 64)
        rng = random.Random(11)
        a = [rng.randrange(-5 * q, 5 * q) for _ in range(64)]
        b = [rng.randrange(2**70) for _ in range(64)]
        assert NUMPY.add(a, b, q) == PYTHON.add(a, b, q)
        assert NUMPY.mul(a, b, q) == PYTHON.mul(a, b, q)
        context = NTTContext(64, q)
        assert NUMPY.ntt_forward(context, a) == PYTHON.ntt_forward(context, a)

    def test_big_modulus_falls_back_exactly(self):
        # A CRT-product modulus far beyond 62 bits must still work on the
        # numpy backend (via its exact python fallback).
        q = (1 << 100) + 7
        rng = random.Random(12)
        a = [rng.randrange(q) for _ in range(32)]
        b = [rng.randrange(q) for _ in range(32)]
        assert NUMPY.add(a, b, q) == PYTHON.add(a, b, q)
        assert NUMPY.mul(a, b, q) == PYTHON.mul(a, b, q)


class TestRNSParity:
    def _rns_poly(self, params, seed):
        basis = params.basis()
        rng = random.Random(seed)
        coeffs = [rng.randrange(basis.product) for _ in range(params.ring_degree)]
        return RNSPolynomial.from_integer_coefficients(params.ring_degree, basis, coeffs)

    def test_rescale_parity(self):
        params = CKKSParameters.toy(ring_degree=128)
        poly = self._rns_poly(params, 13)
        with use_backend(PYTHON):
            expected = poly.rescale()
        with use_backend(NUMPY):
            actual = poly.rescale()
        assert actual == expected

    def test_fast_basis_conversion_parity(self):
        params = CKKSParameters.toy(ring_degree=128)
        poly = self._rns_poly(params, 14)
        target = RNSBasis(list(params.special_moduli))
        with use_backend(PYTHON):
            expected = fast_basis_conversion(poly, target)
        with use_backend(NUMPY):
            actual = fast_basis_conversion(poly, target)
        assert actual == expected
        # And the approximate conversion stays within the documented slack of
        # the exact one regardless of backend (sanity, not parity).
        exact = exact_basis_conversion(poly, target)
        assert actual.ring_degree == exact.ring_degree

    def test_polynomial_ops_parity(self):
        q = modmath.find_ntt_prime(40, 256)
        rng = random.Random(15)
        a = Polynomial(256, q, [rng.randrange(q) for _ in range(256)])
        b = Polynomial(256, q, [rng.randrange(q) for _ in range(256)])
        with use_backend(PYTHON):
            expected = (a + b, a - b, -a, a * b, a.scalar_multiply(12345))
        with use_backend(NUMPY):
            actual = (a + b, a - b, -a, a * b, a.scalar_multiply(12345))
        assert actual == expected


class TestEndToEndParity:
    """Whole-scheme flows must produce identical ciphertexts on both backends."""

    def test_ckks_multiply_rescale_parity(self):
        params = CKKSParameters.toy(ring_degree=64, max_level=2)
        results = {}
        for name in ("python", "numpy"):
            ctx = CKKSContext(params, seed=99, error_stddev=0.0, backend=name)
            pt = ctx.encoder.encode([1.5 - 0.5j, 2.0, 0.25j])
            ct = ctx.encrypt(pt)
            product = ctx.evaluator.rescale(ctx.evaluator.multiply(ct, ct))
            results[name] = (
                product.c0.to_integer_coefficients(),
                product.c1.to_integer_coefficients(),
            )
        assert results["python"] == results["numpy"]

    def test_tfhe_pbs_parity(self):
        params = TFHEParameters.toy()
        outputs = {}
        for name in ("python", "numpy"):
            ctx = TFHEContext(params, seed=5, backend=name)
            ct = ctx.encrypt(1)
            refreshed = ctx.programmable_bootstrap(ct)
            outputs[name] = (refreshed.a, refreshed.b, ctx.decrypt(refreshed))
        assert outputs["python"] == outputs["numpy"]
        assert outputs["python"][2] == 1


class TestBackendSelection:
    def test_registry_round_trip(self):
        assert get_backend("python").name == "python"
        assert get_backend("numpy").name in ("numpy", "python")  # graceful fallback
        with pytest.raises(ValueError):
            get_backend("fortran")

    @pytest.fixture()
    def restore_active_backend(self):
        """Snapshot the process-wide backend so selection tests cannot leak
        their choice into the rest of the pytest process (which would defeat
        the REPRO_BACKEND CI matrix legs)."""
        from repro.fhe.backend import active_backend
        previous = active_backend()
        yield
        set_active_backend(previous)

    def test_use_backend_restores_previous(self, restore_active_backend):
        previous = set_active_backend("python")
        assert previous.name == "python"
        with use_backend("numpy") as active:
            assert active.name == "numpy"
        from repro.fhe.backend import active_backend
        assert active_backend().name == "python"

    def test_env_variable_selects_backend(self, monkeypatch, restore_active_backend):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        set_active_backend(None)
        from repro.fhe.backend import active_backend
        assert active_backend().name == "python"
