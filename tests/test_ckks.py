"""Unit and integration tests for the functional CKKS implementation."""

import math

import pytest

from repro.fhe.ckks import CKKSContext
from repro.fhe.ckks.bootstrap import BootstrapPlan, linear_transform_plan
from repro.fhe.params import CKKSParameters


@pytest.fixture(scope="module")
def toy_context():
    return CKKSContext(CKKSParameters.toy(ring_degree=64, max_level=3, dnum=2), seed=1)


@pytest.fixture(scope="module")
def deep_context():
    return CKKSContext(CKKSParameters.toy(ring_degree=128, max_level=4, dnum=2), seed=2)


def assert_close(actual, expected, tolerance=1e-2):
    assert len(actual) >= len(expected)
    for a, e in zip(actual, expected):
        assert abs(a - e) < tolerance, f"{a} != {e} (tol {tolerance})"


class TestEncoder:
    def test_encode_decode_roundtrip(self, toy_context):
        values = [1.5, -2.25, 3.0 + 1.0j, 0.125]
        plaintext = toy_context.encoder.encode(values)
        decoded = toy_context.encoder.decode(plaintext, num_values=4)
        assert_close(decoded, values, tolerance=1e-3)

    def test_encode_full_vector(self, toy_context):
        slots = toy_context.params.slots
        values = [complex(i % 5, -(i % 3)) for i in range(slots)]
        decoded = toy_context.encoder.decode(toy_context.encoder.encode(values))
        assert_close(decoded, values, tolerance=1e-3)

    def test_too_many_values_raises(self, toy_context):
        slots = toy_context.params.slots
        with pytest.raises(ValueError):
            toy_context.encoder.encode([1.0] * (slots + 1))

    def test_encode_at_lower_level(self, toy_context):
        plaintext = toy_context.encoder.encode([1.0, 2.0], level=1)
        assert plaintext.level == 1
        assert len(plaintext.poly.limbs) == 2


class TestEncryptDecrypt:
    def test_symmetric_roundtrip(self, toy_context):
        values = [3.5, -1.25, 0.75]
        ct = toy_context.encrypt_symmetric(toy_context.encoder.encode(values))
        assert_close(toy_context.decrypt_vector(ct, 3), values)

    def test_public_key_roundtrip(self, toy_context):
        values = [2.0, -4.5, 1.0 + 2.0j]
        ct = toy_context.encrypt_vector(values)
        assert_close(toy_context.decrypt_vector(ct, 3), values, tolerance=5e-2)

    def test_fresh_ciphertext_level_and_scale(self, toy_context):
        ct = toy_context.encrypt_vector([1.0])
        assert ct.level == toy_context.params.max_level
        assert ct.scale == pytest.approx(float(toy_context.params.scale))


class TestHomomorphicAddition:
    def test_add(self, toy_context):
        a = toy_context.encrypt_vector([1.0, 2.0, 3.0])
        b = toy_context.encrypt_vector([0.5, -1.0, 4.0])
        result = toy_context.evaluator.add(a, b)
        assert_close(toy_context.decrypt_vector(result, 3), [1.5, 1.0, 7.0], tolerance=5e-2)

    def test_sub(self, toy_context):
        a = toy_context.encrypt_vector([5.0, 2.0])
        b = toy_context.encrypt_vector([1.0, 7.0])
        result = toy_context.evaluator.sub(a, b)
        assert_close(toy_context.decrypt_vector(result, 2), [4.0, -5.0], tolerance=5e-2)

    def test_add_plain(self, toy_context):
        a = toy_context.encrypt_vector([1.0, 1.0])
        plain = toy_context.encoder.encode([2.0, -3.0])
        result = toy_context.evaluator.add_plain(a, plain)
        assert_close(toy_context.decrypt_vector(result, 2), [3.0, -2.0], tolerance=5e-2)

    def test_negate(self, toy_context):
        a = toy_context.encrypt_vector([1.0, -2.0])
        result = toy_context.evaluator.negate(a)
        assert_close(toy_context.decrypt_vector(result, 2), [-1.0, 2.0], tolerance=5e-2)

    def test_level_mismatch_raises(self, toy_context):
        a = toy_context.encrypt_vector([1.0])
        b = toy_context.evaluator.mod_down_to(toy_context.encrypt_vector([1.0]), 1)
        with pytest.raises(ValueError):
            toy_context.evaluator.add(a, b)


class TestHomomorphicMultiplication:
    def test_multiply_plain_and_rescale(self, toy_context):
        a = toy_context.encrypt_vector([1.5, -2.0])
        plain = toy_context.encoder.encode([2.0, 3.0])
        product = toy_context.evaluator.multiply_plain(a, plain)
        rescaled = toy_context.evaluator.rescale(product)
        assert rescaled.level == a.level - 1
        assert_close(toy_context.decrypt_vector(rescaled, 2), [3.0, -6.0], tolerance=5e-2)

    def test_multiply_ciphertexts(self, toy_context):
        a = toy_context.encrypt_vector([2.0, 3.0, -1.0])
        b = toy_context.encrypt_vector([4.0, -2.0, 5.0])
        product = toy_context.evaluator.multiply(a, b)
        rescaled = toy_context.evaluator.rescale(product)
        assert_close(toy_context.decrypt_vector(rescaled, 3), [8.0, -6.0, -5.0], tolerance=0.2)

    def test_square(self, toy_context):
        a = toy_context.encrypt_vector([3.0, -2.0])
        squared = toy_context.evaluator.rescale(toy_context.evaluator.square(a))
        assert_close(toy_context.decrypt_vector(squared, 2), [9.0, 4.0], tolerance=0.2)

    def test_multiply_scalar(self, toy_context):
        a = toy_context.encrypt_vector([1.0, -2.0])
        result = toy_context.evaluator.multiply_scalar(a, 4)
        assert_close(toy_context.decrypt_vector(result, 2), [4.0, -8.0], tolerance=0.2)

    def test_multiplication_depth_two(self, deep_context):
        ev = deep_context.evaluator
        a = deep_context.encrypt_vector([1.5])
        b = deep_context.encrypt_vector([2.0])
        c = deep_context.encrypt_vector([-1.0])
        ab = ev.rescale(ev.multiply(a, b))
        c_aligned = ev.mod_down_to(c, ab.level)
        abc = ev.rescale(ev.multiply(ab, c_aligned))
        assert_close(deep_context.decrypt_vector(abc, 1), [-3.0], tolerance=0.5)


class TestRotation:
    def test_rotate_by_one(self, toy_context):
        slots = toy_context.params.slots
        values = [float(i) for i in range(slots)]
        ct = toy_context.encrypt_vector(values)
        rotated = toy_context.evaluator.rotate(ct, 1)
        expected = values[1:] + values[:1]
        assert_close(toy_context.decrypt_vector(rotated), expected, tolerance=0.1)

    def test_rotate_roundtrip(self, toy_context):
        slots = toy_context.params.slots
        values = [float(i % 7) for i in range(slots)]
        ct = toy_context.encrypt_vector(values)
        rotated = toy_context.evaluator.rotate(toy_context.evaluator.rotate(ct, 3), -3)
        assert_close(toy_context.decrypt_vector(rotated), values, tolerance=0.1)

    def test_conjugate(self, toy_context):
        values = [1.0 + 2.0j, -3.0 - 1.0j]
        ct = toy_context.encrypt_vector(values)
        conjugated = toy_context.evaluator.conjugate(ct)
        expected = [v.conjugate() for v in values]
        assert_close(toy_context.decrypt_vector(conjugated, 2), expected, tolerance=0.1)

    def test_inner_sum(self, toy_context):
        slots = toy_context.params.slots
        values = [1.0] * slots
        ct = toy_context.encrypt_vector(values)
        summed = toy_context.evaluator.inner_sum(ct, slots)
        decoded = toy_context.decrypt_vector(summed, 1)
        assert abs(decoded[0] - slots) < 0.5


class TestLevelManagement:
    def test_rescale_reduces_level_and_scale(self, toy_context):
        a = toy_context.encrypt_vector([1.0])
        plain = toy_context.encoder.encode([1.0])
        product = toy_context.evaluator.multiply_plain(a, plain)
        rescaled = toy_context.evaluator.rescale(product)
        assert rescaled.level == a.level - 1
        assert rescaled.scale < product.scale

    def test_rescale_at_level_zero_raises(self, toy_context):
        a = toy_context.evaluator.mod_down_to(toy_context.encrypt_vector([1.0]), 0)
        with pytest.raises(ValueError):
            toy_context.evaluator.rescale(a)

    def test_mod_down_to_preserves_value(self, toy_context):
        a = toy_context.encrypt_vector([2.5, -1.5])
        lowered = toy_context.evaluator.mod_down_to(a, 1)
        assert lowered.level == 1
        assert_close(toy_context.decrypt_vector(lowered, 2), [2.5, -1.5], tolerance=5e-2)

    def test_mod_down_to_higher_level_raises(self, toy_context):
        a = toy_context.evaluator.mod_down_to(toy_context.encrypt_vector([1.0]), 1)
        with pytest.raises(ValueError):
            toy_context.evaluator.mod_down_to(a, 2)

    def test_align(self, toy_context):
        a = toy_context.encrypt_vector([1.0])
        b = toy_context.evaluator.mod_down_to(toy_context.encrypt_vector([2.0]), 1)
        a2, b2 = toy_context.evaluator.align(a, b)
        assert a2.level == b2.level == 1


class TestBootstrapPlan:
    def test_operations_cover_declared_level_consumption(self):
        plan = BootstrapPlan(ring_degree=65536, start_level=35, levels_consumed=15)
        histogram = plan.operation_histogram()
        assert histogram["HMult"] > 0
        assert histogram["HRotate"] > 0
        assert plan.end_level == 20

    def test_linear_transform_plan_counts(self):
        plan = linear_transform_plan(slots=4096, level=30)
        assert plan.baby_steps * plan.giant_steps >= 4096
        assert plan.num_rotations == plan.baby_steps + plan.giant_steps - 2

    def test_invalid_level_consumption(self):
        with pytest.raises(ValueError):
            BootstrapPlan(start_level=10, levels_consumed=10)

    def test_operation_levels_are_decreasing(self):
        plan = BootstrapPlan(ring_degree=4096, start_level=20, levels_consumed=15, slots=2048)
        levels = [op.level for op in plan.operations()]
        assert levels == sorted(levels, reverse=True)
