"""Tests for multi-application workload allocation (Section IV-K)."""

import pytest

from repro.core.config import DEFAULT_TRINITY_CONFIG
from repro.core.scheduler import WorkloadScheduler
from repro.fhe.params import CKKS_DEFAULT, TFHE_SET_I
from repro.workloads import helr_workload, pbs_workload


@pytest.fixture(scope="module")
def ckks_job():
    return helr_workload(CKKS_DEFAULT)


@pytest.fixture(scope="module")
def tfhe_job():
    return pbs_workload(TFHE_SET_I)


class TestSequentialScheduling:
    def test_sequential_latency_adds(self, ckks_job, tfhe_job):
        scheduler = WorkloadScheduler()
        report = scheduler.run_sequential([ckks_job, tfhe_job])
        expected = sum(report.per_workload_cycles.values())
        assert report.sequential_cycles == pytest.approx(expected)

    def test_trinity_has_no_scheme_switch_penalty(self, ckks_job, tfhe_job):
        trinity = WorkloadScheduler(switch_penalty_cycles=0.0)
        with_penalty = WorkloadScheduler(switch_penalty_cycles=1e6)
        base = trinity.run_sequential([ckks_job, tfhe_job, ckks_job])
        penalised = with_penalty.run_sequential([ckks_job, tfhe_job, ckks_job])
        assert base.scheme_switches == 2
        assert penalised.sequential_cycles == pytest.approx(
            base.sequential_cycles + 2e6
        )

    def test_single_workload_has_no_switches(self, ckks_job):
        report = WorkloadScheduler().run_sequential([ckks_job])
        assert report.scheme_switches == 0
        assert report.co_scheduling_gain == pytest.approx(1.0)


class TestInterleavedScheduling:
    def test_interleaving_never_slower_than_sequential(self, ckks_job, tfhe_job):
        scheduler = WorkloadScheduler()
        report = scheduler.run_interleaved([ckks_job, tfhe_job])
        assert report.interleaved_cycles <= report.sequential_cycles
        assert report.co_scheduling_gain >= 1.0

    def test_mixed_scheme_jobs_benefit_from_co_scheduling(self, ckks_job, tfhe_job):
        """A CKKS job and a TFHE job stress partially disjoint units, so
        co-scheduling them overlaps their work (the Section IV-K claim)."""
        scheduler = WorkloadScheduler()
        report = scheduler.run_interleaved([ckks_job, tfhe_job])
        assert report.co_scheduling_gain > 1.05

    def test_report_units(self, ckks_job, tfhe_job):
        report = WorkloadScheduler().run_interleaved([ckks_job, tfhe_job])
        assert report.sequential_seconds > report.interleaved_seconds > 0
        assert set(report.workload_names) == {ckks_job.name, tfhe_job.name}
