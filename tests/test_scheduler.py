"""Tests for multi-application workload allocation (Section IV-K) and the
cycle-accounting internals of :class:`repro.core.simulator.TrinitySimulator`.

The simulator tests pin the exact arithmetic of the performance model with
hand-computed cycle counts: per-unit busy-cycle bookkeeping, repeat-step
accounting, pipeline fill/drain overhead, the memory roofline, and cluster
work division.
"""

import pytest

from repro.core.config import DEFAULT_TRINITY_CONFIG, MemoryConfig, TrinityConfig
from repro.core.mapping import trinity_ckks_mapping
from repro.core.scheduler import WorkloadScheduler
from repro.core.simulator import TrinitySimulator
from repro.kernels.kernel import Kernel, KernelKind, KernelStep, KernelTrace
from repro.fhe.params import CKKS_DEFAULT, TFHE_SET_I
from repro.workloads import helr_workload, pbs_workload


@pytest.fixture(scope="module")
def ckks_job():
    return helr_workload(CKKS_DEFAULT)


@pytest.fixture(scope="module")
def tfhe_job():
    return pbs_workload(TFHE_SET_I)


class TestSequentialScheduling:
    def test_sequential_latency_adds(self, ckks_job, tfhe_job):
        scheduler = WorkloadScheduler()
        report = scheduler.run_sequential([ckks_job, tfhe_job])
        expected = sum(report.per_workload_cycles.values())
        assert report.sequential_cycles == pytest.approx(expected)

    def test_trinity_has_no_scheme_switch_penalty(self, ckks_job, tfhe_job):
        trinity = WorkloadScheduler(switch_penalty_cycles=0.0)
        with_penalty = WorkloadScheduler(switch_penalty_cycles=1e6)
        base = trinity.run_sequential([ckks_job, tfhe_job, ckks_job])
        penalised = with_penalty.run_sequential([ckks_job, tfhe_job, ckks_job])
        assert base.scheme_switches == 2
        assert penalised.sequential_cycles == pytest.approx(
            base.sequential_cycles + 2e6
        )

    def test_single_workload_has_no_switches(self, ckks_job):
        report = WorkloadScheduler().run_sequential([ckks_job])
        assert report.scheme_switches == 0
        assert report.co_scheduling_gain == pytest.approx(1.0)


class TestInterleavedScheduling:
    def test_interleaving_never_slower_than_sequential(self, ckks_job, tfhe_job):
        scheduler = WorkloadScheduler()
        report = scheduler.run_interleaved([ckks_job, tfhe_job])
        assert report.interleaved_cycles <= report.sequential_cycles
        assert report.co_scheduling_gain >= 1.0

    def test_mixed_scheme_jobs_benefit_from_co_scheduling(self, ckks_job, tfhe_job):
        """A CKKS job and a TFHE job stress partially disjoint units, so
        co-scheduling them overlaps their work (the Section IV-K claim)."""
        scheduler = WorkloadScheduler()
        report = scheduler.run_interleaved([ckks_job, tfhe_job])
        assert report.co_scheduling_gain > 1.05

    def test_report_units(self, ckks_job, tfhe_job):
        report = WorkloadScheduler().run_interleaved([ckks_job, tfhe_job])
        assert report.sequential_seconds > report.interleaved_seconds > 0
        assert set(report.workload_names) == {ckks_job.name, tfhe_job.name}

    def test_report_to_dict_is_json_ready_and_faithful(self, ckks_job, tfhe_job):
        import json

        report = WorkloadScheduler().run_interleaved([ckks_job, tfhe_job])
        as_dict = report.to_dict()
        assert json.loads(json.dumps(as_dict)) == as_dict
        assert as_dict["workload_names"] == list(report.workload_names)
        assert as_dict["sequential_cycles"] == report.sequential_cycles
        assert as_dict["interleaved_cycles"] == report.interleaved_cycles
        assert as_dict["per_workload_cycles"] == dict(report.per_workload_cycles)
        assert as_dict["scheme_switches"] == report.scheme_switches
        assert as_dict["co_scheduling_gain"] == report.co_scheduling_gain
        assert as_dict["sequential_seconds"] == report.sequential_seconds
        assert as_dict["interleaved_seconds"] == report.interleaved_seconds


# ---------------------------------------------------------------------------
# Simulator cycle accounting (hand-computed expectations)
# ---------------------------------------------------------------------------
#
# All expectations below are derived from first principles for a one-cluster
# Trinity at 1 GHz with the Table III unit inventory:
#   EWE:   512 element-wise lanes/cycle
#   AutoU: 256 permute lanes/cycle
#   CUs:   columns (1,2,2,2,2,3) x 128 rows = 1536 MAC lanes/cycle aggregate
#   scratchpad: 9000 GB/s => 9000 bytes/cycle per cluster at 1 GHz
#   word: 36 bits = 4.5 bytes
#   pipeline fill: 40 cycles per step (40/4 = 10 when repeat > 1)

FILL = 40


@pytest.fixture(scope="module")
def one_cluster_config():
    return TrinityConfig(clusters=1, pipeline_fill_cycles=FILL, name="test-1c")


@pytest.fixture(scope="module")
def one_cluster_sim(one_cluster_config):
    return TrinitySimulator(one_cluster_config, trinity_ckks_mapping(one_cluster_config))


def _trace(steps, name="unit-test", scheme="ckks"):
    return KernelTrace(name=name, steps=steps, scheme=scheme)


class TestSimulatorStepCost:
    def test_elementwise_kernel_cycle_count(self, one_cluster_sim):
        # ModAdd over 1024 elements on the 512-lane EWE: 1024/512 = 2 cycles
        # of compute; memory moves 1024 * 4.5 B * 2 = 9216 B at 9000 B/cycle
        # = 1.024 cycles < compute, so the step is compute-bound.
        step = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)])
        report = one_cluster_sim.run(_trace([step]))
        assert report.latency_cycles == pytest.approx(2 + FILL)
        assert report.unit_busy_cycles["EWE"] == pytest.approx(2.0)
        assert report.throughput_cycles == pytest.approx(2.0)
        assert report.memory_cycles == pytest.approx(9216 / 9000)

    def test_mac_kernel_splits_work_across_all_cus(self, one_cluster_sim):
        # BConv work = count * N * inner = 3 * 256 * 4 = 3072 MACs over the
        # 1536-lane CU pool: 2 cycles, during which EVERY assigned CU is busy
        # for the full duration (they each process a throughput-share).
        kernel = Kernel(KernelKind.BCONV, poly_length=256, count=3, inner=4)
        report = one_cluster_sim.run(_trace([KernelStep(kernels=[kernel])]))
        assert report.latency_cycles == pytest.approx(2 + FILL)
        cu_busy = {name: busy for name, busy in report.unit_busy_cycles.items()
                   if name.startswith("CU-")}
        assert len(cu_busy) == 6
        for busy in cu_busy.values():
            assert busy == pytest.approx(2.0)
        # MAC kernels stream three operands: 768 elements * 4.5 B * 3.
        assert report.memory_cycles == pytest.approx(768 * 4.5 * 3 / 9000)

    def test_kernels_sharing_a_unit_serialize_within_the_step(self, one_cluster_sim):
        # ModAdd and ModMul both land on the EWE (2 cycles each => 4 total);
        # the Auto kernel runs concurrently on the 256-lane AutoU (4 cycles).
        # Step compute time is the busiest unit: max(4, 4) = 4.
        step = KernelStep(kernels=[
            Kernel(KernelKind.MODADD, poly_length=1024),
            Kernel(KernelKind.MODMUL, poly_length=1024),
            Kernel(KernelKind.AUTO, poly_length=1024),
        ])
        report = one_cluster_sim.run(_trace([step]))
        assert report.unit_busy_cycles["EWE"] == pytest.approx(4.0)
        assert report.unit_busy_cycles["AutoU"] == pytest.approx(4.0)
        assert report.latency_cycles == pytest.approx(4 + FILL)

    def test_unmapped_kernel_raises(self, one_cluster_config):
        # A mapping with no unit for a kernel kind must fail loudly.
        mapping = trinity_ckks_mapping(one_cluster_config)
        del mapping.assignments[KernelKind.MODADD]
        sim = TrinitySimulator(one_cluster_config, mapping)
        step = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=64)])
        with pytest.raises(ValueError, match="no unit for kernel kind"):
            sim.run(_trace([step]))


class TestSimulatorRepeatAccounting:
    def test_repeated_step_multiplies_iteration_cost(self, one_cluster_sim):
        # repeat=5 models a strict dependency chain: 5 iterations of the
        # 2-cycle ModAdd, each paying the REDUCED fill overhead (40/4 = 10).
        step = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)],
                          repeat=5)
        report = one_cluster_sim.run(_trace([step]))
        assert report.latency_cycles == pytest.approx((2 + FILL / 4) * 5)
        # Busy cycles and memory scale with the repeat count, overhead not.
        assert report.unit_busy_cycles["EWE"] == pytest.approx(10.0)
        assert report.memory_cycles == pytest.approx(5 * 9216 / 9000)

    def test_single_iteration_pays_full_fill_overhead(self, one_cluster_sim):
        single = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)])
        report = one_cluster_sim.run(_trace([single]))
        assert report.latency_cycles - report.unit_busy_cycles["EWE"] == pytest.approx(FILL)

    def test_step_latencies_add_across_the_trace(self, one_cluster_sim):
        steps = [
            KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)]),
            KernelStep(kernels=[Kernel(KernelKind.AUTO, poly_length=1024)]),
            KernelStep(kernels=[Kernel(KernelKind.MODMUL, poly_length=512)], repeat=2),
        ]
        report = one_cluster_sim.run(_trace(steps))
        expected = (2 + FILL) + (4 + FILL) + (1 + FILL / 4) * 2
        assert report.latency_cycles == pytest.approx(expected)
        assert report.step_cycles == pytest.approx([2 + FILL, 4 + FILL, (1 + FILL / 4) * 2])
        # Throughput is the busiest unit overall: EWE did 2 + 2*1 = 4 cycles.
        assert report.throughput_cycles == pytest.approx(4.0)


class TestSimulatorRooflineAndClusters:
    def test_memory_bound_step_is_charged_memory_cycles(self):
        # Shrink the scratchpad to 90 B/cycle: the 9216-byte ModAdd transfer
        # needs 102.4 cycles, dominating the 2 compute cycles.
        config = TrinityConfig(
            clusters=1, pipeline_fill_cycles=FILL,
            memory=MemoryConfig(scratchpad_bandwidth_gbps=90.0),
            name="test-slow-mem",
        )
        sim = TrinitySimulator(config, trinity_ckks_mapping(config))
        step = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)])
        report = sim.run(_trace([step]))
        assert report.memory_cycles == pytest.approx(9216 / 90)
        assert report.latency_cycles == pytest.approx(9216 / 90 + FILL)
        # Busy time still reflects compute only.
        assert report.unit_busy_cycles["EWE"] == pytest.approx(2.0)

    def test_clusters_divide_compute_and_scale_bandwidth(self):
        config = TrinityConfig(clusters=4, pipeline_fill_cycles=FILL, name="test-4c")
        sim = TrinitySimulator(config, trinity_ckks_mapping(config))
        step = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)])
        report = sim.run(_trace([step]))
        # Work per cluster: 1024/4 = 256 elements -> 0.5 cycles on the EWE;
        # aggregate scratchpad bandwidth: 4 * 9000 B/cycle.
        assert report.unit_busy_cycles["EWE"] == pytest.approx(0.5)
        assert report.memory_cycles == pytest.approx(9216 / 36000)
        assert report.latency_cycles == pytest.approx(0.5 + FILL)

    def test_utilization_and_throughput_report(self, one_cluster_sim, one_cluster_config):
        step = KernelStep(kernels=[Kernel(KernelKind.MODADD, poly_length=1024)])
        report = one_cluster_sim.run(_trace([step]))
        util = report.utilization()
        assert util["EWE"] == pytest.approx(2 / (2 + FILL))
        # Units that did nothing report zero utilization; the average covers
        # only units that did work by default.
        assert util["AutoU"] == 0.0
        assert report.average_utilization() == pytest.approx(2 / (2 + FILL))
        assert report.operations_per_second == pytest.approx(
            one_cluster_config.frequency_ghz * 1e9 / report.throughput_cycles
        )
        assert report.latency_seconds == pytest.approx(report.latency_cycles / 1e9)
