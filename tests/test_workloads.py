"""Tests for the benchmark workload generators (Section V-B)."""

import math

import pytest

from repro.fhe.params import CKKS_DEFAULT, CKKSParameters, TFHE_SET_I, TFHE_SET_III
from repro.kernels import KernelKind, trace_multiplications
from repro.workloads import (
    Workload,
    conversion_workload,
    he3db_hybrid_segments,
    he3db_workload,
    helr_workload,
    nn_workload,
    packed_bootstrapping_workload,
    pbs_workload,
    resnet20_workload,
)
from repro.workloads.ckks_workloads import helr_iteration_operations, operations_to_traces
from repro.workloads.hybrid_workloads import PBS_PER_FILTERED_ENTRY
from repro.workloads.tfhe_workloads import NN_NEURONS_PER_LAYER


class TestWorkloadType:
    def test_combined_trace_concatenates_steps(self):
        workload = helr_workload(CKKS_DEFAULT)
        combined = workload.combined_trace()
        assert len(combined) == sum(len(trace) for trace in workload.traces)

    def test_num_operations(self):
        workload = helr_workload(CKKS_DEFAULT)
        assert workload.num_operations == len(workload.traces)


class TestCKKSWorkloads:
    def test_bootstrap_respects_level_budget(self):
        workload = packed_bootstrapping_workload(CKKS_DEFAULT, levels_consumed=15)
        histogram = workload.metadata["operation_histogram"]
        assert histogram["HMult"] > 0
        assert histogram["HRotate"] > 0
        assert histogram["PMult"] > 0

    def test_bootstrap_traces_are_ckks(self):
        workload = packed_bootstrapping_workload(CKKS_DEFAULT)
        assert workload.scheme == "ckks"
        assert all(trace.scheme == "ckks" for trace in workload.traces)

    def test_helr_iteration_structure(self):
        operations = helr_iteration_operations(CKKS_DEFAULT, features=256)
        names = [op.name for op in operations]
        assert names.count("HMult") == 4
        assert "HRotate" in names
        # Levels never increase along the iteration.
        levels = [op.level for op in operations]
        assert levels == sorted(levels, reverse=True)

    def test_helr_scales_with_iterations(self):
        one = helr_workload(CKKS_DEFAULT, iterations=1)
        four = helr_workload(CKKS_DEFAULT, iterations=4)
        assert len(four.traces) == 4 * len(one.traces)

    def test_resnet_contains_bootstraps(self):
        workload = resnet20_workload(CKKS_DEFAULT, bootstraps=9)
        assert workload.metadata["bootstraps"] == 9
        assert workload.metadata["layers"] == 20
        # ResNet-20 is much more work than one HELR iteration.
        resnet_work = sum(trace_multiplications(t) for t in workload.traces)
        helr_work = sum(trace_multiplications(t) for t in helr_workload(CKKS_DEFAULT).traces)
        assert resnet_work > 10 * helr_work

    def test_operations_to_traces_respects_counts(self):
        from repro.fhe.ckks.bootstrap import HomomorphicOp
        traces = operations_to_traces([HomomorphicOp("HAdd", 5, 3)], CKKS_DEFAULT)
        assert len(traces) == 1
        total_elements = traces[0].kernel_histogram()[KernelKind.MODADD]
        assert total_elements == 3 * 2 * 6 * CKKS_DEFAULT.ring_degree


class TestTFHEWorkloads:
    def test_pbs_workload_wraps_single_trace(self):
        workload = pbs_workload(TFHE_SET_I)
        assert workload.scheme == "tfhe"
        assert len(workload.traces) == 1

    def test_nn_depth_controls_layers(self):
        assert len(nn_workload(20).traces) == 20
        assert len(nn_workload(50).traces) == 50

    def test_nn_total_pbs_metadata(self):
        workload = nn_workload(20)
        assert workload.metadata["total_pbs"] == 20 * NN_NEURONS_PER_LAYER

    def test_nn_work_scales_linearly_with_depth(self):
        work20 = sum(trace_multiplications(t) for t in nn_workload(20).traces)
        work100 = sum(trace_multiplications(t) for t in nn_workload(100).traces)
        assert work100 == pytest.approx(5 * work20, rel=0.05)

    def test_nn_invalid_depth(self):
        with pytest.raises(ValueError):
            nn_workload(0)


class TestHybridWorkloads:
    def test_conversion_workload_directions(self):
        to_ckks = conversion_workload(8, direction="tfhe-to-ckks")
        to_tfhe = conversion_workload(8, direction="ckks-to-tfhe")
        assert trace_multiplications(to_ckks.traces[0]) > trace_multiplications(to_tfhe.traces[0])
        with pytest.raises(ValueError):
            conversion_workload(8, direction="sideways")

    def test_conversion_default_parameters_match_paper(self):
        workload = conversion_workload(32)
        assert workload.metadata["ring_degree"] == 16384
        assert workload.metadata["levels"] == 8

    def test_he3db_scales_with_entries(self):
        small = he3db_workload(4096)
        large = he3db_workload(16384)
        small_work = sum(trace_multiplications(t) for t in small.traces)
        large_work = sum(trace_multiplications(t) for t in large.traces)
        assert 2.5 < large_work / small_work < 5.0

    def test_he3db_contains_all_three_phases(self):
        workload = he3db_workload(4096)
        kinds = set()
        for trace in workload.traces:
            kinds |= {k.kind for k in trace.kernels()}
        assert KernelKind.SAMPLE_EXTRACT in kinds     # CKKS -> TFHE
        assert KernelKind.MAC in kinds                # TFHE external products
        assert KernelKind.IP in kinds                 # CKKS keyswitch in aggregation

    def test_he3db_segments_route_schemes(self):
        segments = he3db_hybrid_segments(4096)
        schemes = [segment.scheme for segment in segments]
        assert schemes == ["conversion", "tfhe", "ckks"]
        # The CKKS->TFHE boundary ships the large extracted LWE ciphertexts.
        assert segments[0].transfer_bytes > segments[1].transfer_bytes

    def test_he3db_metadata(self):
        workload = he3db_workload(4096)
        assert workload.metadata["entries"] == 4096
        assert workload.metadata["pbs_per_entry"] == PBS_PER_FILTERED_ENTRY
