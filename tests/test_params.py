"""Tests for the parameter sets (Table IV) and their derived quantities."""

import pytest

from repro.fhe import modmath
from repro.fhe.params import (
    CKKS_DEFAULT,
    CKKS_KEYSWITCH_BREAKDOWN,
    CKKSParameters,
    CONVERSION_DEFAULT,
    ConversionParameters,
    TFHE_PARAMETER_SETS,
    TFHE_SET_I,
    TFHE_SET_II,
    TFHE_SET_III,
    TFHEParameters,
)


class TestPaperParameterSets:
    def test_ckks_default_matches_table_iv(self):
        assert CKKS_DEFAULT.ring_degree == 65536
        assert CKKS_DEFAULT.max_level == 35
        assert CKKS_DEFAULT.dnum == 3
        assert CKKS_DEFAULT.security_bits == 128

    def test_keyswitch_breakdown_set(self):
        assert CKKS_KEYSWITCH_BREAKDOWN.max_level == 23
        assert CKKS_KEYSWITCH_BREAKDOWN.dnum == 3

    def test_tfhe_sets_match_table_iv(self):
        assert (TFHE_SET_I.polynomial_size, TFHE_SET_I.lwe_dimension,
                TFHE_SET_I.glwe_dimension, TFHE_SET_I.bsk_levels) == (1024, 500, 1, 2)
        assert (TFHE_SET_II.polynomial_size, TFHE_SET_II.lwe_dimension,
                TFHE_SET_II.bsk_levels) == (1024, 630, 3)
        assert (TFHE_SET_III.polynomial_size, TFHE_SET_III.lwe_dimension,
                TFHE_SET_III.bsk_levels) == (2048, 592, 3)
        assert TFHE_SET_I.security_bits == 80
        assert TFHE_SET_II.security_bits == 110
        assert TFHE_SET_III.security_bits == 128

    def test_parameter_set_registry(self):
        assert set(TFHE_PARAMETER_SETS) == {"Set-I", "Set-II", "Set-III"}

    def test_conversion_default_matches_benchmark(self):
        assert CONVERSION_DEFAULT.ckks.ring_degree == 2 ** 14
        assert CONVERSION_DEFAULT.ckks.max_level == 8


class TestCKKSDerivedQuantities:
    def test_alpha_and_beta(self):
        # L = 35, dnum = 3 -> alpha = 12 moduli per digit, 3 digits at full level.
        assert CKKS_DEFAULT.alpha == 12
        assert CKKS_DEFAULT.beta(CKKS_DEFAULT.max_level) == 3
        assert CKKS_DEFAULT.beta(0) == 1

    def test_slots(self):
        assert CKKS_DEFAULT.slots == 32768

    def test_scale(self):
        params = CKKSParameters.toy()
        assert params.scale == 1 << params.scale_bits

    def test_functional_moduli_are_ntt_friendly(self):
        params = CKKSParameters.toy()
        for q in params.moduli + params.special_moduli:
            assert modmath.is_prime(q)
            assert q % (2 * params.ring_degree) == 1
        assert len(set(params.moduli + params.special_moduli)) == \
            params.num_moduli + params.num_special_moduli

    def test_basis_levels(self):
        params = CKKSParameters.toy(max_level=3)
        assert len(params.basis(0)) == 1
        assert len(params.basis()) == 4
        assert len(params.extended_basis(1)) == 2 + params.num_special_moduli
        with pytest.raises(ValueError):
            params.basis(9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CKKSParameters(ring_degree=100, max_level=3, dnum=2)
        with pytest.raises(ValueError):
            CKKSParameters(ring_degree=64, max_level=0, dnum=2)
        with pytest.raises(ValueError):
            CKKSParameters(ring_degree=64, max_level=3, dnum=0)


class TestTFHEDerivedQuantities:
    def test_external_product_branches(self):
        assert TFHE_SET_I.external_product_branches == 4     # (k+1) * l_b = 2 * 2
        assert TFHE_SET_III.external_product_branches == 6    # 2 * 3

    def test_glwe_lwe_dimension(self):
        assert TFHE_SET_III.glwe_lwe_dimension == 2048

    def test_functional_modulus_is_ntt_friendly(self):
        params = TFHEParameters.toy()
        assert modmath.is_prime(params.modulus)
        assert params.modulus % (2 * params.polynomial_size) == 1

    def test_bases_are_powers_of_two(self):
        assert TFHE_SET_I.bsk_base == 1 << TFHE_SET_I.bsk_base_log
        assert TFHE_SET_I.ksk_base == 1 << TFHE_SET_I.ksk_base_log

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TFHEParameters(polynomial_size=100, lwe_dimension=10)
        with pytest.raises(ValueError):
            TFHEParameters(polynomial_size=64, lwe_dimension=0)
        with pytest.raises(ValueError):
            TFHEParameters(polynomial_size=64, lwe_dimension=8, glwe_dimension=0)


class TestConversionParameters:
    def test_nslot_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ConversionParameters(ckks=CKKSParameters.toy(), tfhe=TFHEParameters.toy(), nslot=3)

    def test_nslot_bounded_by_ring_degree(self):
        with pytest.raises(ValueError):
            ConversionParameters(
                ckks=CKKSParameters.toy(ring_degree=64), tfhe=TFHEParameters.toy(), nslot=128
            )
