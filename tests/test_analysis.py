"""Tests for the experiment harness and reporting (every table and figure runs)."""

import pytest

from repro.analysis import (
    ExperimentResult,
    figure_01_ntt_utilization,
    figure_02_workload_breakdown,
    figure_09_trinity_ntt_utilization,
    figure_11_ip_latency,
    figure_16_cluster_area_power,
    render_experiment,
    render_markdown_table,
    table_07_pbs_throughput,
    table_09_conversion_performance,
    table_11_area_power,
    table_12_accelerator_comparison,
)
from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.analysis.tables import (
    FIGURE_02_PAPER_NTT_SHARE,
    PAPER_HEADLINE_CLAIMS,
    TABLE_VI_PAPER_MS,
    TABLE_VII_PAPER_OPS,
)


class TestExperimentResult:
    def test_row_and_lookup(self):
        result = ExperimentResult("x", "title", ["a", "b"])
        result.row(a=1, b=2)
        result.row(a=3, b=4)
        assert result.column_values("a") == [1, 3]
        assert result.find_row("a", 3) == {"a": 3, "b": 4}
        assert result.find_row("a", 99) is None


class TestPaperValueRegistry:
    def test_table_vi_has_trinity_and_sharp(self):
        assert TABLE_VI_PAPER_MS["Trinity"]["Bootstrap"] == 1.92
        assert TABLE_VI_PAPER_MS["SHARP"]["HELR"] == 2.53

    def test_table_vii_speedup_claim_consistency(self):
        trinity = TABLE_VII_PAPER_OPS["Trinity"]
        morphling = TABLE_VII_PAPER_OPS["Morphling"]
        speedups = [trinity[s] / morphling[s] for s in ("Set-I", "Set-II", "Set-III")]
        assert sum(speedups) / len(speedups) == pytest.approx(
            PAPER_HEADLINE_CLAIMS["pbs_speedup_over_morphling"], rel=0.05
        )

    def test_figure_2_shares_are_fractions(self):
        for value in FIGURE_02_PAPER_NTT_SHARE.values():
            assert 0.0 < value < 1.0


class TestFigureExperiments:
    def test_figure_01_shapes(self):
        result = figure_01_ntt_utilization()
        f1 = result.column_values("f1_like")
        fab = result.column_values("fab_like")
        assert f1[-1] == max(f1)
        assert fab[0] == max(fab)

    def test_figure_02_matches_paper_within_15_points(self):
        result = figure_02_workload_breakdown()
        for row in result.rows:
            if row["paper_ntt_share"] is not None:
                assert abs(row["ntt_share"] - row["paper_ntt_share"]) < 0.15

    def test_figure_09_trinity_dominates(self):
        result = figure_09_trinity_ntt_utilization()
        for row in result.rows:
            assert row["trinity"] >= row["f1_like"]

    def test_figure_11_speedups_above_one(self):
        result = figure_11_ip_latency()
        assert all(row["speedup"] >= 1.0 for row in result.rows)

    def test_figure_16_monotone_scaling(self):
        result = figure_16_cluster_area_power()
        areas = result.column_values("area_mm2")
        assert areas == sorted(areas)


class TestTableExperiments:
    def test_table_07_ordering(self):
        result = table_07_pbs_throughput()
        trinity = result.find_row("accelerator", "Trinity")
        morphling = result.find_row("accelerator", "Morphling")
        for label in ("Set-I", "Set-II", "Set-III"):
            assert trinity[label] > morphling[label]

    def test_table_09_speedup_magnitude(self):
        result = table_09_conversion_performance()
        cpu = result.find_row("accelerator", "Baseline-SC (CPU)")
        trinity = result.find_row("accelerator", "Trinity")
        assert cpu["nslot=32"] / trinity["nslot=32"] > 1000

    def test_table_11_total_close_to_paper(self):
        result = table_11_area_power()
        total = result.find_row("component", "Total")
        assert abs(total["area_mm2"] - 157.26) < 8.0

    def test_table_12_trinity_supports_all_schemes(self):
        result = table_12_accelerator_comparison()
        trinity = result.find_row("accelerator", "Trinity (this model)")
        assert "CKKS" in trinity["schemes"] and "TFHE" in trinity["schemes"]

    def test_experiment_registry_is_complete(self):
        expected = {f"table-{n:02d}" for n in range(6, 13)} | {
            "figure-01", "figure-02", "figure-09", "figure-10", "figure-11",
            "figure-12", "figure-13", "figure-14", "figure-15", "figure-16",
        }
        assert set(ALL_EXPERIMENTS) == expected


class TestReportRendering:
    def test_markdown_table_structure(self):
        text = render_markdown_table(["a", "b"], [{"a": 1, "b": None}, {"a": 2.5, "b": "x"}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "-" in lines[2]          # None rendered as '-'
        assert len(lines) == 4

    def test_render_experiment_includes_notes(self):
        result = ExperimentResult("id", "A title", ["x"], notes="a note")
        result.row(x=1)
        rendered = render_experiment(result)
        assert "A title" in rendered
        assert "a note" in rendered

    def test_large_numbers_use_thousands_separators(self):
        text = render_markdown_table(["v"], [{"v": 600060}])
        assert "600,060" in text
