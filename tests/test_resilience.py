"""Suite for the serving layer's resilience machinery (PR 7).

* **Admission**: token-bucket refill semantics, per-tenant rate limiting
  with ``retry_after``, global queue-depth backpressure, per-tenant
  counters — all on a manual clock, no sleeping.
* **Retries/backoff**: exponential growth, cap, jitter bounds, injected
  sleep recorder; the scheduler's retry ladder turns one-shot kernel
  faults into served responses.
* **Circuit breakers**: the closed/open/half-open state machine, probe
  bounds, transition counters; the scheduler sheds with typed
  ``CircuitOpenError`` while open and recovers through a probe.
* **Deadlines**: queued, mid-retry, and post-execution overruns all fail
  the future with ``DeadlineExceededError`` — nothing hangs.
* **Chaos**: the seeded fault schedule (determinism, budgets), the
  fault-injecting backend (raise/stall/corrupt) on the pure-python
  backend, wire corruption, output-validator integrity, and a miniature
  end-to-end soak through ``chaos_soak_gate``.

Everything here runs on the pure-python backend: this file is part of the
no-numpy CI leg.
"""

import random

import pytest

from repro.fhe.backend import ArithmeticBackend, PythonBackend
from repro.fhe.ckks.ciphertext import CKKSCiphertext, CKKSPlaintext
from repro.fhe.ckks.evaluator import CKKSEvaluator
from repro.fhe.ckks.keys import CKKSKeyGenerator
from repro.fhe.params import CKKSParameters
from repro.fhe.polynomial import Polynomial
from repro.fhe.program import HETrace, ProgramExecutor
from repro.fhe.rns import RNSPolynomial
from repro.serve import (
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    CircuitOpenError,
    CorruptPayloadError,
    CorruptResultError,
    DeadlineExceededError,
    ExecutionError,
    FaultInjectingBackend,
    FaultSchedule,
    FaultSpec,
    InferenceRequest,
    InferenceServer,
    InjectedFault,
    LoadGenerator,
    ManualClock,
    OverloadedError,
    RateLimitedError,
    ResiliencePolicy,
    RetryPolicy,
    SchedulerDelayInjector,
    TokenBucket,
    chaos_soak_gate,
    corrupt_payload,
    deserialize_ciphertext,
    serialize_ciphertext,
)

PYTHON = PythonBackend()
TOY = CKKSParameters.toy()


# ---------------------------------------------------------------------------
# Helpers (shared idiom with tests/test_serve.py)
# ---------------------------------------------------------------------------

def _random_poly(params, seed, level=None):
    degree = params.ring_degree
    basis = params.basis(params.max_level if level is None else level)
    rng = random.Random(seed ^ 0x53EB7E)
    limbs = [
        Polynomial._from_reduced(degree, q, [rng.randrange(q) for _ in range(degree)])
        for q in basis
    ]
    return RNSPolynomial(degree, basis, limbs)


def _random_ct(params, seed, level=None, scale=None):
    level = params.max_level if level is None else level
    return CKKSCiphertext(
        c0=_random_poly(params, seed, level),
        c1=_random_poly(params, seed + 1, level),
        level=level,
        scale=float(params.scale) if scale is None else float(scale),
    )


def _random_pt(params, seed, level=None):
    level = params.max_level if level is None else level
    return CKKSPlaintext(poly=_random_poly(params, seed, level), level=level,
                         scale=float(params.scale))


def _keyed(params, seed=11):
    return CKKSKeyGenerator(params, seed=seed, error_stddev=0.0).generate()


def _rows(ct):
    c0 = ct.c0.to_coeff()
    c1 = ct.c1.to_coeff()
    return (
        tuple(map(tuple, c0.coefficient_rows())),
        tuple(map(tuple, c1.coefficient_rows())),
    )


def _dense_tracer(pts):
    def tracer(x):
        acc = x.rotate(1) * pts[0] + x.rotate(2) * pts[1] + x * pts[2]
        return acc + x.conjugate() * pts[3]
    return tracer


def _dense_server(params, backend, seed=11, tenants=("t0",), **kwargs):
    kwargs.setdefault("batch_window", 0.001)
    server = InferenceServer(params, backend=backend, **kwargs)
    keys = _keyed(params, seed)
    for tenant in tenants:
        server.register_tenant(tenant, keys)
    pts = [_random_pt(params, 400 + j) for j in range(4)]
    tracer = _dense_tracer(pts)
    server.register_program("dense", tracer)
    return server, keys, tracer


def _eager_outputs(params, keys, backend, tracer, cts):
    evaluator = CKKSEvaluator(params, keys, backend=backend)
    outputs = []
    for ct in cts:
        trace = HETrace(params)
        x = trace.input("x", level=ct.level, scale=ct.scale)
        trace.output("y", tracer(x))
        outputs.append(
            ProgramExecutor(evaluator).run_eager(trace.program, {"x": ct})["y"]
        )
    return outputs


class _SleepRecorder:
    def __init__(self):
        self.calls = []

    def __call__(self, seconds):
        self.calls.append(seconds)


# ---------------------------------------------------------------------------
# Token buckets and admission control
# ---------------------------------------------------------------------------

def test_token_bucket_starts_full_and_refills_on_manual_clock():
    clock = ManualClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert bucket.available() == pytest.approx(3.0)
    assert all(bucket.try_acquire() for _ in range(3))
    assert not bucket.try_acquire()
    assert bucket.seconds_until() == pytest.approx(0.5)
    clock.advance(0.5)  # refills exactly one token at 2 tokens/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(100.0)  # refill caps at burst
    assert bucket.available() == pytest.approx(3.0)


def test_token_bucket_fractional_rates_accumulate():
    clock = ManualClock()
    bucket = TokenBucket(rate=0.5, clock=clock)  # burst defaults to 1
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(1.0)  # only half a token
    assert not bucket.try_acquire()
    clock.advance(1.0)
    assert bucket.try_acquire()


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.5)


def test_admission_rate_limits_per_tenant_and_counts():
    clock = ManualClock()
    controller = AdmissionController(per_tenant_rate=1.0, per_tenant_burst=2.0,
                                     clock=clock)
    controller.admit("a", 0)
    controller.admit("a", 0)
    with pytest.raises(RateLimitedError) as info:
        controller.admit("a", 0)
    assert info.value.retry_after_seconds == pytest.approx(1.0)
    controller.admit("b", 0)  # tenant b has its own bucket
    clock.advance(1.0)
    controller.admit("a", 0)  # refilled
    stats = controller.stats()
    assert stats["per_tenant"]["a"] == {"admitted": 3, "rate_limited": 1, "shed": 0}
    assert stats["per_tenant"]["b"]["admitted"] == 1
    assert stats["rate_limited"] == 1 and stats["admitted"] == 4


def test_admission_tenant_limit_overrides_default():
    clock = ManualClock()
    controller = AdmissionController(per_tenant_rate=100.0,
                                     tenant_limits={"noisy": (1.0, 1.0)},
                                     clock=clock)
    controller.admit("noisy", 0)
    with pytest.raises(RateLimitedError):
        controller.admit("noisy", 0)
    for _ in range(10):
        controller.admit("polite", 0)


def test_admission_queue_depth_backpressure():
    controller = AdmissionController(max_pending=2, clock=ManualClock())
    controller.admit("a", 0)
    controller.admit("b", 1)
    with pytest.raises(OverloadedError):
        controller.admit("c", 2)
    assert controller.stats()["shed"] == 1
    controller.admit("c", 1)  # queue drained below the bound


def test_admission_controller_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_pending=0)


def test_server_rate_limits_one_tenant_without_starving_the_other():
    server, keys, tracer = _dense_server(
        TOY, PYTHON, tenants=("free", "paid"),
        admission=AdmissionController(tenant_limits={"free": (1.0, 1.0)},
                                      clock=ManualClock()))
    requests = [
        InferenceRequest.single("free", "dense", _random_ct(TOY, 1)),
        InferenceRequest.single("free", "dense", _random_ct(TOY, 2)),
        InferenceRequest.single("paid", "dense", _random_ct(TOY, 3)),
    ]
    results = server.serve(requests, return_exceptions=True)
    assert isinstance(results[0], type(results[2]))  # both responses
    assert isinstance(results[1], RateLimitedError)
    assert results[1].retry_after_seconds == pytest.approx(1.0)
    stats = server.stats()
    assert stats["rejections"] == {"RateLimitedError": 1}
    assert stats["admission"]["per_tenant"]["free"]["rate_limited"] == 1
    assert stats["served"] == 2 and stats["pending"] == 0


def test_server_sheds_load_when_pending_queue_is_full():
    server, keys, tracer = _dense_server(
        TOY, PYTHON,
        admission=AdmissionController(max_pending=2, clock=ManualClock()))
    requests = [InferenceRequest.single("t0", "dense", _random_ct(TOY, i))
                for i in range(4)]
    results = server.serve(requests, return_exceptions=True)
    shed = [r for r in results if isinstance(r, OverloadedError)]
    served = [r for r in results if not isinstance(r, BaseException)]
    assert len(shed) == 2 and len(served) == 2
    assert server.stats()["admission"]["shed"] == 2
    # the queue drained: a follow-up request is admitted again
    response = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 9))])[0]
    assert response.ciphertexts


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

def test_retry_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=5, base_delay=0.01, multiplier=2.0,
                         max_delay=0.03, jitter=0.0)
    assert policy.backoff_delay(0) == pytest.approx(0.01)
    assert policy.backoff_delay(1) == pytest.approx(0.02)
    assert policy.backoff_delay(2) == pytest.approx(0.03)  # capped
    assert policy.backoff_delay(5) == pytest.approx(0.03)


def test_retry_jitter_bounds_and_determinism():
    a = RetryPolicy(base_delay=0.01, jitter=0.5, rng=random.Random(7))
    b = RetryPolicy(base_delay=0.01, jitter=0.5, rng=random.Random(7))
    delays_a = [a.backoff_delay(0) for _ in range(20)]
    delays_b = [b.backoff_delay(0) for _ in range(20)]
    assert delays_a == delays_b  # same seed, same jitter draws
    assert all(0.01 <= d <= 0.015 + 1e-12 for d in delays_a)
    assert len(set(delays_a)) > 1  # jitter actually varies


def test_retry_wait_uses_injected_sleep():
    recorder = _SleepRecorder()
    policy = RetryPolicy(base_delay=0.25, max_delay=1.0, jitter=0.0,
                         sleep=recorder)
    delay = policy.wait(0)
    assert recorder.calls == [pytest.approx(0.25)]
    assert delay == pytest.approx(0.25)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


def test_scheduler_retries_transient_failure_to_success(monkeypatch):
    """One-shot executor explosions are retried, never surfaced."""
    server, keys, tracer = _dense_server(
        TOY, PYTHON,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, sleep=_SleepRecorder())))
    original = ProgramExecutor.run
    failures = {"left": 1}

    def flaky(self, program, inputs, optimize=True):
        if failures["left"]:
            failures["left"] -= 1
            raise RuntimeError("transient kernel fault")
        return original(self, program, inputs, optimize=optimize)

    monkeypatch.setattr(ProgramExecutor, "run", flaky)
    ct = _random_ct(TOY, 5)
    response = server.serve(
        [InferenceRequest.single("t0", "dense", ct)])[0]
    monkeypatch.setattr(ProgramExecutor, "run", original)
    reference = _eager_outputs(TOY, keys, PYTHON, tracer, [ct])[0]
    assert _rows(response.ciphertexts[0]) == _rows(reference)
    stats = server.stats()
    assert stats["retries"] == 1 and stats["execution_failures"] == 1
    assert stats["served"] == 1 and stats["failed"] == 0


def test_scheduler_exhausts_retries_and_chains_cause(monkeypatch):
    recorder = _SleepRecorder()
    server, _, _ = _dense_server(
        TOY, PYTHON,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, sleep=recorder)))
    boom = RuntimeError("kernel exploded")

    def broken(self, program, inputs, optimize=True):
        raise boom

    monkeypatch.setattr(ProgramExecutor, "run", broken)
    result = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 5))],
        return_exceptions=True)[0]
    assert isinstance(result, ExecutionError)
    assert result.__cause__ is boom  # the kernel traceback survives
    assert len(recorder.calls) == 2  # two backoffs for three attempts
    stats = server.stats()
    assert stats["failed"] == 1 and stats["retries"] == 2
    assert stats["failures"] == {"ExecutionError": 1}


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------

def test_breaker_opens_after_consecutive_failures_only():
    clock = ManualClock()
    breaker = CircuitBreaker(failure_threshold=3, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the consecutive count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.transitions["opened"] == 1


def test_breaker_half_opens_probes_and_closes():
    clock = ManualClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5,
                             half_open_probes=2, clock=clock)
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.retry_after() == pytest.approx(0.5)
    clock.advance(0.3)
    assert not breaker.allow()
    assert breaker.retry_after() == pytest.approx(0.2)
    clock.advance(0.2)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow() and breaker.allow()  # two probes admitted
    assert not breaker.allow()  # probe budget spent
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.transitions == {"opened": 1, "half_opened": 1, "closed": 1}


def test_breaker_failed_probe_reopens():
    clock = ManualClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.5,
                             clock=clock)
    breaker.record_failure()
    clock.advance(0.5)
    assert breaker.allow()  # the half-open probe
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.transitions["opened"] == 2
    assert breaker.retry_after() == pytest.approx(0.5)


def test_breaker_board_stats_aggregate():
    clock = ManualClock()
    board = BreakerBoard(lambda: CircuitBreaker(failure_threshold=1,
                                                clock=clock))
    board.get(("t0", "dense")).record_failure()
    board.get(("t1", "dense")).record_success()
    stats = board.stats()
    assert stats["open_now"] == 1
    assert stats["states"] == {"t0/dense": "open", "t1/dense": "closed"}
    assert stats["transitions"]["opened"] == 1
    assert board.peek(("t2", "dense")) is None


def test_server_breaker_sheds_then_recovers(monkeypatch):
    clock = ManualClock()
    server, keys, tracer = _dense_server(
        TOY, PYTHON, clock=clock,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1),
            failure_threshold=2, reset_timeout=0.5))
    original = ProgramExecutor.run

    def broken(self, program, inputs, optimize=True):
        raise RuntimeError("backend down")

    monkeypatch.setattr(ProgramExecutor, "run", broken)
    for i in range(2):
        result = server.serve(
            [InferenceRequest.single("t0", "dense", _random_ct(TOY, i))],
            return_exceptions=True)[0]
        assert isinstance(result, ExecutionError)
    # two consecutive failures opened the (t0, dense) breaker
    rejected = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 7))],
        return_exceptions=True)[0]
    assert isinstance(rejected, CircuitOpenError)
    assert rejected.retry_after_seconds == pytest.approx(0.5)
    assert server.stats()["rejections"] == {"CircuitOpenError": 1}
    # backend recovers; after the reset timeout a probe closes the breaker
    monkeypatch.setattr(ProgramExecutor, "run", original)
    clock.advance(0.5)
    ct = _random_ct(TOY, 8)
    response = server.serve(
        [InferenceRequest.single("t0", "dense", ct)])[0]
    reference = _eager_outputs(TOY, keys, PYTHON, tracer, [ct])[0]
    assert _rows(response.ciphertexts[0]) == _rows(reference)
    stats = server.stats()["breakers"]
    assert stats["open_now"] == 0
    assert stats["transitions"]["opened"] == 1
    assert stats["transitions"]["closed"] == 1
    assert stats["states"]["t0/dense"] == "closed"


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

def test_deadline_overrun_by_execution_delay_fails_future():
    clock = ManualClock()
    delay = SchedulerDelayInjector(1.0, 0.2, sleep=clock.advance)
    server, _, _ = _dense_server(TOY, PYTHON, clock=clock,
                                 on_batch_start=delay)
    result = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 1),
                                 deadline_seconds=0.1)],
        return_exceptions=True)[0]
    assert isinstance(result, DeadlineExceededError)
    stats = server.stats()
    assert stats["deadline_exceeded"] == 1 and stats["failed"] == 1
    assert stats["pending"] == 0  # nothing hangs
    assert delay.injected == 1


def test_generous_deadline_is_met():
    clock = ManualClock()
    delay = SchedulerDelayInjector(1.0, 0.2, sleep=clock.advance)
    server, _, _ = _dense_server(TOY, PYTHON, clock=clock,
                                 on_batch_start=delay)
    response = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 1),
                                 deadline_seconds=5.0)])[0]
    assert response.ciphertexts
    assert server.stats()["deadline_exceeded"] == 0


def test_default_deadline_from_resilience_policy():
    clock = ManualClock()
    delay = SchedulerDelayInjector(1.0, 0.2, sleep=clock.advance)
    server, _, _ = _dense_server(
        TOY, PYTHON, clock=clock, on_batch_start=delay,
        resilience=ResiliencePolicy(default_deadline=0.1))
    result = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 1))],
        return_exceptions=True)[0]
    assert isinstance(result, DeadlineExceededError)


def test_deadline_checked_between_retry_attempts(monkeypatch):
    clock = ManualClock()
    server, _, _ = _dense_server(
        TOY, PYTHON, clock=clock,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=5, base_delay=0.2, max_delay=1.0,
                              jitter=0.0, sleep=clock.advance)))

    def broken(self, program, inputs, optimize=True):
        raise RuntimeError("down")

    monkeypatch.setattr(ProgramExecutor, "run", broken)
    result = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 1),
                                 deadline_seconds=0.3)],
        return_exceptions=True)[0]
    # the backoff ladder overran the deadline before attempts were exhausted
    assert isinstance(result, DeadlineExceededError)
    assert server.stats()["retries"] < 4
    assert server.stats()["pending"] == 0


# ---------------------------------------------------------------------------
# Chaos: schedules and the fault-injecting backend
# ---------------------------------------------------------------------------

def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("batched_ntt", "explode")
    with pytest.raises(ValueError):
        FaultSpec("batched_ntt", "raise", probability=1.5)
    with pytest.raises(ValueError):
        FaultSpec("modmul", "corrupt")  # not a corruptible kernel


def test_fault_schedule_is_seeded_and_bounded():
    def run(seed):
        schedule = FaultSchedule(
            [FaultSpec("limbs_add", "raise", probability=0.5,
                       max_injections=3)], seed=seed)
        return [schedule.draw("limbs_add") for _ in range(20)], schedule

    modes_a, schedule_a = run(42)
    modes_b, _ = run(42)
    modes_c, _ = run(43)
    assert modes_a == modes_b
    assert modes_a != modes_c
    assert modes_a.count("raise") == 3  # budget enforced
    assert schedule_a.exhausted()
    assert schedule_a.counts() == {"limbs_add:raise": 3}
    assert schedule_a.calls() == {"limbs_add": 20}
    assert all(e.kernel == "limbs_add" and e.mode == "raise"
               for e in schedule_a.events)


def test_fault_schedule_start_call_offsets_injection():
    schedule = FaultSchedule([FaultSpec("limbs_add", "raise", start_call=2)])
    assert [schedule.draw("limbs_add") for _ in range(4)] == \
        [None, None, "raise", "raise"]


def test_fault_backend_is_a_backend_and_raises_on_schedule():
    schedule = FaultSchedule([FaultSpec("limbs_add", "raise",
                                        max_injections=1)])
    chaos = FaultInjectingBackend(PYTHON, schedule)
    assert isinstance(chaos, ArithmeticBackend)
    assert chaos.name == "chaos:python"
    moduli = [17]
    a = PYTHON.pack_limbs([[1, 2, 3, 4]], moduli)
    b = PYTHON.pack_limbs([[5, 6, 7, 8]], moduli)
    with pytest.raises(InjectedFault):
        chaos.limbs_add(a, b, moduli)
    # budget spent: the wrapper now forwards cleanly
    clean = PYTHON.limbs_add(a, b, moduli)
    again = chaos.limbs_add(a, b, moduli)
    assert ArithmeticBackend.store_rows(again) == \
        ArithmeticBackend.store_rows(clean)


def test_fault_backend_corrupts_one_residue_in_range():
    schedule = FaultSchedule([FaultSpec("limbs_add", "corrupt",
                                        max_injections=1)])
    chaos = FaultInjectingBackend(PYTHON, schedule)
    moduli = [17, 97]
    rows = [[1, 2, 3, 4], [10, 20, 30, 40]]
    a = PYTHON.pack_limbs(rows, moduli)
    b = PYTHON.pack_limbs([[0] * 4, [0] * 4], moduli)
    corrupted = ArithmeticBackend.store_rows(chaos.limbs_add(a, b, moduli))
    clean = ArithmeticBackend.store_rows(PYTHON.limbs_add(a, b, moduli))
    assert corrupted != clean
    diffs = [(i, j) for i, (cr, cl) in enumerate(zip(corrupted, clean))
             for j, (x, y) in enumerate(zip(cr, cl)) if x != y]
    assert diffs == [(0, 0)]  # exactly one residue perturbed
    assert corrupted[0][0] == (clean[0][0] + 1) % moduli[0]  # still reduced


def test_fault_backend_stall_uses_injected_sleep():
    recorder = _SleepRecorder()
    schedule = FaultSchedule([FaultSpec("limbs_add", "stall",
                                        max_injections=1)],
                             stall_seconds=0.125)
    chaos = FaultInjectingBackend(PYTHON, schedule, sleep=recorder)
    moduli = [17]
    a = PYTHON.pack_limbs([[1, 2, 3, 4]], moduli)
    result = chaos.limbs_add(a, a, moduli)
    assert recorder.calls == [0.125]
    assert ArithmeticBackend.store_rows(result) == \
        ArithmeticBackend.store_rows(PYTHON.limbs_add(a, a, moduli))


def test_server_on_chaos_backend_serves_bit_exact_through_faults():
    """Injected kernel raises become retries; responses stay bit-exact."""
    schedule = FaultSchedule(
        [FaultSpec("limbs_eval_mac", "raise", max_injections=2)])
    chaos = FaultInjectingBackend(PYTHON, schedule)
    server, keys, tracer = _dense_server(
        TOY, chaos,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, sleep=_SleepRecorder())))
    cts = [_random_ct(TOY, 31 * (i + 1)) for i in range(3)]
    responses = server.serve(
        [InferenceRequest.single("t0", "dense", ct) for ct in cts])
    references = _eager_outputs(TOY, keys, PYTHON, tracer, cts)
    for response, reference in zip(responses, references):
        assert _rows(response.ciphertexts[0]) == _rows(reference)
    stats = server.stats()
    assert stats["served"] == 3 and stats["failed"] == 0
    assert stats["execution_failures"] >= 1
    assert schedule.exhausted()


def test_corrupt_payload_breaks_the_wire_checksum():
    blob = serialize_ciphertext(_random_ct(TOY, 3))
    assert deserialize_ciphertext(blob)  # sanity: clean blob parses
    broken = corrupt_payload(blob, random.Random(5))
    with pytest.raises(CorruptPayloadError):
        deserialize_ciphertext(broken)
    assert corrupt_payload(blob, random.Random(5)) == broken  # seeded
    with pytest.raises(ValueError):
        corrupt_payload(blob, offset=2)  # header is off limits
    with pytest.raises(ValueError):
        corrupt_payload(b"tiny")


# ---------------------------------------------------------------------------
# Output validation (integrity hook)
# ---------------------------------------------------------------------------

def test_output_validator_turns_corruption_into_retry():
    schedule = FaultSchedule(
        [FaultSpec("stacked_pmult_mac", "corrupt", max_injections=1)])
    chaos = FaultInjectingBackend(PYTHON, schedule)
    keys = _keyed(TOY)
    pts = [_random_pt(TOY, 400 + j) for j in range(4)]
    tracer = _dense_tracer(pts)
    references = {}

    def validator(request, index, ciphertext):
        expected = references[request.request_id][index]
        if _rows(ciphertext) != _rows(expected):
            raise ValueError("output mismatches the eager reference")

    server = InferenceServer(
        TOY, backend=chaos, batch_window=0.001,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, sleep=_SleepRecorder()),
            output_validator=validator))
    server.register_tenant("t0", keys)
    server.register_program("dense", tracer)
    ct = _random_ct(TOY, 77)
    request = InferenceRequest.single("t0", "dense", ct)
    references[request.request_id] = _eager_outputs(TOY, keys, PYTHON,
                                                    tracer, [ct])
    response = server.serve([request])[0]
    assert _rows(response.ciphertexts[0]) == \
        _rows(references[request.request_id][0])
    stats = server.stats()
    assert stats["output_validation_failures"] >= 1
    assert stats["served"] == 1 and stats["failed"] == 0


def test_output_validator_exhaustion_is_a_corrupt_result_error():
    def always_reject(request, index, ciphertext):
        raise ValueError("never bit-exact")

    server, _, _ = _dense_server(
        TOY, PYTHON,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, sleep=_SleepRecorder()),
            output_validator=always_reject))
    result = server.serve(
        [InferenceRequest.single("t0", "dense", _random_ct(TOY, 1))],
        return_exceptions=True)[0]
    assert isinstance(result, CorruptResultError)
    assert server.stats()["failures"] == {"CorruptResultError": 1}


# ---------------------------------------------------------------------------
# End-to-end: miniature chaos soak through the release gate
# ---------------------------------------------------------------------------

def test_chaos_soak_gate_end_to_end():
    clock = ManualClock()
    schedule = FaultSchedule(
        [FaultSpec("limbs_eval_mac", "raise", start_call=4,
                   max_injections=3)], seed=9)
    chaos = FaultInjectingBackend(PYTHON, schedule)
    server, keys, tracer = _dense_server(
        TOY, chaos, tenants=("t0", "t1", "t2"), clock=clock,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=1),
            failure_threshold=1, reset_timeout=0.5))
    evaluator = CKKSEvaluator(TOY, keys, backend=PYTHON)
    reference_cache = {}

    def reference(ct):
        key = _rows(ct)
        if key not in reference_cache:
            reference_cache[key] = _eager_outputs(TOY, keys, PYTHON, tracer,
                                                  [ct])[0]
        return reference_cache[key]

    def verify(request, response):
        return _rows(response.ciphertexts[0]) == \
            _rows(reference(request.ciphertexts[0]))

    pool = [_random_ct(TOY, 1000 + i) for i in range(4)]

    def input_factory(tenant, rng):
        return rng.choice(pool)

    generator = LoadGenerator(server, ["t0", "t1", "t2"], ["dense"],
                              input_factory, seed=3, requests_per_pass=8,
                              verify_fn=verify)
    for _ in range(5):
        generator.run_pass()
        clock.advance(0.5)  # lets any opened breaker half-open next pass
    # recovery tail: faults exhausted, breakers probe and close
    assert schedule.exhausted()
    clock.advance(0.5)
    generator.run_pass()
    agg = chaos_soak_gate(generator, min_requests=48, min_tenants=3)
    assert agg["requests"] == 48
    assert agg["served"] + agg["rejected"] + agg["failed"] == 48
    assert agg["failed"] >= 1  # the injected faults actually failed someone
    assert agg["mismatched"] == 0
    assert agg["gates"]["breaker_opened"] >= 1
    assert agg["gates"]["breaker_closed"] >= 1


def test_chaos_soak_gate_flags_problems():
    server, _, _ = _dense_server(TOY, PYTHON)
    generator = LoadGenerator(server, ["t0"], ["dense"],
                              lambda tenant, rng: _random_ct(TOY, 1),
                              requests_per_pass=2)
    generator.run_pass()
    with pytest.raises(AssertionError) as info:
        chaos_soak_gate(generator, min_requests=1000, min_tenants=3)
    message = str(info.value)
    assert "soak too small" in message
    assert "soak too narrow" in message
    assert "no circuit breaker ever opened" in message
    assert "without a verify_fn" in message


# ---------------------------------------------------------------------------
# Load generator accounting
# ---------------------------------------------------------------------------

def test_load_generator_accounts_for_failures(monkeypatch):
    server, _, _ = _dense_server(
        TOY, PYTHON,
        resilience=ResiliencePolicy(retry=RetryPolicy(max_attempts=1),
                                    failure_threshold=100))

    def broken(self, program, inputs, optimize=True):
        raise RuntimeError("down")

    monkeypatch.setattr(ProgramExecutor, "run", broken)
    generator = LoadGenerator(server, ["t0"], ["dense"],
                              lambda tenant, rng: _random_ct(TOY, 1),
                              requests_per_pass=4)
    summary = generator.run_pass()
    assert summary.requests == 4
    assert summary.served == 0 and summary.rejected == 0
    assert summary.failed == 4
    assert summary.failure_types == {"ExecutionError": 4}
    assert "4 failed" in summary.line().replace(" 4", "4")
    agg = generator.report.aggregate()
    assert agg["failed"] == 4 and agg["unresolved"] == 0
    assert agg["failure_types"] == {"ExecutionError": 4}


def test_load_generator_counts_factory_errors_as_rejections():
    server, _, _ = _dense_server(TOY, PYTHON)
    calls = {"n": 0}

    def factory(tenant, rng):
        calls["n"] += 1
        if calls["n"] % 2:
            raise CorruptPayloadError("wire corruption before submit")
        return _random_ct(TOY, calls["n"])

    generator = LoadGenerator(server, ["t0"], ["dense"], factory,
                              requests_per_pass=6)
    summary = generator.run_pass()
    assert summary.requests == 6
    assert summary.rejected == 3 and summary.served == 3
    assert summary.rejection_types == {"CorruptPayloadError": 3}
    agg = generator.report.aggregate()
    assert agg["served"] + agg["rejected"] + agg["failed"] == 6


def test_load_generator_stamps_deadlines():
    clock = ManualClock()
    delay = SchedulerDelayInjector(1.0, 0.2, sleep=clock.advance)
    server, _, _ = _dense_server(TOY, PYTHON, clock=clock,
                                 on_batch_start=delay)
    generator = LoadGenerator(server, ["t0"], ["dense"],
                              lambda tenant, rng: _random_ct(TOY, 1),
                              requests_per_pass=2, deadline_seconds=0.1)
    summary = generator.run_pass()
    assert summary.failed == 2
    assert summary.failure_types == {"DeadlineExceededError": 2}
