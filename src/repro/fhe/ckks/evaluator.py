"""Homomorphic evaluation for RNS-CKKS (Table II of the paper).

Implements the hierarchical operation set the paper reconstructs CKKS from:

===========  ==========================================================
 HAdd         element-wise ciphertext addition (ModAdd)
 PAdd         ciphertext + plaintext addition
 PMult        ciphertext * plaintext multiplication (ModMul/ModAdd)
 HMult        ciphertext * ciphertext with relinearization
              (NTT, BConv, IP, ModMul, ModAdd)
 HRotate      slot rotation: automorphism + keyswitch (adds Auto)
 Conjugate    complex conjugation: automorphism with g = 2N - 1
 Rescale      drop the last RNS limb and divide the scale (NTT, ModAdd)
 ModDownTo    level alignment without scale division
===========  ==========================================================

The evaluator is purely functional: every method returns a new ciphertext.

NTT residency
-------------
Ciphertexts may live in either the coefficient or the evaluation (NTT)
domain (see :class:`~repro.fhe.rns.RNSPolynomial`); every method accepts
both and aligns its operands as needed.  ``multiply`` computes the tensor
product as one batched evaluation-domain dispatch and returns an
evaluation-resident ciphertext; ``rescale`` stays in whichever domain its
input is in; rotations hoisted through :meth:`rotate_hoisted` share one
Decompose+BConv+NTT phase across all requested steps.  All paths are
bit-identical to the coefficient-domain reference (``_multiply_coeff``,
``rotate``) up to keyswitch noise, and exactly identical where no BConv
reordering is involved (multiply, rescale, domain round trips).
"""

from __future__ import annotations

from typing import List, Sequence

from ..backend import ArithmeticBackend, active_backend, use_backend
from ..params import CKKSParameters
from ..rns import RNSPolynomial, _limb_contexts
from .ciphertext import CKKSCiphertext, CKKSPlaintext
from .keys import (
    CKKSKeySet,
    galois_element_for_conjugation,
    galois_element_for_rotation,
)
from .keyswitch import hoist_decompose, hybrid_keyswitch, keyswitch_hoisted

__all__ = ["CKKSEvaluator"]


class CKKSEvaluator:
    """Homomorphic operations over ciphertexts produced by one key set.

    ``backend`` optionally pins the arithmetic backend (``"python"`` /
    ``"numpy"`` or an instance) used by every operation of this evaluator;
    the default follows the process-wide active backend.
    """

    def __init__(self, params: CKKSParameters, keys: CKKSKeySet,
                 backend: "ArithmeticBackend | str | None" = None):
        self.params = params
        self.keys = keys
        self.backend = backend

    def _arith(self):
        """Context manager activating this evaluator's pinned backend."""
        return use_backend(self.backend)

    # -- helpers -------------------------------------------------------------
    def _check_levels(self, a: CKKSCiphertext, b: CKKSCiphertext) -> None:
        if a.level != b.level:
            raise ValueError(f"level mismatch: {a.level} vs {b.level}")

    def _check_scales(self, a_scale: float, b_scale: float) -> None:
        ratio = a_scale / b_scale
        if not 0.99 < ratio < 1.01:
            raise ValueError(f"scale mismatch: {a_scale} vs {b_scale}")

    def _plaintext_at_level(self, plaintext: CKKSPlaintext, level: int) -> RNSPolynomial:
        poly = plaintext.poly
        if plaintext.level < level:
            raise ValueError("plaintext level is below the ciphertext level")
        return poly.keep_limbs(level + 1)

    def _plaintext_eval_at_level(self, plaintext: CKKSPlaintext, level: int) -> RNSPolynomial:
        """Evaluation-domain image of the plaintext at ``level``, cached.

        The forward NTT of a plaintext is a pure function of (plaintext,
        level, backend), so repeated ``multiply_plain``/``add_plain`` against
        the same encoding — every BSGS diagonal across applies, every reuse
        a planned program's common-subexpression view exposes — pay the
        transform once instead of per call.
        """
        backend = active_backend()
        # The storage mode is part of the key: a wide-store and a
        # REPRO_U32_STORE=1 backend share the name "numpy" but must not
        # share cached stores (values agree, storage width does not).
        key = (backend.name, getattr(backend, "store_uint32", False), level)
        poly = plaintext._eval_cache.get(key)
        if poly is None:
            poly = self._plaintext_at_level(plaintext, level).to_eval()
            plaintext._eval_cache[key] = poly
        return poly

    # -- domain residency -------------------------------------------------------
    def to_eval(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """The same ciphertext, evaluation(NTT)-resident (no-op if it already is)."""
        if a.domain == "eval":
            return a
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0.to_eval(), c1=a.c1.to_eval(), level=a.level, scale=a.scale
            )

    def to_coeff(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """The same ciphertext, coefficient-resident (no-op if it already is)."""
        if a.domain == "coeff":
            return a
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0.to_coeff(), c1=a.c1.to_coeff(), level=a.level, scale=a.scale
            )

    def _align_domains(self, a: CKKSCiphertext, b: CKKSCiphertext):
        """Convert ``b`` into ``a``'s residency domain (exact either way)."""
        if a.domain == b.domain:
            return a, b
        return a, (self.to_eval(b) if a.domain == "eval" else self.to_coeff(b))

    # -- additions -------------------------------------------------------------
    def add(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """HAdd: element-wise addition of two ciphertexts."""
        self._check_levels(a, b)
        self._check_scales(a.scale, b.scale)
        with self._arith():
            a, b = self._align_domains(a, b)
            return CKKSCiphertext(c0=a.c0 + b.c0, c1=a.c1 + b.c1, level=a.level, scale=a.scale)

    def sub(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """Element-wise subtraction of two ciphertexts."""
        self._check_levels(a, b)
        self._check_scales(a.scale, b.scale)
        with self._arith():
            a, b = self._align_domains(a, b)
            return CKKSCiphertext(c0=a.c0 - b.c0, c1=a.c1 - b.c1, level=a.level, scale=a.scale)

    def add_plain(self, a: CKKSCiphertext, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        """PAdd: add an encoded plaintext to a ciphertext."""
        self._check_scales(a.scale, plaintext.scale)
        with self._arith():
            if a.domain == "eval":
                poly = self._plaintext_eval_at_level(plaintext, a.level)
            else:
                poly = self._plaintext_at_level(plaintext, a.level)
            return CKKSCiphertext(c0=a.c0 + poly, c1=a.c1, level=a.level, scale=a.scale)

    def negate(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Negate a ciphertext."""
        with self._arith():
            return CKKSCiphertext(c0=-a.c0, c1=-a.c1, level=a.level, scale=a.scale)

    # -- multiplications ---------------------------------------------------------
    def multiply_plain(self, a: CKKSCiphertext, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        """PMult: multiply a ciphertext by an encoded plaintext (scale multiplies).

        On an evaluation-resident ciphertext the product is pointwise — no
        transforms beyond encoding the plaintext into the NTT domain, and
        even that is cached per (plaintext, level, backend), so repeated
        products against the same plaintext (the BSGS inner loop, a reused
        program constant) skip the forward NTT entirely.
        """
        with self._arith():
            if a.domain == "eval":
                poly = self._plaintext_eval_at_level(plaintext, a.level)
            else:
                poly = self._plaintext_at_level(plaintext, a.level)
            return CKKSCiphertext(
                c0=a.c0 * poly,
                c1=a.c1 * poly,
                level=a.level,
                scale=a.scale * plaintext.scale,
            )

    def multiply_scalar(self, a: CKKSCiphertext, scalar: int) -> CKKSCiphertext:
        """Multiply by a small integer scalar without consuming scale."""
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0 * scalar, c1=a.c1 * scalar, level=a.level, scale=a.scale
            )

    def multiply(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """HMult: tensor product followed by relinearization (Algorithm 1).

        NTT-resident pipeline: both operands are moved to (or already live
        in) the evaluation domain, the whole ``(d0, d1, d2)`` tensor product
        is one batched pointwise backend dispatch, and only ``d2`` returns
        to the coefficient domain for the keyswitch digits.  The
        relinearization runs through the hoisted keyswitch (eval-domain MAC
        accumulation, one shared iNTT per component) and the result stays
        evaluation-resident — transforms happen only at the
        rescale/encode/decrypt boundaries.  Bit-identical to
        :meth:`_multiply_coeff`.
        """
        self._check_levels(a, b)
        level = a.level
        with self._arith():
            basis = a.c0.basis
            contexts = _limb_contexts(a.ring_degree, basis)
            if contexts is None:
                return self._multiply_coeff(a, b)
            a_eval = self.to_eval(a)
            b_eval = a_eval if b is a else self.to_eval(b)
            backend = active_backend()
            moduli = tuple(basis.moduli)
            n = a.ring_degree
            # Tensor product (d0, d1, d2) such that d0 + d1*s + d2*s^2 = m_a * m_b
            # — one batched eval-domain dispatch for all four products.
            d0, d1, d2_eval = backend.limbs_tensor_product(
                a_eval.c0.store(), a_eval.c1.store(),
                b_eval.c0.store(), b_eval.c1.store(), moduli,
            )
            # Relinearize d2 with the s^2 -> s keyswitch key (hoisted path:
            # digits must be extracted from coefficients, so d2 alone pays
            # an inverse transform).
            d2 = RNSPolynomial._from_store(
                n, basis, backend.batched_intt(contexts, d2_eval)
            )
            relin_key = self.keys.relinearization_key(level)
            f0, f1 = keyswitch_hoisted(
                hoist_decompose(d2, self.params, level), relin_key
            )
            c0 = RNSPolynomial._from_store(n, basis, d0, domain="eval") + f0.to_eval()
            c1 = RNSPolynomial._from_store(n, basis, d1, domain="eval") + f1.to_eval()
            return CKKSCiphertext(
                c0=c0, c1=c1, level=level, scale=a.scale * b.scale
            )

    def _multiply_coeff(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """HMult on the coefficient-domain reference pipeline.

        Four per-component convolutions plus the naive (per-digit) hybrid
        keyswitch — the pre-hoisting execution shape.  Kept as the exact
        reference the parity suite and ``bench_hoisting.py`` compare the
        NTT-resident path against, and as the fallback for bases whose
        moduli are not NTT-friendly.
        """
        self._check_levels(a, b)
        level = a.level
        with self._arith():
            a = self.to_coeff(a)
            b = self.to_coeff(b)
            d0 = a.c0 * b.c0
            d1 = a.c0 * b.c1 + a.c1 * b.c0
            d2 = a.c1 * b.c1
            relin_key = self.keys.relinearization_key(level)
            f0, f1 = hybrid_keyswitch(d2, relin_key, self.params, level)
            return CKKSCiphertext(
                c0=d0 + f0, c1=d1 + f1, level=level, scale=a.scale * b.scale
            )

    def square(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Homomorphic squaring (same kernel flow as HMult)."""
        return self.multiply(a, a)

    # -- rotations -----------------------------------------------------------------
    def galois_element_for_rotation(self, steps: int) -> int:
        """The Galois element ``5^steps mod 2N`` implementing a slot rotation."""
        return galois_element_for_rotation(self.params.ring_degree, steps)

    def rotate(self, a: CKKSCiphertext, steps: int) -> CKKSCiphertext:
        """HRotate: rotate the slot vector by ``steps`` positions.

        This is the naive per-rotation pipeline (full keyswitch per call);
        use :meth:`rotate_hoisted` when several rotations of the *same*
        ciphertext are needed — it shares the expensive Decompose+BConv+NTT
        phase across all of them.
        """
        galois_element = self.galois_element_for_rotation(steps)
        return self.apply_galois(a, galois_element)

    def rotate_hoisted(self, a: CKKSCiphertext, steps_list: Sequence[int]) -> List[CKKSCiphertext]:
        """Rotate ``a`` by every step in ``steps_list``, hoisting the keyswitch.

        The hoist phase (gadget decompose of ``c1`` + BConv into the
        extended basis + batched forward NTTs) runs **once**; each requested
        step then pays only the cheap per-key phase: an evaluation-domain
        slot gather of the already-transformed digits (the Galois
        automorphism is a pure permutation there), the MAC against that
        step's cached key transforms, one shared inverse NTT per component,
        and one ModDown pair.  This is the ``(baby-1)``-hoisted-rotations
        primitive of BSGS linear transforms.

        Returns one ciphertext per step, in order and in ``a``'s residency
        domain; a step of 0 returns ``a`` itself (no keyswitch).  Repeated
        steps (and distinct steps mapping to the same Galois element) pay
        the per-key phase **once** — the duplicate entries share the first
        occurrence's result.

        Every requested step's Galois key is resolved *before* the hoist
        phase runs, so a missing rotation key raises the same ``KeyError``
        as :meth:`rotate` without paying the Decompose+BConv+NTT cost first.
        """
        level = a.level
        results: List[CKKSCiphertext] = []
        with self._arith():
            eval_resident = a.domain == "eval"
            galois_keys = {}
            for steps in steps_list:
                galois_element = self.galois_element_for_rotation(steps)
                if galois_element != 1 and galois_element not in galois_keys:
                    galois_keys[galois_element] = self.keys.galois_key(
                        galois_element, level
                    )
            hoisted = hoist_decompose(a.c1, self.params, level)
            computed: dict[int, CKKSCiphertext] = {}
            for steps in steps_list:
                galois_element = self.galois_element_for_rotation(steps)
                if galois_element == 1:
                    results.append(a.copy())
                    continue
                rotated = computed.get(galois_element)
                if rotated is None:
                    galois_key = galois_keys[galois_element]
                    f0, f1 = keyswitch_hoisted(
                        hoisted, galois_key, galois_element=galois_element
                    )
                    rotated_c0 = a.c0.automorphism(galois_element)
                    if eval_resident:
                        f0 = f0.to_eval()
                        f1 = f1.to_eval()
                    rotated = CKKSCiphertext(
                        c0=rotated_c0 + f0, c1=f1, level=level, scale=a.scale
                    )
                    computed[galois_element] = rotated
                    results.append(rotated)
                else:
                    results.append(rotated.copy())
        return results

    def conjugate(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Complex conjugation of every slot (Galois element 2N - 1)."""
        return self.apply_galois(
            a, galois_element_for_conjugation(self.params.ring_degree)
        )

    def apply_galois(self, a: CKKSCiphertext, galois_element: int) -> CKKSCiphertext:
        """Apply the automorphism ``X -> X^g`` and keyswitch back to ``s``.

        The automorphism is one batched signed-permutation dispatch per
        component (all limbs at once) rather than a per-limb Python loop.
        """
        level = a.level
        with self._arith():
            a = self.to_coeff(a)
            rotated_c0 = a.c0.automorphism(galois_element)
            rotated_c1 = a.c1.automorphism(galois_element)
            galois_key = self.keys.galois_key(galois_element, level)
            f0, f1 = hybrid_keyswitch(rotated_c1, galois_key, self.params, level)
            return CKKSCiphertext(c0=rotated_c0 + f0, c1=f1, level=level, scale=a.scale)

    # -- level / scale management -----------------------------------------------------
    def rescale(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Rescale: divide by the last RNS prime and drop one level."""
        if a.level < 1:
            raise ValueError("cannot rescale a level-0 ciphertext")
        dropped_modulus = a.c0.basis.moduli[-1]
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0.rescale(),
                c1=a.c1.rescale(),
                level=a.level - 1,
                scale=a.scale / dropped_modulus,
            )

    def mod_down_to(self, a: CKKSCiphertext, level: int) -> CKKSCiphertext:
        """Drop RNS limbs (without scale division) until ``a`` sits at ``level``."""
        if level > a.level:
            raise ValueError("cannot mod-down to a higher level")
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0.keep_limbs(level + 1),
                c1=a.c1.keep_limbs(level + 1),
                level=level,
                scale=a.scale,
            )

    def align(self, a: CKKSCiphertext, b: CKKSCiphertext) -> tuple[CKKSCiphertext, CKKSCiphertext]:
        """Bring two ciphertexts to a common (minimum) level."""
        common = min(a.level, b.level)
        return self.mod_down_to(a, common), self.mod_down_to(b, common)

    # -- composite helpers (used by example applications) ------------------------------
    def inner_sum(self, a: CKKSCiphertext, count: int) -> CKKSCiphertext:
        """Sum ``count`` adjacent slots into every slot.

        Works for *any* positive ``count`` via the binary rotation
        decomposition: a doubling accumulator ``S_{2^k}`` (each doubling is
        one rotation) is combined once per set bit of ``count``, so the
        total is ``floor(log2(count)) + popcount(count) - 1`` rotations.
        Every rotation runs through the hoisted keyswitch pipeline, and an
        iteration that both combines into the result *and* doubles the
        accumulator issues its two rotations of ``acc`` through a single
        :meth:`rotate_hoisted` call — one shared Decompose+BConv+NTT hoist
        instead of two.
        """
        if count < 1:
            raise ValueError("count must be positive")
        result: "CKKSCiphertext | None" = None
        processed = 0
        acc = a           # S_{bit}: the sum of `bit` adjacent rotations
        bit = 1
        while bit <= count:
            combine = bool(count & bit) and result is not None
            double = (bit << 1) <= count
            steps = []
            if combine:
                steps.append(processed)
            if double:
                steps.append(bit)
            rotated = self.rotate_hoisted(acc, steps) if steps else []
            if count & bit:
                if result is None:
                    result = acc
                else:
                    result = self.add(result, rotated[0])
                processed += bit
            if double:
                acc = self.add(acc, rotated[-1])
            bit <<= 1
        return result
