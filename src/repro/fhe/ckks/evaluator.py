"""Homomorphic evaluation for RNS-CKKS (Table II of the paper).

Implements the hierarchical operation set the paper reconstructs CKKS from:

===========  ==========================================================
 HAdd         element-wise ciphertext addition (ModAdd)
 PAdd         ciphertext + plaintext addition
 PMult        ciphertext * plaintext multiplication (ModMul/ModAdd)
 HMult        ciphertext * ciphertext with relinearization
              (NTT, BConv, IP, ModMul, ModAdd)
 HRotate      slot rotation: automorphism + keyswitch (adds Auto)
 Conjugate    complex conjugation: automorphism with g = 2N - 1
 Rescale      drop the last RNS limb and divide the scale (NTT, ModAdd)
 ModDownTo    level alignment without scale division
===========  ==========================================================

The evaluator is purely functional: every method returns a new ciphertext.
"""

from __future__ import annotations

from typing import Sequence

from ..backend import ArithmeticBackend, use_backend
from ..params import CKKSParameters
from ..rns import RNSPolynomial
from .ciphertext import CKKSCiphertext, CKKSPlaintext
from .keys import CKKSKeySet
from .keyswitch import hybrid_keyswitch

__all__ = ["CKKSEvaluator"]


class CKKSEvaluator:
    """Homomorphic operations over ciphertexts produced by one key set.

    ``backend`` optionally pins the arithmetic backend (``"python"`` /
    ``"numpy"`` or an instance) used by every operation of this evaluator;
    the default follows the process-wide active backend.
    """

    def __init__(self, params: CKKSParameters, keys: CKKSKeySet,
                 backend: "ArithmeticBackend | str | None" = None):
        self.params = params
        self.keys = keys
        self.backend = backend

    def _arith(self):
        """Context manager activating this evaluator's pinned backend."""
        return use_backend(self.backend)

    # -- helpers -------------------------------------------------------------
    def _check_levels(self, a: CKKSCiphertext, b: CKKSCiphertext) -> None:
        if a.level != b.level:
            raise ValueError(f"level mismatch: {a.level} vs {b.level}")

    def _check_scales(self, a_scale: float, b_scale: float) -> None:
        ratio = a_scale / b_scale
        if not 0.99 < ratio < 1.01:
            raise ValueError(f"scale mismatch: {a_scale} vs {b_scale}")

    def _plaintext_at_level(self, plaintext: CKKSPlaintext, level: int) -> RNSPolynomial:
        poly = plaintext.poly
        if plaintext.level < level:
            raise ValueError("plaintext level is below the ciphertext level")
        return poly.keep_limbs(level + 1)

    # -- additions -------------------------------------------------------------
    def add(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """HAdd: element-wise addition of two ciphertexts."""
        self._check_levels(a, b)
        self._check_scales(a.scale, b.scale)
        with self._arith():
            return CKKSCiphertext(c0=a.c0 + b.c0, c1=a.c1 + b.c1, level=a.level, scale=a.scale)

    def sub(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """Element-wise subtraction of two ciphertexts."""
        self._check_levels(a, b)
        self._check_scales(a.scale, b.scale)
        with self._arith():
            return CKKSCiphertext(c0=a.c0 - b.c0, c1=a.c1 - b.c1, level=a.level, scale=a.scale)

    def add_plain(self, a: CKKSCiphertext, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        """PAdd: add an encoded plaintext to a ciphertext."""
        self._check_scales(a.scale, plaintext.scale)
        poly = self._plaintext_at_level(plaintext, a.level)
        with self._arith():
            return CKKSCiphertext(c0=a.c0 + poly, c1=a.c1, level=a.level, scale=a.scale)

    def negate(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Negate a ciphertext."""
        with self._arith():
            return CKKSCiphertext(c0=-a.c0, c1=-a.c1, level=a.level, scale=a.scale)

    # -- multiplications ---------------------------------------------------------
    def multiply_plain(self, a: CKKSCiphertext, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        """PMult: multiply a ciphertext by an encoded plaintext (scale multiplies)."""
        poly = self._plaintext_at_level(plaintext, a.level)
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0 * poly,
                c1=a.c1 * poly,
                level=a.level,
                scale=a.scale * plaintext.scale,
            )

    def multiply_scalar(self, a: CKKSCiphertext, scalar: int) -> CKKSCiphertext:
        """Multiply by a small integer scalar without consuming scale."""
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0 * scalar, c1=a.c1 * scalar, level=a.level, scale=a.scale
            )

    def multiply(self, a: CKKSCiphertext, b: CKKSCiphertext) -> CKKSCiphertext:
        """HMult: tensor product followed by relinearization (Algorithm 1)."""
        self._check_levels(a, b)
        level = a.level
        with self._arith():
            # Tensor product (d0, d1, d2) such that d0 + d1*s + d2*s^2 = m_a * m_b.
            d0 = a.c0 * b.c0
            d1 = a.c0 * b.c1 + a.c1 * b.c0
            d2 = a.c1 * b.c1
            # Relinearize d2 with the s^2 -> s keyswitch key.
            relin_key = self.keys.relinearization_key(level)
            f0, f1 = hybrid_keyswitch(d2, relin_key, self.params, level)
            return CKKSCiphertext(
                c0=d0 + f0, c1=d1 + f1, level=level, scale=a.scale * b.scale
            )

    def square(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Homomorphic squaring (same kernel flow as HMult)."""
        return self.multiply(a, a)

    # -- rotations -----------------------------------------------------------------
    def galois_element_for_rotation(self, steps: int) -> int:
        """The Galois element ``5^steps mod 2N`` implementing a slot rotation."""
        return pow(5, steps, 2 * self.params.ring_degree)

    def rotate(self, a: CKKSCiphertext, steps: int) -> CKKSCiphertext:
        """HRotate: rotate the slot vector by ``steps`` positions."""
        galois_element = self.galois_element_for_rotation(steps)
        return self.apply_galois(a, galois_element)

    def conjugate(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Complex conjugation of every slot (Galois element 2N - 1)."""
        return self.apply_galois(a, 2 * self.params.ring_degree - 1)

    def apply_galois(self, a: CKKSCiphertext, galois_element: int) -> CKKSCiphertext:
        """Apply the automorphism ``X -> X^g`` and keyswitch back to ``s``.

        The automorphism is one batched signed-permutation dispatch per
        component (all limbs at once) rather than a per-limb Python loop.
        """
        level = a.level
        with self._arith():
            rotated_c0 = a.c0.automorphism(galois_element)
            rotated_c1 = a.c1.automorphism(galois_element)
            galois_key = self.keys.galois_key(galois_element, level)
            f0, f1 = hybrid_keyswitch(rotated_c1, galois_key, self.params, level)
            return CKKSCiphertext(c0=rotated_c0 + f0, c1=f1, level=level, scale=a.scale)

    # -- level / scale management -----------------------------------------------------
    def rescale(self, a: CKKSCiphertext) -> CKKSCiphertext:
        """Rescale: divide by the last RNS prime and drop one level."""
        if a.level < 1:
            raise ValueError("cannot rescale a level-0 ciphertext")
        dropped_modulus = a.c0.basis.moduli[-1]
        with self._arith():
            return CKKSCiphertext(
                c0=a.c0.rescale(),
                c1=a.c1.rescale(),
                level=a.level - 1,
                scale=a.scale / dropped_modulus,
            )

    def mod_down_to(self, a: CKKSCiphertext, level: int) -> CKKSCiphertext:
        """Drop RNS limbs (without scale division) until ``a`` sits at ``level``."""
        if level > a.level:
            raise ValueError("cannot mod-down to a higher level")
        return CKKSCiphertext(
            c0=a.c0.keep_limbs(level + 1),
            c1=a.c1.keep_limbs(level + 1),
            level=level,
            scale=a.scale,
        )

    def align(self, a: CKKSCiphertext, b: CKKSCiphertext) -> tuple[CKKSCiphertext, CKKSCiphertext]:
        """Bring two ciphertexts to a common (minimum) level."""
        common = min(a.level, b.level)
        return self.mod_down_to(a, common), self.mod_down_to(b, common)

    # -- composite helpers (used by example applications) ------------------------------
    def inner_sum(self, a: CKKSCiphertext, count: int) -> CKKSCiphertext:
        """Sum ``count`` adjacent slots into every slot via log2(count) rotations."""
        if count & (count - 1):
            raise ValueError("count must be a power of two")
        result = a
        step = 1
        while step < count:
            result = self.add(result, self.rotate(result, step))
            step *= 2
        return result
