"""High-level CKKS context: one object bundling encoder, keys, and evaluator.

:class:`CKKSContext` is the entry point the examples and integration tests
use: it owns a key set, encodes/encrypts vectors, evaluates, and decrypts.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..backend import ArithmeticBackend, use_backend
from ..params import CKKSParameters
from ..polynomial import sample_gaussian, sample_ternary, sample_uniform
from ..rns import RNSPolynomial
from .ciphertext import CKKSCiphertext, CKKSPlaintext
from .encoder import CKKSEncoder
from .evaluator import CKKSEvaluator
from .keys import CKKSKeyGenerator, CKKSKeySet

__all__ = ["CKKSContext"]


class CKKSContext:
    """A ready-to-use CKKS instance (keys + encoder + evaluator).

    ``backend`` pins the arithmetic backend for every operation rooted at
    this context — key generation, encryption, evaluation, decryption — so
    an end-to-end flow runs entirely on the chosen implementation.
    """

    def __init__(self, params: CKKSParameters, seed: int = 0, error_stddev: float = 3.2,
                 backend: "ArithmeticBackend | str | None" = None,
                 secret_hamming_weight: "int | None" = None):
        self.params = params
        self.rng = random.Random(seed ^ 0x5EED)
        self.error_stddev = error_stddev
        self.backend = backend
        with use_backend(backend):
            self.keygen = CKKSKeyGenerator(
                params, seed=seed, error_stddev=error_stddev,
                secret_hamming_weight=secret_hamming_weight,
            )
            self.keys: CKKSKeySet = self.keygen.generate()
        self.encoder = CKKSEncoder(params, backend=backend)
        self.evaluator = CKKSEvaluator(params, self.keys, backend=backend)

    # -- encryption -----------------------------------------------------------
    def encrypt(self, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        """Public-key encryption of an encoded plaintext."""
        with use_backend(self.backend):
            return self._encrypt(plaintext)

    def _encrypt(self, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        params = self.params
        n = params.ring_degree
        basis = params.basis(plaintext.level)
        # Restrict the public key to the plaintext's level.
        pk_b = self.keys.public.b.keep_limbs(plaintext.level + 1)
        pk_a = self.keys.public.a.keep_limbs(plaintext.level + 1)
        v = sample_ternary(n, 3, self.rng)
        v_rns = RNSPolynomial.from_integer_coefficients(n, basis, v.centered_coefficients())
        e0 = self._error(basis)
        e1 = self._error(basis)
        c0 = pk_b * v_rns + e0 + plaintext.poly
        c1 = pk_a * v_rns + e1
        return CKKSCiphertext(c0=c0, c1=c1, level=plaintext.level, scale=plaintext.scale)

    def encrypt_symmetric(self, plaintext: CKKSPlaintext) -> CKKSCiphertext:
        """Secret-key encryption (fresh uniform mask, lower noise)."""
        params = self.params
        n = params.ring_degree
        basis = params.basis(plaintext.level)
        with use_backend(self.backend):
            s = self.keys.secret.as_rns(n, basis)
            a_limbs = [sample_uniform(n, q, self.rng) for q in basis]
            a = RNSPolynomial(n, basis, a_limbs)
            e = self._error(basis)
            c0 = -(a * s) + e + plaintext.poly
        return CKKSCiphertext(c0=c0, c1=a, level=plaintext.level, scale=plaintext.scale)

    def _error(self, basis) -> RNSPolynomial:
        n = self.params.ring_degree
        coeffs = [
            round(self.rng.gauss(0.0, self.error_stddev)) if self.error_stddev > 0 else 0
            for _ in range(n)
        ]
        return RNSPolynomial.from_integer_coefficients(n, basis, coeffs)

    # -- decryption ------------------------------------------------------------
    def decrypt(self, ciphertext: CKKSCiphertext) -> CKKSPlaintext:
        """Decrypt to a plaintext polynomial (``c0 + c1 * s``).

        Evaluation-resident ciphertexts are converted at this boundary — the
        decrypt side of the domain-residency convention.
        """
        n = self.params.ring_degree
        with use_backend(self.backend):
            c0 = ciphertext.c0.to_coeff()
            c1 = ciphertext.c1.to_coeff()
            s = self.keys.secret.as_rns(n, c0.basis)
            poly = c0 + c1 * s
        return CKKSPlaintext(poly=poly, level=ciphertext.level, scale=ciphertext.scale)

    # -- convenience round-trips -------------------------------------------------
    def encrypt_vector(self, values: Sequence[complex], level: int | None = None) -> CKKSCiphertext:
        """Encode and encrypt a complex vector in one call."""
        return self.encrypt(self.encoder.encode(values, level=level))

    def decrypt_vector(self, ciphertext: CKKSCiphertext, num_values: int | None = None) -> List[complex]:
        """Decrypt and decode back to a complex vector."""
        return self.encoder.decode(self.decrypt(ciphertext), num_values=num_values)
