"""Diagonal-encoded BSGS plaintext-matrix x ciphertext products.

This is the workhorse of the paper's rotation-heavy workloads — encrypted
matrix-vector products for inference and the staged CoeffToSlot/SlotToCoeff
transforms of bootstrapping all reduce to it.  A dimension-``d`` matrix ``M``
acts on a slot vector ``x`` through its generalized diagonals,

    (M x)[k] = sum_d diag_d[k] * rot_d(x)[k],   diag_d[k] = M[k][(k+d) % dim],

and the baby-step/giant-step (Halevi-Shoup) regrouping

    M x = sum_j rot_{j*n1}( sum_i rot_{-j*n1}(diag_{j*n1+i}) ⊙ rot_i(x) )

needs only ``n1 - 1`` *hoisted* baby rotations (all of the same input
ciphertext — one shared Decompose+BConv+NTT via
:meth:`~repro.fhe.ckks.evaluator.CKKSEvaluator.rotate_hoisted`) plus
``n2 - 1`` outer giant rotations, instead of one full HRotate per diagonal.
The inner products are pointwise PMults on evaluation-resident ciphertexts.
The BSGS split is taken from :func:`repro.fhe.ckks.bootstrap.
linear_transform_plan`, so the functional rotation counts match the cost
model's ``(baby-1) hoisted + (giant-1) outer`` HRotate accounting exactly
(cross-checked by the test suite).

Vectors shorter than the slot count are handled by *tiling*: a dimension-``d``
transform (``d`` a power of two dividing the slot count) operates on the
vector replicated ``slots/d`` times, which makes full-slot rotations coincide
with length-``d`` cyclic rotations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .bootstrap import LinearTransformPlan, linear_transform_plan
from .ciphertext import CKKSCiphertext, CKKSPlaintext

__all__ = ["BSGSLinearTransform"]


class BSGSLinearTransform:
    """A plaintext matrix, diagonal-encoded and BSGS-split for encrypted use.

    ``diagonals`` maps diagonal index ``d`` (``0 <= d < dimension``) to the
    length-``dimension`` diagonal vector; missing entries are treated as
    zero diagonals and skipped.  Plaintexts are encoded once at
    construction (each pre-rotated by its giant step), so :meth:`apply` does
    no encoding work.
    """

    def __init__(self, encoder, diagonals: Dict[int, Sequence[complex]],
                 dimension: int, level: "int | None" = None,
                 scale: "float | None" = None,
                 plan_cache_capacity: int = 16):
        params = encoder.params
        slots = params.slots
        if dimension < 1 or dimension & (dimension - 1):
            raise ValueError("dimension must be a positive power of two")
        if slots % dimension:
            raise ValueError(
                f"dimension {dimension} must divide the slot count {slots}"
            )
        for d, diag in diagonals.items():
            if not 0 <= d < dimension:
                raise ValueError(f"diagonal index {d} outside [0, {dimension})")
            if len(diag) != dimension:
                raise ValueError(f"diagonal {d} has {len(diag)} != {dimension} entries")
        self.params = params
        self.dimension = dimension
        self.level = params.max_level if level is None else level
        #: The cost-model view of this transform — the same object the
        #: bootstrapping planner builds, so rotation accounting is shared.
        #: Sparse transforms (the staged bootstrapping FFT factors) pass
        #: their present diagonal set, so the plan charges only the baby/
        #: giant rotations that survive dead-code elimination.
        self.plan: LinearTransformPlan = linear_transform_plan(
            slots, self.level, diagonals=dimension,
            active_diagonals=tuple(sorted(diagonals)),
        )
        self.last_stats: Dict[str, int] = {}
        #: Planned programs cached per input level (see :meth:`apply`),
        #: LRU-bounded so a transform applied across many levels (the
        #: bootstrapping FFT factors, or a long-lived serving process) holds
        #: at most ``plan_cache_capacity`` plans.  ``_programs.stats()``
        #: exposes hit/miss/eviction counters.
        from ..program.cache import LRUCache

        self._programs = LRUCache(plan_cache_capacity)
        n1 = self.plan.baby_steps
        n2 = self.plan.giant_steps
        repeat = slots // dimension
        self._plaintexts: List[List["CKKSPlaintext | None"]] = []
        for j in range(n2):
            row: List["CKKSPlaintext | None"] = []
            for i in range(n1):
                d = j * n1 + i
                diag = diagonals.get(d)
                if d >= dimension or diag is None:
                    row.append(None)
                    continue
                # Pre-rotate by the giant step so the outer rotation can be
                # applied to the whole inner sum, then tile to full slots.
                shifted = [
                    diag[(k - j * n1) % dimension] for k in range(dimension)
                ]
                row.append(
                    encoder.encode(list(shifted) * repeat, level=self.level,
                                   scale=scale)
                )
            self._plaintexts.append(row)

    @classmethod
    def from_matrix(cls, encoder, matrix: Sequence[Sequence[complex]],
                    level: "int | None" = None,
                    scale: "float | None" = None) -> "BSGSLinearTransform":
        """Build the transform from a dense square matrix (rows of rows)."""
        dimension = len(matrix)
        for row in matrix:
            if len(row) != dimension:
                raise ValueError("matrix must be square")
        diagonals = {
            d: [matrix[k][(k + d) % dimension] for k in range(dimension)]
            for d in range(dimension)
        }
        return cls(encoder, diagonals, dimension, level=level, scale=scale)

    # -- rotation-key management ------------------------------------------------
    def rotation_steps(self) -> Tuple[List[int], List[int]]:
        """The (baby, giant) rotation steps whose Galois keys :meth:`apply` uses."""
        n1 = self.plan.baby_steps
        n2 = self.plan.giant_steps
        return list(range(1, n1)), [j * n1 for j in range(1, n2)]

    def generate_rotation_keys(self, keys, level: "int | None" = None):
        """Materialize exactly the BSGS-needed Galois keys on ``keys``.

        Only ``(n1 - 1) + (n2 - 1)`` keys are generated — not one per
        diagonal — and repeated calls are free (keys cache on the key set).
        """
        baby, giant = self.rotation_steps()
        return keys.ensure_rotation_keys(baby + giant, self.level if level is None else level)

    # -- program tracing ---------------------------------------------------------
    def trace(self, handle):
        """Trace ``M @ x`` into ``handle``'s program: baby rotations of one
        source (one fused hoist group after planning), per-giant-block
        plaintext MACs (one stacked dispatch each after batching), and one
        rotation per non-empty giant block.  Returns the result handle."""
        n1 = self.plan.baby_steps
        n2 = self.plan.giant_steps
        babies = [handle.rotate(i) for i in range(n1)]
        result = None
        for j in range(n2):
            inner = None
            for i in range(n1):
                plaintext = self._plaintexts[j][i]
                if plaintext is None:
                    continue
                term = babies[i] * plaintext
                inner = term if inner is None else inner + term
            if inner is None:
                continue
            if j:
                inner = inner.rotate(j * n1)
            result = inner if result is None else result + inner
        if result is None:
            raise ValueError("transform has no non-zero diagonals")
        return result

    def _planned_program(self, level: int):
        """The traced+planned program for an input at ``level`` (cached)."""
        def build():
            from ..program import HETrace, plan_program

            trace = HETrace(self.params)
            x = trace.input("x", level=level)
            trace.output("y", self.trace(x))
            return plan_program(trace.program)

        return self._programs.get_or_create(level, build)

    # -- evaluation -------------------------------------------------------------
    def apply(self, evaluator, ciphertext: CKKSCiphertext) -> CKKSCiphertext:
        """Encrypted ``M @ x`` through the program front-end.

        The transform is traced into an :class:`~repro.fhe.program.HEProgram`
        (once per input level, then cached), planned — hoist fusion shares
        one ``hoist_decompose`` across all baby rotations, residency
        planning keeps the pipeline NTT-resident, batching runs each giant
        block's PMult/HAdd group as one stacked dispatch — and executed.
        Bit-identical to :meth:`apply_eager`, the retained eager reference.

        ``ciphertext`` must hold the input vector tiled ``slots/dimension``
        times.  The result carries scale ``ciphertext.scale * pt_scale`` and
        is evaluation-resident; callers typically rescale it next.
        ``last_stats`` records the rotation counts actually performed, which
        the tests cross-check against :attr:`plan`.
        """
        from ..program import ProgramExecutor

        planned = self._planned_program(ciphertext.level)
        result = ProgramExecutor(evaluator).run(planned, {"x": ciphertext})["y"]
        self.last_stats = self._stats_from(planned.stats)
        return result

    def apply_eager(self, evaluator, ciphertext: CKKSCiphertext) -> CKKSCiphertext:
        """Encrypted ``M @ x`` on the eager evaluator (the bit-exact
        reference :meth:`apply` is gated against): hoisted baby rotations,
        eval-domain PMult/HAdd, one giant rotation per non-empty block."""
        n1 = self.plan.baby_steps
        n2 = self.plan.giant_steps
        # Hoist once, rotate by every baby step (step 0 is the identity and
        # costs nothing — rotate_hoisted returns the input for it).
        source = evaluator.to_eval(ciphertext)
        babies = evaluator.rotate_hoisted(source, list(range(n1)))
        hoisted_rotations = n1 - 1
        outer_rotations = 0
        result: "CKKSCiphertext | None" = None
        for j in range(n2):
            inner: "CKKSCiphertext | None" = None
            for i in range(n1):
                plaintext = self._plaintexts[j][i]
                if plaintext is None:
                    continue
                term = evaluator.multiply_plain(babies[i], plaintext)
                inner = term if inner is None else evaluator.add(inner, term)
            if inner is None:
                continue
            if j:
                inner = evaluator.rotate_hoisted(inner, [j * n1])[0]
                outer_rotations += 1
            result = inner if result is None else evaluator.add(result, inner)
        if result is None:
            raise ValueError("transform has no non-zero diagonals")
        self.last_stats = {
            "hoisted_rotations": hoisted_rotations,
            "outer_rotations": outer_rotations,
            "rotations": hoisted_rotations + outer_rotations,
            "plain_multiplies": sum(
                1 for row in self._plaintexts for pt in row if pt is not None
            ),
        }
        return result

    def _stats_from(self, plan_stats: Dict[str, int]) -> Dict[str, int]:
        """BSGS-shaped view of the planner statistics: the baby rotations are
        the ones whose hoist the planner shares (they rotate the one traced
        source), the giant rotations each hoist their own block sum."""
        n1 = self.plan.baby_steps
        active = self.plan.active_diagonals
        baby_rotations = (
            len({d % n1 for d in active} - {0}) if active is not None else n1 - 1
        )
        rotations = plan_stats["rotations"]
        hoisted = min(baby_rotations, rotations)
        return {
            "hoisted_rotations": hoisted,
            "outer_rotations": rotations - hoisted,
            "rotations": rotations,
            "plain_multiplies": plan_stats["plain_multiplies"],
        }
