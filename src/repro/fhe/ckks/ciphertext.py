"""Plaintext and ciphertext value types for the CKKS implementation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..rns import RNSPolynomial

__all__ = ["CKKSPlaintext", "CKKSCiphertext"]


@dataclass
class CKKSPlaintext:
    """An encoded (but not encrypted) message polynomial.

    ``scale`` is tracked as a float because rescaling divides by an RNS prime
    that is only approximately equal to Delta; keeping the true scale lets the
    decoder recover the message without drift.
    """

    poly: RNSPolynomial
    level: int
    scale: float
    # Evaluation-domain images of the (level-restricted) polynomial, built on
    # first use and keyed by (backend name, level).  Repeated PMult/PAdd of
    # the same plaintext against evaluation-resident ciphertexts then skip
    # the per-call forward NTT entirely; the transform is exact, so caching
    # cannot change results.
    _eval_cache: Dict[tuple, RNSPolynomial] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def ring_degree(self) -> int:
        return self.poly.ring_degree


@dataclass
class CKKSCiphertext:
    """A (c0, c1) RLWE ciphertext: ``c0 + c1 * s ~ Delta * m`` (mod Q_level).

    The pair is held limb-wise (RNS) at the given ``level``; ``scale`` tracks
    the current Delta of the encrypted message.
    """

    c0: RNSPolynomial
    c1: RNSPolynomial
    level: int
    scale: float

    def __post_init__(self) -> None:
        if self.c0.basis != self.c1.basis:
            raise ValueError("ciphertext components must share an RNS basis")
        if self.c0.ring_degree != self.c1.ring_degree:
            raise ValueError("ciphertext components must share a ring degree")
        if self.c0.domain != self.c1.domain:
            raise ValueError("ciphertext components must share a domain")

    @property
    def ring_degree(self) -> int:
        return self.c0.ring_degree

    @property
    def domain(self) -> str:
        """``"coeff"`` or ``"eval"`` — which representation both components
        are resident in (see :class:`~repro.fhe.rns.RNSPolynomial`)."""
        return self.c0.domain

    def copy(self) -> "CKKSCiphertext":
        """A shallow copy (the RNS limbs themselves are treated as immutable)."""
        return CKKSCiphertext(c0=self.c0, c1=self.c1, level=self.level, scale=self.scale)
