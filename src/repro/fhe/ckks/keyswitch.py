"""Hybrid (dnum) KeySwitch — Algorithm 1 of the paper.

Given a polynomial ``d`` at level ``l`` (an element of R_{Q_l}) and a
:class:`~repro.fhe.ckks.keys.KeySwitchKey` for a source secret ``s'``, produce
a ciphertext pair ``(c0, c1)`` under ``s`` such that

    c0 + c1 * s  ~  d * s'   (mod Q_l),

up to the keyswitch noise.  The steps mirror Algorithm 1 exactly:

1. *Decompose* ``d`` into ``beta`` RNS digits (just the limbs of each digit);
2. *BConv* each digit from its digit basis into the extended basis C_l ∪ P;
3. *Inner product* with the evaluation key (per-digit multiply-accumulate);
4. *ModDown*: divide by the special modulus ``P`` and round, returning to C_l.

These are exactly the kernels (Decompose/BConv/NTT/IP/ModMul/ModAdd) the
hardware model charges for a keyswitch.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..backend import ArithmeticBackend, active_backend, use_backend
from ..modmath import mod_inverse
from ..params import CKKSParameters
from ..polynomial import Polynomial
from ..rns import RNSBasis, RNSPolynomial, fast_basis_conversion

__all__ = ["hybrid_keyswitch", "mod_down"]


def _digit_slices(params: CKKSParameters, level: int) -> List[Tuple[int, int]]:
    alpha = params.alpha
    slices = []
    start = 0
    while start <= level:
        slices.append((start, min(start + alpha, level + 1)))
        start += alpha
    return slices


def mod_down(poly: RNSPolynomial, params: CKKSParameters, level: int) -> RNSPolynomial:
    """Divide a C_l ∪ P polynomial by P (with rounding) and return it in C_l."""
    backend = active_backend()
    moduli = list(params.moduli[: level + 1])
    special = list(params.special_moduli)
    num_q = len(moduli)
    special_basis = RNSBasis(special)
    target_basis = RNSBasis(moduli)
    p_product = math.prod(special)
    # The P-part of the polynomial, converted into the Q basis.
    p_part = RNSPolynomial(poly.ring_degree, special_basis, poly.limbs[num_q:])
    p_part_in_q = fast_basis_conversion(p_part, target_basis)
    limbs = []
    for limb, conv in zip(poly.limbs[:num_q], p_part_in_q.limbs):
        q_i = limb.modulus
        p_inv = mod_inverse(p_product % q_i, q_i)
        coeffs = backend.sub_scaled(
            limb.coefficients, conv.coefficients, p_inv, q_i
        )
        limbs.append(Polynomial._from_reduced(poly.ring_degree, q_i, coeffs))
    return RNSPolynomial(poly.ring_degree, target_basis, limbs)


def hybrid_keyswitch(
    d: RNSPolynomial,
    keyswitch_key,
    params: CKKSParameters,
    level: int,
    backend: "ArithmeticBackend | str | None" = None,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    """Apply Algorithm 1 to ``d`` and return the ``(c0, c1)`` correction pair.

    ``backend`` optionally pins the arithmetic backend for the whole
    keyswitch (BConv, inner product, ModDown); ``None`` keeps whatever is
    active.
    """
    with use_backend(backend):
        return _hybrid_keyswitch(d, keyswitch_key, params, level)


def _hybrid_keyswitch(
    d: RNSPolynomial,
    keyswitch_key,
    params: CKKSParameters,
    level: int,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    if len(d.limbs) != level + 1:
        raise ValueError(
            f"polynomial has {len(d.limbs)} limbs but level {level} expects {level + 1}"
        )
    moduli = list(params.moduli[: level + 1])
    special = list(params.special_moduli)
    extended = RNSBasis(moduli + special)
    n = d.ring_degree

    acc0 = RNSPolynomial(n, extended)
    acc1 = RNSPolynomial(n, extended)
    slices = _digit_slices(params, level)
    if len(slices) != keyswitch_key.num_digits:
        raise ValueError(
            f"keyswitch key has {keyswitch_key.num_digits} digits, expected {len(slices)}"
        )
    for (start, stop), (b_j, a_j) in zip(slices, keyswitch_key.digit_keys):
        digit_basis = RNSBasis(moduli[start:stop])
        digit = RNSPolynomial(n, digit_basis, d.limbs[start:stop])
        # BConv: lift the digit into the extended basis C_l ∪ P.
        lifted = fast_basis_conversion(digit, extended)
        # Inner product with the evaluation key (limb-wise polynomial MAC).
        acc0 = acc0 + lifted * b_j
        acc1 = acc1 + lifted * a_j
    # ModDown: divide by P and return to C_l.
    c0 = mod_down(acc0, params, level)
    c1 = mod_down(acc1, params, level)
    return c0, c1
