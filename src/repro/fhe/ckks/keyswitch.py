"""Hybrid (dnum) KeySwitch — Algorithm 1 of the paper.

Given a polynomial ``d`` at level ``l`` (an element of R_{Q_l}) and a
:class:`~repro.fhe.ckks.keys.KeySwitchKey` for a source secret ``s'``, produce
a ciphertext pair ``(c0, c1)`` under ``s`` such that

    c0 + c1 * s  ~  d * s'   (mod Q_l),

up to the keyswitch noise.  The steps mirror Algorithm 1 exactly:

1. *Decompose* ``d`` into ``beta`` RNS digits (just the limbs of each digit);
2. *BConv* each digit from its digit basis into the extended basis C_l ∪ P;
3. *Inner product* with the evaluation key (per-digit multiply-accumulate);
4. *ModDown*: divide by the special modulus ``P`` and round, returning to C_l.

These are exactly the kernels (Decompose/BConv/NTT/IP/ModMul/ModAdd) the
hardware model charges for a keyswitch.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple

from ..backend import ArithmeticBackend, active_backend, use_backend
from ..modmath import mod_inverse
from ..params import CKKSParameters
from ..polynomial import galois_eval_spec
from ..rns import RNSBasis, RNSPolynomial, _limb_contexts, fast_basis_conversion

__all__ = [
    "hybrid_keyswitch",
    "mod_down",
    "HoistedDigits",
    "hoist_decompose",
    "keyswitch_hoisted",
]


def _digit_slices(params: CKKSParameters, level: int) -> List[Tuple[int, int]]:
    alpha = params.alpha
    slices = []
    start = 0
    while start <= level:
        slices.append((start, min(start + alpha, level + 1)))
        start += alpha
    return slices


@lru_cache(maxsize=256)
def _mod_down_constants(params: CKKSParameters, level: int) -> tuple:
    """``P^{-1} mod q_i`` for every limb of C_l (P = product of special moduli)."""
    p_product = math.prod(params.special_moduli)
    return tuple(
        mod_inverse(p_product % q, q) for q in params.moduli[: level + 1]
    )


@lru_cache(maxsize=256)
def _digit_basis(params: CKKSParameters, start: int, stop: int) -> RNSBasis:
    return RNSBasis(params.moduli[start:stop])


def mod_down(poly: RNSPolynomial, params: CKKSParameters, level: int) -> RNSPolynomial:
    """Divide a C_l ∪ P polynomial by P (with rounding) and return it in C_l.

    One BConv dispatch lifts the P-part into C_l, one fused
    ``batched_sub_scaled`` dispatch applies ``(x_i - conv_i) * P^{-1} mod q_i``
    to the whole limb stack.
    """
    num_q = level + 1
    special_basis = params.special_basis()
    target_basis = params.basis(level)
    store = poly.store()
    # The P-part of the polynomial, converted into the Q basis.
    p_part = RNSPolynomial._from_store(poly.ring_degree, special_basis, store[num_q:])
    p_part_in_q = fast_basis_conversion(p_part, target_basis)
    new_store = active_backend().batched_sub_scaled(
        store[:num_q],
        p_part_in_q.store(),
        _mod_down_constants(params, level),
        tuple(target_basis.moduli),
    )
    return RNSPolynomial._from_store(poly.ring_degree, target_basis, new_store)


def _eval_key_handles(keyswitch_key, backend, contexts):
    """Evaluation-domain images of the digit keys, prepared once per backend
    and reused by every keyswitch against this key (exact transforms, so
    caching cannot change results)."""
    handles = keyswitch_key._eval_cache.get(backend.name)
    if handles is None:
        handles = [
            (
                backend.limbs_eval_key(contexts, b_j.store()),
                backend.limbs_eval_key(contexts, a_j.store()),
            )
            for b_j, a_j in keyswitch_key.digit_keys
        ]
        keyswitch_key._eval_cache[backend.name] = handles
    return handles


def hybrid_keyswitch(
    d: RNSPolynomial,
    keyswitch_key,
    params: CKKSParameters,
    level: int,
    backend: "ArithmeticBackend | str | None" = None,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    """Apply Algorithm 1 to ``d`` and return the ``(c0, c1)`` correction pair.

    This is the *naive* (per-keyswitch) pipeline: every call pays the full
    Decompose + BConv + NTT cost and inverse-transforms each digit's MAC
    result separately.  The hoisted path (:func:`hoist_decompose` +
    :func:`keyswitch_hoisted`) computes bit-identical results while sharing
    the expensive phase across keys; this function is kept as the reference
    the benchmarks and parity suites compare against.

    ``backend`` optionally pins the arithmetic backend for the whole
    keyswitch (BConv, inner product, ModDown); ``None`` keeps whatever is
    active.
    """
    with use_backend(backend):
        return _hybrid_keyswitch(d, keyswitch_key, params, level)


def _hybrid_keyswitch(
    d: RNSPolynomial,
    keyswitch_key,
    params: CKKSParameters,
    level: int,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    if len(d.basis) != level + 1:
        raise ValueError(
            f"polynomial has {len(d.basis)} limbs but level {level} expects {level + 1}"
        )
    extended = params.extended_basis(level)
    n = d.ring_degree

    acc0 = RNSPolynomial(n, extended)
    acc1 = RNSPolynomial(n, extended)
    slices = _digit_slices(params, level)
    if len(slices) != keyswitch_key.num_digits:
        raise ValueError(
            f"keyswitch key has {keyswitch_key.num_digits} digits, expected {len(slices)}"
        )
    backend = active_backend()
    contexts = _limb_contexts(n, extended)
    handles = None
    if contexts is not None:
        handles = _eval_key_handles(keyswitch_key, backend, contexts)
    for idx, ((start, stop), (b_j, a_j)) in enumerate(
        zip(slices, keyswitch_key.digit_keys)
    ):
        digit = d.limb_slice(start, stop, _digit_basis(params, start, stop))
        # BConv: lift the digit into the extended basis C_l ∪ P — a single
        # matrix-product dispatch per digit.
        lifted = fast_basis_conversion(digit, extended)
        # Inner product with the evaluation key: one limb-batched MAC pair
        # per digit, sharing the digit's forward transform across both key
        # components.
        if handles is not None:
            s0, s1 = backend.limbs_mac_eval(contexts, lifted.store(), handles[idx])
            acc0 = acc0 + RNSPolynomial._from_store(n, extended, s0)
            acc1 = acc1 + RNSPolynomial._from_store(n, extended, s1)
        else:
            acc0 = acc0 + lifted * b_j
            acc1 = acc1 + lifted * a_j
    # ModDown: divide by P and return to C_l.
    c0 = mod_down(acc0, params, level)
    c1 = mod_down(acc1, params, level)
    return c0, c1


# ---------------------------------------------------------------------------
# Hoisted keyswitch: one shared hoist phase, cheap per-key applications
# ---------------------------------------------------------------------------

class HoistedDigits:
    """The reusable *hoist* phase of hybrid keyswitch (Algorithm 1 lines 1-6).

    Holds the gadget digits of one polynomial, lifted into the extended
    basis C_l ∪ P and forward-NTT'd **once**.  :func:`keyswitch_hoisted`
    replays them against any number of keyswitch keys — optionally composed
    with a Galois automorphism, which in the evaluation domain is a pure
    slot gather — for the cost of the cheap per-key phase alone: an
    eval-domain MAC, one shared inverse NTT per output component, and one
    ModDown pair.  This is what makes BSGS linear transforms pay
    ``(baby-1)`` *hoisted* rotations instead of full HRotates.

    On non-NTT-friendly bases ``digit_evals`` is ``None`` and the lifted
    coefficient-domain digits (``digit_coeffs``) drive an exact convolution
    fallback with the same semantics.
    """

    __slots__ = (
        "params", "level", "ring_degree", "extended", "contexts",
        "digit_evals", "digit_coeffs",
    )

    def __init__(self, params, level, ring_degree, extended, contexts):
        self.params = params
        self.level = level
        self.ring_degree = ring_degree
        self.extended = extended
        self.contexts = contexts
        self.digit_evals: "list | None" = [] if contexts is not None else None
        self.digit_coeffs: List[RNSPolynomial] = []

    @property
    def num_digits(self) -> int:
        if self.digit_evals is not None:
            return len(self.digit_evals)
        return len(self.digit_coeffs)


def hoist_decompose(
    d: RNSPolynomial,
    params: CKKSParameters,
    level: int,
    backend: "ArithmeticBackend | str | None" = None,
) -> HoistedDigits:
    """Run the hoist phase once: Decompose + per-digit BConv + forward NTTs.

    ``d`` is the polynomial to be keyswitched (``c1`` of a ciphertext for
    rotations, ``d2`` of a tensor product for relinearization); it may be
    coefficient- or evaluation-resident (the digits are extracted from the
    coefficient representation, since BConv is a coefficient-wise map).
    """
    with use_backend(backend):
        return _hoist_decompose(d, params, level)


def _hoist_decompose(d: RNSPolynomial, params: CKKSParameters, level: int) -> HoistedDigits:
    if len(d.basis) != level + 1:
        raise ValueError(
            f"polynomial has {len(d.basis)} limbs but level {level} expects {level + 1}"
        )
    d = d.to_coeff()
    extended = params.extended_basis(level)
    n = d.ring_degree
    contexts = _limb_contexts(n, extended)
    backend = active_backend()
    hoisted = HoistedDigits(params, level, n, extended, contexts)
    for start, stop in _digit_slices(params, level):
        digit = d.limb_slice(start, stop, _digit_basis(params, start, stop))
        lifted = fast_basis_conversion(digit, extended)
        if contexts is not None:
            hoisted.digit_evals.append(
                backend.batched_ntt(contexts, lifted.store())
            )
        else:
            hoisted.digit_coeffs.append(lifted)
    return hoisted


def keyswitch_hoisted(
    hoisted: HoistedDigits,
    keyswitch_key,
    galois_element: "int | None" = None,
    backend: "ArithmeticBackend | str | None" = None,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    """The cheap per-key phase: eval-domain MAC + shared iNTT + one ModDown.

    With ``galois_element`` ``g``, the automorphism ``sigma_g`` is applied to
    the hoisted digits first — an exact evaluation-domain slot gather on
    power-of-two cyclotomics — so the result is the keyswitch of
    ``sigma_g(BConv(digit_j))`` under ``keyswitch_key`` (the hoisted-rotation
    correction pair; the BConv approximation error is likewise permuted and
    stays within the usual keyswitch noise budget).

    Unlike the naive path, the digit MACs accumulate *in the evaluation
    domain*: only two inverse NTTs run per call (one per output component)
    instead of two per digit, and both are followed by a single shared
    ModDown pair.  Results are bit-identical to the naive pipeline for
    ``galois_element=None`` (the inverse transform is linear).
    """
    with use_backend(backend):
        return _keyswitch_hoisted(hoisted, keyswitch_key, galois_element)


def _keyswitch_hoisted(
    hoisted: HoistedDigits,
    keyswitch_key,
    galois_element: "int | None",
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    params = hoisted.params
    level = hoisted.level
    n = hoisted.ring_degree
    extended = hoisted.extended
    if hoisted.num_digits != keyswitch_key.num_digits:
        raise ValueError(
            f"keyswitch key has {keyswitch_key.num_digits} digits, "
            f"expected {hoisted.num_digits}"
        )
    backend = active_backend()
    contexts = hoisted.contexts
    if contexts is not None:
        digit_stores = hoisted.digit_evals
        if galois_element is not None:
            # All digits permute under one gather — a single stacked
            # (beta, L, N) dispatch instead of one gather per digit.
            spec = galois_eval_spec(n, galois_element)
            digit_stores = backend.stacked_gather(digit_stores, spec)
        handles = _eval_key_handles(keyswitch_key, backend, contexts)
        acc0_eval, acc1_eval = backend.limbs_eval_mac(
            contexts, digit_stores, handles
        )
        # Both accumulated components leave the evaluation domain together:
        # one stacked (2, L, N) inverse transform instead of two dispatches.
        acc0_store, acc1_store = backend.stacked_intt(
            contexts, [acc0_eval, acc1_eval]
        )
        acc0 = RNSPolynomial._from_store(n, extended, acc0_store)
        acc1 = RNSPolynomial._from_store(n, extended, acc1_store)
    else:
        # Exact coefficient-domain fallback (non-NTT-friendly moduli): the
        # automorphism is applied to the lifted digits directly, matching
        # the eval-domain gather semantics bit for bit.
        acc0 = RNSPolynomial(n, extended)
        acc1 = RNSPolynomial(n, extended)
        for lifted, (b_j, a_j) in zip(
            hoisted.digit_coeffs, keyswitch_key.digit_keys
        ):
            if galois_element is not None:
                lifted = lifted.automorphism(galois_element)
            acc0 = acc0 + lifted * b_j
            acc1 = acc1 + lifted * a_j
    return mod_down(acc0, params, level), mod_down(acc1, params, level)
