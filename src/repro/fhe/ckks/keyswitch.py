"""Hybrid (dnum) KeySwitch — Algorithm 1 of the paper.

Given a polynomial ``d`` at level ``l`` (an element of R_{Q_l}) and a
:class:`~repro.fhe.ckks.keys.KeySwitchKey` for a source secret ``s'``, produce
a ciphertext pair ``(c0, c1)`` under ``s`` such that

    c0 + c1 * s  ~  d * s'   (mod Q_l),

up to the keyswitch noise.  The steps mirror Algorithm 1 exactly:

1. *Decompose* ``d`` into ``beta`` RNS digits (just the limbs of each digit);
2. *BConv* each digit from its digit basis into the extended basis C_l ∪ P;
3. *Inner product* with the evaluation key (per-digit multiply-accumulate);
4. *ModDown*: divide by the special modulus ``P`` and round, returning to C_l.

These are exactly the kernels (Decompose/BConv/NTT/IP/ModMul/ModAdd) the
hardware model charges for a keyswitch.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Tuple

from ..backend import ArithmeticBackend, active_backend, use_backend
from ..modmath import mod_inverse
from ..params import CKKSParameters
from ..rns import RNSBasis, RNSPolynomial, _limb_contexts, fast_basis_conversion

__all__ = ["hybrid_keyswitch", "mod_down"]


def _digit_slices(params: CKKSParameters, level: int) -> List[Tuple[int, int]]:
    alpha = params.alpha
    slices = []
    start = 0
    while start <= level:
        slices.append((start, min(start + alpha, level + 1)))
        start += alpha
    return slices


@lru_cache(maxsize=256)
def _mod_down_constants(params: CKKSParameters, level: int) -> tuple:
    """``P^{-1} mod q_i`` for every limb of C_l (P = product of special moduli)."""
    p_product = math.prod(params.special_moduli)
    return tuple(
        mod_inverse(p_product % q, q) for q in params.moduli[: level + 1]
    )


@lru_cache(maxsize=256)
def _digit_basis(params: CKKSParameters, start: int, stop: int) -> RNSBasis:
    return RNSBasis(params.moduli[start:stop])


def mod_down(poly: RNSPolynomial, params: CKKSParameters, level: int) -> RNSPolynomial:
    """Divide a C_l ∪ P polynomial by P (with rounding) and return it in C_l.

    One BConv dispatch lifts the P-part into C_l, one fused
    ``batched_sub_scaled`` dispatch applies ``(x_i - conv_i) * P^{-1} mod q_i``
    to the whole limb stack.
    """
    num_q = level + 1
    special_basis = params.special_basis()
    target_basis = params.basis(level)
    store = poly.store()
    # The P-part of the polynomial, converted into the Q basis.
    p_part = RNSPolynomial._from_store(poly.ring_degree, special_basis, store[num_q:])
    p_part_in_q = fast_basis_conversion(p_part, target_basis)
    new_store = active_backend().batched_sub_scaled(
        store[:num_q],
        p_part_in_q.store(),
        _mod_down_constants(params, level),
        tuple(target_basis.moduli),
    )
    return RNSPolynomial._from_store(poly.ring_degree, target_basis, new_store)


def hybrid_keyswitch(
    d: RNSPolynomial,
    keyswitch_key,
    params: CKKSParameters,
    level: int,
    backend: "ArithmeticBackend | str | None" = None,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    """Apply Algorithm 1 to ``d`` and return the ``(c0, c1)`` correction pair.

    ``backend`` optionally pins the arithmetic backend for the whole
    keyswitch (BConv, inner product, ModDown); ``None`` keeps whatever is
    active.
    """
    with use_backend(backend):
        return _hybrid_keyswitch(d, keyswitch_key, params, level)


def _hybrid_keyswitch(
    d: RNSPolynomial,
    keyswitch_key,
    params: CKKSParameters,
    level: int,
) -> Tuple[RNSPolynomial, RNSPolynomial]:
    if len(d.basis) != level + 1:
        raise ValueError(
            f"polynomial has {len(d.basis)} limbs but level {level} expects {level + 1}"
        )
    extended = params.extended_basis(level)
    n = d.ring_degree

    acc0 = RNSPolynomial(n, extended)
    acc1 = RNSPolynomial(n, extended)
    slices = _digit_slices(params, level)
    if len(slices) != keyswitch_key.num_digits:
        raise ValueError(
            f"keyswitch key has {keyswitch_key.num_digits} digits, expected {len(slices)}"
        )
    backend = active_backend()
    contexts = _limb_contexts(n, extended)
    handles = None
    if contexts is not None:
        # Evaluation-domain images of the digit keys, prepared once per
        # backend and reused by every keyswitch against this key.
        handles = keyswitch_key._eval_cache.get(backend.name)
        if handles is None:
            handles = [
                (
                    backend.limbs_eval_key(contexts, b_j.store()),
                    backend.limbs_eval_key(contexts, a_j.store()),
                )
                for b_j, a_j in keyswitch_key.digit_keys
            ]
            keyswitch_key._eval_cache[backend.name] = handles
    for idx, ((start, stop), (b_j, a_j)) in enumerate(
        zip(slices, keyswitch_key.digit_keys)
    ):
        digit = d.limb_slice(start, stop, _digit_basis(params, start, stop))
        # BConv: lift the digit into the extended basis C_l ∪ P — a single
        # matrix-product dispatch per digit.
        lifted = fast_basis_conversion(digit, extended)
        # Inner product with the evaluation key: one limb-batched MAC pair
        # per digit, sharing the digit's forward transform across both key
        # components.
        if handles is not None:
            s0, s1 = backend.limbs_mac_eval(contexts, lifted.store(), handles[idx])
            acc0 = acc0 + RNSPolynomial._from_store(n, extended, s0)
            acc1 = acc1 + RNSPolynomial._from_store(n, extended, s1)
        else:
            acc0 = acc0 + lifted * b_j
            acc1 = acc1 + lifted * a_j
    # ModDown: divide by P and return to C_l.
    c0 = mod_down(acc0, params, level)
    c1 = mod_down(acc1, params, level)
    return c0, c1
