"""CKKS canonical-embedding encoder.

Maps complex vectors of ``N/2`` slots to integer plaintext polynomials and
back, scaled by ``Delta``.  The embedding evaluates a real-coefficient
polynomial at the primitive 2N-th roots of unity ``zeta_j = exp(i*pi*g_j/N)``
with ``g_j = 5^j mod 2N`` (the same rotation group that CKKS HRotate uses),
so that slot rotation corresponds to the ring automorphism ``X -> X^(5^r)``.

The implementation uses a dense O(n*N) matrix product via numpy; the ring
degrees used functionally (N <= 4096) keep this instantaneous, and the
hardware model never calls it.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # numpy is an optional extra; the encoder is the only hard consumer.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

from ..backend import ArithmeticBackend, use_backend
from ..params import CKKSParameters
from ..polynomial import Polynomial
from ..rns import RNSPolynomial
from .ciphertext import CKKSPlaintext

__all__ = ["CKKSEncoder"]


class CKKSEncoder:
    """Encode/decode complex slot vectors for one CKKS parameter set.

    ``backend`` pins the arithmetic backend used for the RNS decomposition
    part of encode/decode (the float canonical embedding itself always uses
    numpy and is unavailable without it).
    """

    def __init__(self, params: CKKSParameters,
                 backend: "ArithmeticBackend | str | None" = None):
        if np is None:
            raise RuntimeError(
                "CKKSEncoder requires numpy (install the 'numpy' extra); "
                "the rest of the FHE layer runs without it on the python backend"
            )
        self.params = params
        self.backend = backend
        n = params.slots
        ring_degree = params.ring_degree
        # Rotation group: powers of 5 modulo 2N; one root per slot.
        group = np.empty(n, dtype=np.int64)
        value = 1
        for j in range(n):
            group[j] = value
            value = (value * 5) % (2 * ring_degree)
        self._rotation_group = group
        # Evaluation points zeta_j and the n x N Vandermonde-style matrix
        # A[j, k] = zeta_j^k used for decoding (and its conjugate for encoding).
        angles = np.pi * group.astype(np.float64) / ring_degree
        zetas = np.exp(1j * angles)
        powers = np.arange(ring_degree, dtype=np.float64)
        self._eval_matrix = zetas[:, None] ** powers[None, :]

    # -- encoding ---------------------------------------------------------
    def encode(self, values: Sequence[complex], level: int | None = None,
               scale: float | None = None) -> CKKSPlaintext:
        """Encode up to ``N/2`` complex values into a plaintext polynomial."""
        params = self.params
        n = params.slots
        level = params.max_level if level is None else level
        scale = float(params.scale) if scale is None else float(scale)
        vector = np.zeros(n, dtype=np.complex128)
        values = np.asarray(list(values), dtype=np.complex128)
        if values.size > n:
            raise ValueError(f"too many values: {values.size} > {n} slots")
        vector[: values.size] = values
        # Inverse canonical embedding: m_k = (2/N) * Re( sum_j z_j * conj(zeta_j^k) ).
        coefficients = (2.0 / params.ring_degree) * np.real(
            np.conj(self._eval_matrix).T @ vector
        )
        scaled = np.rint(coefficients * scale).astype(object)
        basis = params.basis(level)
        with use_backend(self.backend):
            poly = RNSPolynomial.from_integer_coefficients(
                params.ring_degree, basis, [int(c) for c in scaled]
            )
        return CKKSPlaintext(poly=poly, level=level, scale=scale)

    def encode_coefficients(self, coefficients: Sequence[int],
                            level: int | None = None,
                            scale: float = 1.0) -> CKKSPlaintext:
        """Encode raw integer coefficients directly (no embedding, no scaling)."""
        params = self.params
        level = params.max_level if level is None else level
        basis = params.basis(level)
        poly = RNSPolynomial.from_integer_coefficients(
            params.ring_degree, basis, [int(c) for c in coefficients]
        )
        return CKKSPlaintext(poly=poly, level=level, scale=float(scale))

    # -- decoding ---------------------------------------------------------
    def decode(self, plaintext: CKKSPlaintext, num_values: int | None = None) -> List[complex]:
        """Decode a plaintext polynomial back to its complex slot values."""
        params = self.params
        n = params.slots
        num_values = n if num_values is None else num_values
        with use_backend(self.backend):
            poly = plaintext.poly.to_polynomial()
        centred = np.array(poly.centered_coefficients(), dtype=np.float64)
        slots = self._eval_matrix @ centred / plaintext.scale
        return [complex(v) for v in slots[:num_values]]

    def decode_polynomial(self, poly: Polynomial, scale: float,
                          num_values: int | None = None) -> List[complex]:
        """Decode a raw (already CRT-combined) polynomial."""
        n = self.params.slots
        num_values = n if num_values is None else num_values
        centred = np.array(poly.centered_coefficients(), dtype=np.float64)
        slots = self._eval_matrix @ centred / scale
        return [complex(v) for v in slots[:num_values]]
