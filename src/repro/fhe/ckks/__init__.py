"""Functional RNS-CKKS implementation (Cheon-Kim-Kim-Song, RNS variant).

The package provides the arithmetic-FHE half of the paper's workload space:

* :mod:`encoder` — canonical-embedding encoding/decoding of complex vectors,
* :mod:`ciphertext` — plaintext / ciphertext value types,
* :mod:`keys` — secret/public/evaluation/rotation key generation,
* :mod:`keyswitch` — the hybrid (dnum) keyswitch of Algorithm 1,
* :mod:`evaluator` — HAdd, PAdd, PMult, HMult, HRotate, Rescale, plus the
  hoisted-rotation and NTT-resident execution pipeline,
* :mod:`linear_transform` — diagonal-encoded BSGS plaintext-matrix x
  ciphertext products over hoisted rotations,
* :mod:`bootstrap` — the operation-level bootstrapping pipeline used by the
  workload generators (CoeffToSlot -> EvalMod -> SlotToCoeff),
* :mod:`bootstrap_exec` — the *functional* packed bootstrapping: the same
  pipeline as traced+planned :class:`~repro.fhe.program.HEProgram`\\ s that
  actually refresh a level-0 ciphertext (requires numpy).

Everything is exact-arithmetic pure Python over the reduced parameter sets
from :mod:`repro.fhe.params`; the hardware model uses only the *structure* of
these algorithms (via :mod:`repro.kernels`), never the data.
"""

from .ciphertext import CKKSCiphertext, CKKSPlaintext
from .encoder import CKKSEncoder
from .evaluator import CKKSEvaluator
from .keys import CKKSKeyGenerator, CKKSKeySet
from .context import CKKSContext
from .linear_transform import BSGSLinearTransform
from .bootstrap_exec import PackedBootstrap, mod_raise

__all__ = [
    "CKKSCiphertext",
    "CKKSPlaintext",
    "CKKSEncoder",
    "CKKSEvaluator",
    "CKKSKeyGenerator",
    "CKKSKeySet",
    "CKKSContext",
    "BSGSLinearTransform",
    "PackedBootstrap",
    "mod_raise",
]
