"""Key generation for RNS-CKKS: secret, public, relinearization and Galois keys.

The evaluation keys follow the *hybrid* (dnum) keyswitch construction used by
the paper (Algorithm 1): the modulus chain at level ``l`` is partitioned into
``beta = ceil((l+1)/alpha)`` digits of ``alpha`` moduli each, and the key for
digit ``j`` encrypts ``P * Q_hat_j * (Q_hat_j^{-1} mod Q_j) * s'`` under the
extended modulus ``Q_l * P``.

Because the digit structure depends on the ciphertext level, evaluation keys
are generated lazily per ``(kind, level)`` and cached on the key set.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..modmath import mod_inverse
from ..params import CKKSParameters
from ..polynomial import Polynomial, sample_gaussian, sample_ternary, sample_uniform
from ..rns import RNSBasis, RNSPolynomial

__all__ = [
    "CKKSSecretKey",
    "CKKSPublicKey",
    "KeySwitchKey",
    "CKKSKeySet",
    "CKKSKeyGenerator",
    "galois_element_for_rotation",
    "galois_element_for_conjugation",
]


def galois_element_for_rotation(ring_degree: int, steps: int) -> int:
    """The Galois element ``5^steps mod 2N`` implementing a slot rotation
    by ``steps`` positions (negative steps via the modular inverse)."""
    return pow(5, steps, 2 * ring_degree)


def galois_element_for_conjugation(ring_degree: int) -> int:
    """The Galois element ``2N - 1`` (i.e. ``X -> X^-1``) implementing
    slot-wise complex conjugation."""
    return 2 * ring_degree - 1


@dataclass
class CKKSSecretKey:
    """The ternary secret ``s``, stored as centred integer coefficients."""

    coefficients: Tuple[int, ...]

    def as_rns(self, ring_degree: int, basis: RNSBasis) -> RNSPolynomial:
        """The secret reduced into an arbitrary RNS basis."""
        return RNSPolynomial.from_integer_coefficients(ring_degree, basis, self.coefficients)

    def squared_coefficients(self, ring_degree: int) -> Tuple[int, ...]:
        """Integer coefficients of ``s^2`` in Z[X]/(X^N+1) (for relin keys)."""
        n = ring_degree
        result = [0] * n
        for i, a in enumerate(self.coefficients):
            if a == 0:
                continue
            for j, b in enumerate(self.coefficients):
                if b == 0:
                    continue
                k = i + j
                if k >= n:
                    result[k - n] -= a * b
                else:
                    result[k] += a * b
        return tuple(result)

    def automorphism_coefficients(self, ring_degree: int, galois_element: int) -> Tuple[int, ...]:
        """Integer coefficients of ``sigma_g(s)`` where ``sigma_g: X -> X^g``."""
        n = ring_degree
        g = galois_element % (2 * n)
        result = [0] * n
        for i, c in enumerate(self.coefficients):
            if c == 0:
                continue
            k = (i * g) % (2 * n)
            sign = 1
            if k >= n:
                k -= n
                sign = -1
            result[k] += sign * c
        return tuple(result)


@dataclass
class CKKSPublicKey:
    """Encryption key ``(b, a)`` with ``b = -a*s + e`` over the full basis."""

    b: RNSPolynomial
    a: RNSPolynomial


@dataclass
class KeySwitchKey:
    """Hybrid keyswitch key: one ``(b_j, a_j)`` pair per digit, over C_l ∪ P."""

    level: int
    digit_keys: List[Tuple[RNSPolynomial, RNSPolynomial]]
    # Backend-prepared evaluation-domain images of the digit keys, built on
    # first use and reused by every keyswitch (keyed by backend name).  The
    # transforms are exact, so caching cannot change results.
    _eval_cache: Dict[str, list] = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_digits(self) -> int:
        return len(self.digit_keys)


@dataclass
class CKKSKeySet:
    """All key material for one party: secret, public, relin and Galois keys."""

    params: CKKSParameters
    secret: CKKSSecretKey
    public: CKKSPublicKey
    _relin_keys: Dict[int, KeySwitchKey] = field(default_factory=dict)
    _galois_keys: Dict[Tuple[int, int], KeySwitchKey] = field(default_factory=dict)
    _generator: "CKKSKeyGenerator | None" = None

    def relinearization_key(self, level: int) -> KeySwitchKey:
        """Keyswitch key from ``s^2`` to ``s`` at the given level (cached)."""
        if level not in self._relin_keys:
            if self._generator is None:
                raise KeyError(f"no relinearization key for level {level}")
            self._relin_keys[level] = self._generator.make_relinearization_key(self, level)
        return self._relin_keys[level]

    def galois_key(self, galois_element: int, level: int) -> KeySwitchKey:
        """Keyswitch key from ``sigma_g(s)`` to ``s`` at the given level (cached)."""
        key = (galois_element, level)
        if key not in self._galois_keys:
            if self._generator is None:
                raise KeyError(f"no Galois key for element {galois_element} at level {level}")
            self._galois_keys[key] = self._generator.make_galois_key(self, galois_element, level)
        return self._galois_keys[key]

    def ensure_rotation_keys(
        self, steps: Sequence[int], level: int
    ) -> Dict[int, KeySwitchKey]:
        """Pre-generate the Galois keys for a set of rotation steps.

        A BSGS linear transform needs only its baby steps ``1..n1-1`` and
        giant steps ``n1, 2*n1, ...`` — this is the key-set helper that
        materializes exactly those (identity steps are skipped), keyed by
        step.  Keys are cached on the key set, so calling it again (or
        rotating later) is free.
        """
        keys: Dict[int, KeySwitchKey] = {}
        for step in steps:
            element = galois_element_for_rotation(self.params.ring_degree, step)
            if element == 1:
                continue
            keys[step] = self.galois_key(element, level)
        return keys

    def has_relin_key(self, level: int) -> bool:
        """Whether :meth:`relinearization_key` would succeed (cached key or
        a live generator that can make one)."""
        return level in self._relin_keys or self._generator is not None

    def has_galois_key(self, galois_element: int, level: int) -> bool:
        """Whether :meth:`galois_key` would succeed.  Identity elements need
        no key."""
        if galois_element == 1:
            return True
        return (galois_element, level) in self._galois_keys or self._generator is not None

    def frozen(self) -> "CKKSKeySet":
        """A generator-less copy holding only the currently cached evaluation
        keys.

        Requests for anything not already materialized raise ``KeyError``
        instead of silently minting new key material — the provisioning model
        of a serving tenant, whose evaluation keys are uploaded once.  The
        copy shares the underlying key objects but not the cache dicts, so
        later generation on ``self`` does not grow the frozen view.
        """
        return CKKSKeySet(
            params=self.params,
            secret=self.secret,
            public=self.public,
            _relin_keys=dict(self._relin_keys),
            _galois_keys=dict(self._galois_keys),
        )

    def ensure_galois_keys(
        self, elements: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], KeySwitchKey]:
        """Pre-generate Galois keys for ``(galois_element, level)`` pairs.

        The element-shaped sibling of :meth:`ensure_rotation_keys`: it
        accepts exactly what :meth:`~repro.fhe.program.PlannedProgram.
        required_galois_elements` reports for a planned program — rotations
        *and* conjugations, per level, after dead-code elimination — so a
        program's key material is provisioned from its plan and nothing
        more.  Identity elements are skipped; keys cache on the key set.
        """
        keys: Dict[Tuple[int, int], KeySwitchKey] = {}
        for element, level in elements:
            if element == 1:
                continue
            keys[(element, level)] = self.galois_key(element, level)
        return keys


class CKKSKeyGenerator:
    """Generates CKKS key material for a parameter set (deterministic per seed)."""

    def __init__(self, params: CKKSParameters, seed: int = 0, error_stddev: float = 3.2,
                 secret_hamming_weight: int | None = None):
        self.params = params
        self.rng = random.Random(seed)
        self.error_stddev = error_stddev
        self.secret_hamming_weight = secret_hamming_weight

    # -- top-level key generation ------------------------------------------
    def generate(self) -> CKKSKeySet:
        """Generate a fresh secret/public key pair (evaluation keys are lazy)."""
        params = self.params
        secret_poly = sample_ternary(
            params.ring_degree, 3, self.rng, hamming_weight=self.secret_hamming_weight
        )
        secret = CKKSSecretKey(tuple(secret_poly.centered_coefficients()))
        public = self._make_public_key(secret)
        key_set = CKKSKeySet(params=params, secret=secret, public=public, _generator=self)
        return key_set

    def _make_public_key(self, secret: CKKSSecretKey) -> CKKSPublicKey:
        params = self.params
        basis = params.basis()
        n = params.ring_degree
        s = secret.as_rns(n, basis)
        a_limbs = [sample_uniform(n, q, self.rng) for q in basis]
        a = RNSPolynomial(n, basis, a_limbs)
        error = self._sample_error(basis)
        b = -(a * s) + error
        return CKKSPublicKey(b=b, a=a)

    def _sample_error(self, basis: RNSBasis) -> RNSPolynomial:
        n = self.params.ring_degree
        error_coeffs = [
            round(self.rng.gauss(0.0, self.error_stddev)) if self.error_stddev > 0 else 0
            for _ in range(n)
        ]
        return RNSPolynomial.from_integer_coefficients(n, basis, error_coeffs)

    # -- hybrid keyswitch keys -----------------------------------------------
    def digit_slices(self, level: int) -> List[Tuple[int, int]]:
        """Index ranges ``[start, stop)`` of the RNS digits at ``level``."""
        alpha = self.params.alpha
        slices = []
        start = 0
        while start <= level:
            stop = min(start + alpha, level + 1)
            slices.append((start, stop))
            start = stop
        return slices

    def make_keyswitch_key(self, key_set: CKKSKeySet,
                           target_coefficients: Sequence[int], level: int) -> KeySwitchKey:
        """Key that switches ``d * s_target`` into a ciphertext under ``s``.

        ``target_coefficients`` are the centred integer coefficients of the
        source secret ``s'`` (``s^2`` for relinearization, ``sigma_g(s)`` for
        rotation keys).
        """
        params = self.params
        n = params.ring_degree
        moduli = list(params.moduli[: level + 1])
        special = list(params.special_moduli)
        extended = RNSBasis(moduli + special)
        q_level = math.prod(moduli)
        p_product = math.prod(special)
        secret_ext = key_set.secret.as_rns(n, extended)
        digit_keys: List[Tuple[RNSPolynomial, RNSPolynomial]] = []
        for start, stop in self.digit_slices(level):
            digit_moduli = moduli[start:stop]
            q_digit = math.prod(digit_moduli)
            q_hat = q_level // q_digit
            factor = (p_product * q_hat * mod_inverse(q_hat % q_digit, q_digit)) % (
                q_level * p_product
            )
            a_limbs = [sample_uniform(n, q, self.rng) for q in extended]
            a = RNSPolynomial(n, extended, a_limbs)
            error = self._sample_error(extended)
            payload_limbs = [
                Polynomial(n, q, [(factor % q) * (c % q) % q for c in target_coefficients])
                for q in extended
            ]
            payload = RNSPolynomial(n, extended, payload_limbs)
            b = -(a * secret_ext) + error + payload
            digit_keys.append((b, a))
        return KeySwitchKey(level=level, digit_keys=digit_keys)

    def make_relinearization_key(self, key_set: CKKSKeySet, level: int) -> KeySwitchKey:
        """Keyswitch key for ``s^2 -> s`` at ``level``."""
        squared = key_set.secret.squared_coefficients(self.params.ring_degree)
        return self.make_keyswitch_key(key_set, squared, level)

    def make_galois_key(self, key_set: CKKSKeySet, galois_element: int, level: int) -> KeySwitchKey:
        """Keyswitch key for ``sigma_g(s) -> s`` at ``level``."""
        rotated = key_set.secret.automorphism_coefficients(
            self.params.ring_degree, galois_element
        )
        return self.make_keyswitch_key(key_set, rotated, level)
