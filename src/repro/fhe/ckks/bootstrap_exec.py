"""Functional packed CKKS bootstrapping as planned :class:`HEProgram`\\ s.

This module executes the pipeline that :mod:`repro.fhe.ckks.bootstrap` only
*prices*: a ciphertext at its last usable level is actually refreshed —

1. **ModRaise** — the exhausted level-0 ciphertext's centred coefficients are
   re-read in the full modulus chain, so the underlying plaintext becomes
   ``p + q0 * I`` for a small integer polynomial ``I``;
2. **CoeffToSlot** — ``c2s_stages`` staged BSGS linear transforms move the
   plaintext *coefficients* into the slots.  The stage matrices are the
   grouped radix-2 butterfly factors of the CKKS special FFT (the decoding
   Vandermonde over the ``5^j`` rotation orbit).  The factorization is
   bit-reversal-free: the middle of the pipeline simply operates on
   bit-reversed coefficients, which the slot-wise EvalMod cannot observe,
   and SlotToCoeff undoes the ordering for free;
3. **EvalMod** — one conjugation splits the packed coefficients into their
   real/imaginary branches, each evaluating a Chebyshev interpolant of the
   scaled sine (and cosine) by Paterson-Stockmeyer, followed by
   ``double_angle_iters`` double-angle rounds — the structure is
   :func:`repro.fhe.ckks.bootstrap.evalmod_structure`, shared verbatim with
   the cost model so the accountings reconcile by construction;
4. **SlotToCoeff** — the inverse staged transforms, with the final
   ``q0 / (2 pi Delta)`` constants folded into the branch-recombination
   plaintexts.

Every stage is a *traced* :class:`~repro.fhe.program.HEProgram` run through
``plan_program``/``ProgramExecutor``: hoist fusion shares one keyswitch
hoist across each stage's baby rotations, dead-code elimination prunes the
baby rotations the sparse stage matrices never touch (and with them the
Galois keys — :meth:`PackedBootstrap.generate_keys` materializes exactly
what :meth:`~repro.fhe.program.PlannedProgram.required_galois_elements`
reports), and the planned execution is bit-exact against the eager
node-by-node reference (``refresh(..., eager=True)``), gated by
``tests/test_bootstrap.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is an optional extra; the DFT factor matrices need it (as does
    import numpy as np  # the encoder every stage plaintext goes through).
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

from ..params import CKKSParameters
from ..rns import RNSPolynomial
from .bootstrap import BootstrapPlan, EvalModPlan, evalmod_structure
from .ciphertext import CKKSCiphertext
from .linear_transform import BSGSLinearTransform

__all__ = ["mod_raise", "PackedBootstrap"]


def mod_raise(ciphertext: CKKSCiphertext, params: CKKSParameters,
              target_level: "int | None" = None) -> CKKSCiphertext:
    """Re-read a level-0 ciphertext's coefficients in the chain at ``target_level``.

    The centred representatives of ``(c0, c1)`` modulo ``q0`` are lifted into
    the basis ``C_target``, so over the big modulus the decryption equation
    becomes ``c0 + c1 * s = [p]_{q0} + q0 * I`` with ``|I|`` bounded by
    roughly half the secret's 1-norm — the integer polynomial EvalMod's
    scaled sine removes.  Scale and slot semantics are untouched.
    """
    if ciphertext.level != 0:
        raise ValueError(
            f"mod_raise expects an exhausted level-0 ciphertext, got level "
            f"{ciphertext.level}"
        )
    target_level = params.max_level if target_level is None else target_level
    if target_level < 1:
        raise ValueError("mod_raise needs a target level >= 1")
    basis = params.basis(target_level)
    c0 = ciphertext.c0.to_coeff().to_polynomial()
    c1 = ciphertext.c1.to_coeff().to_polynomial()
    return CKKSCiphertext(
        c0=RNSPolynomial.from_polynomial(c0, basis),
        c1=RNSPolynomial.from_polynomial(c1, basis),
        level=target_level,
        scale=ciphertext.scale,
    )


# ---------------------------------------------------------------------------
# The CKKS special FFT: bit-reversal-free radix-2 butterfly factors
# ---------------------------------------------------------------------------

def _dft_factors(ring_degree: int) -> list:
    """Radix-2 butterfly factors ``F_1 .. F_t`` of the decoding transform.

    With ``n = N/2`` slots and ``V[j, k] = exp(i pi g_j k / N)``
    (``g_j = 5^j mod 2N`` — the rotation-orbit Vandermonde the encoder
    evaluates), the product ``F_1 @ F_2 @ ... @ F_t`` equals ``V`` with
    bit-reversed *columns* (``W = V R^{-1}``): a decimation-in-time FFT
    whose input permutation is absorbed into the pipeline ordering instead
    of a (rotation-hostile) permutation matrix.  Each factor has the three
    generalized diagonals ``{0, +h, -h}`` of a stride-``h`` butterfly, so it
    BSGS-evaluates with a handful of rotations.
    """
    n = ring_degree // 2
    factors = []
    sub = ring_degree                     # sub-ring degree of this stage
    while sub >= 4:
        block = sub // 2                  # butterfly block length in slots
        half = block // 2
        mat = np.zeros((n, n), dtype=np.complex128)
        for base in range(0, n, block):
            for j in range(half):
                twiddle = np.exp(1j * math.pi * (pow(5, j, 2 * sub) % (2 * sub)) / sub)
                r0, r1 = base + j, base + j + half
                mat[r0, r0] = 1.0
                mat[r0, r1] = twiddle
                mat[r1, r0] = 1.0
                mat[r1, r1] = -twiddle
        factors.append(mat)
        sub //= 2
    return factors


def _invert_factor(factor) -> "np.ndarray":
    """Analytic inverse of one butterfly factor (same 3-diagonal sparsity).

    ``(u0, u1) -> (u0 + w u1, u0 - w u1)`` inverts to
    ``u0 = (v0 + v1) / 2``, ``u1 = (v0 - v1) / (2w)`` — computed entry-wise
    from the factor itself so no numerical inversion (and no dense fill-in)
    is involved.
    """
    n = len(factor)
    inverse = np.zeros_like(factor)
    done = np.zeros(n, dtype=bool)
    for r0 in range(n):
        if done[r0]:
            continue
        (cols,) = np.nonzero(factor[r0])
        r1 = int(cols[cols != r0][0])
        twiddle = factor[r0, r1]
        inverse[r0, r0] = 0.5
        inverse[r0, r1] = 0.5
        inverse[r1, r0] = 0.5 / twiddle
        inverse[r1, r1] = -0.5 / twiddle
        done[r0] = done[r1] = True
    return inverse


def _partition(count: int, groups: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into ``groups`` contiguous chunks, big-first."""
    base, extra = divmod(count, groups)
    bounds = []
    start = 0
    for g in range(groups):
        size = base + (1 if g < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _matrix_diagonals(mat) -> Dict[int, List[complex]]:
    """Generalized-diagonal view ``{d: [mat[j, (j+d) % n] ...]}`` of ``mat``,
    keeping only diagonals that are numerically present."""
    n = len(mat)
    threshold = 1e-10 * float(np.abs(mat).max())
    rows = np.arange(n)
    diagonals: Dict[int, List[complex]] = {}
    for d in range(n):
        vec = mat[rows, (rows + d) % n]
        if float(np.abs(vec).max()) > threshold:
            diagonals[d] = [complex(v) for v in vec]
    return diagonals


def _chebyshev_monomial(func, radius: float, degree: int):
    """Monomial coefficients of the Chebyshev interpolant of ``func`` on
    ``[-radius, radius]`` (coefficients apply to the raw argument)."""
    from numpy.polynomial import chebyshev, polynomial

    cheb = chebyshev.Chebyshev.interpolate(func, degree,
                                           domain=[-radius, radius])
    mono = cheb.convert(domain=[-radius, radius], kind=polynomial.Polynomial,
                        window=[-radius, radius])
    return [complex(c) for c in mono.coef]


# ---------------------------------------------------------------------------
# Tracing algebra for the shared EvalMod structure
# ---------------------------------------------------------------------------

class _TraceAlgebra:
    """Drives :func:`evalmod_structure` over :class:`HEHandle` values.

    The exact call sequence the counting algebra of
    :class:`~repro.fhe.ckks.bootstrap.EvalModPlan` replays — constants
    become encoded plaintexts (cached per value/scale), ``padd`` constants
    encode at the handle's trace-time scale so the waterline never has to
    insert a rescue rescale.
    """

    def __init__(self, encoder):
        self.encoder = encoder
        self.delta = float(encoder.params.scale)
        self._constants: Dict[tuple, object] = {}

    def _const(self, value, scale: float):
        key = (complex(value), float(scale))
        plaintext = self._constants.get(key)
        if plaintext is None:
            plaintext = self.encoder.encode(
                [complex(value)] * self.encoder.params.slots, scale=scale
            )
            self._constants[key] = plaintext
        return plaintext

    def conjugate(self, h):
        return h.conjugate()

    def add(self, a, b):
        return a + b

    def sub(self, a, b):
        return a - b

    def mul(self, a, b):
        return a * b

    def rescale(self, h):
        return h.rescale()

    def pmult(self, h, coeff):
        return h * self._const(coeff, self.delta)

    def padd(self, h, coeff):
        return h + self._const(coeff, h.scale)

    def scalar(self, h, k):
        return h * int(k)


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

class PackedBootstrap:
    """Functional fully-packed CKKS bootstrapping over one parameter set.

    Construction precomputes everything data-independent: the grouped FFT
    stage matrices (diagonal-encoded as :class:`BSGSLinearTransform`\\ s with
    the CoeffToSlot normalisation ``pi * Delta / (2^r q0)`` spread across
    the stages), the Chebyshev sine/cosine interpolants (the imaginary
    branch's ``i`` factor folded into its coefficients via
    ``c_k -> c_k (-i)^k``), and the traced+planned stage programs.

    ``integer_bound`` bounds ``|I|`` of the post-ModRaise plaintext
    ``p + q0 * I`` — roughly ``(hamming_weight + 1) / 2 + 1`` for the sparse
    ternary secrets the bootstrappable contexts use; it sets the sine
    approximation radius.

    Use :meth:`generate_keys` (exact planned key set), then :meth:`refresh`
    on a level-0 ciphertext.  :meth:`plan` returns the
    :class:`BootstrapPlan` priced from this instance's exact structure —
    ``tests/test_bootstrap.py`` gates that the traced programs' lowered
    histograms match it stage by stage.
    """

    def __init__(self, encoder, *, c2s_stages: int = 2, s2c_stages: int = 2,
                 sine_degree: int = 15, double_angle_iters: int = 2,
                 integer_bound: int = 4, baby_steps: "int | None" = None,
                 start_level: "int | None" = None):
        if np is None:  # pragma: no cover - numpy-less installs
            raise RuntimeError(
                "PackedBootstrap requires numpy (install the 'numpy' extra): "
                "the FFT stage matrices and the encoder both need it"
            )
        params = encoder.params
        self.encoder = encoder
        self.params = params
        self.start_level = params.max_level if start_level is None else start_level
        slots = params.slots
        depth = slots.bit_length() - 1          # log2(slots) butterfly levels
        for label, stages in (("c2s_stages", c2s_stages), ("s2c_stages", s2c_stages)):
            if not 1 <= stages <= depth:
                raise ValueError(f"{label} must lie in [1, log2(slots) = {depth}]")
        self.c2s_stages = c2s_stages
        self.s2c_stages = s2c_stages
        self.sine_degree = sine_degree
        self.double_angle_iters = double_angle_iters
        self.integer_bound = integer_bound

        delta = float(params.scale)
        q0 = params.moduli[0]
        scaling = 2.0 ** double_angle_iters

        factors = _dft_factors(params.ring_degree)
        inverses = [_invert_factor(f) for f in factors]

        level = self.start_level
        # CoeffToSlot: the inverse factors, top group first, with the
        # normalisation pi * Delta / (2^r * q0) spread evenly across stages.
        fold = (math.pi * delta / (scaling * q0)) ** (1.0 / c2s_stages)
        self.c2s_transforms: List[BSGSLinearTransform] = []
        for lo, hi in _partition(len(factors), c2s_stages):
            # inv(F_a @ ... @ F_b) = inv(F_b) @ ... @ inv(F_a)
            stage = np.eye(len(inverses[0]), dtype=np.complex128)
            for inverse in inverses[lo:hi]:
                stage = inverse @ stage
            self.c2s_transforms.append(BSGSLinearTransform(
                encoder, _matrix_diagonals(fold * stage), slots, level=level,
            ))
            level -= 1

        # EvalMod: Chebyshev interpolants of sin/cos on the ModRaise range.
        radius = 2.0 * math.pi * (integer_bound + delta / q0) / scaling
        sin_coeffs = _chebyshev_monomial(np.sin, radius, sine_degree)
        for k in range(0, len(sin_coeffs), 2):
            sin_coeffs[k] = 0.0               # sine is odd: exact zeros
        cos_degree = sine_degree - (sine_degree % 2)
        cos_coeffs = _chebyshev_monomial(np.cos, radius, cos_degree)
        for k in range(1, len(cos_coeffs), 2):
            cos_coeffs[k] = 0.0               # cosine is even
        # The imaginary branch receives i * theta; composing with the linear
        # map -i * y folds the branch's 1/i into the coefficients for free.
        self.sin_coeffs = sin_coeffs
        self.cos_coeffs = cos_coeffs
        self.sin_coeffs_imag = [c * (-1j) ** k for k, c in enumerate(sin_coeffs)]
        self.cos_coeffs_imag = [c * (-1j) ** k for k, c in enumerate(cos_coeffs)]
        self.recombine = q0 / (2.0 * math.pi * delta)
        self.evalmod_plan = EvalModPlan(
            level=level, sine_degree=sine_degree,
            double_angle_iters=double_angle_iters, baby_steps=baby_steps,
            sin_pattern=tuple(bool(c) for c in sin_coeffs),
            cos_pattern=tuple(bool(c) for c in cos_coeffs),
        )
        self._evalmod_level = level
        level -= self.evalmod_plan.levels_consumed

        # SlotToCoeff: the forward factors, bottom group first.
        self.s2c_transforms: List[BSGSLinearTransform] = []
        bounds = _partition(len(factors), s2c_stages)
        for lo, hi in reversed(bounds):
            stage = np.eye(len(factors[0]), dtype=np.complex128)
            for factor in factors[lo:hi]:
                stage = stage @ factor
            if level < 0:
                raise ValueError(
                    "bootstrap pipeline does not fit the modulus chain; "
                    "raise max_level or shrink the pipeline"
                )
            self.s2c_transforms.append(BSGSLinearTransform(
                encoder, _matrix_diagonals(stage), slots, level=level,
            ))
            level -= 1

        self.end_level = level
        if self.end_level < 1:
            raise ValueError(
                f"bootstrap pipeline consumes {self.start_level - self.end_level} "
                f"levels but only {self.start_level} are available; raise "
                f"max_level or shrink the pipeline"
            )
        self._stages: "List[Tuple[str, object, object]] | None" = None
        #: Planner statistics of the last planned :meth:`refresh`, per stage.
        self.last_stats: Dict[str, Dict[str, int]] = {}

    # -- traced programs -----------------------------------------------------
    def _stage_list(self):
        """``(name, traced HEProgram, PlannedProgram)`` per stage (cached)."""
        if self._stages is None:
            from ..program import HETrace, plan_program

            params = self.params
            stages = []
            level = self.start_level
            for index, transform in enumerate(self.c2s_transforms):
                trace = HETrace(params)
                x = trace.input("x", level=level)
                trace.output("y", transform.trace(x).rescale())
                stages.append((f"c2s_{index}", trace.program,
                               plan_program(trace.program)))
                level -= 1
            trace = HETrace(params)
            x = trace.input("x", level=level)
            algebra = _TraceAlgebra(self.encoder)
            branches = [
                ("add", self.sin_coeffs, self.cos_coeffs, self.recombine),
                ("sub", self.sin_coeffs_imag, self.cos_coeffs_imag,
                 self.recombine * 1j),
            ]
            trace.output("y", evalmod_structure(
                algebra, x, branches, self.evalmod_plan.baby_steps,
                self.double_angle_iters,
            ))
            stages.append(("evalmod", trace.program, plan_program(trace.program)))
            level -= self.evalmod_plan.levels_consumed
            for index, transform in enumerate(self.s2c_transforms):
                trace = HETrace(params)
                x = trace.input("x", level=level)
                trace.output("y", transform.trace(x).rescale())
                stages.append((f"s2c_{index}", trace.program,
                               plan_program(trace.program)))
                level -= 1
            self._stages = stages
        return self._stages

    def stage_programs(self):
        """The planned stage programs as ``(name, PlannedProgram)`` pairs."""
        return [(name, planned) for name, _, planned in self._stage_list()]

    # -- key planning --------------------------------------------------------
    def required_galois_elements(self) -> List[Tuple[int, int]]:
        """Union of every stage plan's ``(galois_element, level)`` needs —
        dead-code elimination has already pruned the unused baby rotations
        of the sparse stage matrices, so this is the minimal key set."""
        needed = set()
        for _, _, planned in self._stage_list():
            needed.update(planned.required_galois_elements())
        return sorted(needed)

    def generate_keys(self, keys):
        """Materialize exactly the Galois keys the planned pipeline uses."""
        return keys.ensure_galois_keys(self.required_galois_elements())

    # -- the cost-model view -------------------------------------------------
    def plan(self) -> BootstrapPlan:
        """The :class:`BootstrapPlan` priced from this exact pipeline.

        Stage diagonal sets and EvalMod coefficient patterns come from the
        instance, so :meth:`BootstrapPlan.stage_operations` reconciles with
        the traced programs' lowered histograms stage by stage.
        """
        return BootstrapPlan(
            ring_degree=self.params.ring_degree,
            start_level=self.start_level,
            levels_consumed=self.start_level - self.end_level,
            sine_degree=self.sine_degree,
            double_angle_iters=self.double_angle_iters,
            slots=self.params.slots,
            baby_steps=self.evalmod_plan.baby_steps,
            c2s_diagonals=tuple(
                tuple(sorted(t.plan.active_diagonals))
                for t in self.c2s_transforms
            ),
            s2c_diagonals=tuple(
                tuple(sorted(t.plan.active_diagonals))
                for t in self.s2c_transforms
            ),
            sin_pattern=self.evalmod_plan.sin_pattern,
            cos_pattern=self.evalmod_plan.cos_pattern,
        )

    def stage_histograms(self) -> List[Tuple[str, Dict[str, int]]]:
        """Lowered Table II histograms of the traced stage programs."""
        from ..program import operation_histogram

        return [
            (name, operation_histogram(planned))
            for name, _, planned in self._stage_list()
        ]

    def trinity_cycle_estimate(self, config=None):
        """Latency estimate of the whole traced bootstrap on the Trinity model."""
        from ...core.config import DEFAULT_TRINITY_CONFIG
        from ...core.mapping import select_mapping
        from ...core.simulator import TrinitySimulator
        from ..program import lower_to_traces

        config = DEFAULT_TRINITY_CONFIG if config is None else config
        traces = []
        for _, _, planned in self._stage_list():
            traces.extend(lower_to_traces(planned, params=self.params))
        simulator = TrinitySimulator(config)
        return simulator.run_many(traces, mapping=select_mapping("ckks", config))

    # -- execution -----------------------------------------------------------
    def refresh(self, evaluator, ciphertext: CKKSCiphertext,
                eager: bool = False) -> CKKSCiphertext:
        """Bootstrap a level-0 ciphertext back to :attr:`end_level`.

        ``eager=True`` runs every stage through the aligned node-by-node
        reference executor (one hoist per rotation, no batching) — the
        bit-exact baseline the planned path is gated against.
        """
        from ..program import ProgramExecutor

        if ciphertext.level != 0:
            raise ValueError(
                f"refresh expects an exhausted level-0 ciphertext, got level "
                f"{ciphertext.level}; mod_down_to(ct, 0) first"
            )
        with evaluator._arith():
            value = mod_raise(ciphertext, self.params, self.start_level)
        executor = ProgramExecutor(evaluator)
        stats: Dict[str, Dict[str, int]] = {}
        for name, traced, planned in self._stage_list():
            if eager:
                value = executor.run_eager(traced, {"x": value})["y"]
            else:
                value = executor.run(planned, {"x": value})["y"]
                stats[name] = dict(planned.stats)
        if not eager:
            self.last_stats = stats
        return value
