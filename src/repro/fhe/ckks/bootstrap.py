"""CKKS bootstrapping pipeline (operation-level model + functional pieces).

Full packed bootstrapping at paper scale (N = 2^16, L = 35) is far outside
what exact pure-Python arithmetic can run, and the accelerator never needs the
ciphertext data — only the *sequence of homomorphic operations*.  This module
therefore provides the *structure* of the pipeline:

* :class:`BootstrapPlan` — the standard CKKS bootstrapping pipeline
  (ModRaise -> CoeffToSlot -> EvalMod (sine approximation) -> SlotToCoeff)
  expanded into a per-operation schedule (HMult / PMult / HRotate / HAdd /
  Rescale counts and their level positions), parameterised the way the paper's
  Packed Bootstrapping benchmark is (level consumption 15).
* :func:`linear_transform_plan` — the baby-step/giant-step (BSGS) homomorphic
  matrix-vector multiply that CoeffToSlot/SlotToCoeff decompose into, reused
  by the HELR and ResNet workload generators.  Sparse stage matrices (the
  FFT factor matrices of the staged transforms) pass their *active* diagonal
  set, so the rotation/PMult accounting matches what a BSGS evaluation with
  dead-rotation pruning actually performs.
* :class:`EvalModPlan` / :func:`evalmod_structure` — the scaled-sine
  modular-reduction stage (Chebyshev interpolation evaluated with a
  Paterson-Stockmeyer split, then double-angle iterations).  The structure
  generator is *shared* with the functional implementation in
  :mod:`repro.fhe.ckks.bootstrap_exec`: the cost model drives it with a
  counting algebra, the functional pipeline with an :class:`HEHandle`
  algebra, so the two accountings cannot drift apart.

The plan objects are consumed by :mod:`repro.workloads.ckks_workloads`, which
lowers them into kernel traces for the hardware models, and by the
functional :class:`~repro.fhe.ckks.bootstrap_exec.PackedBootstrap`, whose
traced programs reconcile against :meth:`BootstrapPlan.stage_operations`
stage by stage (test-gated).

``BootstrapPlan.operations()`` honours the declared ``levels_consumed``
*both ways*: a pipeline consuming fewer levels is padded with cheap
PMult/Rescale pairs, and a pipeline consuming **more** levels than declared
raises a ``ValueError`` instead of silently disagreeing with
:attr:`BootstrapPlan.end_level`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HomomorphicOp",
    "BootstrapPlan",
    "linear_transform_plan",
    "LinearTransformPlan",
    "EvalModPlan",
    "evalmod_structure",
]


@dataclass(frozen=True)
class HomomorphicOp:
    """A single CKKS operation at a known level (Table II granularity)."""

    name: str          # one of: HMult, PMult, HAdd, PAdd, HRotate, Rescale, Conjugate
    level: int         # ciphertext level at which the operation executes
    count: int = 1     # identical repetitions at this level

    def __post_init__(self) -> None:
        valid = {"HMult", "PMult", "HAdd", "PAdd", "HRotate", "Rescale", "Conjugate"}
        if self.name not in valid:
            raise ValueError(f"unknown CKKS operation {self.name!r}")
        if self.count < 1:
            raise ValueError("count must be positive")


@dataclass
class LinearTransformPlan:
    """A BSGS homomorphic linear transform over ``diagonals`` matrix diagonals.

    For a general (dense) slot transform ``diagonals = slots``; the staged
    CoeffToSlot/SlotToCoeff transforms of bootstrapping are FFT-like and each
    stage only has radix-many diagonals, which is what keeps packed
    bootstrapping tractable.

    ``active_diagonals``, when set, lists the generalized-diagonal indices
    that are actually non-zero.  The rotation count then charges only the
    baby/giant steps those diagonals touch — exactly the rotations that
    survive dead-code elimination when the sparse transform is traced
    through the program planner.
    """

    slots: int
    diagonals: int
    baby_steps: int
    giant_steps: int
    level: int
    active_diagonals: "Tuple[int, ...] | None" = None

    @property
    def num_rotations(self) -> int:
        """Total HRotate count: baby rotations (hoisted) + giant rotations.

        Dense: ``(baby-1) + (giant-1)``.  Sparse: only the baby steps
        ``i = d mod n1 != 0`` and giant blocks ``j = d div n1 != 0`` that an
        active diagonal lands in are rotated.
        """
        if self.active_diagonals is not None:
            baby = {d % self.baby_steps for d in self.active_diagonals} - {0}
            giant = {d // self.baby_steps for d in self.active_diagonals} - {0}
            return len(baby) + len(giant)
        return (self.baby_steps - 1) + (self.giant_steps - 1)

    @property
    def num_plain_multiplies(self) -> int:
        """One PMult per (active) diagonal."""
        if self.active_diagonals is not None:
            return len(self.active_diagonals)
        return self.baby_steps * self.giant_steps

    @property
    def num_additions(self) -> int:
        return self.num_plain_multiplies - 1

    def operations(self) -> List[HomomorphicOp]:
        ops = []
        if self.num_rotations:
            ops.append(HomomorphicOp("HRotate", self.level, self.num_rotations))
        ops.append(HomomorphicOp("PMult", self.level, self.num_plain_multiplies))
        if self.num_additions:
            ops.append(HomomorphicOp("HAdd", self.level, self.num_additions))
        ops.append(HomomorphicOp("Rescale", self.level, 1))
        return ops


def linear_transform_plan(
    slots: int,
    level: int,
    diagonals: int | None = None,
    active_diagonals: "Sequence[int] | None" = None,
) -> LinearTransformPlan:
    """Balanced BSGS split (sqrt decomposition) of a transform with ``diagonals``.

    ``diagonals`` defaults to ``slots`` (a dense transform).  Bootstrapping's
    staged transforms pass either the per-stage radix (shape-only cost model)
    or — via ``active_diagonals`` — the exact generalized-diagonal index set
    of the stage matrix, which prices the sparse BSGS evaluation.
    """
    if slots < 1:
        raise ValueError("slots must be positive")
    diagonals = slots if diagonals is None else diagonals
    if diagonals < 1:
        raise ValueError("diagonals must be positive")
    if active_diagonals is not None:
        active = tuple(sorted(set(int(d) for d in active_diagonals)))
        if not active:
            raise ValueError("active_diagonals must be non-empty")
        if active[0] < 0 or active[-1] >= diagonals:
            raise ValueError(
                f"active diagonal indices must lie in [0, {diagonals})"
            )
    else:
        active = None
    baby = max(1, 1 << math.ceil(math.log2(max(1, math.isqrt(diagonals)))))
    giant = math.ceil(diagonals / baby)
    return LinearTransformPlan(slots=slots, diagonals=diagonals, baby_steps=baby,
                               giant_steps=giant, level=level,
                               active_diagonals=active)


# ---------------------------------------------------------------------------
# EvalMod: Chebyshev/Paterson-Stockmeyer scaled sine + double-angle iterations
# ---------------------------------------------------------------------------

def _ps_eval(alg, coeffs, baby: int, cache: dict):
    """Paterson-Stockmeyer evaluation of ``sum_k coeffs[k] * y^k`` over ``alg``.

    ``cache`` holds the shared power basis (``cache["powers"]``, seeded with
    ``{1: y}``) and giant-step powers (``cache["giants"]``), so the sine and
    cosine polynomials of one branch pay for them once.  Falsy coefficients
    (zeros in the tracing algebra, ``False`` in the counting patterns) are
    skipped — the odd/even sparsity of sine/cosine halves the PMult count.
    """
    coeffs = list(coeffs)
    while coeffs and not coeffs[-1]:
        coeffs.pop()
    if len(coeffs) <= 1:
        raise ValueError("EvalMod polynomial must have degree >= 1")
    powers = cache["powers"]

    def power(j: int):
        if j not in powers:
            lo = j // 2
            powers[j] = alg.rescale(alg.mul(power(j - lo), power(lo)))
        return powers[j]

    nblocks = -(-len(coeffs) // baby)
    depth = (nblocks - 1).bit_length()
    giants = cache.setdefault("giants", [])
    if nblocks > 1:
        if not giants:
            giants.append(power(baby))
        while len(giants) < depth:
            giants.append(alg.rescale(alg.mul(giants[-1], giants[-1])))

    def block(j: int):
        cs = coeffs[j * baby:(j + 1) * baby]
        acc = None
        for i in range(1, len(cs)):
            if not cs[i]:
                continue
            term = alg.pmult(power(i), cs[i])
            acc = term if acc is None else alg.add(acc, term)
        if acc is None:
            if cs and cs[0]:
                raise ValueError(
                    "constant-only Paterson-Stockmeyer block; use baby_steps >= 4"
                )
            return None
        if cs[0]:
            acc = alg.padd(acc, cs[0])
        return alg.rescale(acc)

    def evaluate(j0: int, count: int, m: int):
        if m == 0:
            return block(j0)
        half = 1 << (m - 1)
        low = evaluate(j0, min(count, half), m - 1)
        if count <= half:
            return low
        high = evaluate(j0 + half, count - half, m - 1)
        if high is None:
            return low
        prod = alg.rescale(alg.mul(high, giants[m - 1]))
        return prod if low is None else alg.add(low, prod)

    result = evaluate(0, nblocks, depth)
    if result is None:
        raise ValueError("EvalMod polynomial has no non-zero terms")
    return result


def evalmod_structure(alg, x, branches, baby_steps: int, double_angle_iters: int):
    """Drive the EvalMod pipeline over an abstract operation algebra.

    The structure is the SHARP/ARK-era one: a single conjugation splits the
    packed CoeffToSlot output into its real and imaginary coefficient
    branches (``x + conj(x)`` and ``x - conj(x)``; the imaginary branch's
    ``i`` factor is folded into that branch's polynomial coefficients), each
    branch evaluates the scaled sine *and* cosine by Paterson-Stockmeyer
    over a shared power basis, ``double_angle_iters`` double-angle rounds
    (``sin 2t = 2 sin t cos t``, ``cos 2t = 2 cos^2 t - 1``) recover the
    full angle, and the branches recombine under their folded constants.

    ``branches`` is a sequence of ``(combine, sin_coeffs, cos_coeffs,
    recombine_coeff)`` with ``combine`` one of ``"add"``/``"sub"``.  ``alg``
    implements ``conjugate/add/sub/mul/rescale/pmult/padd/scalar``; the same
    call sequence runs under the tracing algebra (functional bootstrap) and
    the counting algebra (:class:`EvalModPlan`), so the cost model and the
    traced program reconcile by construction.
    """
    conj = alg.conjugate(x)
    outputs = []
    for combine, sin_coeffs, cos_coeffs, recombine in branches:
        y = alg.add(x, conj) if combine == "add" else alg.sub(x, conj)
        cache = {"powers": {1: y}}
        s = _ps_eval(alg, sin_coeffs, baby_steps, cache)
        c = _ps_eval(alg, cos_coeffs, baby_steps, cache) if double_angle_iters else None
        for iteration in range(double_angle_iters):
            doubled = alg.scalar(alg.rescale(alg.mul(s, c)), 2)
            if iteration + 1 < double_angle_iters:
                cc = alg.rescale(alg.mul(c, c))
                c = alg.padd(alg.scalar(cc, 2), -1)
            s = doubled
        outputs.append(alg.pmult(s, recombine))
    acc = outputs[0]
    for out in outputs[1:]:
        acc = alg.add(acc, out)
    return alg.rescale(acc)


class _OperationCounter:
    """Counting algebra for :func:`evalmod_structure`.

    Handles are plain level integers; every primitive appends its Table II
    operation at the level it would execute (binary ops at the common
    post-alignment level, exactly the planner's waterline behaviour).
    """

    def __init__(self) -> None:
        self.ops: List[Tuple[str, int]] = []

    def _emit(self, name: str, level: int) -> int:
        if level < 0:
            raise ValueError("EvalMod pipeline runs out of levels")
        self.ops.append((name, level))
        return level

    def conjugate(self, h):
        return self._emit("Conjugate", h)

    def add(self, a, b):
        return self._emit("HAdd", min(a, b))

    def sub(self, a, b):
        return self._emit("HAdd", min(a, b))

    def mul(self, a, b):
        return self._emit("HMult", min(a, b))

    def rescale(self, h):
        return self._emit("Rescale", h) - 1

    def pmult(self, h, coeff):
        return self._emit("PMult", h)

    def padd(self, h, coeff):
        return self._emit("PAdd", h)

    def scalar(self, h, k):
        return self._emit("PMult", h)


def _default_baby_steps(degree: int) -> int:
    """The balanced PS baby size: ``2^ceil(log2(sqrt(degree+1)))``, >= 4.

    The floor of 4 keeps every block's exponent range ``1..b-1`` covering
    both parities, so neither the (odd) sine nor the (even) cosine ever
    produces a constant-only block.
    """
    return max(4, 1 << math.ceil(math.log2(max(1, math.isqrt(degree + 1)))))


def _parity_pattern(degree: int, odd: bool) -> Tuple[bool, ...]:
    return tuple(k % 2 == (1 if odd else 0) for k in range(degree + 1))


@dataclass
class EvalModPlan:
    """Operation schedule of the EvalMod stage (scaled-sine modular reduction).

    ``sin_pattern``/``cos_pattern`` are truthiness masks over the monomial
    coefficients (the functional pipeline passes the exact non-zero pattern
    of its Chebyshev interpolants; the shape-only default assumes the odd/
    even parity sparsity of sine/cosine).  Counts and the consumed level
    depth come from replaying :func:`evalmod_structure` on a counting
    algebra — the same code path the traced bootstrap executes.
    """

    level: int
    sine_degree: int = 31
    double_angle_iters: int = 2
    baby_steps: "int | None" = None
    sin_pattern: "Tuple[bool, ...] | None" = None
    cos_pattern: "Tuple[bool, ...] | None" = None

    def __post_init__(self) -> None:
        if self.sine_degree < 3:
            raise ValueError("sine_degree must be >= 3")
        if self.double_angle_iters < 0:
            raise ValueError("double_angle_iters must be >= 0")
        if self.baby_steps is None:
            self.baby_steps = _default_baby_steps(self.sine_degree)
        if self.baby_steps < 4 or self.baby_steps & (self.baby_steps - 1):
            raise ValueError("baby_steps must be a power of two >= 4")
        if self.sin_pattern is None:
            self.sin_pattern = _parity_pattern(self.sine_degree, odd=True)
        if self.cos_pattern is None:
            degree = self.sine_degree - (self.sine_degree % 2)
            self.cos_pattern = _parity_pattern(degree, odd=False)

    def _count(self) -> Tuple[List[Tuple[str, int]], int]:
        counter = _OperationCounter()
        branches = [
            ("add", self.sin_pattern, self.cos_pattern, True),
            ("sub", self.sin_pattern, self.cos_pattern, True),
        ]
        end = evalmod_structure(counter, self.level, branches,
                                self.baby_steps, self.double_angle_iters)
        return counter.ops, end

    @property
    def levels_consumed(self) -> int:
        return self.level - self._count()[1]

    def operations(self) -> List[HomomorphicOp]:
        """Level-annotated operation stream, highest level first, coalesced."""
        raw, _ = self._count()
        ops: List[HomomorphicOp] = []
        for name, level in sorted(raw, key=lambda item: (-item[1], item[0])):
            if ops and ops[-1].name == name and ops[-1].level == level:
                ops[-1] = HomomorphicOp(name, level, ops[-1].count + 1)
            else:
                ops.append(HomomorphicOp(name, level, 1))
        return ops

    def operation_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for op in self.operations():
            histogram[op.name] = histogram.get(op.name, 0) + op.count
        return histogram


# ---------------------------------------------------------------------------
# The full pipeline
# ---------------------------------------------------------------------------

@dataclass
class BootstrapPlan:
    """Operation schedule of a fully-packed CKKS bootstrapping.

    The decomposition follows the structure used by SHARP/ARK-era evaluations:

    * **CoeffToSlot** — ``c2s_stages`` FFT-like levels of BSGS linear
      transforms,
    * **EvalMod** — one conjugation splitting the packed coefficients into
      real/imag branches, each evaluating a degree-``sine_degree``
      Chebyshev/Paterson-Stockmeyer scaled sine with ``double_angle_iters``
      double-angle squarings (:class:`EvalModPlan`),
    * **SlotToCoeff** — ``s2c_stages`` BSGS linear-transform levels.

    ``levels_consumed`` defaults to 15, matching the paper's Packed
    Bootstrapping benchmark ("the level consumption of bootstrapping is 15");
    with the default pipeline shape (3 + 9 + 3) the schedule consumes
    exactly that.  The contract holds both ways: a shorter pipeline is
    padded with PMult/Rescale pairs, a *longer* one raises ``ValueError``
    from :meth:`operations` rather than silently disagreeing with
    :attr:`end_level`.

    The shape-only defaults price each staged transform at radix-many
    diagonals; a functional :class:`~repro.fhe.ckks.bootstrap_exec.
    PackedBootstrap` passes the exact per-stage ``active`` diagonal sets and
    coefficient patterns (via ``c2s_diagonals``/``s2c_diagonals``/
    ``sin_pattern``/``cos_pattern``), making the plan reconcile with the
    traced program stage by stage.
    """

    ring_degree: int = 65536
    start_level: int = 35
    levels_consumed: int = 15
    c2s_stages: int = 3
    s2c_stages: int = 3
    sine_degree: int = 31
    double_angle_iters: int = 2
    slots: int | None = None
    baby_steps: int | None = None
    c2s_diagonals: "Tuple[Tuple[int, ...], ...] | None" = None
    s2c_diagonals: "Tuple[Tuple[int, ...], ...] | None" = None
    sin_pattern: "Tuple[bool, ...] | None" = None
    cos_pattern: "Tuple[bool, ...] | None" = None

    def __post_init__(self) -> None:
        if self.slots is None:
            self.slots = self.ring_degree // 2
        if self.c2s_diagonals is not None:
            self.c2s_stages = len(self.c2s_diagonals)
        if self.s2c_diagonals is not None:
            self.s2c_stages = len(self.s2c_diagonals)
        if self.levels_consumed >= self.start_level:
            raise ValueError("bootstrapping must leave at least one level")

    # -- schedule -----------------------------------------------------------------
    def stage_operations(self) -> List[Tuple[str, List[HomomorphicOp]]]:
        """The pipeline as named stages, each a level-annotated op list.

        Stage names: ``c2s_<i>``, ``evalmod``, ``s2c_<i>``, and (when the
        pipeline consumes fewer levels than declared) a final ``pad`` stage.
        Raises ``ValueError`` when the expanded schedule consumes more
        levels than ``levels_consumed`` declares.
        """
        stages: List[Tuple[str, List[HomomorphicOp]]] = []
        level = self.start_level
        c2s_radix = max(2, round(self.slots ** (1.0 / self.c2s_stages)))
        s2c_radix = max(2, round(self.slots ** (1.0 / self.s2c_stages)))
        for s in range(self.c2s_stages):
            if self.c2s_diagonals is not None:
                plan = linear_transform_plan(
                    self.slots, level, active_diagonals=self.c2s_diagonals[s]
                )
            else:
                plan = linear_transform_plan(self.slots, level, diagonals=c2s_radix)
            stages.append((f"c2s_{s}", plan.operations()))
            level -= 1
        evalmod = EvalModPlan(
            level=level, sine_degree=self.sine_degree,
            double_angle_iters=self.double_angle_iters,
            baby_steps=self.baby_steps,
            sin_pattern=self.sin_pattern, cos_pattern=self.cos_pattern,
        )
        stages.append(("evalmod", evalmod.operations()))
        level -= evalmod.levels_consumed
        for s in range(self.s2c_stages):
            if self.s2c_diagonals is not None:
                plan = linear_transform_plan(
                    self.slots, level, active_diagonals=self.s2c_diagonals[s]
                )
            else:
                plan = linear_transform_plan(self.slots, level, diagonals=s2c_radix)
            stages.append((f"s2c_{s}", plan.operations()))
            level -= 1
        consumed = self.start_level - level
        if consumed > self.levels_consumed:
            raise ValueError(
                f"bootstrap pipeline consumes {consumed} levels but the plan "
                f"declares levels_consumed={self.levels_consumed}; raise the "
                f"declared consumption or shrink the pipeline"
            )
        if consumed < self.levels_consumed:
            pad: List[HomomorphicOp] = []
            for _ in range(self.levels_consumed - consumed):
                pad.append(HomomorphicOp("PMult", level, 1))
                pad.append(HomomorphicOp("Rescale", level, 1))
                level -= 1
            stages.append(("pad", pad))
        return stages

    def operations(self) -> List[HomomorphicOp]:
        """Expand the pipeline into a flat operation list (level-annotated).

        The final operation's level provably agrees with :attr:`end_level`:
        shortfalls are padded, overruns raise ``ValueError``.
        """
        return [op for _, ops in self.stage_operations() for op in ops]

    def operation_histogram(self) -> Dict[str, int]:
        """Total count of each operation type across the whole bootstrap."""
        histogram: Dict[str, int] = {}
        for op in self.operations():
            histogram[op.name] = histogram.get(op.name, 0) + op.count
        return histogram

    def stage_histograms(self) -> List[Tuple[str, Dict[str, int]]]:
        """Per-stage operation histograms (the reconciliation granularity)."""
        result = []
        for name, ops in self.stage_operations():
            histogram: Dict[str, int] = {}
            for op in ops:
                histogram[op.name] = histogram.get(op.name, 0) + op.count
            result.append((name, histogram))
        return result

    @property
    def end_level(self) -> int:
        """Level remaining after bootstrapping completes."""
        return self.start_level - self.levels_consumed
