"""CKKS bootstrapping pipeline (operation-level model + functional pieces).

Full packed bootstrapping at paper scale (N = 2^16, L = 35) is far outside
what exact pure-Python arithmetic can run, and the accelerator never needs the
ciphertext data — only the *sequence of homomorphic operations*.  This module
therefore provides:

* :class:`BootstrapPlan` — the standard CKKS bootstrapping pipeline
  (ModRaise -> CoeffToSlot -> EvalMod (sine approximation) -> SlotToCoeff)
  expanded into a per-operation schedule (HMult / PMult / HRotate / HAdd /
  Rescale counts and their level positions), parameterised the way the paper's
  Packed Bootstrapping benchmark is (level consumption 15).
* :func:`linear_transform_plan` — the baby-step/giant-step (BSGS) homomorphic
  matrix-vector multiply that CoeffToSlot/SlotToCoeff decompose into, reused
  by the HELR and ResNet workload generators.

The plan objects are consumed by :mod:`repro.workloads.ckks_workloads`, which
lowers them into kernel traces for the hardware models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["HomomorphicOp", "BootstrapPlan", "linear_transform_plan", "LinearTransformPlan"]


@dataclass(frozen=True)
class HomomorphicOp:
    """A single CKKS operation at a known level (Table II granularity)."""

    name: str          # one of: HMult, PMult, HAdd, PAdd, HRotate, Rescale, Conjugate
    level: int         # ciphertext level at which the operation executes
    count: int = 1     # identical repetitions at this level

    def __post_init__(self) -> None:
        valid = {"HMult", "PMult", "HAdd", "PAdd", "HRotate", "Rescale", "Conjugate"}
        if self.name not in valid:
            raise ValueError(f"unknown CKKS operation {self.name!r}")
        if self.count < 1:
            raise ValueError("count must be positive")


@dataclass
class LinearTransformPlan:
    """A BSGS homomorphic linear transform over ``diagonals`` matrix diagonals.

    For a general (dense) slot transform ``diagonals = slots``; the staged
    CoeffToSlot/SlotToCoeff transforms of bootstrapping are FFT-like and each
    stage only has ``radix``-many diagonals, which is what keeps packed
    bootstrapping tractable.
    """

    slots: int
    diagonals: int
    baby_steps: int
    giant_steps: int
    level: int

    @property
    def num_rotations(self) -> int:
        """Total HRotate count: (baby-1) hoisted + (giant-1) outer rotations."""
        return (self.baby_steps - 1) + (self.giant_steps - 1)

    @property
    def num_plain_multiplies(self) -> int:
        """One PMult per (baby, giant) diagonal."""
        return self.baby_steps * self.giant_steps

    @property
    def num_additions(self) -> int:
        return self.baby_steps * self.giant_steps - 1

    def operations(self) -> List[HomomorphicOp]:
        ops = []
        if self.num_rotations:
            ops.append(HomomorphicOp("HRotate", self.level, self.num_rotations))
        ops.append(HomomorphicOp("PMult", self.level, self.num_plain_multiplies))
        if self.num_additions:
            ops.append(HomomorphicOp("HAdd", self.level, self.num_additions))
        ops.append(HomomorphicOp("Rescale", self.level, 1))
        return ops


def linear_transform_plan(slots: int, level: int, diagonals: int | None = None) -> LinearTransformPlan:
    """Balanced BSGS split (sqrt decomposition) of a transform with ``diagonals``.

    ``diagonals`` defaults to ``slots`` (a dense transform).  Bootstrapping's
    staged transforms pass the per-stage radix instead.
    """
    if slots < 1:
        raise ValueError("slots must be positive")
    diagonals = slots if diagonals is None else diagonals
    if diagonals < 1:
        raise ValueError("diagonals must be positive")
    baby = max(1, 1 << math.ceil(math.log2(max(1, math.isqrt(diagonals)))))
    giant = math.ceil(diagonals / baby)
    return LinearTransformPlan(slots=slots, diagonals=diagonals, baby_steps=baby,
                               giant_steps=giant, level=level)


@dataclass
class BootstrapPlan:
    """Operation schedule of a fully-packed CKKS bootstrapping.

    The decomposition follows the structure used by SHARP/ARK-era evaluations:

    * **CoeffToSlot** — ``c2s_stages`` FFT-like levels of BSGS linear
      transforms (plus one conjugation to split real/imag parts),
    * **EvalMod** — a degree-``sine_degree`` Chebyshev/Taylor evaluation of the
      scaled sine, plus ``double_angle_iters`` double-angle squarings,
    * **SlotToCoeff** — ``s2c_stages`` BSGS linear-transform levels.

    ``levels_consumed`` defaults to 15, matching the paper's Packed
    Bootstrapping benchmark ("the level consumption of bootstrapping is 15").
    """

    ring_degree: int = 65536
    start_level: int = 35
    levels_consumed: int = 15
    c2s_stages: int = 3
    s2c_stages: int = 3
    sine_degree: int = 31
    double_angle_iters: int = 2
    slots: int | None = None

    def __post_init__(self) -> None:
        if self.slots is None:
            self.slots = self.ring_degree // 2
        if self.levels_consumed >= self.start_level:
            raise ValueError("bootstrapping must leave at least one level")

    # -- schedule -----------------------------------------------------------------
    def operations(self) -> List[HomomorphicOp]:
        """Expand the pipeline into a flat operation list (level-annotated)."""
        ops: List[HomomorphicOp] = []
        level = self.start_level
        # CoeffToSlot: FFT-like staged transform; each stage has radix-many
        # diagonals (radix = slots^(1/stages)) and consumes one level.
        c2s_radix = max(2, round(self.slots ** (1.0 / self.c2s_stages)))
        for _ in range(self.c2s_stages):
            plan = linear_transform_plan(self.slots, level, diagonals=c2s_radix)
            ops.extend(plan.operations())
            level -= 1
        ops.append(HomomorphicOp("Conjugate", level, 1))
        # EvalMod: polynomial evaluation of the scaled sine.  A degree-d
        # Chebyshev evaluation needs about log2(d) + sqrt(d) ciphertext
        # multiplications (Paterson-Stockmeyer); double-angle adds squarings.
        ps_mults = math.ceil(math.log2(self.sine_degree)) + math.isqrt(self.sine_degree)
        evalmod_levels = math.ceil(math.log2(self.sine_degree)) + self.double_angle_iters
        for i in range(evalmod_levels):
            mults_here = max(1, round(ps_mults / evalmod_levels))
            ops.append(HomomorphicOp("HMult", level, mults_here))
            ops.append(HomomorphicOp("PMult", level, mults_here))
            ops.append(HomomorphicOp("HAdd", level, 2 * mults_here))
            ops.append(HomomorphicOp("Rescale", level, mults_here))
            level -= 1
        # SlotToCoeff: the inverse staged transform.
        s2c_radix = max(2, round(self.slots ** (1.0 / self.s2c_stages)))
        for _ in range(self.s2c_stages):
            plan = linear_transform_plan(self.slots, level, diagonals=s2c_radix)
            ops.extend(plan.operations())
            level -= 1
        consumed = self.start_level - level
        # Pad or trim to the declared level consumption with cheap ops so that
        # the plan honours the benchmark's "levels consumed" contract.
        if consumed < self.levels_consumed:
            for _ in range(self.levels_consumed - consumed):
                ops.append(HomomorphicOp("PMult", level, 1))
                ops.append(HomomorphicOp("Rescale", level, 1))
                level -= 1
        return ops

    def operation_histogram(self) -> Dict[str, int]:
        """Total count of each operation type across the whole bootstrap."""
        histogram: Dict[str, int] = {}
        for op in self.operations():
            histogram[op.name] = histogram.get(op.name, 0) + op.count
        return histogram

    @property
    def end_level(self) -> int:
        """Level remaining after bootstrapping completes."""
        return self.start_level - self.levels_consumed
