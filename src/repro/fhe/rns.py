"""Residue Number System (RNS) representation and fast basis conversion.

CKKS with large coefficient moduli (hundreds to >1000 bits) is implemented in
practice on a chain of small word-sized primes (Cheon-Han-Kim-Kim-Song RNS
variant).  This module provides:

* :class:`RNSBasis` — an ordered set of pairwise-coprime NTT-friendly primes
  with the CRT constants needed for reconstruction,
* :class:`RNSPolynomial` — a polynomial held limb-wise, one residue
  polynomial per prime in the basis, supporting element-wise arithmetic,
  NTT-domain conversion, and limb dropping (Rescale),
* :func:`fast_basis_conversion` — the **BConv** kernel of the paper: the
  approximate base-conversion (HPS/BEHZ style) used by hybrid keyswitch to
  move a polynomial from basis ``C`` to basis ``D`` without reconstructing the
  big integer.

The element counts of these functions are what the kernel-level cost model in
:mod:`repro.kernels.opcounts` charges for BConv; the functional versions here
are used by the CKKS scheme implementation and its tests.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from .backend import active_backend
from .modmath import mod_inverse
from .polynomial import Polynomial

__all__ = ["RNSBasis", "RNSPolynomial", "fast_basis_conversion", "exact_basis_conversion"]


class RNSBasis:
    """An ordered basis of pairwise-coprime primes ``q_0, ..., q_{k-1}``."""

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(q) for q in moduli]
        if not moduli:
            raise ValueError("an RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1:]:
                if math.gcd(a, b) != 1:
                    raise ValueError(f"moduli {a} and {b} are not coprime")
        self.moduli = list(moduli)
        self.product = math.prod(moduli)
        # CRT reconstruction constants: Q_i = Q / q_i and Q_i^{-1} mod q_i.
        self._crt_complements = [self.product // q for q in moduli]
        self._crt_inverses = [
            mod_inverse(comp % q, q) for comp, q in zip(self._crt_complements, moduli)
        ]

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RNSBasis):
            return NotImplemented
        return self.moduli == other.moduli

    def __repr__(self) -> str:  # pragma: no cover
        return f"RNSBasis({self.moduli})"

    def subset(self, count: int) -> "RNSBasis":
        """The basis formed by the first ``count`` moduli (used by Rescale)."""
        if not 1 <= count <= len(self.moduli):
            raise ValueError(f"cannot take {count} moduli from a basis of {len(self.moduli)}")
        return RNSBasis(self.moduli[:count])

    def extend(self, extra: Iterable[int]) -> "RNSBasis":
        """The basis formed by appending ``extra`` moduli (used by keyswitch)."""
        return RNSBasis(self.moduli + [int(q) for q in extra])

    def reconstruct(self, residues: Sequence[int]) -> int:
        """CRT-reconstruct an integer in ``[0, Q)`` from its residues."""
        if len(residues) != len(self.moduli):
            raise ValueError("residue count does not match basis size")
        total = 0
        for residue, comp, inv, q in zip(
            residues, self._crt_complements, self._crt_inverses, self.moduli
        ):
            total += (residue % q) * inv % q * comp
        return total % self.product

    def to_residues(self, value: int) -> List[int]:
        """Residues of an integer with respect to every modulus in the basis."""
        return [value % q for q in self.moduli]


class RNSPolynomial:
    """A polynomial in R_Q stored limb-wise over an :class:`RNSBasis`."""

    __slots__ = ("ring_degree", "basis", "limbs")

    def __init__(self, ring_degree: int, basis: RNSBasis, limbs: Sequence[Polynomial] | None = None):
        self.ring_degree = ring_degree
        self.basis = basis
        if limbs is None:
            self.limbs = [Polynomial.zero(ring_degree, q) for q in basis]
        else:
            limbs = list(limbs)
            if len(limbs) != len(basis):
                raise ValueError("limb count does not match basis size")
            for limb, q in zip(limbs, basis):
                if limb.modulus != q or limb.ring_degree != ring_degree:
                    raise ValueError("limb does not match basis modulus / ring degree")
            self.limbs = limbs

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_integer_coefficients(
        cls, ring_degree: int, basis: RNSBasis, coefficients: Sequence[int]
    ) -> "RNSPolynomial":
        """Decompose big-integer coefficients into residue limbs."""
        limbs = [
            Polynomial(ring_degree, q, [int(c) % q for c in coefficients]) for q in basis
        ]
        return cls(ring_degree, basis, limbs)

    @classmethod
    def from_polynomial(cls, poly: Polynomial, basis: RNSBasis) -> "RNSPolynomial":
        """Lift a single-modulus polynomial into an RNS basis (centred lift)."""
        centred = poly.centered_coefficients()
        limbs = [Polynomial(poly.ring_degree, q, [c % q for c in centred]) for q in basis]
        return cls(poly.ring_degree, basis, limbs)

    def to_integer_coefficients(self) -> List[int]:
        """CRT-reconstruct the big-integer coefficients in ``[0, Q)``."""
        result = []
        for idx in range(self.ring_degree):
            residues = [limb.coefficients[idx] for limb in self.limbs]
            result.append(self.basis.reconstruct(residues))
        return result

    def to_polynomial(self) -> Polynomial:
        """Single big-modulus polynomial with modulus ``Q`` (CRT reconstruction)."""
        return Polynomial(self.ring_degree, self.basis.product, self.to_integer_coefficients())

    # -- arithmetic -------------------------------------------------------------
    def _check_compatible(self, other: "RNSPolynomial") -> None:
        if self.basis != other.basis or self.ring_degree != other.ring_degree:
            raise ValueError("RNS polynomials live in different rings")

    def __add__(self, other: "RNSPolynomial") -> "RNSPolynomial":
        self._check_compatible(other)
        return RNSPolynomial(
            self.ring_degree,
            self.basis,
            [a + b for a, b in zip(self.limbs, other.limbs)],
        )

    def __sub__(self, other: "RNSPolynomial") -> "RNSPolynomial":
        self._check_compatible(other)
        return RNSPolynomial(
            self.ring_degree,
            self.basis,
            [a - b for a, b in zip(self.limbs, other.limbs)],
        )

    def __neg__(self) -> "RNSPolynomial":
        return RNSPolynomial(self.ring_degree, self.basis, [-a for a in self.limbs])

    def __mul__(self, other: "RNSPolynomial | int") -> "RNSPolynomial":
        if isinstance(other, int):
            return RNSPolynomial(
                self.ring_degree, self.basis, [limb * other for limb in self.limbs]
            )
        self._check_compatible(other)
        return RNSPolynomial(
            self.ring_degree,
            self.basis,
            [a * b for a, b in zip(self.limbs, other.limbs)],
        )

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RNSPolynomial):
            return NotImplemented
        return (
            self.ring_degree == other.ring_degree
            and self.basis == other.basis
            and self.limbs == other.limbs
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"RNSPolynomial(N={self.ring_degree}, limbs={len(self.limbs)})"

    # -- level management --------------------------------------------------------
    @property
    def level(self) -> int:
        """Number of limbs minus one (CKKS level convention)."""
        return len(self.limbs) - 1

    def drop_last_limb(self) -> "RNSPolynomial":
        """Remove the last RNS limb (the modulus-reduction half of Rescale)."""
        if len(self.limbs) <= 1:
            raise ValueError("cannot drop the last remaining limb")
        new_basis = self.basis.subset(len(self.limbs) - 1)
        return RNSPolynomial(self.ring_degree, new_basis, self.limbs[:-1])

    def rescale(self) -> "RNSPolynomial":
        """Exact RNS rescale: divide by the last modulus ``q_l`` and round.

        Implements the standard RNS trick
        ``x_i' = (x_i - x_l) * q_l^{-1} mod q_i`` for every remaining limb.
        """
        if len(self.limbs) <= 1:
            raise ValueError("cannot rescale a polynomial with a single limb")
        backend = active_backend()
        last = self.limbs[-1]
        q_last = last.modulus
        new_limbs = []
        for limb in self.limbs[:-1]:
            q_i = limb.modulus
            inv = mod_inverse(q_last % q_i, q_i)
            coeffs = backend.sub_scaled(
                limb.coefficients, last.coefficients, inv, q_i
            )
            new_limbs.append(Polynomial._from_reduced(self.ring_degree, q_i, coeffs))
        return RNSPolynomial(
            self.ring_degree, self.basis.subset(len(self.limbs) - 1), new_limbs
        )


def exact_basis_conversion(
    poly: RNSPolynomial, target_basis: RNSBasis
) -> RNSPolynomial:
    """Exact (CRT-reconstructing) conversion of ``poly`` into ``target_basis``.

    Used as the reference implementation against which the fast (approximate)
    conversion is property-tested.
    """
    source_product = poly.basis.product
    coeffs = poly.to_integer_coefficients()
    # Centre the value in (-Q/2, Q/2] before reducing into the new basis so
    # that negative values survive the conversion.
    centred = [c - source_product if c > source_product // 2 else c for c in coeffs]
    limbs = [
        Polynomial(poly.ring_degree, q, [c % q for c in centred]) for q in target_basis
    ]
    return RNSPolynomial(poly.ring_degree, target_basis, limbs)


def fast_basis_conversion(
    poly: RNSPolynomial, target_basis: RNSBasis
) -> RNSPolynomial:
    """Fast base conversion (the **BConv** kernel).

    Computes, limb-parallel and without big-integer reconstruction,

        y_j = sum_i [ x_i * (Q/q_i)^{-1} mod q_i ] * (Q/q_i)  mod p_j

    for every target modulus ``p_j``.  This is the HPS-style approximate
    conversion: the result may differ from the exact conversion by a small
    multiple of ``Q`` (at most ``len(source)`` times), which downstream
    operations absorb as noise — exactly the behaviour the scheme expects.

    The arithmetic structure (an ``alpha x N`` by ``l x alpha`` matrix product)
    is what the hardware model maps onto the systolic side of the CUs.
    """
    backend = active_backend()
    source = poly.basis
    n = poly.ring_degree
    # Per-limb scaled residues: x_i * (Q/q_i)^{-1} mod q_i.
    scaled = []
    for limb, inv in zip(poly.limbs, source._crt_inverses):
        q_i = limb.modulus
        scaled.append(backend.scalar_mul(limb.coefficients, inv, q_i))
    target_limbs = []
    for p_j in target_basis:
        comp_mod_p = [comp % p_j for comp in source._crt_complements]
        coeffs = backend.weighted_sum(scaled, comp_mod_p, p_j)
        target_limbs.append(Polynomial._from_reduced(n, p_j, coeffs))
    return RNSPolynomial(n, target_basis, target_limbs)
