"""Residue Number System (RNS) representation and fast basis conversion.

CKKS with large coefficient moduli (hundreds to >1000 bits) is implemented in
practice on a chain of small word-sized primes (Cheon-Han-Kim-Kim-Song RNS
variant).  This module provides:

* :class:`RNSBasis` — an ordered set of pairwise-coprime NTT-friendly primes
  with the CRT constants needed for reconstruction (hashable, so basis pairs
  key the precomputed conversion tables),
* :class:`RNSPolynomial` — a polynomial held limb-wise over an
  :class:`RNSBasis`, supporting element-wise arithmetic, NTT-domain
  conversion, and limb dropping (Rescale),
* :func:`fast_basis_conversion` — the **BConv** kernel of the paper: the
  approximate base-conversion (HPS/BEHZ style) used by hybrid keyswitch to
  move a polynomial from basis ``C`` to basis ``D`` without reconstructing the
  big integer.

Packed limb-major execution
---------------------------
An :class:`RNSPolynomial` stores its residues as a backend *limb store*: all
``L`` limbs packed limb-major (one row per modulus — a single ``(L, N)``
uint64 matrix on the numpy backend, a list of coefficient rows on the python
backend).  Every RNS-level operation — add/sub/neg, limb-wise NTT
multiplication, Rescale, BConv, automorphisms — is a *single* backend
dispatch over the whole stack instead of a Python loop over limbs.  The
``limbs`` view (a list of per-limb :class:`~repro.fhe.polynomial.Polynomial`
objects) is materialized lazily for code that wants per-limb access; both
representations describe the same reduced residues, and the pure-python
backend executes the packed entry points as per-limb loops over the original
scalar kernels, keeping it the bit-exact golden reference.

The element counts of these functions are what the kernel-level cost model in
:mod:`repro.kernels.opcounts` charges for BConv; the functional versions here
are used by the CKKS scheme implementation and its tests.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, List, Sequence

from .backend import BConvPlan, active_backend
from .modmath import mod_inverse
from .polynomial import (
    Polynomial,
    _ntt_context,
    automorphism_spec,
    galois_eval_spec,
    monomial_spec,
)

__all__ = ["RNSBasis", "RNSPolynomial", "fast_basis_conversion", "exact_basis_conversion"]


class RNSBasis:
    """An ordered basis of pairwise-coprime primes ``q_0, ..., q_{k-1}``.

    Instances are immutable by convention and hashable (by their modulus
    tuple), so ``(source, target)`` basis pairs can key precomputed
    conversion tables.
    """

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(q) for q in moduli]
        if not moduli:
            raise ValueError("an RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        for i, a in enumerate(moduli):
            for b in moduli[i + 1:]:
                if math.gcd(a, b) != 1:
                    raise ValueError(f"moduli {a} and {b} are not coprime")
        self.moduli = list(moduli)
        self.product = math.prod(moduli)
        # CRT reconstruction constants: Q_i = Q / q_i and Q_i^{-1} mod q_i.
        self._crt_complements = [self.product // q for q in moduli]
        self._crt_inverses = [
            mod_inverse(comp % q, q) for comp, q in zip(self._crt_complements, moduli)
        ]

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RNSBasis):
            return NotImplemented
        return self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(tuple(self.moduli))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RNSBasis({self.moduli})"

    def subset(self, count: int) -> "RNSBasis":
        """The basis formed by the first ``count`` moduli (used by Rescale)."""
        if not 1 <= count <= len(self.moduli):
            raise ValueError(f"cannot take {count} moduli from a basis of {len(self.moduli)}")
        return _basis_subset(self, count)

    def extend(self, extra: Iterable[int]) -> "RNSBasis":
        """The basis formed by appending ``extra`` moduli (used by keyswitch)."""
        return RNSBasis(self.moduli + [int(q) for q in extra])

    def reconstruct(self, residues: Sequence[int]) -> int:
        """CRT-reconstruct an integer in ``[0, Q)`` from its residues."""
        if len(residues) != len(self.moduli):
            raise ValueError("residue count does not match basis size")
        total = 0
        for residue, comp, inv, q in zip(
            residues, self._crt_complements, self._crt_inverses, self.moduli
        ):
            total += (residue % q) * inv % q * comp
        return total % self.product

    def to_residues(self, value: int) -> List[int]:
        """Residues of an integer with respect to every modulus in the basis."""
        return [value % q for q in self.moduli]


@lru_cache(maxsize=1024)
def _basis_subset(basis: RNSBasis, count: int) -> RNSBasis:
    """Prefix bases recur on every Rescale/ModDown — build each one once."""
    return RNSBasis(basis.moduli[:count])


@lru_cache(maxsize=1024)
def _rescale_constants(basis: RNSBasis) -> tuple:
    """``q_last^{-1} mod q_i`` for every remaining limb of ``basis``."""
    q_last = basis.moduli[-1]
    return tuple(mod_inverse(q_last % q, q) for q in basis.moduli[:-1])


@lru_cache(maxsize=1024)
def _bconv_plan(source: RNSBasis, target: RNSBasis) -> BConvPlan:
    """Precomputed BConv tables for one ``(source, target)`` basis pair.

    Keying on the basis pair (RNSBasis is hashable) means the complement
    residues ``(Q/q_i) mod p_j`` are computed once instead of on every
    :func:`fast_basis_conversion` call.
    """
    weights = [
        [comp % p for comp in source._crt_complements] for p in target.moduli
    ]
    return BConvPlan(source.moduli, target.moduli, source._crt_inverses, weights)


def _limb_contexts(ring_degree: int, basis: RNSBasis):
    """Per-limb NTT contexts, or ``None`` if any modulus is not NTT-friendly."""
    contexts = []
    for q in basis.moduli:
        context = _ntt_context(ring_degree, q)
        if context is None:
            return None
        contexts.append(context)
    return contexts


class RNSPolynomial:
    """A polynomial in R_Q stored limb-major over an :class:`RNSBasis`.

    The residues live in a packed backend *limb store* (``_rows``); a list of
    per-limb :class:`Polynomial` views (``_limbs``) is materialized lazily on
    first access to :attr:`limbs`.  At least one representation is always
    present, and both are immutable by convention.

    ``domain`` records which representation the rows hold: ``"coeff"``
    (coefficients — the default everywhere) or ``"eval"`` (the per-limb
    forward NTT values).  NTT-resident execution keeps ciphertexts in the
    evaluation domain between operations: pointwise products, additions,
    automorphisms (a pure slot gather there) and even Rescale run directly
    on evaluation values, and :meth:`to_coeff`/:meth:`to_eval` convert only
    at encode/decrypt/keyswitch-digit boundaries.  Both domains describe the
    same ring element, and every cross-domain round trip is bit-exact.
    """

    __slots__ = ("ring_degree", "basis", "domain", "_limbs", "_rows")

    def __init__(self, ring_degree: int, basis: RNSBasis, limbs: Sequence[Polynomial] | None = None):
        self.ring_degree = ring_degree
        self.basis = basis
        self.domain = "coeff"
        self._rows = None
        if limbs is None:
            self._limbs = None
            self._rows = active_backend().limbs_zero(
                len(basis), ring_degree, tuple(basis.moduli)
            )
        else:
            limbs = list(limbs)
            if len(limbs) != len(basis):
                raise ValueError("limb count does not match basis size")
            for limb, q in zip(limbs, basis):
                if limb.modulus != q or limb.ring_degree != ring_degree:
                    raise ValueError("limb does not match basis modulus / ring degree")
            self._limbs = limbs

    # -- representations ------------------------------------------------------
    @classmethod
    def _from_store(cls, ring_degree: int, basis: RNSBasis, store,
                    domain: str = "coeff") -> "RNSPolynomial":
        """Adopt a backend limb store whose rows are already reduced."""
        poly = object.__new__(cls)
        poly.ring_degree = ring_degree
        poly.basis = basis
        poly.domain = domain
        poly._rows = store
        poly._limbs = None
        return poly

    # -- domain conversion -----------------------------------------------------
    def to_eval(self) -> "RNSPolynomial":
        """The same ring element in the evaluation (NTT) domain.

        One batched forward-NTT dispatch over the whole limb stack; a no-op
        when already evaluation-resident.  Requires every modulus of the
        basis to be NTT-friendly.
        """
        if self.domain == "eval":
            return self
        contexts = _limb_contexts(self.ring_degree, self.basis)
        if contexts is None:
            raise ValueError(
                "basis contains non-NTT-friendly moduli; cannot convert to the "
                "evaluation domain"
            )
        store = active_backend().batched_ntt(contexts, self.store())
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis, store, domain="eval"
        )

    def to_coeff(self) -> "RNSPolynomial":
        """The same ring element in the coefficient domain (inverse of
        :meth:`to_eval`; a no-op when already coefficient-resident)."""
        if self.domain == "coeff":
            return self
        contexts = _limb_contexts(self.ring_degree, self.basis)
        store = active_backend().batched_intt(contexts, self.store())
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis, store, domain="coeff"
        )

    def store(self):
        """The packed limb-major backend store (packing lazily on first use)."""
        if self._rows is None:
            self._rows = active_backend().pack_limbs(
                [limb.coefficients for limb in self._limbs], tuple(self.basis.moduli)
            )
        return self._rows

    @property
    def limbs(self) -> List[Polynomial]:
        """Per-limb :class:`Polynomial` views (materialized lazily).

        Limb views are *coefficient* polynomials, so an evaluation-resident
        polynomial converts first (read-only and exact — this accessor is a
        decode boundary of the domain-residency convention).
        """
        if self.domain != "coeff":
            return self.to_coeff().limbs
        if self._limbs is None:
            rows = active_backend().unpack_limbs(self._rows)
            self._limbs = [
                Polynomial._from_reduced(self.ring_degree, q, row)
                for q, row in zip(self.basis.moduli, rows)
            ]
        return self._limbs

    def coefficient_rows(self) -> List[List[int]]:
        """The *coefficient* residue rows as plain python-int lists (limb-major).

        An evaluation-resident polynomial converts first (exact), like every
        other decode accessor — the name promises coefficients.  For the raw
        current-domain rows use ``store()`` with
        :meth:`~repro.fhe.backend.ArithmeticBackend.store_rows`.
        """
        if self.domain != "coeff":
            return self.to_coeff().coefficient_rows()
        if self._limbs is not None:
            return [limb.coefficients for limb in self._limbs]
        return active_backend().store_rows(self._rows)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_integer_coefficients(
        cls, ring_degree: int, basis: RNSBasis, coefficients: Sequence[int]
    ) -> "RNSPolynomial":
        """Decompose big-integer coefficients into residue limbs."""
        limbs = [
            Polynomial(ring_degree, q, [int(c) % q for c in coefficients]) for q in basis
        ]
        return cls(ring_degree, basis, limbs)

    @classmethod
    def from_polynomial(cls, poly: Polynomial, basis: RNSBasis) -> "RNSPolynomial":
        """Lift a single-modulus polynomial into an RNS basis (centred lift)."""
        centred = poly.centered_coefficients()
        limbs = [Polynomial(poly.ring_degree, q, [c % q for c in centred]) for q in basis]
        return cls(poly.ring_degree, basis, limbs)

    def to_integer_coefficients(self) -> List[int]:
        """CRT-reconstruct the big-integer coefficients in ``[0, Q)``.

        An evaluation-resident polynomial converts first (exact): asking for
        integer coefficients is a decode boundary.
        """
        if self.domain != "coeff":
            return self.to_coeff().to_integer_coefficients()
        rows = self.coefficient_rows()
        result = []
        for idx in range(self.ring_degree):
            residues = [row[idx] for row in rows]
            result.append(self.basis.reconstruct(residues))
        return result

    def to_polynomial(self) -> Polynomial:
        """Single big-modulus polynomial with modulus ``Q`` (CRT reconstruction)."""
        return Polynomial(self.ring_degree, self.basis.product, self.to_integer_coefficients())

    # -- arithmetic -------------------------------------------------------------
    def _check_compatible(self, other: "RNSPolynomial") -> None:
        if self.basis != other.basis or self.ring_degree != other.ring_degree:
            raise ValueError("RNS polynomials live in different rings")
        if self.domain != other.domain:
            raise ValueError(
                f"RNS polynomial domain mismatch ({self.domain} vs {other.domain}); "
                "align with to_eval()/to_coeff() first"
            )

    def __add__(self, other: "RNSPolynomial") -> "RNSPolynomial":
        self._check_compatible(other)
        store = active_backend().limbs_add(
            self.store(), other.store(), tuple(self.basis.moduli)
        )
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis, store, domain=self.domain
        )

    def __sub__(self, other: "RNSPolynomial") -> "RNSPolynomial":
        self._check_compatible(other)
        store = active_backend().limbs_sub(
            self.store(), other.store(), tuple(self.basis.moduli)
        )
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis, store, domain=self.domain
        )

    def __neg__(self) -> "RNSPolynomial":
        store = active_backend().limbs_neg(self.store(), tuple(self.basis.moduli))
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis, store, domain=self.domain
        )

    def __mul__(self, other: "RNSPolynomial | int") -> "RNSPolynomial":
        moduli = tuple(self.basis.moduli)
        if isinstance(other, int):
            store = active_backend().limbs_scalar_mul(
                self.store(), [other % q for q in moduli], moduli
            )
            return RNSPolynomial._from_store(
                self.ring_degree, self.basis, store, domain=self.domain
            )
        self._check_compatible(other)
        if self.domain == "eval":
            # Evaluation-resident product: one pointwise dispatch, no NTTs.
            store = active_backend().limbs_mul(self.store(), other.store(), moduli)
            return RNSPolynomial._from_store(
                self.ring_degree, self.basis, store, domain="eval"
            )
        contexts = _limb_contexts(self.ring_degree, self.basis)
        if contexts is None:
            # Non-NTT-friendly moduli: per-limb schoolbook via Polynomial.
            return RNSPolynomial(
                self.ring_degree,
                self.basis,
                [a * b for a, b in zip(self.limbs, other.limbs)],
            )
        store = active_backend().limbs_convolution(
            contexts, self.store(), other.store()
        )
        return RNSPolynomial._from_store(self.ring_degree, self.basis, store)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RNSPolynomial):
            return NotImplemented
        return (
            self.ring_degree == other.ring_degree
            and self.basis == other.basis
            and self.domain == other.domain
            and self.coefficient_rows() == other.coefficient_rows()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"RNSPolynomial(N={self.ring_degree}, limbs={len(self.basis)})"

    # -- structural transforms ----------------------------------------------------
    def automorphism(self, galois_element: int) -> "RNSPolynomial":
        """Apply ``X -> X^g`` to every limb (one batched permutation dispatch).

        In the coefficient domain this is the usual signed coefficient
        permutation; in the evaluation domain it is a *sign-free* slot gather
        (the automorphism permutes the odd psi-powers the NTT evaluates at),
        and the two paths are bit-identical after conversion.
        """
        g = galois_element % (2 * self.ring_degree)
        if self.domain == "eval":
            spec = galois_eval_spec(self.ring_degree, g)
            store = active_backend().limbs_gather(self.store(), spec)
            return RNSPolynomial._from_store(
                self.ring_degree, self.basis, store, domain="eval"
            )
        spec = automorphism_spec(self.ring_degree, g)
        store = active_backend().limbs_signed_permute(
            self.store(), tuple(self.basis.moduli), spec
        )
        return RNSPolynomial._from_store(self.ring_degree, self.basis, store)

    def multiply_by_monomial(self, degree: int) -> "RNSPolynomial":
        """Multiply every limb by ``X^degree`` (one batched signed permutation)."""
        if self.domain != "coeff":
            raise ValueError(
                "monomial multiplication requires the coefficient domain"
            )
        spec = monomial_spec(self.ring_degree, degree % (2 * self.ring_degree))
        store = active_backend().limbs_signed_permute(
            self.store(), tuple(self.basis.moduli), spec
        )
        return RNSPolynomial._from_store(self.ring_degree, self.basis, store)

    # -- level management --------------------------------------------------------
    @property
    def level(self) -> int:
        """Number of limbs minus one (CKKS level convention)."""
        return len(self.basis) - 1

    def keep_limbs(self, count: int) -> "RNSPolynomial":
        """The polynomial restricted to its first ``count`` limbs."""
        if not 1 <= count <= len(self.basis):
            raise ValueError(
                f"cannot keep {count} limbs of a {len(self.basis)}-limb polynomial"
            )
        if count == len(self.basis):
            return self
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis.subset(count), self.store()[:count],
            domain=self.domain,
        )

    def limb_slice(self, start: int, stop: int, basis: "RNSBasis | None" = None) -> "RNSPolynomial":
        """The polynomial formed by limbs ``[start, stop)`` (keyswitch digits)."""
        if basis is None:
            basis = RNSBasis(self.basis.moduli[start:stop])
        return RNSPolynomial._from_store(
            self.ring_degree, basis, self.store()[start:stop], domain=self.domain
        )

    def drop_last_limb(self) -> "RNSPolynomial":
        """Remove the last RNS limb (the modulus-reduction half of Rescale)."""
        if len(self.basis) <= 1:
            raise ValueError("cannot drop the last remaining limb")
        return self.keep_limbs(len(self.basis) - 1)

    def rescale(self) -> "RNSPolynomial":
        """Exact RNS rescale: divide by the last modulus ``q_l`` and round.

        Implements the standard RNS trick
        ``x_i' = (x_i - x_l) * q_l^{-1} mod q_i`` for every remaining limb —
        one fused ``batched_sub_scaled`` dispatch over the whole limb stack.

        Evaluation-resident polynomials rescale without leaving the NTT
        domain: only the *dropped* limb is inverse-transformed, re-reduced
        under each remaining modulus and forward-transformed there (the
        exact structure the hardware cost model charges for Rescale —
        iNTT of the dropped limb plus a broadcast NTT), then the same fused
        subtract-and-scale runs on the evaluation values.  Both paths are
        bit-identical after conversion (the NTT is linear).
        """
        if len(self.basis) <= 1:
            raise ValueError("cannot rescale a polynomial with a single limb")
        backend = active_backend()
        store = self.store()
        count = len(self.basis) - 1
        q_last = self.basis.moduli[-1]
        remaining = tuple(self.basis.moduli[:count])
        if self.domain == "eval":
            contexts = _limb_contexts(self.ring_degree, self.basis)
            last_coeff = backend.batched_intt(contexts[count:], store[count:])
            spread = backend.replicate_row(last_coeff[0], remaining)
            dropped = backend.batched_ntt(contexts[:count], spread)
        else:
            dropped = store[count]
        new_store = backend.batched_sub_scaled(
            store[:count],
            dropped,
            _rescale_constants(self.basis),
            remaining,
            b_modulus=q_last if self.domain == "coeff" else None,
        )
        return RNSPolynomial._from_store(
            self.ring_degree, self.basis.subset(count), new_store,
            domain=self.domain,
        )


def exact_basis_conversion(
    poly: RNSPolynomial, target_basis: RNSBasis
) -> RNSPolynomial:
    """Exact (CRT-reconstructing) conversion of ``poly`` into ``target_basis``.

    Used as the reference implementation against which the fast (approximate)
    conversion is property-tested.
    """
    source_product = poly.basis.product
    coeffs = poly.to_integer_coefficients()
    # Centre the value in (-Q/2, Q/2] before reducing into the new basis so
    # that negative values survive the conversion.
    centred = [c - source_product if c > source_product // 2 else c for c in coeffs]
    limbs = [
        Polynomial(poly.ring_degree, q, [c % q for c in centred]) for q in target_basis
    ]
    return RNSPolynomial(poly.ring_degree, target_basis, limbs)


def fast_basis_conversion(
    poly: RNSPolynomial, target_basis: RNSBasis
) -> RNSPolynomial:
    """Fast base conversion (the **BConv** kernel).

    Computes, limb-parallel and without big-integer reconstruction,

        y_j = sum_i [ x_i * (Q/q_i)^{-1} mod q_i ] * (Q/q_i)  mod p_j

    for every target modulus ``p_j``.  This is the HPS-style approximate
    conversion: the result may differ from the exact conversion by a small
    multiple of ``Q`` (at most ``len(source)`` times), which downstream
    operations absorb as noise — exactly the behaviour the scheme expects.

    The arithmetic structure (an ``alpha x N`` by ``l x alpha`` matrix product)
    is what the hardware model maps onto the systolic side of the CUs; the
    software expresses it the same way, as one ``bconv_matmul`` backend
    dispatch over precomputed per-basis-pair tables.
    """
    if poly.domain != "coeff":
        # Evaluation points differ per modulus, so BConv on eval rows would
        # be silently wrong — the hoist phase converts before decomposing.
        raise ValueError("fast basis conversion requires a coefficient-resident input")
    plan = _bconv_plan(poly.basis, target_basis)
    store = active_backend().bconv_matmul(poly.store(), plan)
    return RNSPolynomial._from_store(poly.ring_degree, target_basis, store)
