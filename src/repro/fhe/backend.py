"""Pluggable vectorized arithmetic backends for the FHE layer.

Every hot kernel of the functional FHE substrate — element-wise modular
arithmetic, the negacyclic NTT, batched cyclic NTTs (four-step phases), and
the RNS compose/decompose primitives — is expressed against the small
:class:`ArithmeticBackend` interface defined here.  Two implementations are
registered:

* ``"python"`` — the exact pure-Python reference (arbitrary-precision ints,
  the original seed implementation).  It is the *golden* backend: every other
  backend must agree with it bit-for-bit, which the differential suite in
  ``tests/test_backend_parity.py`` enforces.
* ``"numpy"`` — vectorized ``uint64`` arithmetic.  Products of operands up to
  32 bits are computed directly in a 64-bit word; for the 33..62-bit primes
  of :mod:`repro.fhe.params` the backend switches to Montgomery reduction
  built on an emulated 64x64 -> 128-bit multiply (32-bit limb splitting), so
  results stay exact with no overflow for every modulus the parameter sets
  produce (<= 61 bits).  Moduli that do not fit this scheme (>= 2^62, or
  even moduli above 2^32) transparently fall back to the python backend, as
  do tiny vectors where conversion overhead would dominate.

Selection
---------
The process-wide *active* backend is resolved, in order, from:

1. an explicit :func:`set_active_backend` / :func:`use_backend` call,
2. the ``REPRO_BACKEND`` environment variable (``python`` or ``numpy``),
3. the default: ``numpy`` when importable, else ``python``.

NumPy is an optional dependency: requesting the numpy backend on a machine
without it degrades gracefully to the python backend (with a warning).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from functools import lru_cache
from typing import Dict, Iterator, List, Sequence

try:  # NumPy is optional -- the python backend has no dependencies at all.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "ArithmeticBackend",
    "PythonBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "active_backend",
    "set_active_backend",
    "use_backend",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted when no backend has been selected explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Largest modulus bit-length the numpy backend handles without falling back.
NUMPY_MAX_MODULUS_BITS = 62


@lru_cache(maxsize=64)
def _bit_reverse_indices(length: int) -> tuple:
    """Bit-reversal permutation of ``range(length)`` (length a power of two)."""
    if length & (length - 1):
        raise ValueError("length must be a power of two")
    bits = length.bit_length() - 1
    result = [0] * length
    for i in range(length):
        rev = 0
        value = i
        for _ in range(bits):
            rev = (rev << 1) | (value & 1)
            value >>= 1
        result[i] = rev
    return tuple(result)


class ArithmeticBackend:
    """Interface every arithmetic backend implements.

    All methods are *exact*: they take Python-int sequences (already reduced
    or not — reduction modulo ``q`` is part of the contract), return fresh
    Python lists reduced into ``[0, q)``, and never alias their inputs.  The
    NTT entry points receive the :class:`~repro.fhe.ntt.NTTContext` (duck
    typed — only its precomputed tables are read), so backends can cache
    their own derived tables per ``(N, q)`` pair.
    """

    name: str = "abstract"

    # -- element-wise modular vector ops ----------------------------------
    def add(self, a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def sub(self, a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def neg(self, a: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def mul(self, a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def scalar_mul(self, a: Sequence[int], scalar: int, q: int) -> List[int]:
        raise NotImplementedError

    def sub_scaled(self, a: Sequence[int], b: Sequence[int], scalar: int, q: int) -> List[int]:
        """``(a - b) * scalar mod q`` — the fused Rescale / ModDown kernel."""
        raise NotImplementedError

    def weighted_sum(self, rows: Sequence[Sequence[int]], weights: Sequence[int], q: int) -> List[int]:
        """``sum_i rows[i] * weights[i] mod q`` — the BConv accumulation kernel."""
        raise NotImplementedError

    # -- NTT kernels -------------------------------------------------------
    def ntt_forward(self, context, coefficients: Sequence[int]) -> List[int]:
        raise NotImplementedError

    def ntt_inverse(self, context, values: Sequence[int]) -> List[int]:
        raise NotImplementedError

    def negacyclic_convolution(self, context, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Multiply two polynomials in Z_q[X]/(X^N+1) via the NTT."""
        fa = self.ntt_forward(context, a)
        fb = self.ntt_forward(context, b)
        return self.ntt_inverse(context, self.mul(fa, fb, context.modulus))

    def cyclic_ntt_batch(self, matrix: Sequence[Sequence[int]], omega: int, q: int) -> List[List[int]]:
        """Independent in-order cyclic NTTs of every row of ``matrix``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"

    @staticmethod
    def _check_length(context, sequence: Sequence[int]) -> None:
        if len(sequence) != context.ring_degree:
            raise ValueError(
                f"expected {context.ring_degree} elements, got {len(sequence)}"
            )


class PythonBackend(ArithmeticBackend):
    """Exact pure-Python reference backend (the seed implementation)."""

    name = "python"

    # -- element-wise ------------------------------------------------------
    def add(self, a, b, q):
        return [(x + y) % q for x, y in zip(a, b)]

    def sub(self, a, b, q):
        return [(x - y) % q for x, y in zip(a, b)]

    def neg(self, a, q):
        return [(-x) % q for x in a]

    def mul(self, a, b, q):
        return [(int(x) * int(y)) % q for x, y in zip(a, b)]

    def scalar_mul(self, a, scalar, q):
        scalar %= q
        return [(x * scalar) % q for x in a]

    def sub_scaled(self, a, b, scalar, q):
        scalar %= q
        return [((x - y) * scalar) % q for x, y in zip(a, b)]

    def weighted_sum(self, rows, weights, q):
        if len(rows) != len(weights):
            raise ValueError("rows and weights must have equal length")
        if not rows:
            raise ValueError("weighted_sum needs at least one row")
        length = len(rows[0])
        result = [0] * length
        for row, weight in zip(rows, weights):
            weight %= q
            for idx in range(length):
                result[idx] = (result[idx] + row[idx] * weight) % q
        return result

    # -- NTT ---------------------------------------------------------------
    def ntt_forward(self, context, coefficients):
        self._check_length(context, coefficients)
        n = context.ring_degree
        q = context.modulus
        values = [int(c) % q for c in coefficients]
        twiddles = context._fwd_twiddles
        # Cooley-Tukey, decimation in time, merged psi twisting (Longa-Naehrig).
        t = n
        m = 1
        while m < n:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                j2 = j1 + t
                s = twiddles[m + i]
                for j in range(j1, j2):
                    u = values[j]
                    v = (values[j + t] * s) % q
                    values[j] = (u + v) % q
                    values[j + t] = (u - v) % q
            m *= 2
        return values

    def ntt_inverse(self, context, values):
        self._check_length(context, values)
        n = context.ring_degree
        q = context.modulus
        coeffs = [int(v) % q for v in values]
        twiddles = context._inv_twiddles
        # Gentleman-Sande, decimation in frequency, merged psi^-1 twisting.
        t = 1
        m = n
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                j2 = j1 + t
                s = twiddles[h + i]
                for j in range(j1, j2):
                    u = coeffs[j]
                    v = coeffs[j + t]
                    coeffs[j] = (u + v) % q
                    coeffs[j + t] = ((u - v) * s) % q
                j1 += 2 * t
            t *= 2
            m = h
        n_inv = context.n_inv
        return [(c * n_inv) % q for c in coeffs]

    def cyclic_ntt_batch(self, matrix, omega, q):
        return [self._cyclic_ntt(list(row), omega, q) for row in matrix]

    @staticmethod
    def _cyclic_ntt(values: List[int], omega: int, modulus: int) -> List[int]:
        """In-order iterative radix-2 cyclic NTT of a power-of-two length."""
        n = len(values)
        order = _bit_reverse_indices(n)
        data = [values[order[i]] % modulus for i in range(n)]
        length = 2
        while length <= n:
            w_len = pow(omega, n // length, modulus)
            for start in range(0, n, length):
                w = 1
                half = length // 2
                for j in range(start, start + half):
                    u = data[j]
                    v = (data[j + half] * w) % modulus
                    data[j] = (u + v) % modulus
                    data[j + half] = (u - v) % modulus
                    w = (w * w_len) % modulus
            length *= 2
        return data


# ---------------------------------------------------------------------------
# NumPy backend: vectorized uint64 with Montgomery reduction
# ---------------------------------------------------------------------------

if _np is not None:
    _M32 = _np.uint64(0xFFFFFFFF)
    _S32 = _np.uint64(32)

    def _mul64(a, b):
        """Emulated full 64x64 -> 128-bit multiply: returns ``(hi, lo)``.

        Operands are uint64 arrays (or scalars); the product is assembled
        from four 32x32 partial products, each of which fits a 64-bit word.
        """
        a_lo = a & _M32
        a_hi = a >> _S32
        b_lo = b & _M32
        b_hi = b >> _S32
        lo_lo = a_lo * b_lo
        mid1 = a_hi * b_lo
        mid2 = a_lo * b_hi
        cross = (lo_lo >> _S32) + (mid1 & _M32) + (mid2 & _M32)
        lo = (cross << _S32) | (lo_lo & _M32)
        hi = (a_hi * b_hi) + (mid1 >> _S32) + (mid2 >> _S32) + (cross >> _S32)
        return hi, lo

    class _Montgomery:
        """Montgomery arithmetic mod one odd modulus ``q < 2^62`` (R = 2^64)."""

        __slots__ = ("q", "q_u", "neg_q_inv", "r2")

        def __init__(self, q: int):
            if q % 2 == 0 or q.bit_length() > NUMPY_MAX_MODULUS_BITS:
                raise ValueError(f"modulus {q} is not Montgomery-friendly")
            self.q = q
            self.q_u = _np.uint64(q)
            self.neg_q_inv = _np.uint64((-pow(q, -1, 1 << 64)) % (1 << 64))
            self.r2 = _np.uint64(pow(1 << 64, 2, q))

        def redc(self, hi, lo):
            """Montgomery reduction of a 128-bit value: ``(hi:lo) * 2^-64 mod q``."""
            m = lo * self.neg_q_inv                     # mod 2^64 (wraps)
            mq_hi, _mq_lo = _mul64(m, self.q_u)
            # lo + mq_lo == 0 mod 2^64 by construction; the carry out of that
            # addition is exactly 1 whenever lo != 0.
            t = hi + mq_hi + (lo != _np.uint64(0)).astype(_np.uint64)
            return _np.where(t >= self.q_u, t - self.q_u, t)

        def mont_mul(self, a, b):
            """``a * b * 2^-64 mod q`` for operands < q (Montgomery product)."""
            return self.redc(*_mul64(a, b))

        def to_mont(self, a):
            return self.mont_mul(a, self.r2)

        def from_mont(self, a):
            return self.redc(_np.zeros_like(a), a)

        def mulmod(self, a, b):
            """Plain ``a * b mod q`` for reduced operands (two reductions)."""
            return self.mont_mul(self.mont_mul(a, b), self.r2)

        def addmod(self, a, b):
            s = a + b
            return _np.where(s >= self.q_u, s - self.q_u, s)

        def submod(self, a, b):
            return _np.where(a >= b, a - b, a + (self.q_u - b))

    def _shoup_split(values: Sequence[int], q: int):
        """Twiddles plus their Shoup constants ``floor(w * 2^64 / q)``, pre-split
        into 32-bit halves so the hot loop skips two mask/shift ops."""
        w = _np.array(values, dtype=_np.uint64)
        shoup = [(int(v) << 64) // q for v in values]
        s_lo = _np.array([s & 0xFFFFFFFF for s in shoup], dtype=_np.uint64)
        s_hi = _np.array([s >> 32 for s in shoup], dtype=_np.uint64)
        return w, s_lo, s_hi

    def _shoup_mul_lazy(y, w, ws_lo, ws_hi, q_u):
        """``w * y mod q`` up to one extra ``q``: result in ``[0, 2q)``.

        ``w`` is the fixed operand with precomputed Shoup constant
        ``ws = floor(w * 2^64 / q)`` (split into ``ws_lo``/``ws_hi``); ``y``
        may be ANY uint64 value — the bound holds without preconditions,
        which is what lets the butterflies run lazily (Harvey-style).
        In-place ufuncs keep the temporary count down; this is the single
        hottest code path of the backend.
        """
        y_lo = y & _M32
        y_hi = y >> _S32
        mid1 = y_hi * ws_lo
        mid2 = y_lo * ws_hi
        cross = y_lo * ws_lo
        cross >>= _S32
        cross += mid1 & _M32
        cross += mid2 & _M32
        cross >>= _S32
        mid1 >>= _S32
        mid2 >>= _S32
        t = y_hi * ws_hi            # y_hi is full shape, so t is too
        t += mid1
        t += mid2
        t += cross
        t *= q_u
        result = y * w
        result -= t
        return result               # wraps mod 2^64; true value is < 2q

    class _NumpyNTTTables:
        """Shoup twiddle tables for one ``(N, q)`` pair (plain domain)."""

        __slots__ = (
            "q_u", "q2",
            "fwd_w", "fwd_s_lo", "fwd_s_hi",
            "inv_w", "inv_s_lo", "inv_s_hi",
            "n_inv_w", "n_inv_s_lo", "n_inv_s_hi",
            "r_w", "r_s_lo", "r_s_hi",
        )

        def __init__(self, context):
            q = context.modulus
            self.q_u = _np.uint64(q)
            self.q2 = _np.uint64(2 * q)
            self.fwd_w, self.fwd_s_lo, self.fwd_s_hi = _shoup_split(context._fwd_twiddles, q)
            self.inv_w, self.inv_s_lo, self.inv_s_hi = _shoup_split(context._inv_twiddles, q)
            n_inv_w, n_inv_s_lo, n_inv_s_hi = _shoup_split([context.n_inv], q)
            self.n_inv_w = n_inv_w[0]
            self.n_inv_s_lo = n_inv_s_lo[0]
            self.n_inv_s_hi = n_inv_s_hi[0]
            # R = 2^64 mod q: pre-scaling one convolution operand by R lets the
            # pointwise product exit the Montgomery domain in a single REDC.
            r_w, r_s_lo, r_s_hi = _shoup_split([(1 << 64) % q], q)
            self.r_w = r_w[0]
            self.r_s_lo = r_s_lo[0]
            self.r_s_hi = r_s_hi[0]


class NumpyBackend(ArithmeticBackend):
    """Vectorized uint64 backend (direct-word or Montgomery/Shoup reduction).

    ``min_vector_length`` / ``min_ntt_length`` tune the crossovers below
    which the python backend is used instead (list<->array round-trips
    dominate for tiny rings; measured break-even is ~512 elements for the
    element-wise ops and ~128 points for the transforms).  Set both to 0 to
    force the vectorized path everywhere (the parity tests do).
    """

    name = "numpy"

    def __init__(self, min_vector_length: int = 512, min_ntt_length: int = 128):
        if _np is None:  # pragma: no cover - guarded by get_backend
            raise RuntimeError("numpy is not available")
        self._fallback = PythonBackend()
        self.min_vector_length = min_vector_length
        self.min_ntt_length = min_ntt_length
        self._mont_cache: Dict[int, _Montgomery] = {}
        self._ntt_tables: Dict[tuple, _NumpyNTTTables] = {}
        self._cyclic_tables: Dict[tuple, list] = {}

    # -- modulus classification -------------------------------------------
    def _direct_ok(self, q: int) -> bool:
        """Products of reduced operands fit one 64-bit word."""
        return q <= (1 << 32)

    def _mont(self, q: int) -> "_Montgomery | None":
        if q % 2 == 0 or q.bit_length() > NUMPY_MAX_MODULUS_BITS:
            return None
        mont = self._mont_cache.get(q)
        if mont is None:
            mont = _Montgomery(q)
            self._mont_cache[q] = mont
        return mont

    def _linear_ok(self, q: int, *sequences) -> bool:
        """Whether add/sub/neg can run in uint64 for this modulus."""
        if q.bit_length() > NUMPY_MAX_MODULUS_BITS:
            return False
        return all(len(s) >= self.min_vector_length for s in sequences)

    def _mul_ok(self, q: int, *sequences) -> bool:
        if not self._linear_ok(q, *sequences):
            return False
        return self._direct_ok(q) or self._mont(q) is not None

    @staticmethod
    def _to_array(values: Sequence[int], q: int):
        """uint64 array of ``values`` reduced into ``[0, q)`` (exact)."""
        try:
            arr = _np.array(values, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            arr = _np.array([int(v) % q for v in values], dtype=_np.uint64)
            return arr
        q_u = _np.uint64(q)
        if (arr >= q_u).any():
            arr = arr % q_u
        return arr

    # -- element-wise ------------------------------------------------------
    def add(self, a, b, q):
        if not self._linear_ok(q, a, b):
            return self._fallback.add(a, b, q)
        x = self._to_array(a, q)
        x += self._to_array(b, q)
        return _np.minimum(x, x - _np.uint64(q)).tolist()

    def sub(self, a, b, q):
        if not self._linear_ok(q, a, b):
            return self._fallback.sub(a, b, q)
        x = self._to_array(a, q)
        x -= self._to_array(b, q)                  # wraps when negative
        return _np.minimum(x, x + _np.uint64(q)).tolist()

    def neg(self, a, q):
        if not self._linear_ok(q, a):
            return self._fallback.neg(a, q)
        x = self._to_array(a, q)
        q_u = _np.uint64(q)
        return _np.where(x == _np.uint64(0), x, q_u - x).tolist()

    def _mulmod_arrays(self, x, y, q: int):
        if self._direct_ok(q):
            return (x * y) % _np.uint64(q)
        return self._mont(q).mulmod(x, y)

    @staticmethod
    def _scalar_mulmod(x, scalar: int, q: int):
        """Exact ``(x * scalar) % q`` via a Shoup constant for the scalar.

        One lazy Shoup product plus one conditional subtraction — much
        cheaper than a general double-REDC Montgomery multiply.  ``x`` may
        hold any uint64 values; ``q`` must satisfy ``2q < 2^64``.
        """
        scalar %= q
        shoup = (scalar << 64) // q
        q_u = _np.uint64(q)
        v = _shoup_mul_lazy(
            x, _np.uint64(scalar),
            _np.uint64(shoup & 0xFFFFFFFF), _np.uint64(shoup >> 32), q_u,
        )
        return _np.minimum(v, v - q_u)

    def mul(self, a, b, q):
        if not self._mul_ok(q, a, b):
            return self._fallback.mul(a, b, q)
        x = self._to_array(a, q)
        y = self._to_array(b, q)
        return self._mulmod_arrays(x, y, q).tolist()

    def _scalar_ok(self, q: int, *sequences) -> bool:
        """Fixed-operand (Shoup) multiplies only need ``2q`` to fit a word."""
        return self._linear_ok(q, *sequences)

    def scalar_mul(self, a, scalar, q):
        if not self._scalar_ok(q, a):
            return self._fallback.scalar_mul(a, scalar, q)
        if self._direct_ok(q):
            return ((self._to_array(a, q) * _np.uint64(scalar % q)) % _np.uint64(q)).tolist()
        return self._scalar_mulmod(self._to_array(a, q), scalar, q).tolist()

    def sub_scaled(self, a, b, scalar, q):
        if not self._scalar_ok(q, a, b):
            return self._fallback.sub_scaled(a, b, scalar, q)
        x = self._to_array(a, q)
        y = self._to_array(b, q)
        q_u = _np.uint64(q)
        diff = _np.where(x >= y, x - y, x + (q_u - y))
        if self._direct_ok(q):
            return ((diff * _np.uint64(scalar % q)) % q_u).tolist()
        return self._scalar_mulmod(diff, scalar, q).tolist()

    def weighted_sum(self, rows, weights, q):
        if len(rows) != len(weights):
            raise ValueError("rows and weights must have equal length")
        if not rows:
            raise ValueError("weighted_sum needs at least one row")
        if not self._scalar_ok(q, *rows):
            return self._fallback.weighted_sum(rows, weights, q)
        q_u = _np.uint64(q)
        direct = self._direct_ok(q)
        acc = _np.zeros(len(rows[0]), dtype=_np.uint64)
        for row, weight in zip(rows, weights):
            x = self._to_array(row, q)
            if direct:
                term = (x * _np.uint64(weight % q)) % q_u
            else:
                term = self._scalar_mulmod(x, weight, q)
            acc += term
            acc = _np.where(acc >= q_u, acc - q_u, acc)
        return acc.tolist()

    # -- NTT ---------------------------------------------------------------
    def _tables(self, context) -> "_NumpyNTTTables":
        key = (context.ring_degree, context.modulus)
        tables = self._ntt_tables.get(key)
        if tables is None:
            tables = _NumpyNTTTables(context)
            self._ntt_tables[key] = tables
        return tables

    def _ntt_ok(self, context) -> bool:
        # The lazy butterflies keep values in [0, 4q), so 4q must fit a word;
        # the exit pointwise reduction additionally wants an odd modulus
        # (always true for NTT-friendly primes).
        return (
            context.ring_degree >= self.min_ntt_length
            and self._mont(context.modulus) is not None
        )

    def ntt_forward(self, context, coefficients):
        self._check_length(context, coefficients)
        if not self._ntt_ok(context):
            return self._fallback.ntt_forward(context, coefficients)
        tables = self._tables(context)
        x = self._to_array(coefficients, context.modulus)
        x = self._forward_stages(context.ring_degree, x, tables)
        return self._reduce_4q(x, tables).tolist()

    def ntt_inverse(self, context, values):
        self._check_length(context, values)
        if not self._ntt_ok(context):
            return self._fallback.ntt_inverse(context, values)
        tables = self._tables(context)
        x = self._to_array(values, context.modulus)
        x = self._inverse_stages(context.ring_degree, x, tables)
        return self._exit_scale(x, tables).tolist()

    def negacyclic_convolution(self, context, a, b):
        self._check_length(context, a)
        self._check_length(context, b)
        if not self._ntt_ok(context):
            return self._fallback.negacyclic_convolution(context, a, b)
        tables = self._tables(context)
        n = context.ring_degree
        q = context.modulus
        xa = self._to_array(a, q)
        # b enters the transform pre-scaled by R = 2^64 (the transform is
        # linear, so the evaluation values come out scaled by R as well).
        xb = _shoup_mul_lazy(self._to_array(b, q), tables.r_w,
                             tables.r_s_lo, tables.r_s_hi, tables.q_u)
        # Both forward transforms ride one stacked array: the stage loop is
        # overhead-bound at these sizes, so batching nearly halves its cost.
        x = self._forward_stages(n, _np.stack([xa, xb]), tables)
        x = self._reduce_4q(x, tables)
        prod = self._mont(q).mont_mul(x[0], x[1])   # (a)(bR)R^-1 = ab mod q
        y = self._inverse_stages(n, prod, tables)
        return self._exit_scale(y, tables).tolist()

    @staticmethod
    def _reduce_4q(x, tables):
        """Exact reduction of lazily-accumulated values from [0, 4q) to [0, q)."""
        x = _np.minimum(x, x - tables.q2)
        return _np.minimum(x, x - tables.q_u)

    @staticmethod
    def _exit_scale(x, tables):
        """Multiply by n^-1 (Shoup) and reduce exactly; input < 2q, output < q."""
        x = _shoup_mul_lazy(x, tables.n_inv_w, tables.n_inv_s_lo,
                            tables.n_inv_s_hi, tables.q_u)
        return _np.minimum(x, x - tables.q_u)

    @staticmethod
    def _forward_stages(n: int, x, tables):
        """Cooley-Tukey stages with Harvey lazy reduction (values < 4q).

        ``x`` may carry a leading batch dimension: shape ``(n,)`` or
        ``(B, n)``; every batch row is transformed independently in place.
        Conditional subtraction uses the wraparound trick
        ``min(v, v - q)``: when ``v < q`` the subtraction wraps to a huge
        value and ``min`` keeps ``v``, else it keeps the reduced value.
        """
        q_u = tables.q_u
        q2 = tables.q2
        batch = 1 if x.ndim == 1 else x.shape[0]
        t = n
        m = 1
        while m < n:
            t //= 2
            blocks = x.reshape(batch, m, 2 * t)
            u0 = blocks[:, :, :t]
            u = _np.minimum(u0, u0 - q2)                   # < 2q
            sl = slice(m, 2 * m)
            v = _shoup_mul_lazy(
                blocks[:, :, t:], tables.fwd_w[None, sl, None],
                tables.fwd_s_lo[None, sl, None],
                tables.fwd_s_hi[None, sl, None], q_u,
            )                                              # < 2q
            _np.add(u, v, out=blocks[:, :, :t])            # < 4q
            v -= q2
            _np.subtract(u, v, out=blocks[:, :, t:])       # u - v + 2q < 4q
            m *= 2
        return x

    @staticmethod
    def _inverse_stages(n: int, x, tables):
        """Gentleman-Sande stages with lazy reduction (values < 2q)."""
        q_u = tables.q_u
        q2 = tables.q2
        batch = 1 if x.ndim == 1 else x.shape[0]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            blocks = x.reshape(batch, h, 2 * t)
            u = blocks[:, :, :t]
            v = blocks[:, :, t:]
            s = u + v                                      # < 4q
            d = u + (q2 - v)                               # < 4q (true value, fine for Shoup)
            sl = slice(h, 2 * h)
            _np.minimum(s, s - q2, out=blocks[:, :, :t])   # < 2q
            blocks[:, :, t:] = _shoup_mul_lazy(
                d, tables.inv_w[None, sl, None],
                tables.inv_s_lo[None, sl, None],
                tables.inv_s_hi[None, sl, None], q_u,
            )                                              # < 2q
            t *= 2
            m = h
        return x

    def _cyclic_stage_twiddles(self, length: int, omega: int, q: int):
        key = (length, omega, q)
        stages = self._cyclic_tables.get(key)
        if stages is None:
            stages = []
            size = 2
            while size <= length:
                half = size // 2
                w_len = pow(omega, length // size, q)
                powers = [1] * half
                for j in range(1, half):
                    powers[j] = (powers[j - 1] * w_len) % q
                stages.append(_shoup_split(powers, q))
                size *= 2
            self._cyclic_tables[key] = stages
        return stages

    def cyclic_ntt_batch(self, matrix, omega, q):
        rows = len(matrix)
        if rows == 0:
            return []
        length = len(matrix[0])
        if (
            q % 2 == 0
            or q.bit_length() > NUMPY_MAX_MODULUS_BITS
            or rows * length < self.min_ntt_length
        ):
            return self._fallback.cyclic_ntt_batch(matrix, omega, q)
        order = list(_bit_reverse_indices(length))
        arr = _np.stack([self._to_array(row, q) for row in matrix])[:, order]
        q_u = _np.uint64(q)
        q2 = _np.uint64(2 * q)
        size = 2
        for w, s_lo, s_hi in self._cyclic_stage_twiddles(length, omega, q):
            half = size // 2
            view = arr.reshape(rows, length // size, size)
            u0 = view[..., :half]
            u = _np.minimum(u0, u0 - q2)
            v = _shoup_mul_lazy(
                view[..., half:], w[None, None, :],
                s_lo[None, None, :], s_hi[None, None, :], q_u,
            )
            _np.add(u, v, out=view[..., :half])
            v -= q2
            _np.subtract(u, v, out=view[..., half:])
            size *= 2
        arr = _np.minimum(arr, arr - q2)
        return _np.minimum(arr, arr - q_u).tolist()


# ---------------------------------------------------------------------------
# Registry and active-backend selection
# ---------------------------------------------------------------------------

_INSTANCES: Dict[str, ArithmeticBackend] = {}
_ACTIVE: "ArithmeticBackend | None" = None
_WARNED_NO_NUMPY = False


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    names = ["python"]
    if _np is not None:
        names.append("numpy")
    return names


def _default_name() -> str:
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if env in ("python", "numpy"):
        return env
    if env:
        warnings.warn(
            f"ignoring unknown {BACKEND_ENV_VAR}={env!r}; "
            f"expected 'python' or 'numpy'",
            stacklevel=3,
        )
    return "numpy" if _np is not None else "python"


def get_backend(name: "str | None" = None) -> ArithmeticBackend:
    """Return the backend instance registered under ``name``.

    ``None`` resolves the default (``REPRO_BACKEND`` env var, then numpy when
    available).  Requesting ``"numpy"`` without numpy installed degrades to
    the python backend with a warning rather than failing.
    """
    global _WARNED_NO_NUMPY
    if name is None:
        name = _default_name()
    name = name.lower()
    if name == "numpy" and _np is None:
        if not _WARNED_NO_NUMPY:
            warnings.warn(
                "numpy backend requested but numpy is not installed; "
                "falling back to the exact python backend",
                stacklevel=2,
            )
            _WARNED_NO_NUMPY = True
        name = "python"
    if name not in ("python", "numpy"):
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = PythonBackend() if name == "python" else NumpyBackend()
        _INSTANCES[name] = instance
    return instance


def active_backend() -> ArithmeticBackend:
    """The backend every FHE vector op dispatches to right now."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend(None)
    return _ACTIVE


def _resolve(backend: "ArithmeticBackend | str | None") -> "ArithmeticBackend | None":
    if backend is None:
        return None
    if isinstance(backend, ArithmeticBackend):
        return backend
    return get_backend(backend)


def set_active_backend(backend: "ArithmeticBackend | str | None") -> ArithmeticBackend:
    """Select the process-wide backend (``None`` re-resolves the default)."""
    global _ACTIVE
    _ACTIVE = _resolve(backend)
    return active_backend()


@contextmanager
def use_backend(backend: "ArithmeticBackend | str | None") -> Iterator[ArithmeticBackend]:
    """Temporarily switch the active backend (``None`` is a no-op).

    This is how an explicit per-object backend choice (e.g.
    ``CKKSEvaluator(..., backend="numpy")``) is threaded down through code
    that operates on plain :class:`~repro.fhe.polynomial.Polynomial` values.
    """
    resolved = _resolve(backend)
    if resolved is None:
        yield active_backend()
        return
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolved
    try:
        yield resolved
    finally:
        _ACTIVE = previous
