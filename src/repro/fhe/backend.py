"""Pluggable vectorized arithmetic backends for the FHE layer.

Every hot kernel of the functional FHE substrate — element-wise modular
arithmetic, the negacyclic NTT, batched cyclic NTTs (four-step phases), and
the RNS compose/decompose primitives — is expressed against the small
:class:`ArithmeticBackend` interface defined here.  Two implementations are
registered:

* ``"python"`` — the exact pure-Python reference (arbitrary-precision ints,
  the original seed implementation).  It is the *golden* backend: every other
  backend must agree with it bit-for-bit, which the differential suite in
  ``tests/test_backend_parity.py`` enforces.
* ``"numpy"`` — vectorized ``uint64`` arithmetic.  Products of operands up to
  32 bits are computed directly in a 64-bit word; for the 33..62-bit primes
  of :mod:`repro.fhe.params` the backend switches to Montgomery reduction
  built on an emulated 64x64 -> 128-bit multiply (32-bit limb splitting), so
  results stay exact with no overflow for every modulus the parameter sets
  produce (<= 61 bits).  Moduli that do not fit this scheme (>= 2^62, or
  even moduli above 2^32) transparently fall back to the python backend, as
  do tiny vectors where conversion overhead would dominate.

Selection
---------
The process-wide *active* backend is resolved, in order, from:

1. an explicit :func:`set_active_backend` / :func:`use_backend` call,
2. the ``REPRO_BACKEND`` environment variable (``python`` or ``numpy``),
3. the default: ``numpy`` when importable, else ``python``.

NumPy is an optional dependency: requesting the numpy backend on a machine
without it degrades gracefully to the python backend (with a warning).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from functools import lru_cache
from typing import Dict, Iterator, List, Sequence

try:  # NumPy is optional -- the python backend has no dependencies at all.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "ArithmeticBackend",
    "PythonBackend",
    "NumpyBackend",
    "PerLimbNumpyBackend",
    "PermSpec",
    "GatherSpec",
    "BConvPlan",
    "available_backends",
    "get_backend",
    "active_backend",
    "set_active_backend",
    "use_backend",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted when no backend has been selected explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Largest modulus bit-length the numpy backend handles without falling back.
NUMPY_MAX_MODULUS_BITS = 62


@lru_cache(maxsize=64)
def _bit_reverse_indices(length: int) -> tuple:
    """Bit-reversal permutation of ``range(length)`` (length a power of two)."""
    if length & (length - 1):
        raise ValueError("length must be a power of two")
    bits = length.bit_length() - 1
    result = [0] * length
    for i in range(length):
        rev = 0
        value = i
        for _ in range(bits):
            rev = (rev << 1) | (value & 1)
            value >>= 1
        result[i] = rev
    return tuple(result)


class PermSpec:
    """A signed coefficient permutation of a power-of-two ring.

    ``dest[i]`` is the destination index of source coefficient ``i`` and
    ``negate[i]`` says whether it picks up a minus sign.  Both monomial
    multiplication and the Galois automorphisms of ``Z_q[X]/(X^N+1)`` have
    exactly this shape, so one backend kernel serves both.  ``cache`` is
    scratch space where a backend may stash derived tables (e.g. numpy index
    arrays) keyed by its own name; specs are built once per ``(N, exponent)``
    and cached by the ring layer, so the tables amortize.
    """

    __slots__ = ("dest", "negate", "cache")

    def __init__(self, dest: Sequence[int], negate: Sequence[bool]):
        self.dest = tuple(dest)
        self.negate = tuple(negate)
        self.cache: Dict[str, object] = {}


class GatherSpec:
    """A plain (sign-free) coefficient gather: ``out[i] = in[src[i]]``.

    The evaluation-domain image of a Galois automorphism has exactly this
    shape on power-of-two cyclotomics: ``sigma_g`` permutes the odd powers of
    ``psi`` the NTT evaluates at, so it permutes the evaluation values with no
    sign flips (see :func:`repro.fhe.polynomial.galois_eval_spec`).  ``cache``
    holds backend-derived index tables keyed by backend name; specs are built
    once per ``(N, g)`` and lru-cached by the ring layer.
    """

    __slots__ = ("src", "cache")

    def __init__(self, src: Sequence[int]):
        self.src = tuple(src)
        self.cache: Dict[str, object] = {}


class BConvPlan:
    """Precomputed tables for one ``source basis -> target basis`` BConv.

    ``inverses[i]`` is ``(Q/q_i)^{-1} mod q_i`` and ``weights[j][i]`` the
    complement ``(Q/q_i) mod p_j`` — i.e. the ``(target x source)`` matrix of
    the fast-basis-conversion matrix product.  Plans are built once per
    ``(source, target)`` basis pair (see :mod:`repro.fhe.rns`); ``cache``
    holds backend-derived tables (Shoup constants etc.) keyed by backend
    name.
    """

    __slots__ = ("source_moduli", "target_moduli", "inverses", "weights", "cache")

    def __init__(self, source_moduli, target_moduli, inverses, weights):
        self.source_moduli = tuple(int(q) for q in source_moduli)
        self.target_moduli = tuple(int(p) for p in target_moduli)
        self.inverses = tuple(int(v) for v in inverses)
        self.weights = tuple(tuple(int(w) for w in row) for row in weights)
        self.cache: Dict[str, object] = {}


class ArithmeticBackend:
    """Interface every arithmetic backend implements.

    All methods are *exact*: they take Python-int sequences (already reduced
    or not — reduction modulo ``q`` is part of the contract), return fresh
    Python lists reduced into ``[0, q)``, and never alias their inputs.  The
    NTT entry points receive the :class:`~repro.fhe.ntt.NTTContext` (duck
    typed — only its precomputed tables are read), so backends can cache
    their own derived tables per ``(N, q)`` pair.
    """

    name: str = "abstract"

    # -- element-wise modular vector ops ----------------------------------
    def add(self, a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def sub(self, a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def neg(self, a: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def mul(self, a: Sequence[int], b: Sequence[int], q: int) -> List[int]:
        raise NotImplementedError

    def scalar_mul(self, a: Sequence[int], scalar: int, q: int) -> List[int]:
        raise NotImplementedError

    def sub_scaled(self, a: Sequence[int], b: Sequence[int], scalar: int, q: int) -> List[int]:
        """``(a - b) * scalar mod q`` — the fused Rescale / ModDown kernel."""
        raise NotImplementedError

    def weighted_sum(self, rows: Sequence[Sequence[int]], weights: Sequence[int], q: int) -> List[int]:
        """``sum_i rows[i] * weights[i] mod q`` — the BConv accumulation kernel."""
        raise NotImplementedError

    # -- packed limb-major (RNS) kernels -----------------------------------
    #
    # A *limb store* is an opaque, backend-owned representation of an RNS
    # polynomial: ``L`` coefficient rows, row ``i`` reduced modulo
    # ``moduli[i]``.  The reference representation (this base class, and the
    # fallback of every vectorized backend) is a plain list of coefficient
    # lists; the numpy backend packs the rows into a single ``(L, N)``
    # uint64 matrix so that a whole RNS operation is one vectorized
    # dispatch.  Both representations support ``len()`` and row slicing
    # (``store[a:b]``), and stores are immutable by convention — kernels
    # always allocate their outputs.  The base implementations below loop
    # over the per-limb scalar kernels and are therefore the bit-exact
    # golden reference for every vectorized override.

    @staticmethod
    def store_rows(store) -> List[List[int]]:
        """Materialize a limb store as a list of python-int coefficient rows."""
        tolist = getattr(store, "tolist", None)
        if tolist is not None:
            return tolist()
        return [row if isinstance(row, list) else list(row) for row in store]

    @staticmethod
    def _row_ints(row) -> List[int]:
        """Materialize a single coefficient row as a list of python ints."""
        tolist = getattr(row, "tolist", None)
        if tolist is not None:
            return tolist()
        return row if isinstance(row, list) else list(row)

    @staticmethod
    def _is_store(rows) -> bool:
        """True when ``rows`` is a limb store (matrix) rather than one row."""
        ndim = getattr(rows, "ndim", None)
        if ndim is not None:
            return ndim == 2
        return len(rows) > 0 and not isinstance(rows[0], int)

    def pack_limbs(self, rows, moduli) -> object:
        """Pack already-reduced coefficient rows into this backend's store."""
        return self.store_rows(rows)

    def unpack_limbs(self, store) -> List[List[int]]:
        """Inverse of :meth:`pack_limbs` (always python-int rows)."""
        return self.store_rows(store)

    def limbs_zero(self, count: int, length: int, moduli=None) -> object:
        """An all-zero store of ``count`` rows of ``length`` coefficients.

        ``moduli`` is an optional hint (the per-row moduli) that lets a
        backend pick a narrower storage dtype; values are zero either way.
        """
        return [[0] * length for _ in range(count)]

    def limbs_add(self, a, b, moduli):
        return [
            self.add(x, y, q)
            for x, y, q in zip(self.store_rows(a), self.store_rows(b), moduli)
        ]

    def limbs_sub(self, a, b, moduli):
        return [
            self.sub(x, y, q)
            for x, y, q in zip(self.store_rows(a), self.store_rows(b), moduli)
        ]

    def limbs_neg(self, a, moduli):
        return [self.neg(x, q) for x, q in zip(self.store_rows(a), moduli)]

    def limbs_mul(self, a, b, moduli):
        """Element-wise per-limb product (NTT-domain pointwise multiply)."""
        return [
            self.mul(x, y, q)
            for x, y, q in zip(self.store_rows(a), self.store_rows(b), moduli)
        ]

    def limbs_scalar_mul(self, a, scalars, moduli):
        """Per-limb scalar product: row ``i`` times ``scalars[i]`` mod ``q_i``."""
        return [
            self.scalar_mul(x, s, q)
            for x, s, q in zip(self.store_rows(a), scalars, moduli)
        ]

    def batched_sub_scaled(self, a, b, scalars, moduli, b_modulus: "int | None" = None):
        """Row-wise fused Rescale/ModDown: ``(a_i - b_i) * scalars[i] mod q_i``.

        ``b`` is either a full store (one row per limb, e.g. ModDown's
        converted P-part, already reduced per target modulus) or a single
        row shared by every limb (Rescale's dropped limb).  ``b_modulus``
        optionally names the modulus a single-row ``b`` is reduced under;
        the values are re-reduced per target limb either way, the hint just
        lets vectorized backends pick a cheaper reduction.
        """
        rows_a = self.store_rows(a)
        if self._is_store(b):
            rows_b = self.store_rows(b)
        else:
            row = self._row_ints(b)
            rows_b = [row] * len(rows_a)
        return [
            self.sub_scaled(x, y, s, q)
            for x, y, s, q in zip(rows_a, rows_b, scalars, moduli)
        ]

    def bconv_matmul(self, store, plan: "BConvPlan"):
        """Fast basis conversion as one modular matrix product (**BConv**).

        Computes ``y_j = sum_i [x_i * (Q/q_i)^{-1} mod q_i] * (Q/q_i) mod p_j``
        for every target modulus using the precomputed tables in ``plan``.
        Returns a store over the target moduli.
        """
        rows = self.store_rows(store)
        scaled = [
            self.scalar_mul(row, inv, q)
            for row, inv, q in zip(rows, plan.inverses, plan.source_moduli)
        ]
        return [
            self.weighted_sum(scaled, weights, p)
            for weights, p in zip(plan.weights, plan.target_moduli)
        ]

    def batched_ntt(self, contexts, store):
        """Forward NTT of every limb row (row ``i`` under ``contexts[i]``)."""
        return [
            self.ntt_forward(ctx, row)
            for ctx, row in zip(contexts, self.store_rows(store))
        ]

    def batched_intt(self, contexts, store):
        """Inverse NTT of every limb row (row ``i`` under ``contexts[i]``)."""
        return [
            self.ntt_inverse(ctx, row)
            for ctx, row in zip(contexts, self.store_rows(store))
        ]

    def limbs_convolution(self, contexts, a, b):
        """Negacyclic convolution of matching limb rows."""
        return [
            self.negacyclic_convolution(ctx, x, y)
            for ctx, x, y in zip(contexts, self.store_rows(a), self.store_rows(b))
        ]

    def limbs_eval_key(self, contexts, store):
        """Prepare a fixed multiplicand (an evaluation key) for repeated
        limb-wise products.

        Returns an opaque ``(form, payload, raw_store)`` handle consumed by
        :meth:`limbs_mac_eval` and :meth:`limbs_eval_mac`.  Every handle
        keeps a reference to the raw coefficient store (the key object owns
        it anyway), so any backend can always fall back to a plain
        convolution; the payload carries the key's forward NTT in the
        backend's preferred internal form, so repeated keyswitches against
        the same key skip half the transforms.  The base handle starts
        ``"raw"`` (no payload): the naive MAC path never reads one, and
        :meth:`limbs_eval_mac` fills it in lazily — which is why the handle
        is a mutable list here.
        """
        return ["raw", None, store]

    def limbs_mac_eval(self, contexts, store, key_handles):
        """Negacyclic products of ``store`` with several prepared keys.

        Computes ``[store * key for key in key_handles]`` limb-wise, sharing
        the forward transform of ``store`` across all keys.  Returns one
        result store per handle.
        """
        return [
            self.limbs_convolution(contexts, store, handle[2])
            for handle in key_handles
        ]

    def limbs_eval_mac(self, contexts, digit_stores, key_handles):
        """Evaluation-domain MAC of several decomposition digits against keys.

        ``digit_stores[j]`` holds the fully-reduced forward transform of
        digit ``j`` (an eval-domain limb store) and ``key_handles[j]`` the
        tuple of prepared per-component key handles for that digit (from
        :meth:`limbs_eval_key`).  Returns one eval-domain store per key
        component: ``acc_c = sum_j digit_stores[j] * key_handles[j][c]``
        (pointwise per limb, fully reduced after every step).  The shared
        inverse transform is the caller's job — hoisted keyswitch
        accumulates *all* digits here and pays one ``batched_intt`` per
        component instead of one per digit.
        """
        moduli = tuple(ctx.modulus for ctx in contexts)
        accs = None
        for store, handles in zip(digit_stores, key_handles):
            terms = []
            for handle in handles:
                key_eval = handle[1] if handle[0] in ("eval", "u32") else None
                if key_eval is None:
                    key_eval = self.batched_ntt(contexts, handle[2])
                    if isinstance(handle, list):
                        # Cache the transform on the (key-owned) handle so
                        # repeated keyswitches against this key pay it once.
                        handle[0] = "eval"
                        handle[1] = key_eval
                terms.append(self.limbs_mul(store, key_eval, moduli))
            if accs is None:
                accs = terms
            else:
                accs = [
                    self.limbs_add(acc, term, moduli)
                    for acc, term in zip(accs, terms)
                ]
        return accs

    def limbs_tensor_product(self, a0, a1, b0, b1, moduli):
        """CKKS degree-2 tensor product in the evaluation domain.

        All four inputs are eval-domain limb stores of the two ciphertexts'
        components; returns ``(d0, d1, d2) = (a0*b0, a0*b1 + a1*b0, a1*b1)``
        computed pointwise per limb.  Vectorized backends run the four
        products as one broadcast dispatch.
        """
        d0 = self.limbs_mul(a0, b0, moduli)
        d1 = self.limbs_add(
            self.limbs_mul(a0, b1, moduli), self.limbs_mul(a1, b0, moduli), moduli
        )
        d2 = self.limbs_mul(a1, b1, moduli)
        return d0, d1, d2

    def stacked_intt(self, contexts, stores):
        """Inverse NTT of several limb stores as one stacked dispatch.

        Every store shares the same per-limb contexts; vectorized backends
        stack them into one ``(C, L, N)`` array and run the inverse stages
        once, so e.g. the two accumulator components of a hoisted keyswitch
        pay a single ``(2, L, N)`` transform.  Returns one store per input,
        bit-identical to per-store :meth:`batched_intt`.
        """
        return [self.batched_intt(contexts, store) for store in stores]

    def stacked_ntt(self, contexts, stores):
        """Forward counterpart of :meth:`stacked_intt` (one stacked dispatch)."""
        return [self.batched_ntt(contexts, store) for store in stores]

    def stacked_gather(self, stores, spec):
        """Apply one sign-free gather to several limb stores at once.

        The batched form of :meth:`limbs_gather` — hoisted keyswitch uses it
        to permute all decomposition digits of a rotation in one dispatch.
        """
        return [self.limbs_gather(store, spec) for store in stores]

    def stacked_pmult_mac(self, c0_stores, c1_stores, pt_stores, moduli):
        """Fused multi-ciphertext plaintext MAC (one ``(2, C, L, N)`` dispatch).

        Computes ``acc_c = sum_i pt_i * c_i`` pointwise per limb for both
        ciphertext components: ``c0_stores``/``c1_stores`` hold the ``C``
        evaluation-domain component stores and ``pt_stores`` the matching
        evaluation-domain plaintext stores.  This is how the program
        planner executes an independent same-shape group of PMult/HAdd
        nodes (a BSGS inner sum) as one stacked dispatch.  Fully reduced
        and bit-identical to the per-ciphertext ``limbs_mul``/``limbs_add``
        chain (modular addition is exact in any order).
        """
        if not c0_stores or not (
            len(c0_stores) == len(c1_stores) == len(pt_stores)
        ):
            raise ValueError("stacked_pmult_mac needs matching non-empty stores")
        acc0 = acc1 = None
        for c0, c1, pt in zip(c0_stores, c1_stores, pt_stores):
            t0 = self.limbs_mul(c0, pt, moduli)
            t1 = self.limbs_mul(c1, pt, moduli)
            acc0 = t0 if acc0 is None else self.limbs_add(acc0, t0, moduli)
            acc1 = t1 if acc1 is None else self.limbs_add(acc1, t1, moduli)
        return acc0, acc1

    def replicate_row(self, row, moduli):
        """One coefficient row reduced into every modulus of ``moduli``.

        Returns a store with ``len(moduli)`` rows — the broadcast step of the
        evaluation-domain Rescale, where the dropped limb's coefficients are
        re-reduced under each remaining modulus before being transformed.
        """
        values = self._row_ints(row)
        return [[v % q for v in values] for q in moduli]

    def signed_permute(self, values, q: int, spec: "PermSpec") -> List[int]:
        """Apply a signed coefficient permutation (monomial mul / automorphism)."""
        out = [0] * len(values)
        dest = spec.dest
        negate = spec.negate
        for i, value in enumerate(values):
            value = int(value)
            out[dest[i]] = (q - value) % q if negate[i] else value
        return out

    def limbs_signed_permute(self, store, moduli, spec: "PermSpec"):
        """Apply one signed permutation to every limb row."""
        return [
            self.signed_permute(row, q, spec)
            for row, q in zip(self.store_rows(store), moduli)
        ]

    def limbs_gather(self, store, spec: "GatherSpec"):
        """Apply one sign-free gather to every limb row.

        ``out[limb][i] = store[limb][spec.src[i]]`` — the evaluation-domain
        Galois automorphism (a pure slot permutation, no negation, no
        arithmetic), so no moduli are needed.
        """
        src = spec.src
        return [[row[j] for j in src] for row in self.store_rows(store)]

    # -- same-modulus row batches (TFHE external product) ------------------
    def ntt_forward_batch(self, context, rows):
        """Independent forward NTTs of several rows under one modulus."""
        return [self.ntt_forward(context, row) for row in rows]

    def ntt_inverse_batch(self, context, rows):
        """Independent inverse NTTs of several rows under one modulus."""
        return [self.ntt_inverse(context, row) for row in rows]

    def pointwise_mac(self, rows_a, rows_b, q: int) -> List[int]:
        """``sum_i rows_a[i] * rows_b[i] mod q`` element-wise (NTT-domain MAC)."""
        if len(rows_a) != len(rows_b):
            raise ValueError("pointwise_mac needs equally many rows on both sides")
        if not rows_a:
            raise ValueError("pointwise_mac needs at least one row pair")
        acc = self.mul(rows_a[0], rows_b[0], q)
        for x, y in zip(rows_a[1:], rows_b[1:]):
            acc = self.add(acc, self.mul(x, y, q), q)
        return acc

    def pointwise_mac_many(self, rows_a, groups, q: int) -> List[List[int]]:
        """Several pointwise MACs sharing the same left operand.

        Computes ``[pointwise_mac(rows_a, group, q) for group in groups]`` —
        the external-product shape, where the decomposition-digit transforms
        ``rows_a`` are MAC-reduced against one key-row group per output
        component.  Vectorized backends convert ``rows_a`` once and run all
        groups as a single stacked reduction.
        """
        return [self.pointwise_mac(rows_a, group, q) for group in groups]

    def mat_mulmod(self, rows, matrix, q: int) -> List[List[int]]:
        """Exact ``rows @ matrix mod q`` over python-int row lists.

        The batched-keyswitch shape: ``rows`` holds one weight vector per
        PBS-wave member (its negated gadget digits) and ``matrix`` the
        flattened key-switching rows they all share.  The base
        implementation reduces each output row to one :meth:`weighted_sum`
        over the non-zero weights, so it is the bit-exact golden reference
        for vectorized overrides.
        """
        width = len(matrix[0]) if matrix else 0
        out: List[List[int]] = []
        for row in rows:
            live = [(w % q, m) for w, m in zip(row, matrix) if w % q]
            if not live:
                out.append([0] * width)
                continue
            out.append(self.weighted_sum(
                [m for _, m in live], [w for w, _ in live], q
            ))
        return out

    def gadget_decompose(self, coefficients, modulus: int, factors) -> List[List[int]]:
        """Signed gadget decomposition of one coefficient row.

        Returns ``len(factors)`` digit rows (most significant first, reduced
        into ``[0, modulus)``) using the same greedy residual-based digit
        extraction as :meth:`Polynomial.decompose` — this *is* that kernel,
        hoisted into the backend so it can vectorize.
        """
        digits = [[0] * len(coefficients) for _ in factors]
        half = modulus // 2
        for idx, coefficient in enumerate(coefficients):
            residual = int(coefficient) % modulus
            if residual > half:
                residual -= modulus
            for level, factor in enumerate(factors):
                digit = 0 if factor == 0 else (2 * residual + factor) // (2 * factor)
                residual -= digit * factor
                digits[level][idx] = digit % modulus
        return digits

    # -- four-step (Bailey) NTT -------------------------------------------
    def four_step_ntt(self, context, coefficients, rows: int) -> List[int]:
        """Four-step negacyclic NTT (see :func:`repro.fhe.ntt.four_step_ntt`).

        The base implementation composes the element-wise and cyclic-batch
        primitives with Python gather/scatter between phases; vectorized
        backends override it to keep the transpose steps resident.
        """
        n = context.ring_degree
        cols = n // rows
        q = context.modulus
        coeffs = [int(c) % q for c in coefficients]
        # Step 0: psi pre-twist makes the remaining problem a plain cyclic DFT.
        twisted = self.mul(coeffs, context._psi_powers, q)
        omega_rows = pow(context.omega, cols, q)   # primitive `rows`-th root
        omega_cols = pow(context.omega, rows, q)   # primitive `cols`-th root
        # Phase 1: DFT along columns (stride cols).
        columns = [twisted[c::cols] for c in range(cols)]
        columns = self.cyclic_ntt_batch(columns, omega_rows, q)
        # Twiddle: multiply element (r, c) by omega^(r*c) (flattened column-major).
        flat = [value for column in columns for value in column]
        flat = self.mul(flat, context.four_step_twiddles(rows), q)
        # Phase 2: DFT along rows (after transposing the phase-1 result).
        rows_data = [flat[r::rows] for r in range(rows)]
        rows_data = self.cyclic_ntt_batch(rows_data, omega_cols, q)
        cyclic = [0] * n
        for k1 in range(rows):
            cyclic[k1::rows] = rows_data[k1]
        order = _bit_reverse_indices(n)
        return [cyclic[order[i]] for i in range(n)]

    def four_step_intt(self, context, values, rows: int) -> List[int]:
        """Inverse of :meth:`four_step_ntt`."""
        n = context.ring_degree
        cols = n // rows
        q = context.modulus
        omega_inv = context.omega_inv
        omega_rows_inv = pow(omega_inv, cols, q)
        omega_cols_inv = pow(omega_inv, rows, q)
        order = _bit_reverse_indices(n)
        natural = [0] * n
        for i in range(n):
            natural[order[i]] = int(values[i]) % q
        rows_data = [natural[k1::rows] for k1 in range(rows)]
        rows_data = self.cyclic_ntt_batch(rows_data, omega_cols_inv, q)
        flat = [rows_data[r][c] for c in range(cols) for r in range(rows)]
        flat = self.mul(flat, context.four_step_twiddles(rows, inverse=True), q)
        columns = [flat[c * rows:(c + 1) * rows] for c in range(cols)]
        columns = self.cyclic_ntt_batch(columns, omega_rows_inv, q)
        twisted = [0] * n
        for c in range(cols):
            twisted[c::cols] = columns[c]
        scaled = self.scalar_mul(twisted, context.n_inv, q)
        return self.mul(scaled, context._psi_inv_powers, q)

    # -- NTT kernels -------------------------------------------------------
    def ntt_forward(self, context, coefficients: Sequence[int]) -> List[int]:
        raise NotImplementedError

    def ntt_inverse(self, context, values: Sequence[int]) -> List[int]:
        raise NotImplementedError

    def negacyclic_convolution(self, context, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Multiply two polynomials in Z_q[X]/(X^N+1) via the NTT."""
        fa = self.ntt_forward(context, a)
        fb = self.ntt_forward(context, b)
        return self.ntt_inverse(context, self.mul(fa, fb, context.modulus))

    def cyclic_ntt_batch(self, matrix: Sequence[Sequence[int]], omega: int, q: int) -> List[List[int]]:
        """Independent in-order cyclic NTTs of every row of ``matrix``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"

    @staticmethod
    def _check_length(context, sequence: Sequence[int]) -> None:
        if len(sequence) != context.ring_degree:
            raise ValueError(
                f"expected {context.ring_degree} elements, got {len(sequence)}"
            )


class PythonBackend(ArithmeticBackend):
    """Exact pure-Python reference backend (the seed implementation)."""

    name = "python"

    # -- element-wise ------------------------------------------------------
    def add(self, a, b, q):
        return [(x + y) % q for x, y in zip(a, b)]

    def sub(self, a, b, q):
        return [(x - y) % q for x, y in zip(a, b)]

    def neg(self, a, q):
        return [(-x) % q for x in a]

    def mul(self, a, b, q):
        return [(int(x) * int(y)) % q for x, y in zip(a, b)]

    def scalar_mul(self, a, scalar, q):
        scalar %= q
        return [(x * scalar) % q for x in a]

    def sub_scaled(self, a, b, scalar, q):
        scalar %= q
        return [((x - y) * scalar) % q for x, y in zip(a, b)]

    def weighted_sum(self, rows, weights, q):
        if len(rows) != len(weights):
            raise ValueError("rows and weights must have equal length")
        if not rows:
            raise ValueError("weighted_sum needs at least one row")
        length = len(rows[0])
        result = [0] * length
        for row, weight in zip(rows, weights):
            weight %= q
            for idx in range(length):
                result[idx] = (result[idx] + row[idx] * weight) % q
        return result

    # -- NTT ---------------------------------------------------------------
    def ntt_forward(self, context, coefficients):
        self._check_length(context, coefficients)
        n = context.ring_degree
        q = context.modulus
        values = [int(c) % q for c in coefficients]
        twiddles = context._fwd_twiddles
        # Cooley-Tukey, decimation in time, merged psi twisting (Longa-Naehrig).
        t = n
        m = 1
        while m < n:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                j2 = j1 + t
                s = twiddles[m + i]
                for j in range(j1, j2):
                    u = values[j]
                    v = (values[j + t] * s) % q
                    values[j] = (u + v) % q
                    values[j + t] = (u - v) % q
            m *= 2
        return values

    def ntt_inverse(self, context, values):
        self._check_length(context, values)
        n = context.ring_degree
        q = context.modulus
        coeffs = [int(v) % q for v in values]
        twiddles = context._inv_twiddles
        # Gentleman-Sande, decimation in frequency, merged psi^-1 twisting.
        t = 1
        m = n
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                j2 = j1 + t
                s = twiddles[h + i]
                for j in range(j1, j2):
                    u = coeffs[j]
                    v = coeffs[j + t]
                    coeffs[j] = (u + v) % q
                    coeffs[j + t] = ((u - v) * s) % q
                j1 += 2 * t
            t *= 2
            m = h
        n_inv = context.n_inv
        return [(c * n_inv) % q for c in coeffs]

    def cyclic_ntt_batch(self, matrix, omega, q):
        return [self._cyclic_ntt(list(row), omega, q) for row in matrix]

    @staticmethod
    def _cyclic_ntt(values: List[int], omega: int, modulus: int) -> List[int]:
        """In-order iterative radix-2 cyclic NTT of a power-of-two length."""
        n = len(values)
        order = _bit_reverse_indices(n)
        data = [values[order[i]] % modulus for i in range(n)]
        length = 2
        while length <= n:
            w_len = pow(omega, n // length, modulus)
            for start in range(0, n, length):
                w = 1
                half = length // 2
                for j in range(start, start + half):
                    u = data[j]
                    v = (data[j + half] * w) % modulus
                    data[j] = (u + v) % modulus
                    data[j + half] = (u - v) % modulus
                    w = (w * w_len) % modulus
            length *= 2
        return data


# ---------------------------------------------------------------------------
# NumPy backend: vectorized uint64 with Montgomery reduction
# ---------------------------------------------------------------------------

if _np is not None:
    _M32 = _np.uint64(0xFFFFFFFF)
    _S32 = _np.uint64(32)

    def _mul64(a, b):
        """Emulated full 64x64 -> 128-bit multiply: returns ``(hi, lo)``.

        Operands are uint64 arrays (or scalars); the product is assembled
        from four 32x32 partial products, each of which fits a 64-bit word.
        """
        a_lo = a & _M32
        a_hi = a >> _S32
        b_lo = b & _M32
        b_hi = b >> _S32
        lo_lo = a_lo * b_lo
        mid1 = a_hi * b_lo
        mid2 = a_lo * b_hi
        cross = (lo_lo >> _S32) + (mid1 & _M32) + (mid2 & _M32)
        lo = (cross << _S32) | (lo_lo & _M32)
        hi = (a_hi * b_hi) + (mid1 >> _S32) + (mid2 >> _S32) + (cross >> _S32)
        return hi, lo

    class _Montgomery:
        """Montgomery arithmetic mod one odd modulus ``q < 2^62`` (R = 2^64)."""

        __slots__ = ("q", "q_u", "neg_q_inv", "r2")

        def __init__(self, q: int):
            if q % 2 == 0 or q.bit_length() > NUMPY_MAX_MODULUS_BITS:
                raise ValueError(f"modulus {q} is not Montgomery-friendly")
            self.q = q
            self.q_u = _np.uint64(q)
            self.neg_q_inv = _np.uint64((-pow(q, -1, 1 << 64)) % (1 << 64))
            self.r2 = _np.uint64(pow(1 << 64, 2, q))

        def redc(self, hi, lo):
            """Montgomery reduction of a 128-bit value: ``(hi:lo) * 2^-64 mod q``."""
            m = lo * self.neg_q_inv                     # mod 2^64 (wraps)
            mq_hi, _mq_lo = _mul64(m, self.q_u)
            # lo + mq_lo == 0 mod 2^64 by construction; the carry out of that
            # addition is exactly 1 whenever lo != 0.
            t = hi + mq_hi + (lo != _np.uint64(0)).astype(_np.uint64)
            return _np.where(t >= self.q_u, t - self.q_u, t)

        def mont_mul(self, a, b):
            """``a * b * 2^-64 mod q`` for operands < q (Montgomery product)."""
            return self.redc(*_mul64(a, b))

        def to_mont(self, a):
            return self.mont_mul(a, self.r2)

        def from_mont(self, a):
            return self.redc(_np.zeros_like(a), a)

        def mulmod(self, a, b):
            """Plain ``a * b mod q`` for reduced operands (two reductions)."""
            return self.mont_mul(self.mont_mul(a, b), self.r2)

        def addmod(self, a, b):
            s = a + b
            return _np.where(s >= self.q_u, s - self.q_u, s)

        def submod(self, a, b):
            return _np.where(a >= b, a - b, a + (self.q_u - b))

    class _MontgomeryVec:
        """Montgomery arithmetic with per-row (per-limb) odd moduli < 2^62.

        The constants are ``(L, 1)`` column vectors, so every method
        broadcasts over an ``(L, N)`` limb matrix — the stacked counterpart
        of :class:`_Montgomery`.
        """

        __slots__ = ("q_col", "neg_q_inv", "r2")

        def __init__(self, moduli):
            for q in moduli:
                if q % 2 == 0 or q.bit_length() > NUMPY_MAX_MODULUS_BITS:
                    raise ValueError(f"modulus {q} is not Montgomery-friendly")
            self.q_col = _np.array(moduli, dtype=_np.uint64)[:, None]
            self.neg_q_inv = _np.array(
                [(-pow(q, -1, 1 << 64)) % (1 << 64) for q in moduli], dtype=_np.uint64
            )[:, None]
            self.r2 = _np.array(
                [pow(1 << 64, 2, q) for q in moduli], dtype=_np.uint64
            )[:, None]

        def redc(self, hi, lo):
            m = lo * self.neg_q_inv
            mq_hi, _mq_lo = _mul64(m, self.q_col)
            t = hi + mq_hi + (lo != _np.uint64(0)).astype(_np.uint64)
            return _np.where(t >= self.q_col, t - self.q_col, t)

        def mont_mul(self, a, b):
            return self.redc(*_mul64(a, b))

        def mulmod(self, a, b):
            return self.mont_mul(self.mont_mul(a, b), self.r2)

    def _shoup32_mul(y, w, s32, q_u):
        """``w * y mod q`` for ``q < 2^32`` via *direct* single-word products.

        ``s32 = floor(w * 2^32 / q)``.  Every product fits one 64-bit word —
        no 32-bit limb splitting, no emulated 128-bit multiply — and the
        result comes out fully reduced into ``[0, q)``.  Precondition:
        ``y < 2^32`` (holds whenever the operands stay reduced below ``q``).
        """
        t = (y * s32) >> _S32
        r = y * w - t * q_u          # true value in [0, 2q); wraps cancel
        return _np.minimum(r, r - q_u)

    def _shoup32_split(values: Sequence[int], q: int):
        """Twiddles plus their beta=2^32 Shoup constants ``floor(w * 2^32 / q)``."""
        w = _np.array(values, dtype=_np.uint64)
        s32 = _np.array([(int(v) << 32) // q for v in values], dtype=_np.uint64)
        return w, s32

    def _shoup_mul_relaxed(y, w, ws_lo, ws_hi, q_u):
        """``w * y mod q`` up to THREE extra ``q``: result in ``[0, 4q)``.

        Like :func:`_shoup_mul_lazy` but drops the low-low partial product
        from the high-word estimate: with ``t' = hi*hi + (hi*lo >> 32) +
        (lo*hi >> 32)`` the exact quotient satisfies ``t' <= t <= t' + 2``,
        so the remainder picks up at most ``2q`` beyond the usual lazy
        bound.  Seven fewer vector ops on the hottest scalar-multiply path;
        callers reduce from ``[0, 4q)`` (requires ``4q < 2^64``).
        """
        y_lo = y & _M32
        y_hi = y >> _S32
        mid1 = y_hi * ws_lo
        mid2 = y_lo * ws_hi
        mid1 >>= _S32
        mid2 >>= _S32
        t = y_hi * ws_hi
        t += mid1
        t += mid2
        t *= q_u
        result = y * w
        result -= t
        return result               # wraps mod 2^64; true value is < 4q

    def _shoup_split(values: Sequence[int], q: int):
        """Twiddles plus their Shoup constants ``floor(w * 2^64 / q)``, pre-split
        into 32-bit halves so the hot loop skips two mask/shift ops."""
        w = _np.array(values, dtype=_np.uint64)
        shoup = [(int(v) << 64) // q for v in values]
        s_lo = _np.array([s & 0xFFFFFFFF for s in shoup], dtype=_np.uint64)
        s_hi = _np.array([s >> 32 for s in shoup], dtype=_np.uint64)
        return w, s_lo, s_hi

    def _shoup_mul_lazy(y, w, ws_lo, ws_hi, q_u):
        """``w * y mod q`` up to one extra ``q``: result in ``[0, 2q)``.

        ``w`` is the fixed operand with precomputed Shoup constant
        ``ws = floor(w * 2^64 / q)`` (split into ``ws_lo``/``ws_hi``); ``y``
        may be ANY uint64 value — the bound holds without preconditions,
        which is what lets the butterflies run lazily (Harvey-style).
        In-place ufuncs keep the temporary count down; this is the single
        hottest code path of the backend.
        """
        y_lo = y & _M32
        y_hi = y >> _S32
        mid1 = y_hi * ws_lo
        mid2 = y_lo * ws_hi
        cross = y_lo * ws_lo
        cross >>= _S32
        cross += mid1 & _M32
        cross += mid2 & _M32
        cross >>= _S32
        mid1 >>= _S32
        mid2 >>= _S32
        t = y_hi * ws_hi            # y_hi is full shape, so t is too
        t += mid1
        t += mid2
        t += cross
        t *= q_u
        result = y * w
        result -= t
        return result               # wraps mod 2^64; true value is < 2q

    class _NumpyNTTTables:
        """Shoup twiddle tables for one ``(N, q)`` pair (plain domain)."""

        __slots__ = (
            "q_u", "q2",
            "fwd_w", "fwd_s_lo", "fwd_s_hi",
            "inv_w", "inv_s_lo", "inv_s_hi",
            "n_inv_w", "n_inv_s_lo", "n_inv_s_hi",
            "r_w", "r_s_lo", "r_s_hi",
            "use32", "fwd_s32", "inv_s32", "n_inv_s32",
        )

        def __init__(self, context):
            q = context.modulus
            self.q_u = _np.uint64(q)
            self.q2 = _np.uint64(2 * q)
            self.fwd_w, self.fwd_s_lo, self.fwd_s_hi = _shoup_split(context._fwd_twiddles, q)
            self.inv_w, self.inv_s_lo, self.inv_s_hi = _shoup_split(context._inv_twiddles, q)
            n_inv_w, n_inv_s_lo, n_inv_s_hi = _shoup_split([context.n_inv], q)
            self.n_inv_w = n_inv_w[0]
            self.n_inv_s_lo = n_inv_s_lo[0]
            self.n_inv_s_hi = n_inv_s_hi[0]
            # R = 2^64 mod q: pre-scaling one convolution operand by R lets the
            # pointwise product exit the Montgomery domain in a single REDC.
            r_w, r_s_lo, r_s_hi = _shoup_split([(1 << 64) % q], q)
            self.r_w = r_w[0]
            self.r_s_lo = r_s_lo[0]
            self.r_s_hi = r_s_hi[0]
            # <= 32-bit moduli (the TFHE primes) get direct single-word
            # butterflies: beta = 2^32 Shoup constants, no limb splitting.
            self.use32 = q.bit_length() <= 32
            if self.use32:
                _w, self.fwd_s32 = _shoup32_split(context._fwd_twiddles, q)
                _w, self.inv_s32 = _shoup32_split(context._inv_twiddles, q)
                self.n_inv_s32 = _np.uint64((context.n_inv << 32) // q)
            else:
                self.fwd_s32 = self.inv_s32 = self.n_inv_s32 = None

    class _RNSNTTTables:
        """Per-limb twiddle tables stacked along a leading limb axis.

        Built from the per-limb :class:`_NumpyNTTTables` of one RNS basis:
        the twiddle arrays become ``(L, N)`` matrices and the per-limb
        constants ``(L, 1)`` columns, so the Cooley-Tukey/Gentleman-Sande
        stage loops transform *every limb at once* with per-limb moduli.
        """

        __slots__ = (
            "n", "q_col", "q2_col", "q_s", "q2_s",
            "fwd_w", "fwd_lo", "fwd_hi",
            "inv_w", "inv_lo", "inv_hi",
            "n_inv_w", "n_inv_lo", "n_inv_hi",
            "r_w", "r_lo", "r_hi",
            "mont",
            "use32", "fwd_s32", "inv_s32", "n_inv_s32",
        )

        def __init__(self, per_limb, moduli):
            self.n = len(per_limb[0].fwd_w)
            self.q_col = _np.array(moduli, dtype=_np.uint64)[:, None]
            self.q2_col = self.q_col * _np.uint64(2)
            self.q_s = self.q_col[:, :, None]
            self.q2_s = self.q2_col[:, :, None]
            self.fwd_w = _np.stack([t.fwd_w for t in per_limb])
            self.fwd_lo = _np.stack([t.fwd_s_lo for t in per_limb])
            self.fwd_hi = _np.stack([t.fwd_s_hi for t in per_limb])
            self.inv_w = _np.stack([t.inv_w for t in per_limb])
            self.inv_lo = _np.stack([t.inv_s_lo for t in per_limb])
            self.inv_hi = _np.stack([t.inv_s_hi for t in per_limb])
            self.n_inv_w = _np.array([t.n_inv_w for t in per_limb])[:, None]
            self.n_inv_lo = _np.array([t.n_inv_s_lo for t in per_limb])[:, None]
            self.n_inv_hi = _np.array([t.n_inv_s_hi for t in per_limb])[:, None]
            self.r_w = _np.array([t.r_w for t in per_limb])[:, None]
            self.r_lo = _np.array([t.r_s_lo for t in per_limb])[:, None]
            self.r_hi = _np.array([t.r_s_hi for t in per_limb])[:, None]
            self.mont = _MontgomeryVec(moduli)
            # All limbs < 2^32: the whole stack takes the direct single-word
            # butterflies (per-limb beta = 2^32 constants).
            self.use32 = all(t.use32 for t in per_limb)
            if self.use32:
                self.fwd_s32 = _np.stack([t.fwd_s32 for t in per_limb])
                self.inv_s32 = _np.stack([t.inv_s32 for t in per_limb])
                self.n_inv_s32 = _np.array(
                    [t.n_inv_s32 for t in per_limb]
                )[:, None]
            else:
                self.fwd_s32 = self.inv_s32 = self.n_inv_s32 = None

    class _FourStepTables:
        """Backend-resident tables for one ``(N, q, rows)`` four-step split."""

        __slots__ = (
            "order", "omega_rows", "omega_cols", "omega_rows_inv", "omega_cols_inv",
            "psi_w", "psi_lo", "psi_hi",
            "psi_inv_w", "psi_inv_lo", "psi_inv_hi",
            "tw_w", "tw_lo", "tw_hi",
            "tw_inv_w", "tw_inv_lo", "tw_inv_hi",
        )

        def __init__(self, context, rows):
            n = context.ring_degree
            q = context.modulus
            cols = n // rows
            self.order = _np.array(_bit_reverse_indices(n), dtype=_np.intp)
            self.omega_rows = pow(context.omega, cols, q)
            self.omega_cols = pow(context.omega, rows, q)
            self.omega_rows_inv = pow(context.omega_inv, cols, q)
            self.omega_cols_inv = pow(context.omega_inv, rows, q)
            self.psi_w, self.psi_lo, self.psi_hi = _shoup_split(context._psi_powers, q)
            self.psi_inv_w, self.psi_inv_lo, self.psi_inv_hi = _shoup_split(
                context._psi_inv_powers, q
            )
            self.tw_w, self.tw_lo, self.tw_hi = _shoup_split(
                context.four_step_twiddles(rows), q
            )
            self.tw_inv_w, self.tw_inv_lo, self.tw_inv_hi = _shoup_split(
                context.four_step_twiddles(rows, inverse=True), q
            )


class NumpyBackend(ArithmeticBackend):
    """Vectorized uint64 backend (direct-word or Montgomery/Shoup reduction).

    ``min_vector_length`` / ``min_ntt_length`` tune the crossovers below
    which the python backend is used instead (list<->array round-trips
    dominate for tiny rings; measured break-even is ~512 elements for the
    element-wise ops and ~128 points for the transforms).  Set both to 0 to
    force the vectorized path everywhere (the parity tests do).

    ``store_uint32`` selects the narrow storage mode: limb stores whose
    moduli all fit 32 bits (the TFHE primes and word-size CKKS chains) are
    held as ``uint32`` matrices at rest — half the resident footprint and
    memory traffic of the default ``uint64`` stores.  Kernels upcast on
    load and downcast on store; the arithmetic itself is unchanged (and the
    parity suite proves the mode bit-exact).  Defaults to the
    ``REPRO_U32_STORE`` environment variable.
    """

    name = "numpy"

    def __init__(self, min_vector_length: int = 512, min_ntt_length: int = 128,
                 store_uint32: "bool | None" = None):
        if _np is None:  # pragma: no cover - guarded by get_backend
            raise RuntimeError("numpy is not available")
        self._fallback = PythonBackend()
        self.min_vector_length = min_vector_length
        self.min_ntt_length = min_ntt_length
        if store_uint32 is None:
            store_uint32 = os.environ.get("REPRO_U32_STORE", "").strip().lower() in (
                "1", "true", "yes", "on",
            )
        self.store_uint32 = store_uint32
        self._mont_cache: Dict[int, _Montgomery] = {}
        self._mont_vec_cache: Dict[tuple, _MontgomeryVec] = {}
        self._ntt_tables: Dict[tuple, _NumpyNTTTables] = {}
        self._rns_ntt_tables: Dict[tuple, "_RNSNTTTables | None"] = {}
        self._cyclic_tables: Dict[tuple, list] = {}
        self._four_step_tables: Dict[tuple, _FourStepTables] = {}
        self._q_col_cache: Dict[tuple, object] = {}

    # -- modulus classification -------------------------------------------
    def _direct_ok(self, q: int) -> bool:
        """Products of reduced operands fit one 64-bit word."""
        return q <= (1 << 32)

    def _mont(self, q: int) -> "_Montgomery | None":
        if q % 2 == 0 or q.bit_length() > NUMPY_MAX_MODULUS_BITS:
            return None
        mont = self._mont_cache.get(q)
        if mont is None:
            mont = _Montgomery(q)
            self._mont_cache[q] = mont
        return mont

    def _linear_ok(self, q: int, *sequences) -> bool:
        """Whether add/sub/neg can run in uint64 for this modulus."""
        if q.bit_length() > NUMPY_MAX_MODULUS_BITS:
            return False
        return all(len(s) >= self.min_vector_length for s in sequences)

    def _mul_ok(self, q: int, *sequences) -> bool:
        if not self._linear_ok(q, *sequences):
            return False
        return self._direct_ok(q) or self._mont(q) is not None

    @staticmethod
    def _to_array(values: Sequence[int], q: int):
        """uint64 array of ``values`` reduced into ``[0, q)`` (exact)."""
        try:
            arr = _np.array(values, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            arr = _np.array([int(v) % q for v in values], dtype=_np.uint64)
            return arr
        q_u = _np.uint64(q)
        if (arr >= q_u).any():
            arr = arr % q_u
        return arr

    # -- element-wise ------------------------------------------------------
    def add(self, a, b, q):
        if not self._linear_ok(q, a, b):
            return self._fallback.add(a, b, q)
        x = self._to_array(a, q)
        x += self._to_array(b, q)
        return _np.minimum(x, x - _np.uint64(q)).tolist()

    def sub(self, a, b, q):
        if not self._linear_ok(q, a, b):
            return self._fallback.sub(a, b, q)
        x = self._to_array(a, q)
        x -= self._to_array(b, q)                  # wraps when negative
        return _np.minimum(x, x + _np.uint64(q)).tolist()

    def neg(self, a, q):
        if not self._linear_ok(q, a):
            return self._fallback.neg(a, q)
        x = self._to_array(a, q)
        q_u = _np.uint64(q)
        return _np.where(x == _np.uint64(0), x, q_u - x).tolist()

    def _mulmod_arrays(self, x, y, q: int):
        if self._direct_ok(q):
            return (x * y) % _np.uint64(q)
        return self._mont(q).mulmod(x, y)

    @staticmethod
    def _scalar_mulmod(x, scalar: int, q: int):
        """Exact ``(x * scalar) % q`` via a Shoup constant for the scalar.

        One lazy Shoup product plus one conditional subtraction — much
        cheaper than a general double-REDC Montgomery multiply.  ``x`` may
        hold any uint64 values; ``q`` must satisfy ``2q < 2^64``.
        """
        scalar %= q
        shoup = (scalar << 64) // q
        q_u = _np.uint64(q)
        v = _shoup_mul_lazy(
            x, _np.uint64(scalar),
            _np.uint64(shoup & 0xFFFFFFFF), _np.uint64(shoup >> 32), q_u,
        )
        return _np.minimum(v, v - q_u)

    def mul(self, a, b, q):
        if not self._mul_ok(q, a, b):
            return self._fallback.mul(a, b, q)
        x = self._to_array(a, q)
        y = self._to_array(b, q)
        return self._mulmod_arrays(x, y, q).tolist()

    def _scalar_ok(self, q: int, *sequences) -> bool:
        """Fixed-operand (Shoup) multiplies only need ``2q`` to fit a word."""
        return self._linear_ok(q, *sequences)

    def scalar_mul(self, a, scalar, q):
        if not self._scalar_ok(q, a):
            return self._fallback.scalar_mul(a, scalar, q)
        if self._direct_ok(q):
            return ((self._to_array(a, q) * _np.uint64(scalar % q)) % _np.uint64(q)).tolist()
        return self._scalar_mulmod(self._to_array(a, q), scalar, q).tolist()

    def sub_scaled(self, a, b, scalar, q):
        if not self._scalar_ok(q, a, b):
            return self._fallback.sub_scaled(a, b, scalar, q)
        x = self._to_array(a, q)
        y = self._to_array(b, q)
        q_u = _np.uint64(q)
        diff = _np.where(x >= y, x - y, x + (q_u - y))
        if self._direct_ok(q):
            return ((diff * _np.uint64(scalar % q)) % q_u).tolist()
        return self._scalar_mulmod(diff, scalar, q).tolist()

    def weighted_sum(self, rows, weights, q):
        if len(rows) != len(weights):
            raise ValueError("rows and weights must have equal length")
        if not rows:
            raise ValueError("weighted_sum needs at least one row")
        if not self._scalar_ok(q, *rows):
            return self._fallback.weighted_sum(rows, weights, q)
        q_u = _np.uint64(q)
        direct = self._direct_ok(q)
        acc = _np.zeros(len(rows[0]), dtype=_np.uint64)
        for row, weight in zip(rows, weights):
            x = self._to_array(row, q)
            if direct:
                term = (x * _np.uint64(weight % q)) % q_u
            else:
                term = self._scalar_mulmod(x, weight, q)
            acc += term
            acc = _np.where(acc >= q_u, acc - q_u, acc)
        return acc.tolist()

    def mat_mulmod(self, rows, matrix, q):
        # Split the right operand into ``width``-bit limbs so every integer
        # matmul stays exact in uint64: each partial product is below
        # ``q * 2^width``, and the guard checks the inner-dimension sum
        # cannot wrap.  The per-limb partials are small (members x columns),
        # so recombining them with python ints costs nothing.
        inner = len(matrix)
        width = 16 if q <= (1 << 31) else 8
        if (
            not rows or not matrix
            or q.bit_length() + width + (inner - 1).bit_length() > 64
        ):
            return super().mat_mulmod(rows, matrix, q)
        try:
            lhs = _np.array(rows, dtype=_np.uint64)
            rhs = _np.array(matrix, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            return super().mat_mulmod(rows, matrix, q)
        q_u = _np.uint64(q)
        lhs %= q_u
        rhs %= q_u
        mask = _np.uint64((1 << width) - 1)
        partials = []
        for _ in range(-(-q.bit_length() // width)):
            partials.append(((lhs @ (rhs & mask)) % q_u).tolist())
            rhs = rhs >> _np.uint64(width)
        out: List[List[int]] = []
        for r in range(len(partials[0])):
            out.append([
                sum(
                    partial[r][c] << (limb * width)
                    for limb, partial in enumerate(partials)
                ) % q
                for c in range(len(partials[0][r]))
            ])
        return out

    # -- packed limb-major (RNS) overrides ---------------------------------
    def _matrix(self, store):
        """View a limb store as a uint64 matrix (``None`` if it cannot be).

        uint32 stores (the narrow storage mode) are upcast here, so every
        kernel computes in 64-bit words regardless of the storage dtype.
        """
        if isinstance(store, _np.ndarray):
            if store.dtype != _np.uint64:
                return store.astype(_np.uint64)
            return store
        try:
            return _np.array(store, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            return None

    def _finalize(self, arr, moduli):
        """Downcast a kernel result to the narrow storage dtype when enabled."""
        if self.store_uint32 and self._moduli_u32(moduli):
            return arr.astype(_np.uint32)
        return arr

    def _q_col(self, moduli):
        """``(L, 1)`` uint64 column of the per-limb moduli (cached)."""
        key = tuple(moduli)
        col = self._q_col_cache.get(key)
        if col is None:
            col = _np.array(key, dtype=_np.uint64)[:, None]
            self._q_col_cache[key] = col
        return col

    def _limbs_ok(self, moduli, matrix) -> bool:
        if matrix is None:
            return False
        return (
            all(int(q).bit_length() <= NUMPY_MAX_MODULUS_BITS for q in moduli)
            and matrix.size >= self.min_vector_length
        )

    @staticmethod
    def _row_shoup(scalars, moduli):
        """Per-row Shoup constants for fixed per-limb scalars: ``(L, 1)`` arrays."""
        ws, los, his = [], [], []
        for scalar, q in zip(scalars, moduli):
            scalar = int(scalar) % q
            shoup = (scalar << 64) // q
            ws.append(scalar)
            los.append(shoup & 0xFFFFFFFF)
            his.append(shoup >> 32)
        return (
            _np.array(ws, dtype=_np.uint64)[:, None],
            _np.array(los, dtype=_np.uint64)[:, None],
            _np.array(his, dtype=_np.uint64)[:, None],
        )

    @staticmethod
    def _row_shoup32(scalars, moduli):
        """Per-row beta=2^32 Shoup constants (moduli < 2^32): ``(L, 1)`` arrays."""
        ws, s32s = [], []
        for scalar, q in zip(scalars, moduli):
            scalar = int(scalar) % q
            ws.append(scalar)
            s32s.append((scalar << 32) // q)
        return (
            _np.array(ws, dtype=_np.uint64)[:, None],
            _np.array(s32s, dtype=_np.uint64)[:, None],
        )

    @staticmethod
    def _moduli_u32(moduli) -> bool:
        return all(int(q).bit_length() <= 32 for q in moduli)

    def _mont_vec(self, moduli) -> "_MontgomeryVec | None":
        key = tuple(moduli)
        mont = self._mont_vec_cache.get(key)
        if mont is None and key not in self._mont_vec_cache:
            usable = all(q % 2 == 1 and q.bit_length() <= NUMPY_MAX_MODULUS_BITS
                         for q in key)
            mont = _MontgomeryVec(key) if usable else None
            self._mont_vec_cache[key] = mont
        return mont

    def pack_limbs(self, rows, moduli):
        if any(int(q).bit_length() > NUMPY_MAX_MODULUS_BITS for q in moduli):
            return super().pack_limbs(rows, moduli)
        matrix = self._matrix(rows)
        if matrix is None:
            return super().pack_limbs(rows, moduli)
        return self._finalize(matrix, moduli)

    def limbs_zero(self, count, length, moduli=None):
        if moduli is not None and self.store_uint32 and self._moduli_u32(moduli):
            return _np.zeros((count, length), dtype=_np.uint32)
        return _np.zeros((count, length), dtype=_np.uint64)

    def limbs_add(self, a, b, moduli):
        x = self._matrix(a)
        y = self._matrix(b)
        if y is None or not self._limbs_ok(moduli, x):
            return super().limbs_add(a, b, moduli)
        s = x + y
        return self._finalize(_np.minimum(s, s - self._q_col(moduli)), moduli)

    def limbs_sub(self, a, b, moduli):
        x = self._matrix(a)
        y = self._matrix(b)
        if y is None or not self._limbs_ok(moduli, x):
            return super().limbs_sub(a, b, moduli)
        d = x - y                                   # wraps when negative
        return self._finalize(_np.minimum(d, d + self._q_col(moduli)), moduli)

    def limbs_neg(self, a, moduli):
        x = self._matrix(a)
        if not self._limbs_ok(moduli, x):
            return super().limbs_neg(a, moduli)
        q = self._q_col(moduli)
        return self._finalize(_np.where(x == _np.uint64(0), x, q - x), moduli)

    def limbs_mul(self, a, b, moduli):
        x = self._matrix(a)
        y = self._matrix(b)
        if y is None or not self._limbs_ok(moduli, x):
            return super().limbs_mul(a, b, moduli)
        if all(int(q) <= (1 << 32) for q in moduli):
            return self._finalize((x * y) % self._q_col(moduli), moduli)
        mont = self._mont_vec(moduli)
        if mont is None:
            return super().limbs_mul(a, b, moduli)
        return mont.mulmod(x, y)

    def limbs_scalar_mul(self, a, scalars, moduli):
        x = self._matrix(a)
        if not self._limbs_ok(moduli, x):
            return super().limbs_scalar_mul(a, scalars, moduli)
        q = self._q_col(moduli)
        if self._moduli_u32(moduli):
            w, s32 = self._row_shoup32(scalars, moduli)
            return self._finalize(_shoup32_mul(x, w, s32, q), moduli)
        w, lo, hi = self._row_shoup(scalars, moduli)
        v = _shoup_mul_relaxed(x, w, lo, hi, q)
        v = _np.minimum(v, v - (q + q))
        return _np.minimum(v, v - q)

    def batched_sub_scaled(self, a, b, scalars, moduli, b_modulus=None):
        x = self._matrix(a)
        if not self._limbs_ok(moduli, x):
            return super().batched_sub_scaled(a, b, scalars, moduli, b_modulus)
        q = self._q_col(moduli)
        if self._is_store(b):
            # One row per limb, already reduced under the matching modulus.
            y = self._matrix(b)
            if y is None:
                return super().batched_sub_scaled(a, b, scalars, moduli, b_modulus)
        else:
            if isinstance(b, _np.ndarray):
                row = b if b.dtype == _np.uint64 else b.astype(_np.uint64)
            else:
                row = _np.asarray(b, dtype=_np.uint64)
            if b_modulus is not None and all(b_modulus <= 2 * int(qi) for qi in moduli):
                # Similar-magnitude moduli: one conditional subtraction per row.
                y = _np.minimum(row, row - q)
            else:
                y = row % q
        d = x - y                                   # wraps when negative
        d = _np.minimum(d, d + q)
        if self._moduli_u32(moduli):
            w, s32 = self._row_shoup32(scalars, moduli)
            return self._finalize(_shoup32_mul(d, w, s32, q), moduli)
        w, lo, hi = self._row_shoup(scalars, moduli)
        v = _shoup_mul_relaxed(d, w, lo, hi, q)
        v = _np.minimum(v, v - (q + q))
        return _np.minimum(v, v - q)

    def _bconv_tables(self, plan: "BConvPlan"):
        tables = plan.cache.get("numpy")
        if tables is None:
            use32 = self._moduli_u32(plan.source_moduli) and self._moduli_u32(
                plan.target_moduli
            )
            q_src = self._q_col(plan.source_moduli)
            q_tgt = self._q_col(plan.target_moduli)
            # Per-source-limb weight columns with per-target Shoup constants:
            # weight_shoup[i] multiplies one source row into all target rows.
            if use32:
                inv = self._row_shoup32(plan.inverses, plan.source_moduli)
                weight_shoup = [
                    self._row_shoup32([row[i] for row in plan.weights],
                                      plan.target_moduli)
                    for i in range(len(plan.source_moduli))
                ]
            else:
                inv = self._row_shoup(plan.inverses, plan.source_moduli)
                weight_shoup = [
                    self._row_shoup([row[i] for row in plan.weights],
                                    plan.target_moduli)
                    for i in range(len(plan.source_moduli))
                ]
            # Lazy accumulation budget: u32 terms are < p (so Ls * p always
            # fits 64 bits); relaxed-Shoup terms are < 4p, so the unreduced
            # sum needs bits(p) + 2 + ceil(log2(Ls)) <= 64.
            lazy = use32 or (
                max(int(p).bit_length() for p in plan.target_moduli) + 2
                + max(1, (len(plan.source_moduli) - 1).bit_length()) <= 64
            )
            tables = (use32, lazy, inv, q_src, q_tgt, weight_shoup)
            plan.cache["numpy"] = tables
        return tables

    def bconv_matmul(self, store, plan):
        x = self._matrix(store)
        if (
            not self._limbs_ok(plan.source_moduli, x)
            or any(int(p).bit_length() > NUMPY_MAX_MODULUS_BITS
                   for p in plan.target_moduli)
        ):
            return super().bconv_matmul(store, plan)
        use32, lazy, inv, q_src, q_tgt, weight_shoup = self._bconv_tables(plan)
        acc = _np.zeros((len(plan.target_moduli), x.shape[1]), dtype=_np.uint64)
        if use32:
            # Step 1: x_i * (Q/q_i)^{-1} mod q_i — single-word products.
            scaled = _shoup32_mul(x, inv[0], inv[1], q_src)
            # Step 2: one source limb into all target rows per pass; terms
            # are fully reduced (< p), so the accumulator never overflows.
            for i, (w, s32) in enumerate(weight_shoup):
                acc += _shoup32_mul(scaled[i], w, s32, q_tgt)
            return self._finalize(acc % q_tgt, plan.target_moduli)
        inv_w, inv_lo, inv_hi = inv
        # Step 1: x_i * (Q/q_i)^{-1} mod q_i, fully reduced — the weighted
        # sum needs the canonical residue in [0, q_i), not a lazy
        # representative (a different representative would shift the result
        # by k * q_i * w mod p_j).
        scaled = _shoup_mul_relaxed(x, inv_w, inv_lo, inv_hi, q_src)
        scaled = _np.minimum(scaled, scaled - (q_src + q_src))
        scaled = _np.minimum(scaled, scaled - q_src)
        if lazy:
            for i, (w, lo, hi) in enumerate(weight_shoup):
                acc += _shoup_mul_relaxed(scaled[i], w, lo, hi, q_tgt)
            return self._finalize(acc % q_tgt, plan.target_moduli)
        for i, (w, lo, hi) in enumerate(weight_shoup):
            term = _shoup_mul_relaxed(scaled[i], w, lo, hi, q_tgt)
            term = _np.minimum(term, term - (q_tgt + q_tgt))
            term = _np.minimum(term, term - q_tgt)
            acc += term
            acc = _np.where(acc >= q_tgt, acc - q_tgt, acc)
        return self._finalize(acc, plan.target_moduli)

    def batched_ntt(self, contexts, store):
        tabs = self._rns_tables(tuple(contexts))
        x = self._matrix(store)
        if tabs is None or x is None:
            return super().batched_ntt(contexts, store)
        moduli = tuple(ctx.modulus for ctx in contexts)
        if tabs.use32:
            return self._finalize(
                self._forward_stages_rns_u32(x.copy(), tabs), moduli
            )
        x = self._forward_stages_rns(x.copy(), tabs)
        x = _np.minimum(x, x - tabs.q2_col)
        return _np.minimum(x, x - tabs.q_col)

    def batched_intt(self, contexts, store):
        tabs = self._rns_tables(tuple(contexts))
        x = self._matrix(store)
        if tabs is None or x is None:
            return super().batched_intt(contexts, store)
        moduli = tuple(ctx.modulus for ctx in contexts)
        if tabs.use32:
            x = self._inverse_stages_rns_u32(x.copy(), tabs)
            return self._finalize(
                _shoup32_mul(x, tabs.n_inv_w, tabs.n_inv_s32, tabs.q_col), moduli
            )
        x = self._inverse_stages_rns(x.copy(), tabs)
        v = _shoup_mul_lazy(x, tabs.n_inv_w, tabs.n_inv_lo, tabs.n_inv_hi,
                            tabs.q_col)
        return _np.minimum(v, v - tabs.q_col)

    def limbs_convolution(self, contexts, a, b):
        tabs = self._rns_tables(tuple(contexts))
        x = self._matrix(a)
        y = self._matrix(b)
        if tabs is None or x is None or y is None:
            return super().limbs_convolution(contexts, a, b)
        if tabs.use32:
            # Direct single-word path: transforms stay fully reduced, so the
            # pointwise product is one 64-bit multiply plus one remainder.
            z = self._forward_stages_rns_u32(_np.stack([x, y]), tabs)
            prod = (z[0] * z[1]) % tabs.q_col
            w = self._inverse_stages_rns_u32(prod, tabs)
            return self._finalize(
                _shoup32_mul(w, tabs.n_inv_w, tabs.n_inv_s32, tabs.q_col),
                tuple(ctx.modulus for ctx in contexts),
            )
        # b rides the transform pre-scaled by R = 2^64 per limb, so the
        # pointwise product exits the Montgomery domain in one REDC.
        yb = _shoup_mul_lazy(y, tabs.r_w, tabs.r_lo, tabs.r_hi, tabs.q_col)
        z = _np.stack([x, yb])                      # (2, L, n); both < 2q
        z = self._forward_stages_rns(z, tabs)
        z = _np.minimum(z, z - tabs.q2_col)
        z = _np.minimum(z, z - tabs.q_col)
        prod = tabs.mont.mont_mul(z[0], z[1])       # (a)(bR)R^-1 = ab mod q_i
        w = self._inverse_stages_rns(prod, tabs)
        v = _shoup_mul_lazy(w, tabs.n_inv_w, tabs.n_inv_lo, tabs.n_inv_hi,
                            tabs.q_col)
        return _np.minimum(v, v - tabs.q_col)

    def limbs_eval_key(self, contexts, store):
        tabs = self._rns_tables(tuple(contexts))
        x = self._matrix(store)
        if tabs is None or x is None:
            return super().limbs_eval_key(contexts, store)
        if tabs.use32:
            payload = self._forward_stages_rns_u32(x.copy(), tabs)
            if self.store_uint32:
                # Narrow storage halves the resident key-cache footprint.
                payload = payload.astype(_np.uint32)
            return ("u32", payload, store)
        # Pre-scale by R = 2^64 per limb so the pointwise product against a
        # plain (lazy) transform exits the Montgomery domain in one REDC.
        yb = _shoup_mul_lazy(x, tabs.r_w, tabs.r_lo, tabs.r_hi, tabs.q_col)
        z = self._forward_stages_rns(yb, tabs)
        z = _np.minimum(z, z - tabs.q2_col)
        return ("montR", _np.minimum(z, z - tabs.q_col), store)

    def limbs_mac_eval(self, contexts, store, key_handles):
        tabs = self._rns_tables(tuple(contexts))
        x = self._matrix(store)
        form = "u32" if tabs is not None and tabs.use32 else "montR"
        prepared = all(handle[0] == form for handle in key_handles)
        if tabs is None or x is None or not prepared:
            return super().limbs_mac_eval(contexts, store, key_handles)
        if tabs.use32:
            fx = self._forward_stages_rns_u32(x.copy(), tabs)
            prods = _np.stack(
                [(fx * handle[1]) % tabs.q_col for handle in key_handles]
            )
            out = self._inverse_stages_rns_u32(prods, tabs)
            out = _shoup32_mul(out, tabs.n_inv_w, tabs.n_inv_s32, tabs.q_col)
            return [out[idx] for idx in range(len(key_handles))]
        fx = self._forward_stages_rns(x.copy(), tabs)
        fx = _np.minimum(fx, fx - tabs.q2_col)
        fx = _np.minimum(fx, fx - tabs.q_col)
        prods = _np.stack(
            [tabs.mont.mont_mul(fx, handle[1]) for handle in key_handles]
        )
        out = self._inverse_stages_rns(prods, tabs)
        v = _shoup_mul_lazy(out, tabs.n_inv_w, tabs.n_inv_lo, tabs.n_inv_hi,
                            tabs.q_col)
        v = _np.minimum(v, v - tabs.q_col)
        return [v[idx] for idx in range(len(key_handles))]

    def limbs_eval_mac(self, contexts, digit_stores, key_handles):
        tabs = self._rns_tables(tuple(contexts))
        mats = [self._matrix(store) for store in digit_stores]
        form = "u32" if tabs is not None and tabs.use32 else "montR"
        prepared = all(
            handle[0] == form for handles in key_handles for handle in handles
        )
        if tabs is None or any(m is None for m in mats) or not prepared:
            return super().limbs_eval_mac(contexts, digit_stores, key_handles)
        q = tabs.q_col
        accs = []
        for component in range(len(key_handles[0])):
            acc = None
            for mat, handles in zip(mats, key_handles):
                payload = handles[component][1]
                if tabs.use32:
                    term = (mat * payload) % q      # u32 payload promotes to u64
                else:
                    # mont_mul(plain, key*R) exits the Montgomery domain: the
                    # term is the plain product, fully reduced.
                    term = tabs.mont.mont_mul(mat, payload)
                if acc is None:
                    acc = term
                else:
                    acc = acc + term
                    acc = _np.minimum(acc, acc - q)
            accs.append(acc)
        return accs

    def limbs_tensor_product(self, a0, a1, b0, b1, moduli):
        mats = [self._matrix(store) for store in (a0, a1, b0, b1)]
        if any(m is None for m in mats) or not self._limbs_ok(moduli, mats[0]):
            return super().limbs_tensor_product(a0, a1, b0, b1, moduli)
        x = _np.stack(mats[:2])                     # (2, L, n)
        y = _np.stack(mats[2:])
        q = self._q_col(moduli)
        if self._moduli_u32(moduli):
            prods = (x[:, None] * y[None, :]) % q   # (2, 2, L, n) in one pass
        else:
            mont = self._mont_vec(moduli)
            if mont is None:
                return super().limbs_tensor_product(a0, a1, b0, b1, moduli)
            prods = mont.mulmod(x[:, None], y[None, :])
        d1 = prods[0, 1] + prods[1, 0]
        d1 = _np.minimum(d1, d1 - q)
        return (
            self._finalize(prods[0, 0], moduli),
            self._finalize(d1, moduli),
            self._finalize(prods[1, 1], moduli),
        )

    def stacked_intt(self, contexts, stores):
        tabs = self._rns_tables(tuple(contexts))
        mats = [self._matrix(store) for store in stores]
        if tabs is None or any(m is None for m in mats):
            return super().stacked_intt(contexts, stores)
        moduli = tuple(ctx.modulus for ctx in contexts)
        x = _np.stack(mats)                         # (C, L, n): one dispatch
        if tabs.use32:
            x = self._inverse_stages_rns_u32(x, tabs)
            out = _shoup32_mul(x, tabs.n_inv_w, tabs.n_inv_s32, tabs.q_col)
            return [self._finalize(out[i], moduli) for i in range(len(mats))]
        x = self._inverse_stages_rns(x, tabs)
        v = _shoup_mul_lazy(x, tabs.n_inv_w, tabs.n_inv_lo, tabs.n_inv_hi,
                            tabs.q_col)
        v = _np.minimum(v, v - tabs.q_col)
        return [v[i] for i in range(len(mats))]

    def stacked_ntt(self, contexts, stores):
        tabs = self._rns_tables(tuple(contexts))
        mats = [self._matrix(store) for store in stores]
        if tabs is None or any(m is None for m in mats):
            return super().stacked_ntt(contexts, stores)
        moduli = tuple(ctx.modulus for ctx in contexts)
        x = _np.stack(mats)                         # (C, L, n): one dispatch
        if tabs.use32:
            out = self._forward_stages_rns_u32(x, tabs)
            return [self._finalize(out[i], moduli) for i in range(len(mats))]
        x = self._forward_stages_rns(x, tabs)
        x = _np.minimum(x, x - tabs.q2_col)
        x = _np.minimum(x, x - tabs.q_col)
        return [x[i] for i in range(len(mats))]

    def stacked_gather(self, stores, spec):
        if (
            not stores
            or not all(isinstance(s, _np.ndarray) for s in stores)
            or len({(s.shape, s.dtype) for s in stores}) != 1
        ):
            return super().stacked_gather(stores, spec)
        idx = spec.cache.get("numpy")
        if idx is None:
            idx = _np.array(spec.src, dtype=_np.intp)
            spec.cache["numpy"] = idx
        out = _np.stack(stores)[..., idx]           # one gather for all stores
        return [out[i] for i in range(len(stores))]

    def stacked_pmult_mac(self, c0_stores, c1_stores, pt_stores, moduli):
        count = len(c0_stores)
        if not count or not (count == len(c1_stores) == len(pt_stores)):
            raise ValueError("stacked_pmult_mac needs matching non-empty stores")
        mats = [self._matrix(s) for s in (*c0_stores, *c1_stores, *pt_stores)]
        if any(m is None for m in mats) or not self._limbs_ok(moduli, mats[0]):
            return super().stacked_pmult_mac(c0_stores, c1_stores, pt_stores,
                                             moduli)
        x = _np.stack([
            _np.stack(mats[:count]), _np.stack(mats[count:2 * count])
        ])                                          # (2, C, L, n)
        p = _np.stack(mats[2 * count:])[None, :]    # (1, C, L, n)
        q = self._q_col(moduli)
        if self._moduli_u32(moduli):
            prods = (x * p) % q                     # all products in one pass
        else:
            mont = self._mont_vec(moduli)
            if mont is None:
                return super().stacked_pmult_mac(c0_stores, c1_stores,
                                                 pt_stores, moduli)
            prods = mont.mulmod(x, p)
        acc = prods[:, 0]
        for i in range(1, count):
            acc = acc + prods[:, i]
            acc = _np.minimum(acc, acc - q)
        return self._finalize(acc[0], moduli), self._finalize(acc[1], moduli)

    def limbs_gather(self, store, spec):
        x = store if isinstance(store, _np.ndarray) else self._matrix(store)
        if x is None or x.size < self.min_vector_length:
            return super().limbs_gather(store, spec)
        idx = spec.cache.get("numpy")
        if idx is None:
            idx = _np.array(spec.src, dtype=_np.intp)
            spec.cache["numpy"] = idx
        return x[..., idx]                          # preserves the storage dtype

    def replicate_row(self, row, moduli):
        if any(int(q).bit_length() > NUMPY_MAX_MODULUS_BITS for q in moduli):
            return super().replicate_row(row, moduli)
        if isinstance(row, _np.ndarray):
            arr = row if row.dtype == _np.uint64 else row.astype(_np.uint64)
        else:
            try:
                arr = _np.asarray(row, dtype=_np.uint64)
            except (OverflowError, TypeError, ValueError):
                return super().replicate_row(row, moduli)
        return self._finalize(arr[None, :] % self._q_col(moduli), moduli)

    @staticmethod
    def _perm_arrays(spec: "PermSpec"):
        cached = spec.cache.get("numpy")
        if cached is None:
            cached = (
                _np.array(spec.dest, dtype=_np.intp),
                _np.array(spec.negate, dtype=bool),
            )
            spec.cache["numpy"] = cached
        return cached

    def signed_permute(self, values, q, spec):
        if (
            q.bit_length() > NUMPY_MAX_MODULUS_BITS
            or len(values) < self.min_vector_length
        ):
            return super().signed_permute(values, q, spec)
        dest, negate = self._perm_arrays(spec)
        x = self._to_array(values, q)
        q_u = _np.uint64(q)
        flipped = _np.where(x == _np.uint64(0), x, q_u - x)
        out = _np.empty_like(x)
        out[dest] = _np.where(negate, flipped, x)
        return out.tolist()

    def limbs_signed_permute(self, store, moduli, spec):
        x = self._matrix(store)
        if not self._limbs_ok(moduli, x):
            return super().limbs_signed_permute(store, moduli, spec)
        dest, negate = self._perm_arrays(spec)
        q = self._q_col(moduli)
        flipped = _np.where(x == _np.uint64(0), x, q - x)
        out = _np.empty_like(x)
        out[:, dest] = _np.where(negate[None, :], flipped, x)
        return self._finalize(out, moduli)

    def pointwise_mac_many(self, rows_a, groups, q):
        if not groups:
            return []
        if any(len(group) != len(rows_a) for group in groups) or not rows_a:
            raise ValueError("pointwise_mac_many needs matching row counts")
        if not self._mul_ok(q, *rows_a):
            return super().pointwise_mac_many(rows_a, groups, q)
        q_u = _np.uint64(q)
        x = _np.stack([self._to_array(row, q) for row in rows_a])   # (R, n)
        try:
            y = _np.array(groups, dtype=_np.uint64)                 # (G, R, n)
        except (OverflowError, TypeError, ValueError):
            return super().pointwise_mac_many(rows_a, groups, q)
        if (y >= q_u).any():
            y %= q_u
        if self._direct_ok(q):
            terms = (x[None, :, :] * y) % q_u
        else:
            terms = self._mont(q).mulmod(x[None, :, :], y)
        acc = terms[:, 0]
        for idx in range(1, terms.shape[1]):
            acc = acc + terms[:, idx]
            acc = _np.minimum(acc, acc - q_u)
        return acc.tolist()

    def gadget_decompose(self, coefficients, modulus, factors):
        if (
            modulus.bit_length() > NUMPY_MAX_MODULUS_BITS
            or len(coefficients) < self.min_vector_length
        ):
            return super().gadget_decompose(coefficients, modulus, factors)
        try:
            arr = _np.array(coefficients, dtype=_np.int64)
        except (OverflowError, TypeError, ValueError):
            return super().gadget_decompose(coefficients, modulus, factors)
        q64 = _np.int64(modulus)
        arr = arr % q64
        # Centring into (-q/2, q/2], matching modmath.centered exactly.
        threshold = _np.int64(modulus // 2)
        residual = _np.where(arr > threshold, arr - q64, arr)
        rows = []
        for factor in factors:
            if factor == 0:
                rows.append([0] * len(coefficients))
                continue
            f = _np.int64(factor)
            digit = (2 * residual + f) // (2 * f)
            residual = residual - digit * f
            rows.append((digit % q64).tolist())
        return rows

    # -- NTT ---------------------------------------------------------------
    def _tables(self, context) -> "_NumpyNTTTables":
        key = (context.ring_degree, context.modulus)
        tables = self._ntt_tables.get(key)
        if tables is None:
            tables = _NumpyNTTTables(context)
            self._ntt_tables[key] = tables
        return tables

    def _ntt_ok(self, context) -> bool:
        # The lazy butterflies keep values in [0, 4q), so 4q must fit a word;
        # the exit pointwise reduction additionally wants an odd modulus
        # (always true for NTT-friendly primes).
        return (
            context.ring_degree >= self.min_ntt_length
            and self._mont(context.modulus) is not None
        )

    def ntt_forward(self, context, coefficients):
        self._check_length(context, coefficients)
        if not self._ntt_ok(context):
            return self._fallback.ntt_forward(context, coefficients)
        tables = self._tables(context)
        x = self._to_array(coefficients, context.modulus)
        if tables.use32:
            return self._forward_stages_u32(context.ring_degree, x, tables).tolist()
        x = self._forward_stages(context.ring_degree, x, tables)
        return self._reduce_4q(x, tables).tolist()

    def ntt_inverse(self, context, values):
        self._check_length(context, values)
        if not self._ntt_ok(context):
            return self._fallback.ntt_inverse(context, values)
        tables = self._tables(context)
        x = self._to_array(values, context.modulus)
        if tables.use32:
            x = self._inverse_stages_u32(context.ring_degree, x, tables)
            return _shoup32_mul(x, tables.n_inv_w, tables.n_inv_s32, tables.q_u).tolist()
        x = self._inverse_stages(context.ring_degree, x, tables)
        return self._exit_scale(x, tables).tolist()

    def negacyclic_convolution(self, context, a, b):
        self._check_length(context, a)
        self._check_length(context, b)
        if not self._ntt_ok(context):
            return self._fallback.negacyclic_convolution(context, a, b)
        tables = self._tables(context)
        n = context.ring_degree
        q = context.modulus
        xa = self._to_array(a, q)
        xb = self._to_array(b, q)
        if tables.use32:
            # Direct single-word path: transforms stay fully reduced, so the
            # pointwise product is one 64-bit multiply plus one remainder.
            x = self._forward_stages_u32(n, _np.stack([xa, xb]), tables)
            prod = (x[0] * x[1]) % tables.q_u
            y = self._inverse_stages_u32(n, prod, tables)
            return _shoup32_mul(y, tables.n_inv_w, tables.n_inv_s32, tables.q_u).tolist()
        # b enters the transform pre-scaled by R = 2^64 (the transform is
        # linear, so the evaluation values come out scaled by R as well).
        xb = _shoup_mul_lazy(xb, tables.r_w,
                             tables.r_s_lo, tables.r_s_hi, tables.q_u)
        # Both forward transforms ride one stacked array: the stage loop is
        # overhead-bound at these sizes, so batching nearly halves its cost.
        x = self._forward_stages(n, _np.stack([xa, xb]), tables)
        x = self._reduce_4q(x, tables)
        prod = self._mont(q).mont_mul(x[0], x[1])   # (a)(bR)R^-1 = ab mod q
        y = self._inverse_stages(n, prod, tables)
        return self._exit_scale(y, tables).tolist()

    def ntt_forward_batch(self, context, rows):
        if not rows:
            return []
        if not self._ntt_ok(context):
            return super().ntt_forward_batch(context, rows)
        tables = self._tables(context)
        n = context.ring_degree
        q = context.modulus
        x = _np.stack([self._to_array(row, q) for row in rows])
        if tables.use32:
            return self._forward_stages_u32(n, x, tables).tolist()
        x = self._forward_stages(n, x, tables)
        return self._reduce_4q(x, tables).tolist()

    def ntt_inverse_batch(self, context, rows):
        if not rows:
            return []
        if not self._ntt_ok(context):
            return super().ntt_inverse_batch(context, rows)
        tables = self._tables(context)
        n = context.ring_degree
        q = context.modulus
        x = _np.stack([self._to_array(row, q) for row in rows])
        if tables.use32:
            x = self._inverse_stages_u32(n, x, tables)
            return _shoup32_mul(x, tables.n_inv_w, tables.n_inv_s32, tables.q_u).tolist()
        x = self._inverse_stages(n, x, tables)
        return self._exit_scale(x, tables).tolist()

    def pointwise_mac(self, rows_a, rows_b, q):
        if len(rows_a) != len(rows_b):
            raise ValueError("pointwise_mac needs equally many rows on both sides")
        if not rows_a:
            raise ValueError("pointwise_mac needs at least one row pair")
        if not self._mul_ok(q, *rows_a, *rows_b):
            return super().pointwise_mac(rows_a, rows_b, q)
        q_u = _np.uint64(q)
        x = _np.stack([self._to_array(row, q) for row in rows_a])
        y = _np.stack([self._to_array(row, q) for row in rows_b])
        if self._direct_ok(q):
            terms = (x * y) % q_u
        else:
            terms = self._mont(q).mulmod(x, y)
        acc = terms[0]
        for idx in range(1, len(terms)):
            acc = acc + terms[idx]
            acc = _np.minimum(acc, acc - q_u)
        return acc.tolist()

    @staticmethod
    def _reduce_4q(x, tables):
        """Exact reduction of lazily-accumulated values from [0, 4q) to [0, q)."""
        x = _np.minimum(x, x - tables.q2)
        return _np.minimum(x, x - tables.q_u)

    @staticmethod
    def _exit_scale(x, tables):
        """Multiply by n^-1 (Shoup) and reduce exactly; input < 2q, output < q."""
        x = _shoup_mul_lazy(x, tables.n_inv_w, tables.n_inv_s_lo,
                            tables.n_inv_s_hi, tables.q_u)
        return _np.minimum(x, x - tables.q_u)

    @staticmethod
    def _forward_stages(n: int, x, tables):
        """Cooley-Tukey stages with Harvey lazy reduction (values < 4q).

        ``x`` may carry a leading batch dimension: shape ``(n,)`` or
        ``(B, n)``; every batch row is transformed independently in place.
        Conditional subtraction uses the wraparound trick
        ``min(v, v - q)``: when ``v < q`` the subtraction wraps to a huge
        value and ``min`` keeps ``v``, else it keeps the reduced value.
        """
        q_u = tables.q_u
        q2 = tables.q2
        batch = 1 if x.ndim == 1 else x.shape[0]
        t = n
        m = 1
        while m < n:
            t //= 2
            blocks = x.reshape(batch, m, 2 * t)
            u0 = blocks[:, :, :t]
            u = _np.minimum(u0, u0 - q2)                   # < 2q
            sl = slice(m, 2 * m)
            v = _shoup_mul_lazy(
                blocks[:, :, t:], tables.fwd_w[None, sl, None],
                tables.fwd_s_lo[None, sl, None],
                tables.fwd_s_hi[None, sl, None], q_u,
            )                                              # < 2q
            _np.add(u, v, out=blocks[:, :, :t])            # < 4q
            v -= q2
            _np.subtract(u, v, out=blocks[:, :, t:])       # u - v + 2q < 4q
            m *= 2
        return x

    @staticmethod
    def _inverse_stages(n: int, x, tables):
        """Gentleman-Sande stages with lazy reduction (values < 2q)."""
        q_u = tables.q_u
        q2 = tables.q2
        batch = 1 if x.ndim == 1 else x.shape[0]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            blocks = x.reshape(batch, h, 2 * t)
            u = blocks[:, :, :t]
            v = blocks[:, :, t:]
            s = u + v                                      # < 4q
            d = u + (q2 - v)                               # < 4q (true value, fine for Shoup)
            sl = slice(h, 2 * h)
            _np.minimum(s, s - q2, out=blocks[:, :, :t])   # < 2q
            blocks[:, :, t:] = _shoup_mul_lazy(
                d, tables.inv_w[None, sl, None],
                tables.inv_s_lo[None, sl, None],
                tables.inv_s_hi[None, sl, None], q_u,
            )                                              # < 2q
            t *= 2
            m = h
        return x

    @staticmethod
    def _forward_stages_u32(n: int, x, tables):
        """CT stages with direct single-word products (moduli < 2^32).

        Values stay fully reduced (< q) at every stage, so each butterfly
        operand satisfies the ``y < 2^32`` Shoup precondition.  ``x`` may
        carry any number of leading batch dimensions.
        """
        q_u = tables.q_u
        lead = x.shape[:-1]
        t = n
        m = 1
        while m < n:
            t //= 2
            blocks = x.reshape(lead + (m, 2 * t))
            sl = slice(m, 2 * m)
            u = blocks[..., :t]
            v = _shoup32_mul(blocks[..., t:], tables.fwd_w[sl][:, None],
                             tables.fwd_s32[sl][:, None], q_u)
            s = u + v                                      # < 2q
            d = u - v                                      # wraps when negative
            _np.minimum(s, s - q_u, out=blocks[..., :t])   # < q
            _np.minimum(d, d + q_u, out=blocks[..., t:])   # < q
            m *= 2
        return x

    @staticmethod
    def _inverse_stages_u32(n: int, x, tables):
        """GS stages with direct single-word products (moduli < 2^32)."""
        q_u = tables.q_u
        lead = x.shape[:-1]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            blocks = x.reshape(lead + (h, 2 * t))
            sl = slice(h, 2 * h)
            u = blocks[..., :t]
            v = blocks[..., t:]
            s = u + v
            d = u - v
            d = _np.minimum(d, d + q_u)                    # < q
            _np.minimum(s, s - q_u, out=blocks[..., :t])   # < q
            blocks[..., t:] = _shoup32_mul(d, tables.inv_w[sl][:, None],
                                           tables.inv_s32[sl][:, None], q_u)
            t *= 2
            m = h
        return x

    @staticmethod
    def _forward_stages_rns(x, tabs):
        """CT stages over an ``(L, n)`` (or ``(B, L, n)``) limb stack.

        Same lazy Harvey butterflies as :meth:`_forward_stages`, but the
        twiddle tables are ``(L, n)`` matrices and the modulus constants
        ``(L, 1, 1)`` columns, so every limb transforms under its own
        modulus in one pass.
        """
        n = tabs.n
        q_s = tabs.q_s
        q2_s = tabs.q2_s
        lead = x.shape[:-1]
        t = n
        m = 1
        while m < n:
            t //= 2
            blocks = x.reshape(lead + (m, 2 * t))
            sl = slice(m, 2 * m)
            u0 = blocks[..., :t]
            u = _np.minimum(u0, u0 - q2_s)                 # < 2q
            v = _shoup_mul_lazy(
                blocks[..., t:], tabs.fwd_w[:, sl, None],
                tabs.fwd_lo[:, sl, None], tabs.fwd_hi[:, sl, None], q_s,
            )                                              # < 2q
            _np.add(u, v, out=blocks[..., :t])             # < 4q
            v -= q2_s
            _np.subtract(u, v, out=blocks[..., t:])        # u - v + 2q < 4q
            m *= 2
        return x

    @staticmethod
    def _inverse_stages_rns(x, tabs):
        """GS stages over an ``(L, n)`` (or ``(B, L, n)``) limb stack."""
        n = tabs.n
        q_s = tabs.q_s
        q2_s = tabs.q2_s
        lead = x.shape[:-1]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            blocks = x.reshape(lead + (h, 2 * t))
            sl = slice(h, 2 * h)
            u = blocks[..., :t]
            v = blocks[..., t:]
            s = u + v                                      # < 4q
            d = u + (q2_s - v)                             # < 4q
            _np.minimum(s, s - q2_s, out=blocks[..., :t])  # < 2q
            blocks[..., t:] = _shoup_mul_lazy(
                d, tabs.inv_w[:, sl, None],
                tabs.inv_lo[:, sl, None], tabs.inv_hi[:, sl, None], q_s,
            )                                              # < 2q
            t *= 2
            m = h
        return x

    @staticmethod
    def _forward_stages_rns_u32(x, tabs):
        """CT stages over a limb stack with direct single-word products.

        The per-limb variant of :meth:`_forward_stages_u32`: all moduli are
        below 2^32, values stay fully reduced at every stage.
        """
        n = tabs.n
        q_s = tabs.q_s
        lead = x.shape[:-1]
        t = n
        m = 1
        while m < n:
            t //= 2
            blocks = x.reshape(lead + (m, 2 * t))
            sl = slice(m, 2 * m)
            u = blocks[..., :t]
            v = _shoup32_mul(blocks[..., t:], tabs.fwd_w[:, sl, None],
                             tabs.fwd_s32[:, sl, None], q_s)
            s = u + v
            d = u - v
            _np.minimum(s, s - q_s, out=blocks[..., :t])
            _np.minimum(d, d + q_s, out=blocks[..., t:])
            m *= 2
        return x

    @staticmethod
    def _inverse_stages_rns_u32(x, tabs):
        """GS stages over a limb stack with direct single-word products."""
        n = tabs.n
        q_s = tabs.q_s
        lead = x.shape[:-1]
        t = 1
        m = n
        while m > 1:
            h = m // 2
            blocks = x.reshape(lead + (h, 2 * t))
            sl = slice(h, 2 * h)
            u = blocks[..., :t]
            v = blocks[..., t:]
            s = u + v
            d = u - v
            d = _np.minimum(d, d + q_s)
            _np.minimum(s, s - q_s, out=blocks[..., :t])
            blocks[..., t:] = _shoup32_mul(d, tabs.inv_w[:, sl, None],
                                           tabs.inv_s32[:, sl, None], q_s)
            t *= 2
            m = h
        return x

    def _rns_tables(self, contexts) -> "_RNSNTTTables | None":
        """Stacked per-limb tables for one tuple of same-degree NTT contexts."""
        if not contexts:
            return None
        n = contexts[0].ring_degree
        moduli = tuple(ctx.modulus for ctx in contexts)
        key = (n, moduli)
        tabs = self._rns_ntt_tables.get(key)
        if tabs is None and key not in self._rns_ntt_tables:
            usable = (
                n >= self.min_ntt_length
                and all(ctx.ring_degree == n for ctx in contexts)
                and all(self._mont(q) is not None for q in moduli)
            )
            tabs = (
                _RNSNTTTables([self._tables(ctx) for ctx in contexts], moduli)
                if usable else None
            )
            self._rns_ntt_tables[key] = tabs
        return tabs

    def _cyclic_stage_twiddles(self, length: int, omega: int, q: int):
        key = (length, omega, q)
        stages = self._cyclic_tables.get(key)
        if stages is None:
            stages = []
            size = 2
            while size <= length:
                half = size // 2
                w_len = pow(omega, length // size, q)
                powers = [1] * half
                for j in range(1, half):
                    powers[j] = (powers[j - 1] * w_len) % q
                stages.append(_shoup_split(powers, q))
                size *= 2
            self._cyclic_tables[key] = stages
        return stages

    def cyclic_ntt_batch(self, matrix, omega, q):
        rows = len(matrix)
        if rows == 0:
            return []
        length = len(matrix[0])
        if (
            q % 2 == 0
            or q.bit_length() > NUMPY_MAX_MODULUS_BITS
            or rows * length < self.min_ntt_length
        ):
            return self._fallback.cyclic_ntt_batch(matrix, omega, q)
        arr = _np.stack([self._to_array(row, q) for row in matrix])
        return self._cyclic_core(arr, omega, q).tolist()

    def _cyclic_core(self, arr, omega, q):
        """In-order cyclic NTT of every row of a ``(rows, length)`` array.

        Input values may be anywhere below ``2q``; the output is fully
        reduced.  This is the array-resident core shared by
        :meth:`cyclic_ntt_batch` and the four-step phases.
        """
        rows, length = arr.shape
        order = list(_bit_reverse_indices(length))
        arr = arr[:, order]
        q_u = _np.uint64(q)
        q2 = _np.uint64(2 * q)
        size = 2
        for w, s_lo, s_hi in self._cyclic_stage_twiddles(length, omega, q):
            half = size // 2
            view = arr.reshape(rows, length // size, size)
            u0 = view[..., :half]
            u = _np.minimum(u0, u0 - q2)
            v = _shoup_mul_lazy(
                view[..., half:], w[None, None, :],
                s_lo[None, None, :], s_hi[None, None, :], q_u,
            )
            _np.add(u, v, out=view[..., :half])
            v -= q2
            _np.subtract(u, v, out=view[..., half:])
            size *= 2
        arr = _np.minimum(arr, arr - q2)
        return _np.minimum(arr, arr - q_u)

    # -- four-step (Bailey) NTT: array-resident transposes -----------------
    def _four_step(self, context, rows: int) -> "_FourStepTables":
        key = (context.ring_degree, context.modulus, rows)
        tables = self._four_step_tables.get(key)
        if tables is None:
            tables = _FourStepTables(context, rows)
            self._four_step_tables[key] = tables
        return tables

    def four_step_ntt(self, context, coefficients, rows):
        n = context.ring_degree
        q = context.modulus
        if not self._ntt_ok(context):
            return super().four_step_ntt(context, coefficients, rows)
        cols = n // rows
        fs = self._four_step(context, rows)
        q_u = _np.uint64(q)
        x = self._to_array(coefficients, q)
        # Step 0: psi pre-twist (element-wise Shoup multiply, reduced to < q).
        x = _shoup_mul_lazy(x, fs.psi_w, fs.psi_lo, fs.psi_hi, q_u)
        x = _np.minimum(x, x - q_u)
        # Phase 1: column DFTs — a transpose instead of Python stride gathers.
        columns = _np.ascontiguousarray(x.reshape(rows, cols).T)
        columns = self._cyclic_core(columns, fs.omega_rows, q)
        # Twiddle by omega^(r*c) (the flattening is already column-major).
        flat = columns.reshape(-1)
        flat = _shoup_mul_lazy(flat, fs.tw_w, fs.tw_lo, fs.tw_hi, q_u)
        flat = _np.minimum(flat, flat - q_u)
        # Phase 2: row DFTs after transposing back.
        rows_mat = _np.ascontiguousarray(flat.reshape(cols, rows).T)
        rows_mat = self._cyclic_core(rows_mat, fs.omega_cols, q)
        # natural[k1 + rows*k2] = rows_mat[k1, k2]; then bit-reverse to match
        # NTTContext.forward output order.
        natural = _np.ascontiguousarray(rows_mat.T).reshape(-1)
        return natural[fs.order].tolist()

    def four_step_intt(self, context, values, rows):
        n = context.ring_degree
        q = context.modulus
        if not self._ntt_ok(context):
            return super().four_step_intt(context, values, rows)
        cols = n // rows
        fs = self._four_step(context, rows)
        q_u = _np.uint64(q)
        tables = self._tables(context)
        x = self._to_array(values, q)
        # Undo the bit-reversed output order (the permutation is an involution).
        natural = x[fs.order]
        rows_mat = _np.ascontiguousarray(natural.reshape(cols, rows).T)
        rows_mat = self._cyclic_core(rows_mat, fs.omega_cols_inv, q)
        flat = _np.ascontiguousarray(rows_mat.T).reshape(-1)
        flat = _shoup_mul_lazy(flat, fs.tw_inv_w, fs.tw_inv_lo, fs.tw_inv_hi, q_u)
        flat = _np.minimum(flat, flat - q_u)
        columns = self._cyclic_core(flat.reshape(cols, rows), fs.omega_rows_inv, q)
        twisted = _np.ascontiguousarray(columns.T).reshape(-1)
        # Scale by n^-1, then undo the psi twist.
        x = _shoup_mul_lazy(twisted, tables.n_inv_w, tables.n_inv_s_lo,
                            tables.n_inv_s_hi, q_u)
        x = _np.minimum(x, x - q_u)
        x = _shoup_mul_lazy(x, fs.psi_inv_w, fs.psi_inv_lo, fs.psi_inv_hi, q_u)
        return _np.minimum(x, x - q_u).tolist()


class PerLimbNumpyBackend(NumpyBackend):
    """The PR-1 dispatch shape: vectorized scalar kernels, per-limb loops.

    Every packed limb-major entry point is pinned back to the base-class
    per-limb loop (list stores, one scalar-kernel dispatch per limb), while
    the scalar kernels themselves stay vectorized.  This reproduces how the
    RNS layer drove the numpy backend before limb batching, and exists for
    differential benchmarks (:mod:`benchmarks.bench_rns_batching`) and the
    packed-vs-per-limb parity suite — do not use it in production code.
    """

    name = "numpy-per-limb"

    pack_limbs = ArithmeticBackend.pack_limbs
    unpack_limbs = ArithmeticBackend.unpack_limbs
    limbs_zero = ArithmeticBackend.limbs_zero
    limbs_add = ArithmeticBackend.limbs_add
    limbs_sub = ArithmeticBackend.limbs_sub
    limbs_neg = ArithmeticBackend.limbs_neg
    limbs_mul = ArithmeticBackend.limbs_mul
    limbs_scalar_mul = ArithmeticBackend.limbs_scalar_mul
    batched_sub_scaled = ArithmeticBackend.batched_sub_scaled
    bconv_matmul = ArithmeticBackend.bconv_matmul
    batched_ntt = ArithmeticBackend.batched_ntt
    batched_intt = ArithmeticBackend.batched_intt
    limbs_convolution = ArithmeticBackend.limbs_convolution
    limbs_eval_key = ArithmeticBackend.limbs_eval_key
    limbs_mac_eval = ArithmeticBackend.limbs_mac_eval
    limbs_eval_mac = ArithmeticBackend.limbs_eval_mac
    limbs_tensor_product = ArithmeticBackend.limbs_tensor_product
    limbs_signed_permute = ArithmeticBackend.limbs_signed_permute
    limbs_gather = ArithmeticBackend.limbs_gather
    stacked_intt = ArithmeticBackend.stacked_intt
    stacked_ntt = ArithmeticBackend.stacked_ntt
    stacked_gather = ArithmeticBackend.stacked_gather
    stacked_pmult_mac = ArithmeticBackend.stacked_pmult_mac
    replicate_row = ArithmeticBackend.replicate_row
    ntt_forward_batch = ArithmeticBackend.ntt_forward_batch
    ntt_inverse_batch = ArithmeticBackend.ntt_inverse_batch
    pointwise_mac = ArithmeticBackend.pointwise_mac
    pointwise_mac_many = ArithmeticBackend.pointwise_mac_many
    signed_permute = ArithmeticBackend.signed_permute
    gadget_decompose = ArithmeticBackend.gadget_decompose
    four_step_ntt = ArithmeticBackend.four_step_ntt
    four_step_intt = ArithmeticBackend.four_step_intt


# ---------------------------------------------------------------------------
# Registry and active-backend selection
# ---------------------------------------------------------------------------

_INSTANCES: Dict[str, ArithmeticBackend] = {}
_ACTIVE: "ArithmeticBackend | None" = None
_WARNED_NO_NUMPY = False


def available_backends() -> List[str]:
    """Names of the backends usable in this environment."""
    names = ["python"]
    if _np is not None:
        names.append("numpy")
    return names


def _default_name() -> str:
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if env in ("python", "numpy"):
        return env
    if env:
        warnings.warn(
            f"ignoring unknown {BACKEND_ENV_VAR}={env!r}; "
            f"expected 'python' or 'numpy'",
            stacklevel=3,
        )
    return "numpy" if _np is not None else "python"


def get_backend(name: "str | None" = None) -> ArithmeticBackend:
    """Return the backend instance registered under ``name``.

    ``None`` resolves the default (``REPRO_BACKEND`` env var, then numpy when
    available).  Requesting ``"numpy"`` without numpy installed degrades to
    the python backend with a warning rather than failing.
    """
    global _WARNED_NO_NUMPY
    if name is None:
        name = _default_name()
    name = name.lower()
    if name == "numpy" and _np is None:
        if not _WARNED_NO_NUMPY:
            warnings.warn(
                "numpy backend requested but numpy is not installed; "
                "falling back to the exact python backend",
                stacklevel=2,
            )
            _WARNED_NO_NUMPY = True
        name = "python"
    if name not in ("python", "numpy"):
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = PythonBackend() if name == "python" else NumpyBackend()
        _INSTANCES[name] = instance
    return instance


def active_backend() -> ArithmeticBackend:
    """The backend every FHE vector op dispatches to right now."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend(None)
    return _ACTIVE


def _resolve(backend: "ArithmeticBackend | str | None") -> "ArithmeticBackend | None":
    if backend is None:
        return None
    if isinstance(backend, ArithmeticBackend):
        return backend
    return get_backend(backend)


def set_active_backend(backend: "ArithmeticBackend | str | None") -> ArithmeticBackend:
    """Select the process-wide backend (``None`` re-resolves the default)."""
    global _ACTIVE
    _ACTIVE = _resolve(backend)
    return active_backend()


@contextmanager
def use_backend(backend: "ArithmeticBackend | str | None") -> Iterator[ArithmeticBackend]:
    """Temporarily switch the active backend (``None`` is a no-op).

    This is how an explicit per-object backend choice (e.g.
    ``CKKSEvaluator(..., backend="numpy")``) is threaded down through code
    that operates on plain :class:`~repro.fhe.polynomial.Polynomial` values.
    """
    resolved = _resolve(backend)
    if resolved is None:
        yield active_backend()
        return
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolved
    try:
        yield resolved
    finally:
        _ACTIVE = previous
