"""Ring elements of Z_q[X]/(X^N + 1).

:class:`Polynomial` is the workhorse value type of the functional FHE layer.
It stores coefficients as a plain Python list of ints reduced modulo ``q``
and supports the operations the schemes need:

* addition, subtraction, negation, scalar and polynomial multiplication
  (negacyclic, via an :class:`~repro.fhe.ntt.NTTContext` when one is
  available for the modulus, schoolbook otherwise),
* monomial multiplication ``P(X) * X^r`` (used by TFHE rotations),
* automorphism ``X -> X^k`` (used by CKKS HRotate and the field trace),
* gadget/base decomposition (used by hybrid keyswitch and GGSW products),
* modulus switching and rounding helpers.

Instances are immutable by convention: every operation returns a fresh
polynomial and never mutates its inputs.

The bulk arithmetic (add/sub/neg, scalar and NTT multiplication) executes on
the active arithmetic backend (:mod:`repro.fhe.backend`): exact pure Python
by default, vectorized numpy when selected.  All backends are bit-exact, so
``Polynomial`` semantics never depend on the backend choice.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Dict, List, Sequence, Tuple

from .backend import GatherSpec, PermSpec, _bit_reverse_indices, active_backend
from .modmath import centered
from .ntt import NTTContext

__all__ = [
    "Polynomial",
    "monomial_spec",
    "automorphism_spec",
    "galois_eval_spec",
    "sample_uniform",
    "sample_ternary",
    "sample_gaussian",
]

# NTT contexts are cached per (N, q): building twiddle tables is the expensive
# part and both CKKS limbs and TFHE rings reuse the same few moduli heavily.
_NTT_CACHE: Dict[Tuple[int, int], NTTContext] = {}


def _ntt_context(ring_degree: int, modulus: int) -> NTTContext | None:
    key = (ring_degree, modulus)
    if key not in _NTT_CACHE:
        try:
            _NTT_CACHE[key] = NTTContext(ring_degree, modulus)
        except ValueError:
            _NTT_CACHE[key] = None  # type: ignore[assignment]
    return _NTT_CACHE[key]


# Blind rotation draws monomial degrees from the full [0, 2N) range, so the
# cache must hold at least 2N distinct specs for the largest functional ring
# (N = 2048) or the hottest TFHE loop would rebuild an O(N) spec per CMux.
@lru_cache(maxsize=4096)
def monomial_spec(ring_degree: int, degree: int) -> PermSpec:
    """Signed permutation of ``P(X) -> P(X) * X^degree`` (negacyclic wrap)."""
    n = ring_degree
    degree %= 2 * n
    dest = [0] * n
    negate = [False] * n
    for i in range(n):
        k = i + degree
        sign = False
        while k >= n:
            k -= n
            sign = not sign
        dest[i] = k
        negate[i] = sign
    return PermSpec(dest, negate)


@lru_cache(maxsize=4096)
def automorphism_spec(ring_degree: int, power: int) -> PermSpec:
    """Signed permutation of the ring automorphism ``X -> X^power`` (power odd)."""
    n = ring_degree
    power %= 2 * n
    if power % 2 == 0:
        raise ValueError("automorphism exponent must be odd")
    dest = [0] * n
    negate = [False] * n
    for i in range(n):
        k = (i * power) % (2 * n)
        sign = False
        if k >= n:
            k -= n
            sign = True
        dest[i] = k
        negate[i] = sign
    return PermSpec(dest, negate)


@lru_cache(maxsize=4096)
def galois_eval_spec(ring_degree: int, galois_element: int) -> GatherSpec:
    """Evaluation-domain image of the automorphism ``X -> X^g`` as a gather.

    The negacyclic NTT used here outputs ``forward(P)[i] = P(psi^e_i)`` with
    ``e_i = 2 * bitrev(i) + 1`` (Cooley-Tukey, merged psi twisting).  Since
    ``sigma_g(P)(psi^e) = P(psi^(e*g mod 2N))`` and ``g`` is odd, the
    automorphism permutes those odd evaluation points among themselves:

        forward(sigma_g(P))[i] = forward(P)[src[i]],  e_{src[i]} = e_i * g.

    No sign flips, no arithmetic — which is why hoisted rotations can apply
    the Galois map to already-transformed keyswitch digits for the cost of a
    slot gather.  The identity is exact over Z_q, so the eval-domain path is
    bit-identical to transforming ``sigma_g(P)`` from scratch.
    """
    n = ring_degree
    g = galois_element % (2 * n)
    if g % 2 == 0:
        raise ValueError("automorphism exponent must be odd")
    brv = _bit_reverse_indices(n)
    exponent_of = [2 * brv[i] + 1 for i in range(n)]
    index_of = {e: i for i, e in enumerate(exponent_of)}
    return GatherSpec(
        [index_of[(e * g) % (2 * n)] for e in exponent_of]
    )


class Polynomial:
    """An element of R_q = Z_q[X]/(X^N + 1)."""

    __slots__ = ("ring_degree", "modulus", "coefficients")

    def __init__(self, ring_degree: int, modulus: int, coefficients: Sequence[int] | None = None):
        if ring_degree <= 0 or ring_degree & (ring_degree - 1):
            raise ValueError("ring_degree must be a power of two")
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.ring_degree = ring_degree
        self.modulus = modulus
        if coefficients is None:
            self.coefficients = [0] * ring_degree
        else:
            if len(coefficients) > ring_degree:
                raise ValueError(
                    f"too many coefficients: {len(coefficients)} > {ring_degree}"
                )
            coeffs = [int(c) % modulus for c in coefficients]
            coeffs.extend([0] * (ring_degree - len(coeffs)))
            self.coefficients = coeffs

    # -- constructors ------------------------------------------------------
    @classmethod
    def _from_reduced(cls, ring_degree: int, modulus: int,
                      coefficients: List[int]) -> "Polynomial":
        """Wrap a coefficient list that is already reduced into ``[0, q)``.

        Backend vector ops guarantee reduced output, so the arithmetic
        methods skip the per-coefficient validation of ``__init__``.  The
        list is adopted, not copied — callers must hand over ownership.
        """
        poly = object.__new__(cls)
        poly.ring_degree = ring_degree
        poly.modulus = modulus
        poly.coefficients = coefficients
        return poly

    @classmethod
    def zero(cls, ring_degree: int, modulus: int) -> "Polynomial":
        """The additive identity."""
        return cls(ring_degree, modulus)

    @classmethod
    def one(cls, ring_degree: int, modulus: int) -> "Polynomial":
        """The multiplicative identity."""
        coeffs = [0] * ring_degree
        coeffs[0] = 1
        return cls(ring_degree, modulus, coeffs)

    @classmethod
    def monomial(cls, ring_degree: int, modulus: int, degree: int, coefficient: int = 1) -> "Polynomial":
        """``coefficient * X^degree`` with negacyclic wrap-around for large degrees."""
        degree %= 2 * ring_degree
        sign = 1
        if degree >= ring_degree:
            degree -= ring_degree
            sign = -1
        coeffs = [0] * ring_degree
        coeffs[degree] = sign * coefficient
        return cls(ring_degree, modulus, coeffs)

    # -- basic protocol ------------------------------------------------------
    def _check_compatible(self, other: "Polynomial") -> None:
        if self.ring_degree != other.ring_degree or self.modulus != other.modulus:
            raise ValueError(
                "incompatible rings: "
                f"(N={self.ring_degree}, q={self.modulus}) vs "
                f"(N={other.ring_degree}, q={other.modulus})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return (
            self.ring_degree == other.ring_degree
            and self.modulus == other.modulus
            and self.coefficients == other.coefficients
        )

    def __hash__(self) -> int:
        return hash((self.ring_degree, self.modulus, tuple(self.coefficients)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(str(c) for c in self.coefficients[:4])
        suffix = ", ..." if self.ring_degree > 4 else ""
        return f"Polynomial(N={self.ring_degree}, q={self.modulus}, [{head}{suffix}])"

    def is_zero(self) -> bool:
        """True when all coefficients are zero."""
        return all(c == 0 for c in self.coefficients)

    # -- arithmetic ----------------------------------------------------------
    # Element-wise ops and the NTT convolution dispatch to the active
    # arithmetic backend (see repro.fhe.backend); every backend returns
    # exact, fully-reduced coefficient lists.
    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        q = self.modulus
        coeffs = active_backend().add(self.coefficients, other.coefficients, q)
        return Polynomial._from_reduced(self.ring_degree, q, coeffs)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        q = self.modulus
        coeffs = active_backend().sub(self.coefficients, other.coefficients, q)
        return Polynomial._from_reduced(self.ring_degree, q, coeffs)

    def __neg__(self) -> "Polynomial":
        q = self.modulus
        coeffs = active_backend().neg(self.coefficients, q)
        return Polynomial._from_reduced(self.ring_degree, q, coeffs)

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            return self.scalar_multiply(other)
        self._check_compatible(other)
        context = _ntt_context(self.ring_degree, self.modulus)
        if context is not None:
            coeffs = context.negacyclic_convolution(self.coefficients, other.coefficients)
        else:
            coeffs = self._schoolbook_multiply(other)
        return Polynomial._from_reduced(self.ring_degree, self.modulus, coeffs)

    __rmul__ = __mul__

    def _schoolbook_multiply(self, other: "Polynomial") -> List[int]:
        n = self.ring_degree
        q = self.modulus
        result = [0] * n
        for i, a in enumerate(self.coefficients):
            if a == 0:
                continue
            for j, b in enumerate(other.coefficients):
                if b == 0:
                    continue
                k = i + j
                term = a * b
                if k >= n:
                    result[k - n] = (result[k - n] - term) % q
                else:
                    result[k] = (result[k] + term) % q
        return result

    def scalar_multiply(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by an integer scalar."""
        q = self.modulus
        coeffs = active_backend().scalar_mul(self.coefficients, scalar % q, q)
        return Polynomial._from_reduced(self.ring_degree, q, coeffs)

    def multiply_by_monomial(self, degree: int) -> "Polynomial":
        """Return ``self * X^degree`` (negacyclic rotation; degree may be negative)."""
        n = self.ring_degree
        q = self.modulus
        spec = monomial_spec(n, degree % (2 * n))
        coeffs = active_backend().signed_permute(self.coefficients, q, spec)
        return Polynomial._from_reduced(n, q, coeffs)

    # -- structural transforms ------------------------------------------------
    def automorphism(self, power: int) -> "Polynomial":
        """Apply the ring automorphism ``X -> X^power`` (``power`` odd, mod 2N)."""
        n = self.ring_degree
        q = self.modulus
        spec = automorphism_spec(n, power % (2 * n))
        coeffs = active_backend().signed_permute(self.coefficients, q, spec)
        return Polynomial._from_reduced(n, q, coeffs)

    def decompose(self, base: int, levels: int) -> List["Polynomial"]:
        """Signed gadget decomposition into ``levels`` digits of the given ``base``.

        Returns polynomials ``d_0 ... d_{levels-1}`` (most significant digit
        first, digits roughly in ``[-base/2, base/2]``) such that
        ``sum_j d_j * (q // base^(j+1))`` approximates ``self`` with error
        bounded by about half the smallest gadget factor.  The greedy
        residual-based digit extraction keeps the approximation tight even for
        prime moduli, where ``q`` is not an exact power of ``base``.
        """
        if base < 2:
            raise ValueError("decomposition base must be >= 2")
        n = self.ring_degree
        q = self.modulus
        factors = [q // (base ** (j + 1)) for j in range(levels)]
        digits = active_backend().gadget_decompose(self.coefficients, q, factors)
        return [Polynomial._from_reduced(n, q, d) for d in digits]

    def switch_modulus(self, new_modulus: int) -> "Polynomial":
        """Scale-and-round the coefficients from modulus ``q`` to ``new_modulus``."""
        q = self.modulus
        coeffs = []
        for c in self.coefficients:
            scaled = centered(c, q) * new_modulus
            rounded = (2 * scaled + q) // (2 * q)  # round-half-up, sign-safe
            coeffs.append(rounded % new_modulus)
        return Polynomial(self.ring_degree, new_modulus, coeffs)

    def lift_modulus(self, new_modulus: int) -> "Polynomial":
        """Re-interpret the centred coefficients under a (usually larger) modulus."""
        q = self.modulus
        return Polynomial(
            self.ring_degree,
            new_modulus,
            [centered(c, q) % new_modulus for c in self.coefficients],
        )

    # -- representation helpers -----------------------------------------------
    def to_ntt(self) -> List[int]:
        """Evaluation representation (forward NTT) of the coefficients."""
        context = _ntt_context(self.ring_degree, self.modulus)
        if context is None:
            raise ValueError(
                f"modulus {self.modulus} is not NTT-friendly for N={self.ring_degree}"
            )
        return context.forward(self.coefficients)

    @classmethod
    def from_ntt(cls, ring_degree: int, modulus: int, values: Sequence[int]) -> "Polynomial":
        """Build a polynomial from its evaluation representation."""
        context = _ntt_context(ring_degree, modulus)
        if context is None:
            raise ValueError(f"modulus {modulus} is not NTT-friendly for N={ring_degree}")
        return cls(ring_degree, modulus, context.inverse(list(values)))

    def centered_coefficients(self) -> List[int]:
        """Coefficients mapped to the centred interval (-q/2, q/2]."""
        return [centered(c, self.modulus) for c in self.coefficients]

    def infinity_norm(self) -> int:
        """Max absolute value of the centred coefficients (noise measurement)."""
        return max((abs(c) for c in self.centered_coefficients()), default=0)


# -- random sampling -----------------------------------------------------------

def sample_uniform(ring_degree: int, modulus: int, rng: random.Random) -> Polynomial:
    """Uniformly random ring element (used for ciphertext masks and keys)."""
    return Polynomial(
        ring_degree, modulus, [rng.randrange(modulus) for _ in range(ring_degree)]
    )


def sample_ternary(ring_degree: int, modulus: int, rng: random.Random, hamming_weight: int | None = None) -> Polynomial:
    """Ternary secret with coefficients in {-1, 0, 1}.

    When ``hamming_weight`` is given, exactly that many coefficients are
    non-zero (the sparse-ternary secrets used by CKKS bootstrapping papers).
    """
    coeffs = [0] * ring_degree
    if hamming_weight is None:
        coeffs = [rng.choice((-1, 0, 1)) for _ in range(ring_degree)]
    else:
        hamming_weight = min(hamming_weight, ring_degree)
        positions = rng.sample(range(ring_degree), hamming_weight)
        for pos in positions:
            coeffs[pos] = rng.choice((-1, 1))
    return Polynomial(ring_degree, modulus, coeffs)


def sample_gaussian(
    ring_degree: int,
    modulus: int,
    rng: random.Random,
    stddev: float = 3.2,
) -> Polynomial:
    """Discrete-Gaussian-ish error polynomial (rounded normal, as in practice)."""
    coeffs = [round(rng.gauss(0.0, stddev)) for _ in range(ring_degree)]
    return Polynomial(ring_degree, modulus, coeffs)
