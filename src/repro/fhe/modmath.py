"""Modular arithmetic utilities for the FHE substrate.

This module provides the number-theoretic primitives that every other part of
the FHE layer builds on:

* fast deterministic primality testing (Miller-Rabin with fixed witnesses,
  exact for the 64-bit range used by RNS moduli),
* generation of *NTT-friendly* primes, i.e. primes ``p`` with
  ``p = 1 (mod 2N)`` so that the negacyclic NTT of length ``N`` exists,
* primitive roots and 2N-th roots of unity,
* small helpers (``mod_inverse``, ``mod_pow``, centred reduction) used by the
  RNS, CKKS, and TFHE code.

The scalar functions operate on plain Python integers, which are arbitrary
precision and therefore safe for the 36-60 bit moduli used by the paper's
parameter sets.  The ``batched_*`` helpers are the vectorized counterparts:
stable public entry points that forward whole coefficient vectors to an
arithmetic backend (:mod:`repro.fhe.backend`) — exact pure Python or
vectorized numpy.  The polynomial/RNS layers dispatch to the active backend
directly; use these wrappers from application or analysis code that wants
batched modular arithmetic without holding a backend instance.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence

from .backend import ArithmeticBackend, active_backend

__all__ = [
    "is_prime",
    "next_prime",
    "previous_prime",
    "find_ntt_prime",
    "find_ntt_primes",
    "mod_pow",
    "mod_inverse",
    "primitive_root",
    "find_primitive_root_of_unity",
    "find_2nth_root_of_unity",
    "centered",
    "bit_length_of",
    "batched_mod_add",
    "batched_mod_sub",
    "batched_mod_neg",
    "batched_mod_mul",
    "batched_mod_scalar_mul",
    "batched_mod_sub_scaled",
    "batched_mod_weighted_sum",
]

# Witnesses that make Miller-Rabin deterministic for all n < 3.3 * 10^24,
# which comfortably covers every modulus used in this repository.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Return True iff ``n`` is prime.

    Deterministic for every integer below 3.3e24 (Miller-Rabin with the fixed
    witness set), which is far beyond the 36-60 bit RNS moduli used here.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        if a % n == 0:
            continue
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def previous_prime(n: int) -> int:
    """Return the largest prime strictly smaller than ``n``."""
    if n <= 2:
        raise ValueError("there is no prime smaller than 2")
    candidate = n - 1
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate -= 1
    while candidate > 2 and not is_prime(candidate):
        candidate -= 2
    if candidate < 2:
        raise ValueError(f"no prime below {n}")
    return candidate


def find_ntt_prime(bit_length: int, ring_degree: int, *, index: int = 0) -> int:
    """Find the ``index``-th NTT-friendly prime of roughly ``bit_length`` bits.

    The returned prime ``p`` satisfies ``p = 1 (mod 2 * ring_degree)`` so a
    primitive 2N-th root of unity exists and the negacyclic NTT of length
    ``ring_degree`` is defined modulo ``p``.  Successive ``index`` values
    return successively smaller primes, which is how an RNS modulus chain is
    assembled.
    """
    if ring_degree <= 0 or ring_degree & (ring_degree - 1):
        raise ValueError("ring_degree must be a power of two")
    if bit_length < 4:
        raise ValueError("bit_length must be at least 4")
    modulus_step = 2 * ring_degree
    # Start just below 2^bit_length at a value congruent to 1 mod 2N.
    candidate = (1 << bit_length) + 1
    candidate -= (candidate - 1) % modulus_step
    found = -1
    while candidate > modulus_step:
        if candidate.bit_length() <= bit_length and is_prime(candidate):
            found += 1
            if found == index:
                return candidate
        candidate -= modulus_step
    raise ValueError(
        f"no NTT-friendly prime of {bit_length} bits for N={ring_degree}, index={index}"
    )


def find_ntt_primes(bit_length: int, ring_degree: int, count: int) -> List[int]:
    """Return ``count`` distinct NTT-friendly primes of about ``bit_length`` bits."""
    return [find_ntt_prime(bit_length, ring_degree, index=i) for i in range(count)]


def mod_pow(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation (thin wrapper over :func:`pow` for readability)."""
    return pow(base, exponent, modulus)


def mod_inverse(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises ``ValueError`` when the inverse does not exist.
    """
    value %= modulus
    if value == 0:
        raise ValueError("0 has no multiplicative inverse")
    g, x, _ = _extended_gcd(value, modulus)
    if g != 1:
        raise ValueError(f"{value} is not invertible modulo {modulus}")
    return x % modulus


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y = g = gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def _prime_factors(n: int) -> Iterator[int]:
    """Yield the distinct prime factors of ``n`` (trial division + recursion)."""
    seen = set()
    d = 2
    while d * d <= n:
        if n % d == 0:
            if d not in seen:
                seen.add(d)
                yield d
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1 and n not in seen:
        yield n


@lru_cache(maxsize=None)
def primitive_root(prime: int) -> int:
    """Return a generator of the multiplicative group modulo ``prime``."""
    if not is_prime(prime):
        raise ValueError(f"{prime} is not prime")
    if prime == 2:
        return 1
    order = prime - 1
    factors = list(_prime_factors(order))
    for candidate in range(2, prime):
        if all(pow(candidate, order // f, prime) != 1 for f in factors):
            return candidate
    raise ValueError(f"no primitive root found for {prime}")  # pragma: no cover


def find_primitive_root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo the prime ``modulus``."""
    if (modulus - 1) % order != 0:
        raise ValueError(f"{order} does not divide {modulus} - 1; no such root exists")
    generator = primitive_root(modulus)
    root = pow(generator, (modulus - 1) // order, modulus)
    # The construction guarantees root^order == 1; verify primitivity.
    if order % 2 == 0 and pow(root, order // 2, modulus) == 1:
        raise ValueError(f"failed to construct a primitive {order}-th root mod {modulus}")
    return root


def find_2nth_root_of_unity(ring_degree: int, modulus: int) -> int:
    """Return a primitive 2N-th root of unity (``psi``) for the negacyclic NTT."""
    return find_primitive_root_of_unity(2 * ring_degree, modulus)


def centered(value: int, modulus: int) -> int:
    """Map ``value`` into the centred interval ``(-modulus/2, modulus/2]``."""
    value %= modulus
    if value > modulus // 2:
        value -= modulus
    return value


def bit_length_of(modulus: int) -> int:
    """Bit length of a modulus (convenience used by the hardware model)."""
    return int(modulus).bit_length()


# ---------------------------------------------------------------------------
# Batched (vectorized) modular arithmetic
# ---------------------------------------------------------------------------
#
# Thin, stable entry points over the pluggable arithmetic backend.  Each takes
# plain Python-int sequences and returns a fresh, fully-reduced list; pass
# ``backend=`` to pin a specific backend instead of the active one.

def _backend(backend: "ArithmeticBackend | None") -> ArithmeticBackend:
    return backend if backend is not None else active_backend()


def batched_mod_add(a: Sequence[int], b: Sequence[int], modulus: int,
                    backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Element-wise ``(a + b) mod q``."""
    return _backend(backend).add(a, b, modulus)


def batched_mod_sub(a: Sequence[int], b: Sequence[int], modulus: int,
                    backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Element-wise ``(a - b) mod q``."""
    return _backend(backend).sub(a, b, modulus)


def batched_mod_neg(a: Sequence[int], modulus: int,
                    backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Element-wise ``-a mod q``."""
    return _backend(backend).neg(a, modulus)


def batched_mod_mul(a: Sequence[int], b: Sequence[int], modulus: int,
                    backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Element-wise ``(a * b) mod q``."""
    return _backend(backend).mul(a, b, modulus)


def batched_mod_scalar_mul(a: Sequence[int], scalar: int, modulus: int,
                           backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Element-wise ``(a * scalar) mod q``."""
    return _backend(backend).scalar_mul(a, scalar, modulus)


def batched_mod_sub_scaled(a: Sequence[int], b: Sequence[int], scalar: int,
                           modulus: int,
                           backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Fused ``((a - b) * scalar) mod q`` — the Rescale / ModDown kernel."""
    return _backend(backend).sub_scaled(a, b, scalar, modulus)


def batched_mod_weighted_sum(rows: Sequence[Sequence[int]], weights: Sequence[int],
                             modulus: int,
                             backend: "ArithmeticBackend | None" = None) -> List[int]:
    """Fused ``sum_i rows[i] * weights[i] mod q`` — the BConv accumulation."""
    return _backend(backend).weighted_sum(rows, weights, modulus)
