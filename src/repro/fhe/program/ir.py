"""Typed DAG IR for lazy homomorphic computation graphs.

An :class:`HEProgram` is an append-only list of :class:`HENode` values in
topological order (every node's arguments precede it), built by the tracer
(:mod:`repro.fhe.program.tracer`), transformed by the planning passes
(:mod:`repro.fhe.program.passes`), executed by
:mod:`repro.fhe.program.executor`, and lowered to the cost model's
``HomomorphicOp`` stream by :mod:`repro.fhe.program.lowering`.

Each node carries the metadata the planner reasons about — Table II
operation kind, argument ids, ciphertext ``level``, ``scale``, and the
planned residency ``domain`` (``"coeff"``/``"eval"``) — plus op-specific
attributes (rotation steps, the encoded plaintext of a PMult/PAdd, the
plaintext list of a fused MAC, a hoist-group id).

Node construction is hash-consed: structurally identical ``(op, args,
attrs)`` triples return the existing node id, so the graph *is* the
common-subexpression view (tracing ``x.rotate(1)`` twice yields one node,
and the executor computes it once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["OPS", "TFHE_OPS", "SCHEME_SWITCH_OPS", "op_scheme",
           "HENode", "HEProgram"]


#: TFHE-island ops.  LWE ciphertexts are level-free scalars; ``pbs`` is the
#: programmable bootstrap (LUT eval via a ``fn`` attribute),
#: ``gate_bootstrap`` the constant-test-vector sign bootstrap (``amplitude``
#: attribute), and ``lwe_keyswitch`` the cross-scheme key/modulus switch
#: (``direction`` attribute: ``"c2t"`` CKKS-key -> small TFHE key,
#: ``"t2c"`` small TFHE key -> CKKS-coefficient key).
TFHE_OPS = frozenset({
    "lwe_add", "lwe_sub", "lwe_negate", "lwe_scalar_mul", "lwe_add_const",
    "pbs", "gate_bootstrap", "lwe_keyswitch",
})

#: Scheme-switch ops: ``ckks_to_tfhe`` extracts one coefficient of a level-0
#: CKKS ciphertext as an LWE ciphertext (``index`` attribute);
#: ``tfhe_to_ckks`` repacks its ``nslot`` LWE arguments into one CKKS
#: ciphertext (Ring Embedding + PackLWEs + Field Trace).
SCHEME_SWITCH_OPS = frozenset({"ckks_to_tfhe", "tfhe_to_ckks"})

#: The node alphabet.  ``to_eval``/``to_coeff`` and ``pmult_mac`` are
#: planner-inserted (domain conversions and the fused multi-ciphertext
#: plaintext MAC); everything else is traceable.
OPS = frozenset({
    "input", "input_lwe",
    "add", "sub", "negate",
    "multiply", "multiply_plain", "multiply_scalar", "add_plain",
    "rotate", "conjugate",
    "rescale", "mod_down",
    "to_eval", "to_coeff",
    "pmult_mac",
}) | TFHE_OPS | SCHEME_SWITCH_OPS

#: Ops that take an encoded plaintext attribute.
PLAIN_OPS = frozenset({"multiply_plain", "add_plain"})


def op_scheme(op: str) -> str:
    """Which scheme's ciphertext type a node of this op *produces*.

    Scheme-switch nodes belong to their output scheme: ``ckks_to_tfhe``
    produces an LWE ciphertext (``"tfhe"``), ``tfhe_to_ckks`` produces a
    CKKS ciphertext (``"ckks"``).
    """
    if op in TFHE_OPS or op in ("ckks_to_tfhe", "input_lwe"):
        return "tfhe"
    return "ckks"


@dataclass
class HENode:
    """One operation of the DAG at a known level/scale/domain."""

    id: int
    op: str
    args: Tuple[int, ...]
    level: int
    scale: float
    domain: str = "coeff"
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown program op {self.op!r}")

    @property
    def scheme(self) -> str:
        """``"ckks"`` or ``"tfhe"`` — the scheme of the value this node
        produces (derived from the op, so passes can never desynchronize
        a node's scheme tag from its kind)."""
        return op_scheme(self.op)


def _attr_key(op: str, attrs: "Dict[str, object] | None") -> tuple:
    """A hashable fingerprint of the op-specific attributes (for CSE).

    Plaintext objects are keyed by identity: two distinct encodings are
    never merged, while reuse of the *same* plaintext object is.
    """
    if not attrs:
        return ()
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if key in ("plaintext", "fn"):
            # Plaintexts and PBS lookup functions are keyed by identity:
            # two distinct encodings/tables never merge, reuse of the same
            # object does.
            parts.append((key, id(value)))
        elif key == "plaintexts":
            parts.append((key, tuple(id(p) for p in value)))
        else:
            parts.append((key, value))
    return tuple(parts)


class HEProgram:
    """A lazy homomorphic computation graph over one CKKS parameter set.

    Nodes are appended in topological order and hash-consed; ``inputs``
    and ``outputs`` are name -> node-id maps.  Programs are built through
    :class:`~repro.fhe.program.tracer.HETrace` handles, not by calling
    :meth:`add_node` directly.
    """

    def __init__(self, params, tfhe_params=None):
        self.params = params
        #: TFHE parameter set of the program's TFHE islands (``None`` for a
        #: pure-CKKS program).  Set by the tracer; carried through rebuilds.
        self.tfhe_params = tfhe_params
        self.nodes: List[HENode] = []
        self.inputs: Dict[str, int] = {}
        self.outputs: Dict[str, int] = {}
        self._cse: Dict[tuple, int] = {}

    # -- construction -------------------------------------------------------
    def add_node(self, op: str, args: Tuple[int, ...], level: int, scale: float,
                 domain: str = "coeff",
                 attrs: "Dict[str, object] | None" = None,
                 cse: bool = True) -> int:
        """Append a node (or return the existing structurally-equal one)."""
        args = tuple(args)
        for arg in args:
            if not 0 <= arg < len(self.nodes):
                raise ValueError(f"argument {arg} does not precede the new node")
        key = (op, args, domain, _attr_key(op, attrs))
        if cse and key in self._cse:
            return self._cse[key]
        node = HENode(
            id=len(self.nodes), op=op, args=args, level=level,
            scale=float(scale), domain=domain, attrs=dict(attrs or {}),
        )
        self.nodes.append(node)
        if cse:
            self._cse[key] = node.id
        return node.id

    def add_input(self, name: str, level: int, scale: float,
                  lwe: "str | None" = None) -> int:
        """Declare a named input; ``lwe`` makes it an LWE (TFHE) input and
        names the key kind (``"ckks"`` / ``"small"``) the ciphertext is
        under."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        attrs: Dict[str, object] = {"name": name}
        op = "input"
        if lwe is not None:
            op = "input_lwe"
            attrs["lwe"] = lwe
        node_id = self.add_node(
            op, (), level=level, scale=scale, attrs=attrs, cse=False,
        )
        self.inputs[name] = node_id
        return node_id

    def set_output(self, name: str, node_id: int) -> None:
        if not 0 <= node_id < len(self.nodes):
            raise ValueError(f"unknown node {node_id}")
        self.outputs[name] = node_id

    # -- inspection ---------------------------------------------------------
    def node(self, node_id: int) -> HENode:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def use_counts(self) -> List[int]:
        """How many times each node is consumed (args + outputs)."""
        counts = [0] * len(self.nodes)
        for node in self.nodes:
            for arg in node.args:
                counts[arg] += 1
        for node_id in self.outputs.values():
            counts[node_id] += 1
        return counts

    def consumers(self) -> List[List[int]]:
        """For each node, the ids of the nodes consuming it."""
        users: List[List[int]] = [[] for _ in self.nodes]
        for node in self.nodes:
            for arg in set(node.args):
                users[arg].append(node.id)
        return users

    def like(self) -> "HEProgram":
        """A fresh empty program over the same parameters (pass rebuilds)."""
        return HEProgram(self.params, tfhe_params=self.tfhe_params)

    def schemes(self) -> "frozenset[str]":
        """The set of schemes appearing in the program."""
        return frozenset(node.scheme for node in self.nodes)

    def is_hybrid(self) -> bool:
        """Whether the program contains any TFHE or scheme-switch node."""
        return any(node.scheme == "tfhe" for node in self.nodes)

    def validate(self) -> None:
        """Check topological ordering and input/output wiring."""
        for node in self.nodes:
            for arg in node.args:
                if arg >= node.id:
                    raise ValueError(
                        f"node {node.id} ({node.op}) consumes later node {arg}"
                    )
        for name, node_id in list(self.inputs.items()) + list(self.outputs.items()):
            if not 0 <= node_id < len(self.nodes):
                raise ValueError(f"{name!r} points at unknown node {node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HEProgram({len(self.nodes)} nodes, "
            f"inputs={list(self.inputs)}, outputs={list(self.outputs)})"
        )
