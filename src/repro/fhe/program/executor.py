"""Executes planned (or aligned-eager) :class:`HEProgram` graphs.

One executor serves both roles the differential suite compares:

* ``run(program, inputs)`` — the **planned** path: domains, conversions and
  fused nodes come from the pass pipeline; all rotations of one source
  share a single ``hoist_decompose`` (the hoist-fusion groups), and
  ``pmult_mac`` nodes run as one stacked ``(C, L, N)`` backend dispatch.
* ``run_eager(program, inputs)`` — the **eager call sequence**: the aligned
  program executed node by node through the plain evaluator operations,
  with one hoist per rotation and no batching.  This is the bit-exact
  reference the planner is gated against (every pass is an exact
  transformation over modular arithmetic).

Rotation keys are validated up front: every Galois key a program needs is
fetched before any hoist work starts, so a missing key raises the same
``KeyError`` as ``CKKSEvaluator.rotate`` without paying the hoist cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..backend import active_backend
from ..ckks.ciphertext import CKKSCiphertext
from ..ckks.keys import galois_element_for_conjugation
from ..ckks.keyswitch import HoistedDigits, hoist_decompose, keyswitch_hoisted
from ..rns import RNSPolynomial, _limb_contexts
from .ir import HEProgram
from .passes import PlannedProgram, plan_program

__all__ = ["ProgramExecutor"]


class ProgramExecutor:
    """Runs a program against one :class:`~repro.fhe.ckks.CKKSEvaluator`."""

    def __init__(self, evaluator):
        self.evaluator = evaluator

    # -- public entry points ------------------------------------------------
    def run(self, program, inputs: Dict[str, CKKSCiphertext],
            optimize: bool = True) -> Dict[str, CKKSCiphertext]:
        """Plan (unless already planned) and execute; returns outputs by name."""
        planned = (
            program if isinstance(program, PlannedProgram)
            else plan_program(program, optimize=optimize)
        )
        return self._execute(planned.program, inputs,
                             share_hoists=planned.optimized)

    def run_eager(self, program,
                  inputs: Dict[str, CKKSCiphertext]) -> Dict[str, CKKSCiphertext]:
        """The eager call sequence: aligned program, one evaluator call per
        node, one hoist per rotation, no stacking."""
        planned = (
            program if isinstance(program, PlannedProgram)
            else plan_program(program, optimize=False)
        )
        return self._execute(planned.program, inputs, share_hoists=False)

    # -- execution ----------------------------------------------------------
    def _execute(self, program: HEProgram, inputs: Dict[str, CKKSCiphertext],
                 share_hoists: bool) -> Dict[str, CKKSCiphertext]:
        ev = self.evaluator
        missing = set(program.inputs) - set(inputs)
        if missing:
            raise ValueError(f"missing program inputs: {sorted(missing)}")
        with ev._arith():
            self._prefetch_galois_keys(program)
            values: List[Optional[CKKSCiphertext]] = [None] * len(program)
            hoists: Dict[int, HoistedDigits] = {}
            conv_groups: Dict[int, List[int]] = {}
            conv_ready: Dict[int, CKKSCiphertext] = {}
            if share_hoists:
                for node in program.nodes:
                    if node.op in ("to_eval", "to_coeff") and "conv_group" in node.attrs:
                        conv_groups.setdefault(
                            node.attrs["conv_group"], []
                        ).append(node.id)
            for node in program.nodes:
                op = node.op
                if op == "input":
                    ct = inputs[node.attrs["name"]]
                    if ct.level != node.level:
                        raise ValueError(
                            f"input {node.attrs['name']!r} is at level "
                            f"{ct.level} but the program was traced at level "
                            f"{node.level}; re-trace at the new level"
                        )
                    result = ct
                elif op == "add":
                    result = ev.add(values[node.args[0]], values[node.args[1]])
                elif op == "sub":
                    result = ev.sub(values[node.args[0]], values[node.args[1]])
                elif op == "negate":
                    result = ev.negate(values[node.args[0]])
                elif op == "multiply":
                    result = ev.multiply(values[node.args[0]], values[node.args[1]])
                elif op == "multiply_plain":
                    result = ev.multiply_plain(
                        values[node.args[0]], node.attrs["plaintext"]
                    )
                elif op == "add_plain":
                    result = ev.add_plain(
                        values[node.args[0]], node.attrs["plaintext"]
                    )
                elif op == "multiply_scalar":
                    result = ev.multiply_scalar(
                        values[node.args[0]], node.attrs["scalar"]
                    )
                elif op == "rescale":
                    result = ev.rescale(values[node.args[0]])
                elif op == "mod_down":
                    result = ev.mod_down_to(
                        values[node.args[0]], node.attrs["level"]
                    )
                elif op in ("to_eval", "to_coeff"):
                    result = self._convert(
                        node, values, program, conv_groups, conv_ready
                    )
                elif op in ("rotate", "conjugate"):
                    result = self._galois(node, values, hoists, share_hoists)
                elif op == "pmult_mac":
                    result = self._pmult_mac(node, values)
                else:  # pragma: no cover - the IR op set is closed
                    raise ValueError(f"cannot execute program op {op!r}")
                values[node.id] = result
            return {
                name: values[node_id]
                for name, node_id in program.outputs.items()
            }

    def _prefetch_galois_keys(self, program: HEProgram) -> None:
        """Fetch every Galois key the program needs before any hoist work
        (missing keys raise KeyError here, exactly like ``rotate``)."""
        ev = self.evaluator
        for node in program.nodes:
            if node.op == "rotate":
                element = ev.galois_element_for_rotation(node.attrs["steps"])
            elif node.op == "conjugate":
                element = galois_element_for_conjugation(ev.params.ring_degree)
            else:
                continue
            if element != 1:
                ev.keys.galois_key(element, node.level)

    # -- stacked domain conversions --------------------------------------------
    def _convert(self, node, values, program, conv_groups,
                 conv_ready) -> CKKSCiphertext:
        """Execute a ``to_eval``/``to_coeff`` node, stacking its group.

        When the planner grouped this node with siblings (same direction,
        same level, all sources computed by now — the grouping invariant),
        the whole group's ``(2 * members, L, N)`` store stack converts in a
        single ``stacked_ntt``/``stacked_intt`` backend dispatch on the
        group's first member; later members pop their pre-computed result.
        Ungrouped nodes (and non-NTT-friendly bases) run the plain
        per-ciphertext conversion.
        """
        ev = self.evaluator
        ready = conv_ready.pop(node.id, None)
        if ready is not None:
            return ready
        to_eval = node.op == "to_eval"
        single = ev.to_eval if to_eval else ev.to_coeff
        members = conv_groups.get(node.attrs.get("conv_group"))
        if not members or len(members) < 2:
            return single(values[node.args[0]])
        target = "eval" if to_eval else "coeff"
        sources = [
            (member, values[program.node(member).args[0]]) for member in members
        ]
        pending = [(m, ct) for m, ct in sources if ct.domain != target]
        for member, ct in sources:
            if ct.domain == target:
                conv_ready[member] = ct
        if pending:
            basis = pending[0][1].c0.basis
            contexts = _limb_contexts(pending[0][1].ring_degree, basis)
            if contexts is None or any(ct.c0.basis != basis for _, ct in pending):
                for member, ct in pending:
                    conv_ready[member] = single(ct)
            else:
                backend = active_backend()
                stores = []
                for _, ct in pending:
                    stores.append(ct.c0.store())
                    stores.append(ct.c1.store())
                stacked = (
                    backend.stacked_ntt(contexts, stores) if to_eval
                    else backend.stacked_intt(contexts, stores)
                )
                n = pending[0][1].ring_degree
                for index, (member, ct) in enumerate(pending):
                    conv_ready[member] = CKKSCiphertext(
                        c0=RNSPolynomial._from_store(
                            n, basis, stacked[2 * index], domain=target
                        ),
                        c1=RNSPolynomial._from_store(
                            n, basis, stacked[2 * index + 1], domain=target
                        ),
                        level=ct.level,
                        scale=ct.scale,
                    )
        return conv_ready.pop(node.id)

    # -- grouped rotations ---------------------------------------------------
    def _galois(self, node, values, hoists, share_hoists) -> CKKSCiphertext:
        ev = self.evaluator
        ct = values[node.args[0]]
        if node.op == "rotate":
            element = ev.galois_element_for_rotation(node.attrs["steps"])
        else:
            element = galois_element_for_conjugation(ev.params.ring_degree)
        if element == 1:
            return ct.copy()
        galois_key = ev.keys.galois_key(element, ct.level)
        hoisted = hoists.get(node.args[0]) if share_hoists else None
        if hoisted is None:
            hoisted = hoist_decompose(ct.c1, ev.params, ct.level)
            if share_hoists:
                hoists[node.args[0]] = hoisted
        f0, f1 = keyswitch_hoisted(hoisted, galois_key, galois_element=element)
        rotated_c0 = ct.c0.automorphism(element)
        if ct.domain == "eval":
            f0 = f0.to_eval()
            f1 = f1.to_eval()
        return CKKSCiphertext(
            c0=rotated_c0 + f0, c1=f1, level=ct.level, scale=ct.scale
        )

    # -- fused plaintext MAC ---------------------------------------------------
    def _pmult_mac(self, node, values) -> CKKSCiphertext:
        ev = self.evaluator
        cts = [values[a] for a in node.args]
        plaintexts = node.attrs["plaintexts"]
        if any(ct.domain != "eval" for ct in cts):
            # Defensive fallback (the planner only fuses eval-domain groups):
            # the semantics of pmult_mac are the plain PMult/HAdd chain.
            result = None
            for ct, plaintext in zip(cts, plaintexts):
                term = ev.multiply_plain(ct, plaintext)
                result = term if result is None else ev.add(result, term)
            return result
        basis = cts[0].c0.basis
        moduli = tuple(basis.moduli)
        level = cts[0].level
        pt_stores = [
            ev._plaintext_eval_at_level(plaintext, level).store()
            for plaintext in plaintexts
        ]
        backend = active_backend()
        s0, s1 = backend.stacked_pmult_mac(
            [ct.c0.store() for ct in cts],
            [ct.c1.store() for ct in cts],
            pt_stores, moduli,
        )
        n = cts[0].ring_degree
        return CKKSCiphertext(
            c0=RNSPolynomial._from_store(n, basis, s0, domain="eval"),
            c1=RNSPolynomial._from_store(n, basis, s1, domain="eval"),
            level=level,
            scale=cts[0].scale * plaintexts[0].scale,
        )
