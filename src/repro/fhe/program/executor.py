"""Executes planned (or aligned-eager) :class:`HEProgram` graphs.

One executor serves both roles the differential suite compares:

* ``run(program, inputs)`` — the **planned** path: domains, conversions and
  fused nodes come from the pass pipeline; all rotations of one source
  share a single ``hoist_decompose`` (the hoist-fusion groups), and
  ``pmult_mac`` nodes run as one stacked ``(C, L, N)`` backend dispatch.
* ``run_eager(program, inputs)`` — the **eager call sequence**: the aligned
  program executed node by node through the plain evaluator operations,
  with one hoist per rotation and no batching.  This is the bit-exact
  reference the planner is gated against (every pass is an exact
  transformation over modular arithmetic).

Rotation keys are validated up front: every Galois key a program needs is
fetched before any hoist work starts, so a missing key raises the same
``KeyError`` as ``CKKSEvaluator.rotate`` without paying the hoist cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..backend import active_backend
from ..ckks.ciphertext import CKKSCiphertext
from ..ckks.keys import galois_element_for_conjugation
from ..ckks.keyswitch import HoistedDigits, hoist_decompose, keyswitch_hoisted
from ..rns import RNSPolynomial, _limb_contexts
from .ir import HEProgram, SCHEME_SWITCH_OPS, TFHE_OPS
from .passes import PlannedProgram, plan_program

__all__ = ["ProgramExecutor"]


class ProgramExecutor:
    """Runs a program against one :class:`~repro.fhe.ckks.CKKSEvaluator`.

    Hybrid programs additionally need ``tfhe`` (a
    :class:`~repro.fhe.tfhe.TFHEContext` matching the program's
    ``tfhe_params``) for the PBS/gate-bootstrap nodes, and ``bridge`` (a
    :class:`~repro.fhe.conversion.bridge.SchemeBridge`) for the
    ``lwe_keyswitch`` nodes crossing the key boundary.  Pure-CKKS programs
    ignore both.
    """

    def __init__(self, evaluator, tfhe=None, bridge=None):
        self.evaluator = evaluator
        self.tfhe = tfhe
        self.bridge = bridge

    # -- public entry points ------------------------------------------------
    def run(self, program, inputs: Dict[str, CKKSCiphertext],
            optimize: bool = True) -> Dict[str, CKKSCiphertext]:
        """Plan (unless already planned) and execute; returns outputs by name."""
        planned = (
            program if isinstance(program, PlannedProgram)
            else plan_program(program, optimize=optimize)
        )
        return self._execute(planned.program, inputs,
                             share_hoists=planned.optimized)

    def run_eager(self, program,
                  inputs: Dict[str, CKKSCiphertext]) -> Dict[str, CKKSCiphertext]:
        """The eager call sequence: aligned program, one evaluator call per
        node, one hoist per rotation, no stacking."""
        planned = (
            program if isinstance(program, PlannedProgram)
            else plan_program(program, optimize=False)
        )
        return self._execute(planned.program, inputs, share_hoists=False)

    # -- execution ----------------------------------------------------------
    def _execute(self, program: HEProgram, inputs: Dict[str, CKKSCiphertext],
                 share_hoists: bool) -> Dict[str, CKKSCiphertext]:
        ev = self.evaluator
        missing = set(program.inputs) - set(inputs)
        if missing:
            raise ValueError(f"missing program inputs: {sorted(missing)}")
        if program.is_hybrid() and self.tfhe is None:
            raise ValueError(
                "hybrid program: construct ProgramExecutor with a TFHEContext"
            )
        with ev._arith():
            self._prefetch_galois_keys(program)
            values: List[Optional[object]] = [None] * len(program)
            hoists: Dict[int, HoistedDigits] = {}
            conv_groups: Dict[int, List[int]] = {}
            conv_ready: Dict[int, CKKSCiphertext] = {}
            pbs_groups: Dict[int, List[int]] = {}
            pbs_ready: Dict[int, object] = {}
            ks_groups: Dict[int, List[int]] = {}
            ks_ready: Dict[int, object] = {}
            if share_hoists:
                for node in program.nodes:
                    if node.op in ("to_eval", "to_coeff") and "conv_group" in node.attrs:
                        conv_groups.setdefault(
                            node.attrs["conv_group"], []
                        ).append(node.id)
                    elif node.op in ("pbs", "gate_bootstrap") and "pbs_group" in node.attrs:
                        pbs_groups.setdefault(
                            node.attrs["pbs_group"], []
                        ).append(node.id)
                    elif node.op == "lwe_keyswitch" and "ks_group" in node.attrs:
                        ks_groups.setdefault(
                            node.attrs["ks_group"], []
                        ).append(node.id)
            for node in program.nodes:
                op = node.op
                if op in TFHE_OPS or op in SCHEME_SWITCH_OPS or op == "input_lwe":
                    values[node.id] = self._execute_tfhe(
                        node, values, program, inputs, pbs_groups, pbs_ready,
                        ks_groups, ks_ready,
                    )
                    continue
                if op == "input":
                    ct = inputs[node.attrs["name"]]
                    if ct.level != node.level:
                        raise ValueError(
                            f"input {node.attrs['name']!r} is at level "
                            f"{ct.level} but the program was traced at level "
                            f"{node.level}; re-trace at the new level"
                        )
                    result = ct
                elif op == "add":
                    result = ev.add(values[node.args[0]], values[node.args[1]])
                elif op == "sub":
                    result = ev.sub(values[node.args[0]], values[node.args[1]])
                elif op == "negate":
                    result = ev.negate(values[node.args[0]])
                elif op == "multiply":
                    result = ev.multiply(values[node.args[0]], values[node.args[1]])
                elif op == "multiply_plain":
                    result = ev.multiply_plain(
                        values[node.args[0]], node.attrs["plaintext"]
                    )
                elif op == "add_plain":
                    result = ev.add_plain(
                        values[node.args[0]], node.attrs["plaintext"]
                    )
                elif op == "multiply_scalar":
                    result = ev.multiply_scalar(
                        values[node.args[0]], node.attrs["scalar"]
                    )
                elif op == "rescale":
                    result = ev.rescale(values[node.args[0]])
                elif op == "mod_down":
                    result = ev.mod_down_to(
                        values[node.args[0]], node.attrs["level"]
                    )
                elif op in ("to_eval", "to_coeff"):
                    result = self._convert(
                        node, values, program, conv_groups, conv_ready
                    )
                elif op in ("rotate", "conjugate"):
                    result = self._galois(node, values, hoists, share_hoists)
                elif op == "pmult_mac":
                    result = self._pmult_mac(node, values)
                else:  # pragma: no cover - the IR op set is closed
                    raise ValueError(f"cannot execute program op {op!r}")
                values[node.id] = result
            return {
                name: values[node_id]
                for name, node_id in program.outputs.items()
            }

    def _prefetch_galois_keys(self, program: HEProgram) -> None:
        """Fetch every Galois key the program needs before any hoist work
        (missing keys raise KeyError here, exactly like ``rotate``)."""
        ev = self.evaluator
        n = ev.params.ring_degree
        for node in program.nodes:
            if node.op == "rotate":
                elements = [ev.galois_element_for_rotation(node.attrs["steps"])]
            elif node.op == "conjugate":
                elements = [galois_element_for_conjugation(n)]
            elif node.op == "tfhe_to_ckks":
                # PackLWEs + Field Trace automorphisms (always at level 0).
                nslot = len(node.args)
                elements = [
                    (1 << r) + 1 for r in range(1, nslot.bit_length())
                ] + [
                    (2 * n) // (1 << k) + 1
                    for k in range(1, (n // nslot).bit_length())
                ]
            else:
                continue
            for element in elements:
                if element != 1:
                    ev.keys.galois_key(element, node.level)

    # -- TFHE islands and scheme switches -----------------------------------
    def _execute_tfhe(self, node, values, program, inputs,
                      pbs_groups, pbs_ready, ks_groups, ks_ready):
        """Execute one TFHE / scheme-switch node.

        LWE values flow through ``values`` exactly like CKKS ciphertexts;
        grouped ``pbs``/``gate_bootstrap`` nodes run as one batched blind
        rotation at the group's first member (the grouping invariant
        guarantees every member's source is computed by then), later members
        pop their pre-computed result.  Grouped ``lwe_keyswitch`` nodes
        cross the key bridge the same way, one stacked ``digits @ ksk``
        dispatch per wave and direction.
        """
        from ..conversion.ckks_to_tfhe import sample_extract_rlwe
        from ..conversion.tfhe_to_ckks import repack_lwe_ciphertexts
        from ..tfhe.batched import (
            batched_programmable_bootstrap, sign_test_vector,
        )

        ev = self.evaluator
        op = node.op
        if op == "input_lwe":
            return inputs[node.attrs["name"]]
        if op == "ckks_to_tfhe":
            ct = values[node.args[0]]
            if ct.domain != "coeff":
                ct = ev.to_coeff(ct)
            if ct.level != 0:
                ct = ev.mod_down_to(ct, 0)
            return sample_extract_rlwe(ct, node.attrs["index"])
        if op == "tfhe_to_ckks":
            lwes = [values[arg] for arg in node.args]
            repacked = repack_lwe_ciphertexts(lwes, ev)
            return CKKSCiphertext(
                c0=repacked.c0, c1=repacked.c1, level=repacked.level,
                scale=node.scale,
            )
        if op == "lwe_add":
            return values[node.args[0]] + values[node.args[1]]
        if op == "lwe_sub":
            return values[node.args[0]] - values[node.args[1]]
        if op == "lwe_negate":
            return -values[node.args[0]]
        if op == "lwe_scalar_mul":
            return values[node.args[0]].scalar_multiply(node.attrs["scalar"])
        if op == "lwe_add_const":
            return values[node.args[0]].add_constant(node.attrs["value"])
        if op == "lwe_keyswitch":
            if self.bridge is None:
                raise ValueError(
                    "program crosses the CKKS/TFHE key boundary: construct "
                    "ProgramExecutor with a SchemeBridge"
                )
            ready = ks_ready.pop(node.id, None)
            if ready is not None:
                return ready
            members = ks_groups.get(node.attrs.get("ks_group"))
            if not members or len(members) < 2:
                if node.attrs["direction"] == "c2t":
                    return self.bridge.switch_to_tfhe(values[node.args[0]])
                return self.bridge.switch_to_ckks(values[node.args[0]])
            member_nodes = [program.node(m) for m in members]
            sources = [values[m.args[0]] for m in member_nodes]
            if node.attrs["direction"] == "c2t":
                outputs = self.bridge.switch_many_to_tfhe(sources)
            else:
                outputs = self.bridge.switch_many_to_ckks(sources)
            for member, out in zip(member_nodes, outputs):
                ks_ready[member.id] = out
            return ks_ready.pop(node.id)
        # pbs / gate_bootstrap (possibly batched)
        ready = pbs_ready.pop(node.id, None)
        if ready is not None:
            return ready
        members = pbs_groups.get(node.attrs.get("pbs_group"))
        if not members or len(members) < 2:
            members = [node.id]
        member_nodes = [program.node(m) for m in members]
        vectors = [
            self.tfhe.make_test_vector(m.attrs["fn"]) if m.op == "pbs"
            else sign_test_vector(self.tfhe, m.attrs["amplitude"])
            for m in member_nodes
        ]
        sources = [values[m.args[0]] for m in member_nodes]
        outputs = batched_programmable_bootstrap(self.tfhe, sources, vectors)
        for member, out in zip(member_nodes, outputs):
            if member.op == "gate_bootstrap":
                out = out.add_constant(member.attrs["amplitude"])
            pbs_ready[member.id] = out
        return pbs_ready.pop(node.id)

    # -- stacked domain conversions --------------------------------------------
    def _convert(self, node, values, program, conv_groups,
                 conv_ready) -> CKKSCiphertext:
        """Execute a ``to_eval``/``to_coeff`` node, stacking its group.

        When the planner grouped this node with siblings (same direction,
        same level, all sources computed by now — the grouping invariant),
        the whole group's ``(2 * members, L, N)`` store stack converts in a
        single ``stacked_ntt``/``stacked_intt`` backend dispatch on the
        group's first member; later members pop their pre-computed result.
        Ungrouped nodes (and non-NTT-friendly bases) run the plain
        per-ciphertext conversion.
        """
        ev = self.evaluator
        ready = conv_ready.pop(node.id, None)
        if ready is not None:
            return ready
        to_eval = node.op == "to_eval"
        single = ev.to_eval if to_eval else ev.to_coeff
        members = conv_groups.get(node.attrs.get("conv_group"))
        if not members or len(members) < 2:
            return single(values[node.args[0]])
        target = "eval" if to_eval else "coeff"
        sources = [
            (member, values[program.node(member).args[0]]) for member in members
        ]
        pending = [(m, ct) for m, ct in sources if ct.domain != target]
        for member, ct in sources:
            if ct.domain == target:
                conv_ready[member] = ct
        if pending:
            basis = pending[0][1].c0.basis
            contexts = _limb_contexts(pending[0][1].ring_degree, basis)
            if contexts is None or any(ct.c0.basis != basis for _, ct in pending):
                for member, ct in pending:
                    conv_ready[member] = single(ct)
            else:
                backend = active_backend()
                stores = []
                for _, ct in pending:
                    stores.append(ct.c0.store())
                    stores.append(ct.c1.store())
                stacked = (
                    backend.stacked_ntt(contexts, stores) if to_eval
                    else backend.stacked_intt(contexts, stores)
                )
                n = pending[0][1].ring_degree
                for index, (member, ct) in enumerate(pending):
                    conv_ready[member] = CKKSCiphertext(
                        c0=RNSPolynomial._from_store(
                            n, basis, stacked[2 * index], domain=target
                        ),
                        c1=RNSPolynomial._from_store(
                            n, basis, stacked[2 * index + 1], domain=target
                        ),
                        level=ct.level,
                        scale=ct.scale,
                    )
        return conv_ready.pop(node.id)

    # -- grouped rotations ---------------------------------------------------
    def _galois(self, node, values, hoists, share_hoists) -> CKKSCiphertext:
        ev = self.evaluator
        ct = values[node.args[0]]
        if node.op == "rotate":
            element = ev.galois_element_for_rotation(node.attrs["steps"])
        else:
            element = galois_element_for_conjugation(ev.params.ring_degree)
        if element == 1:
            return ct.copy()
        galois_key = ev.keys.galois_key(element, ct.level)
        hoisted = hoists.get(node.args[0]) if share_hoists else None
        if hoisted is None:
            hoisted = hoist_decompose(ct.c1, ev.params, ct.level)
            if share_hoists:
                hoists[node.args[0]] = hoisted
        f0, f1 = keyswitch_hoisted(hoisted, galois_key, galois_element=element)
        rotated_c0 = ct.c0.automorphism(element)
        if ct.domain == "eval":
            f0 = f0.to_eval()
            f1 = f1.to_eval()
        return CKKSCiphertext(
            c0=rotated_c0 + f0, c1=f1, level=ct.level, scale=ct.scale
        )

    # -- fused plaintext MAC ---------------------------------------------------
    def _pmult_mac(self, node, values) -> CKKSCiphertext:
        ev = self.evaluator
        cts = [values[a] for a in node.args]
        plaintexts = node.attrs["plaintexts"]
        if any(ct.domain != "eval" for ct in cts):
            # Defensive fallback (the planner only fuses eval-domain groups):
            # the semantics of pmult_mac are the plain PMult/HAdd chain.
            result = None
            for ct, plaintext in zip(cts, plaintexts):
                term = ev.multiply_plain(ct, plaintext)
                result = term if result is None else ev.add(result, term)
            return result
        basis = cts[0].c0.basis
        moduli = tuple(basis.moduli)
        level = cts[0].level
        pt_stores = [
            ev._plaintext_eval_at_level(plaintext, level).store()
            for plaintext in plaintexts
        ]
        backend = active_backend()
        s0, s1 = backend.stacked_pmult_mac(
            [ct.c0.store() for ct in cts],
            [ct.c1.store() for ct in cts],
            pt_stores, moduli,
        )
        n = cts[0].ring_degree
        return CKKSCiphertext(
            c0=RNSPolynomial._from_store(n, basis, s0, domain="eval"),
            c1=RNSPolynomial._from_store(n, basis, s1, domain="eval"),
            level=level,
            scale=cts[0].scale * plaintexts[0].scale,
        )
