"""Bounded LRU cache with hit/miss/eviction counters.

This generalizes the unbounded per-level plan dict that
:class:`~repro.fhe.ckks.linear_transform.BSGSLinearTransform` grew in PR 4:
planned :class:`HEProgram` objects, materialized key-switch keys, and encoded
plaintexts are all expensive to build and cheap to key, so a serving process
wants them cached — but bounded, because a multi-tenant server hosting many
program shapes at many levels would otherwise grow without limit.

The cache is a plain insertion-ordered dict (guaranteed since Python 3.7)
with move-to-end on access; no external dependencies, so it is importable on
the no-numpy configuration.  Counters are exposed through :meth:`stats` in
the shape the serving layer reports to operators.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterator, Optional

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """A capacity-bounded mapping that evicts the least-recently-used entry.

    ``get``/``get_or_create`` count hits and misses and refresh recency;
    ``put`` inserts (or updates and refreshes) and evicts the oldest entry
    once ``capacity`` is exceeded.  ``__contains__`` and iteration are
    passive: they neither count nor promote.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: Dict[Hashable, Any] = {}

    # -- core mapping operations --------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (promoting it to most-recent) or ``default``."""
        value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data[key] = value  # re-insert at the most-recent end
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> Optional[Hashable]:
        """Insert or update ``key``; return the evicted key, if any."""
        self._data.pop(key, None)
        self._data[key] = value
        if len(self._data) > self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.evictions += 1
            return oldest
        return None

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, building and inserting it on a miss."""
        value = self._data.pop(key, _MISSING)
        if value is not _MISSING:
            self._data[key] = value
            self.hits += 1
            return value
        self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    # -- passive introspection ----------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[Hashable]:
        """Keys from least- to most-recently used."""
        return iter(self._data)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._data.clear()

    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LRUCache(size={len(self._data)}, capacity={self.capacity}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")
