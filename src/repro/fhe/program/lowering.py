"""Lowering: :class:`HEProgram` -> ``HomomorphicOp`` stream -> kernel traces.

The same traced program that executes functionally also lowers to the cost
model's operation stream (Table II granularity), so one trace yields both a
ciphertext result and a Trinity cycle estimate:

* :func:`lower_to_operations` — the level-annotated ``HomomorphicOp`` list
  (fused ``pmult_mac`` nodes expand back into their ``PMult``/``HAdd``
  accounting, so the histogram matches the unfused math and the
  ``linear_transform_plan`` bookkeeping);
* :func:`operation_histogram` — total count per operation name;
* :func:`lower_to_traces` — kernel traces via
  :func:`repro.kernels.ckks_flows.ckks_operation_flow`, ready for
  :mod:`repro.core.scheduler` / :class:`repro.core.simulator.TrinitySimulator`;
* :func:`trinity_cycle_estimate` — convenience end-to-end cycle/latency
  estimate on the default Trinity configuration.

Domain conversions (``to_eval``/``to_coeff``) and ``mod_down`` are *not*
Table II operations — they are sub-operation kernels the flows already
charge inside HMult/HRotate/Rescale — so they are excluded from the stream
and reported separately by :func:`conversion_counts`.
"""

from __future__ import annotations

from typing import Dict, List

from ..ckks.bootstrap import HomomorphicOp
from .ir import HEProgram
from .passes import PlannedProgram

__all__ = [
    "lower_to_operations",
    "operation_histogram",
    "conversion_counts",
    "lower_to_traces",
    "trinity_cycle_estimate",
]

#: Table II name for each directly-mapped program op.
_TABLE_II = {
    "multiply": "HMult",
    "multiply_plain": "PMult",
    "multiply_scalar": "PMult",
    "add": "HAdd",
    "sub": "HAdd",
    "negate": "HAdd",
    "add_plain": "PAdd",
    "rotate": "HRotate",
    "conjugate": "Conjugate",
    "rescale": "Rescale",
}


def _program_of(program) -> HEProgram:
    return program.program if isinstance(program, PlannedProgram) else program


def lower_to_operations(program) -> List[HomomorphicOp]:
    """The level-annotated Table II operation stream of a (planned) program.

    Consecutive identical ``(name, level)`` operations coalesce into one
    entry with a count; a fused ``pmult_mac`` over ``C`` ciphertexts
    contributes ``C`` PMults and ``C - 1`` HAdds (its mathematical
    content), keeping the histogram faithful to the unfused accounting.
    """
    ops: List[HomomorphicOp] = []

    def emit(name: str, level: int, count: int = 1) -> None:
        if ops and ops[-1].name == name and ops[-1].level == level:
            ops[-1] = HomomorphicOp(name, level, ops[-1].count + count)
        else:
            ops.append(HomomorphicOp(name, level, count))

    for node in _program_of(program).nodes:
        if node.op in _TABLE_II:
            emit(_TABLE_II[node.op], node.level)
        elif node.op == "pmult_mac":
            emit("PMult", node.level, len(node.args))
            if len(node.args) > 1:
                emit("HAdd", node.level, len(node.args) - 1)
        # input / mod_down / to_eval / to_coeff: no Table II operation.
    return ops


def operation_histogram(program) -> Dict[str, int]:
    """Total count of each Table II operation across the program."""
    histogram: Dict[str, int] = {}
    for op in lower_to_operations(program):
        histogram[op.name] = histogram.get(op.name, 0) + op.count
    return histogram


def conversion_counts(program) -> Dict[str, int]:
    """How many explicit domain conversions the planner materialized."""
    counts = {"to_eval": 0, "to_coeff": 0}
    for node in _program_of(program).nodes:
        if node.op in counts:
            counts[node.op] += 1
    return counts


def lower_to_traces(program, params=None) -> list:
    """Kernel traces of the lowered operation stream (simulator input)."""
    from ...kernels.ckks_flows import ckks_operation_flow

    ir = _program_of(program)
    params = ir.params if params is None else params
    traces = []
    for op in lower_to_operations(program):
        trace = ckks_operation_flow(op.name, params, op.level)
        if op.count > 1:
            from ...kernels.kernel import KernelTrace

            repeated = KernelTrace(
                name=f"{trace.name}x{op.count}", scheme="ckks",
                metadata=dict(trace.metadata),
            )
            repeated.extend(trace, repeat=op.count)
            trace = repeated
        traces.append(trace)
    return traces


def trinity_cycle_estimate(program, params=None, config=None):
    """Latency estimate of the program on the Trinity model.

    Returns the simulator's :class:`~repro.core.simulator.PerformanceReport`
    for the lowered trace stream under the CKKS mapping policy.
    """
    from ...core.config import DEFAULT_TRINITY_CONFIG
    from ...core.mapping import select_mapping
    from ...core.simulator import TrinitySimulator

    config = DEFAULT_TRINITY_CONFIG if config is None else config
    simulator = TrinitySimulator(config)
    traces = lower_to_traces(program, params=params)
    return simulator.run_many(traces, mapping=select_mapping("ckks", config))
