"""Lowering: :class:`HEProgram` -> ``HomomorphicOp`` stream -> kernel traces.

The same traced program that executes functionally also lowers to the cost
model's operation stream (Table II granularity), so one trace yields both a
ciphertext result and a Trinity cycle estimate:

* :func:`lower_to_operations` — the level-annotated ``HomomorphicOp`` list
  (fused ``pmult_mac`` nodes expand back into their ``PMult``/``HAdd``
  accounting, so the histogram matches the unfused math and the
  ``linear_transform_plan`` bookkeeping);
* :func:`operation_histogram` — total count per operation name;
* :func:`lower_to_traces` — kernel traces via
  :func:`repro.kernels.ckks_flows.ckks_operation_flow`, ready for
  :mod:`repro.core.scheduler` / :class:`repro.core.simulator.TrinitySimulator`;
* :func:`trinity_cycle_estimate` — convenience end-to-end cycle/latency
  estimate on the default Trinity configuration.

Domain conversions (``to_eval``/``to_coeff``) and ``mod_down`` are *not*
Table II operations — they are sub-operation kernels the flows already
charge inside HMult/HRotate/Rescale — so they are excluded from the stream
and reported separately by :func:`conversion_counts`.
"""

from __future__ import annotations

from typing import Dict, List

from ..ckks.bootstrap import HomomorphicOp
from .ir import HEProgram
from .passes import PlannedProgram

__all__ = [
    "lower_to_operations",
    "operation_histogram",
    "conversion_counts",
    "lower_to_traces",
    "trinity_cycle_estimate",
    "lower_hybrid_to_workloads",
    "hybrid_kernel_histogram",
    "hybrid_cycle_estimate",
]

#: LWE linear ops costed as one (dim+1)-element modular add/scale each.
_LWE_LINEAR_OPS = frozenset({
    "lwe_add", "lwe_sub", "lwe_negate", "lwe_scalar_mul", "lwe_add_const",
})

#: Table II name for each directly-mapped program op.
_TABLE_II = {
    "multiply": "HMult",
    "multiply_plain": "PMult",
    "multiply_scalar": "PMult",
    "add": "HAdd",
    "sub": "HAdd",
    "negate": "HAdd",
    "add_plain": "PAdd",
    "rotate": "HRotate",
    "conjugate": "Conjugate",
    "rescale": "Rescale",
}


def _program_of(program) -> HEProgram:
    return program.program if isinstance(program, PlannedProgram) else program


def lower_to_operations(program) -> List[HomomorphicOp]:
    """The level-annotated Table II operation stream of a (planned) program.

    Consecutive identical ``(name, level)`` operations coalesce into one
    entry with a count; a fused ``pmult_mac`` over ``C`` ciphertexts
    contributes ``C`` PMults and ``C - 1`` HAdds (its mathematical
    content), keeping the histogram faithful to the unfused accounting.
    """
    ops: List[HomomorphicOp] = []

    def emit(name: str, level: int, count: int = 1) -> None:
        if ops and ops[-1].name == name and ops[-1].level == level:
            ops[-1] = HomomorphicOp(name, level, ops[-1].count + count)
        else:
            ops.append(HomomorphicOp(name, level, count))

    for node in _program_of(program).nodes:
        if node.op in _TABLE_II:
            emit(_TABLE_II[node.op], node.level)
        elif node.op == "pmult_mac":
            emit("PMult", node.level, len(node.args))
            if len(node.args) > 1:
                emit("HAdd", node.level, len(node.args) - 1)
        # input / mod_down / to_eval / to_coeff: no Table II operation.
    return ops


def operation_histogram(program) -> Dict[str, int]:
    """Total count of each Table II operation across the program."""
    histogram: Dict[str, int] = {}
    for op in lower_to_operations(program):
        histogram[op.name] = histogram.get(op.name, 0) + op.count
    return histogram


def conversion_counts(program) -> Dict[str, int]:
    """How many explicit domain conversions the planner materialized."""
    counts = {"to_eval": 0, "to_coeff": 0}
    for node in _program_of(program).nodes:
        if node.op in counts:
            counts[node.op] += 1
    return counts


def lower_to_traces(program, params=None) -> list:
    """Kernel traces of the lowered operation stream (simulator input)."""
    from ...kernels.ckks_flows import ckks_operation_flow

    ir = _program_of(program)
    params = ir.params if params is None else params
    traces = []
    for op in lower_to_operations(program):
        trace = ckks_operation_flow(op.name, params, op.level)
        if op.count > 1:
            from ...kernels.kernel import KernelTrace

            repeated = KernelTrace(
                name=f"{trace.name}x{op.count}", scheme="ckks",
                metadata=dict(trace.metadata),
            )
            repeated.extend(trace, repeat=op.count)
            trace = repeated
        traces.append(trace)
    return traces


def lower_hybrid_to_workloads(program, params=None) -> list:
    """Scheme-grouped :class:`~repro.workloads.base.Workload` list of a hybrid program.

    The program's nodes are partitioned by the datapath that executes them —
    the CKKS subgraph (Table II stream via :func:`lower_to_traces`), the TFHE
    island (one :func:`~repro.kernels.tfhe_flows.pbs_flow` /
    :func:`~repro.kernels.tfhe_flows.gate_bootstrap_flow` per bootstrap, a
    bridge keyswitch per ``lwe_keyswitch``, one modular add per LWE linear
    op), and the scheme-switch boundary (one
    :func:`~repro.kernels.conversion_flows.ckks_to_tfhe_flow` covering every
    extraction, one :func:`~repro.kernels.conversion_flows.tfhe_to_ckks_flow`
    per repack node).  Grouping by scheme makes the lowering insensitive to
    the planner's node reordering: :meth:`WorkloadScheduler.run_interleaved`
    sums per-unit busy time across workloads, so the histogram — and hence
    the estimate — depends only on *what* ran, not on interleaving order.

    The planner's PBS batching is deliberately **not** reflected here: a
    batched dispatch performs the same NTT/MAC work as its members run
    sequentially, it just shares dispatch overhead the cost model does not
    charge per call.
    """
    from ...kernels.conversion_flows import (
        bridge_keyswitch_flow, ckks_to_tfhe_flow, tfhe_to_ckks_flow,
    )
    from ...kernels.kernel import Kernel, KernelKind, KernelTrace
    from ...kernels.tfhe_flows import gate_bootstrap_flow, pbs_flow
    from ...workloads.base import Workload

    ir = _program_of(program)
    ckks_params = ir.params if params is None else params
    tfhe_params = ir.tfhe_params
    if tfhe_params is None:
        raise ValueError("not a hybrid program: no TFHE parameter set attached")

    tfhe_traces: List = []
    conversion_traces: List = []
    extractions = 0
    linear_by_dim: Dict[int, int] = {}
    for node in ir.nodes:
        if node.op == "pbs":
            tfhe_traces.append(pbs_flow(tfhe_params))
        elif node.op == "gate_bootstrap":
            tfhe_traces.append(gate_bootstrap_flow(tfhe_params))
        elif node.op == "lwe_keyswitch":
            tfhe_traces.append(bridge_keyswitch_flow(
                str(node.attrs["direction"]), ckks_params, tfhe_params))
        elif node.op in _LWE_LINEAR_OPS:
            dim = (ckks_params.ring_degree if node.attrs.get("lwe") == "ckks"
                   else tfhe_params.lwe_dimension)
            linear_by_dim[dim] = linear_by_dim.get(dim, 0) + 1
        elif node.op == "ckks_to_tfhe":
            extractions += 1
        elif node.op == "tfhe_to_ckks":
            conversion_traces.append(tfhe_to_ckks_flow(
                ckks_params, nslot=len(node.args), level=node.level))
    if linear_by_dim:
        linear = KernelTrace(name="lwe-linear", scheme="tfhe")
        linear.add_step(
            [Kernel(KernelKind.MODADD, dim + 1, count=count, scheme="tfhe",
                    tag="lwe.linear")
             for dim, count in sorted(linear_by_dim.items())],
            label="lwe-linear",
        )
        tfhe_traces.append(linear)
    if extractions:
        conversion_traces.insert(
            0, ckks_to_tfhe_flow(ckks_params, nslot=extractions))

    workloads = []
    ckks_traces = lower_to_traces(program, params=ckks_params)
    if ckks_traces:
        workloads.append(Workload(
            name="hybrid.ckks", scheme="ckks", traces=ckks_traces,
            metadata={"params": ckks_params.name},
        ))
    if tfhe_traces:
        workloads.append(Workload(
            name="hybrid.tfhe", scheme="tfhe", traces=tfhe_traces,
            metadata={"params": tfhe_params.name},
        ))
    if conversion_traces:
        workloads.append(Workload(
            name="hybrid.conversion", scheme="conversion",
            traces=conversion_traces,
            metadata={"extractions": extractions},
        ))
    return workloads


def hybrid_kernel_histogram(workloads) -> Dict[tuple, int]:
    """Invocation histogram over workloads: ``(kind, N, inner) -> count``.

    Counts kernel invocations (``count`` x step ``repeat``), keyed by the
    kernel kind's value, polynomial length, and inner depth.  Two workload
    lists describing the same hardware work in a different order — e.g. the
    lowering of a planned program versus a hand-built cost entry — produce
    equal histograms, which is what the reconciliation tests assert.
    """
    histogram: Dict[tuple, int] = {}
    for workload in workloads:
        for trace in workload.traces:
            for step in trace.steps:
                for kernel in step.kernels:
                    key = (kernel.kind.value, kernel.poly_length, kernel.inner)
                    histogram[key] = histogram.get(key, 0) + kernel.count * step.repeat
    return histogram


def hybrid_cycle_estimate(program, params=None, config=None,
                          switch_penalty_cycles: float = 0.0):
    """Co-scheduled latency estimate of a hybrid program on Trinity.

    Lowers the program with :func:`lower_hybrid_to_workloads` and feeds the
    scheme-grouped workloads to
    :meth:`~repro.core.scheduler.WorkloadScheduler.run_interleaved`, so the
    CKKS, TFHE and conversion phases overlap on the shared units exactly the
    way Section IV-K schedules multi-scheme kernel streams.  Returns the
    :class:`~repro.core.scheduler.CoScheduleReport`.
    """
    from ...core.config import DEFAULT_TRINITY_CONFIG
    from ...core.scheduler import WorkloadScheduler

    config = DEFAULT_TRINITY_CONFIG if config is None else config
    scheduler = WorkloadScheduler(config, switch_penalty_cycles=switch_penalty_cycles)
    workloads = lower_hybrid_to_workloads(program, params=params)
    return scheduler.run_interleaved(workloads)


def trinity_cycle_estimate(program, params=None, config=None):
    """Latency estimate of the program on the Trinity model.

    Returns the simulator's :class:`~repro.core.simulator.PerformanceReport`
    for the lowered trace stream under the CKKS mapping policy.
    """
    from ...core.config import DEFAULT_TRINITY_CONFIG
    from ...core.mapping import select_mapping
    from ...core.simulator import TrinitySimulator

    config = DEFAULT_TRINITY_CONFIG if config is None else config
    simulator = TrinitySimulator(config)
    traces = lower_to_traces(program, params=params)
    return simulator.run_many(traces, mapping=select_mapping("ckks", config))
