"""Planning passes: trace -> (align, domains, batching, hoists) -> execute.

The pipeline turns a traced :class:`~repro.fhe.program.ir.HEProgram` into a
:class:`PlannedProgram` the executor and the lowering consume:

1. **Level/scale alignment** (always) — the waterline pass.  Wherever two
   operands meet at different levels a ``mod_down`` is inserted, and
   wherever an addition's scales diverge a ``rescale`` chain brings the
   hotter operand back to the waterline.  This replaces the eager
   evaluator's manual ``_check_levels``/``align``/``rescale`` bookkeeping;
   irreconcilable scales fail here, at plan time, not mid-execution.
2. **Domain-residency planning** (optimize only) — every node is assigned
   an execution domain using the PR-3 residency table, propagating an
   *eval preference* backwards (a rotation whose results feed pointwise
   plaintext MACs stays NTT-resident; a ``multiply -> rescale -> multiply``
   chain never leaves the evaluation domain) and materializing explicit
   ``to_eval``/``to_coeff`` nodes only where the table requires a
   conversion.  Conversions are hash-consed, so one source feeding many
   eval consumers transforms once.
3. **Multi-ciphertext batching** (optimize only) — an addition tree whose
   leaves are all single-use evaluation-domain ``multiply_plain`` nodes at
   one level collapses into one ``pmult_mac`` node, which the executor runs
   as a single stacked ``(C, L, N)`` backend dispatch (the BSGS inner sums
   are the canonical instance).
4. **Hoist fusion** (annotation) — rotations/conjugations are grouped by
   their source node; every group shares a single ``hoist_decompose`` at
   execution, generalizing ``rotate_hoisted`` beyond the hand-written BSGS
   case.  Group ids are stored on the nodes and the sharing statistics in
   :attr:`PlannedProgram.stats`.

Every pass is semantics-preserving over exact modular arithmetic: the
planned program computes bit-identical residues to the node-by-node eager
execution of the aligned program (gated by ``tests/test_program.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rns import _limb_contexts
from .ir import HENode, HEProgram, SCHEME_SWITCH_OPS, TFHE_OPS

__all__ = ["PlannedProgram", "plan_program"]


#: Ops that accept either residency domain and pass the preference through.
_PASSTHROUGH = frozenset({
    "add", "sub", "negate", "multiply_scalar", "rescale", "mod_down",
    "multiply_plain", "add_plain", "rotate", "conjugate", "pmult_mac",
})

#: Ops that always live in the coefficient domain: TFHE islands are scalar
#: LWE values (no NTT residency), SampleExtract reads polynomial
#: coefficients, and repacking produces a coefficient-resident ciphertext.
#: The residency planner never assigns these nodes to the evaluation domain
#: and forces a ``to_coeff`` on the CKKS edge feeding an extraction.
_COEFF_ONLY = TFHE_OPS | SCHEME_SWITCH_OPS | frozenset({"input_lwe"})


@dataclass
class PlannedProgram:
    """An aligned (and optionally optimized) program plus planning stats.

    ``stats`` keys: ``rescales_inserted``, ``mod_downs_inserted``,
    ``conversions_inserted``, ``dead_nodes_removed``, ``hoist_groups``,
    ``hoisted_rotations`` (rotations sharing a multi-member hoist),
    ``outer_rotations`` (singleton hoists), ``rotations``,
    ``plain_multiplies``, ``batched_groups``, ``batched_pmults``,
    ``stacked_conversion_groups``, ``stacked_conversions``,
    ``pbs_groups``/``grouped_pbs`` (bootstraps sharing a batched blind
    rotation), ``scheme_switches`` (surviving scheme-switch nodes).
    """

    program: HEProgram
    stats: Dict[str, int] = field(default_factory=dict)
    optimized: bool = True

    @property
    def params(self):
        return self.program.params

    # -- rotation-key planning ------------------------------------------------
    def required_galois_elements(self) -> List[Tuple[int, int]]:
        """Sorted ``(galois_element, level)`` pairs this program keyswitches.

        Exactly the Galois keys the executor will fetch — after dead-code
        elimination, so unused baby rotations of sparse BSGS transforms do
        not demand keys.  Feed the result to
        :meth:`~repro.fhe.ckks.keys.CKKSKeySet.ensure_galois_keys` to
        materialize the minimal key set for this plan.
        """
        from ..ckks.keys import (
            galois_element_for_conjugation,
            galois_element_for_rotation,
        )

        ring_degree = self.params.ring_degree
        needed = set()
        for node in self.program.nodes:
            if node.op == "rotate":
                element = galois_element_for_rotation(
                    ring_degree, node.attrs["steps"]
                )
            elif node.op == "conjugate":
                element = galois_element_for_conjugation(ring_degree)
            elif node.op == "tfhe_to_ckks":
                # Repacking keyswitches through PackLWEs merge elements
                # (2^r + 1 per doubling) and Field Trace automorphisms
                # (2N / 2^k + 1 per cancelled coefficient class), all at
                # the node's (level-0) chain position.
                nslot = len(node.args)
                for r in range(1, int(math.log2(nslot)) + 1):
                    needed.add(((1 << r) + 1, node.level))
                for k in range(1, int(math.log2(ring_degree // nslot)) + 1):
                    needed.add(((2 * ring_degree) // (1 << k) + 1, node.level))
                continue
            else:
                continue
            if element != 1:
                needed.add((element, node.level))
        return sorted(needed)

    def required_rotation_steps(self) -> Dict[int, List[int]]:
        """Per-level rotation steps (``rotate`` nodes only) after planning.

        The steps-shaped view of :meth:`required_galois_elements` for
        callers that drive :meth:`CKKSKeySet.ensure_rotation_keys` per
        level; conjugations are not slot rotations and are excluded.
        """
        by_level: Dict[int, set] = {}
        for node in self.program.nodes:
            if node.op == "rotate":
                by_level.setdefault(node.level, set()).add(node.attrs["steps"])
        return {level: sorted(steps) for level, steps in sorted(by_level.items())}


def _close(a: float, b: float) -> bool:
    """The evaluator's scale-match tolerance (ratio within 1%)."""
    return 0.99 < a / b < 1.01


class _Rebuilder:
    """Shared old-id -> new-id remapping for rebuilding passes."""

    def __init__(self, old: HEProgram):
        self.old = old
        self.new = old.like()
        self.map: Dict[int, Optional[int]] = {}

    def rebuild_input(self, node: HENode) -> None:
        """Re-declare an ``input``/``input_lwe`` node in the new program."""
        self.map[node.id] = self.new.add_input(
            node.attrs["name"], node.level, node.scale,
            lwe=node.attrs.get("lwe") if node.op == "input_lwe" else None,
        )

    def arg(self, old_id: int) -> int:
        new_id = self.map[old_id]
        if new_id is None:
            raise ValueError(f"node {old_id} was fused away but is still used")
        return new_id

    def finish(self) -> HEProgram:
        for name, node_id in self.old.inputs.items():
            self.new.inputs[name] = self.arg(node_id)
        for name, node_id in self.old.outputs.items():
            self.new.outputs[name] = self.arg(node_id)
        return self.new


# ---------------------------------------------------------------------------
# 1. Level / scale alignment (the waterline pass)
# ---------------------------------------------------------------------------

def _rescale_towards(rb: _Rebuilder, node_id: int, target_scale: float,
                     stats: Dict[str, int]) -> int:
    """Insert rescales on ``node_id`` while they bring its scale closer to
    ``target_scale`` (each drops one level and divides by that level's
    modulus — the waterline step)."""
    params = rb.new.params
    node = rb.new.node(node_id)
    while not _close(node.scale, target_scale) and node.level >= 1:
        dropped = params.moduli[node.level]
        new_scale = node.scale / dropped
        if abs(math.log(new_scale / target_scale)) >= abs(
            math.log(node.scale / target_scale)
        ):
            break
        node_id = rb.new.add_node(
            "rescale", (node_id,), level=node.level - 1, scale=new_scale,
            domain=node.domain,
        )
        stats["rescales_inserted"] += 1
        node = rb.new.node(node_id)
    return node_id


def _mod_down(rb: _Rebuilder, node_id: int, level: int,
              stats: Dict[str, int]) -> int:
    node = rb.new.node(node_id)
    if node.level == level:
        return node_id
    stats["mod_downs_inserted"] += 1
    return rb.new.add_node(
        "mod_down", (node_id,), level=level, scale=node.scale,
        domain=node.domain, attrs={"level": level},
    )


def _align_tfhe(rb: _Rebuilder, node: HENode, args: List[int],
                stats: Dict[str, int]) -> int:
    """Waterline step for TFHE-island and scheme-switch nodes.

    TFHE islands are level-free (LWE ciphertexts carry no modulus chain to
    align), so no rescale/mod_down ever lands *inside* an island; the only
    alignment work is at the CKKS boundary, where the extraction source is
    mod-downed to level 0 (SampleExtract reads the single-limb residue —
    exact, since encoded coefficients are small against q0).  Encoding
    factors are recomputed from the rebuilt arguments, so a waterline
    rescale upstream of an extraction propagates through the island.
    """
    op = node.op
    new = rb.new
    if op == "ckks_to_tfhe":
        (a,) = args
        a = _mod_down(rb, a, 0, stats)
        return new.add_node(op, (a,), level=0, scale=new.node(a).scale,
                            attrs=dict(node.attrs))
    if op == "tfhe_to_ckks":
        scales = [new.node(a).scale for a in args]
        for scale in scales[1:]:
            if not _close(scale, scales[0]):
                raise ValueError(
                    f"repacked LWEs feeding node {node.id} have diverging "
                    f"encoding factors ({scales[0]:g} vs {scale:g})")
        return new.add_node(op, tuple(args), level=0, scale=scales[0],
                            attrs=dict(node.attrs))
    if op in ("lwe_add", "lwe_sub"):
        a, b = args
        sa, sb = new.node(a).scale, new.node(b).scale
        if not _close(sa, sb):
            raise ValueError(
                f"cannot align LWE encoding factors {sa:g} vs {sb:g} "
                f"feeding node {node.id} ({op}); LWE values have no "
                f"rescale — re-trace with matching factors")
        return new.add_node(op, (a, b), level=0, scale=sa,
                            attrs=dict(node.attrs))
    (a,) = args
    arg_scale = new.node(a).scale
    tfhe = rb.old.tfhe_params
    if op == "lwe_scalar_mul":
        scalar = node.attrs["scalar"]
        scale = arg_scale * abs(scalar) if scalar else 1.0
    elif op == "lwe_keyswitch":
        q0 = rb.old.params.moduli[0]
        if node.attrs["direction"] == "c2t":
            scale = arg_scale * tfhe.modulus / q0
        else:
            scale = arg_scale * q0 / tfhe.modulus
    elif op == "pbs":
        scale = float(tfhe.delta)
    elif op == "gate_bootstrap":
        scale = 2.0 * node.attrs["amplitude"]
    else:                                 # lwe_negate / lwe_add_const
        scale = arg_scale
    return new.add_node(op, (a,), level=0, scale=scale,
                        attrs=dict(node.attrs))


def _align(old: HEProgram, stats: Dict[str, int]) -> HEProgram:
    """Insert mod_down / rescale nodes so every op sees legal operands."""
    params = old.params
    rb = _Rebuilder(old)
    for node in old.nodes:
        op = node.op
        if op in ("input", "input_lwe"):
            rb.rebuild_input(node)
            continue
        args = [rb.arg(a) for a in node.args]
        if op in TFHE_OPS or op in SCHEME_SWITCH_OPS:
            rb.map[node.id] = _align_tfhe(rb, node, args, stats)
            continue
        if op in ("add", "sub"):
            a, b = args
            sa, sb = rb.new.node(a).scale, rb.new.node(b).scale
            if not _close(sa, sb):
                if sa > sb:
                    a = _rescale_towards(rb, a, sb, stats)
                else:
                    b = _rescale_towards(rb, b, sa, stats)
                sa, sb = rb.new.node(a).scale, rb.new.node(b).scale
                if not _close(sa, sb):
                    raise ValueError(
                        f"cannot align scales {sa} vs {sb} feeding node "
                        f"{node.id} ({op}); rescaling cannot reconcile them"
                    )
            common = min(rb.new.node(a).level, rb.new.node(b).level)
            a = _mod_down(rb, a, common, stats)
            b = _mod_down(rb, b, common, stats)
            rb.map[node.id] = rb.new.add_node(
                op, (a, b), level=common, scale=rb.new.node(a).scale
            )
        elif op == "multiply":
            a, b = args
            common = min(rb.new.node(a).level, rb.new.node(b).level)
            a = _mod_down(rb, a, common, stats)
            b = _mod_down(rb, b, common, stats)
            rb.map[node.id] = rb.new.add_node(
                op, (a, b), level=common,
                scale=rb.new.node(a).scale * rb.new.node(b).scale,
            )
        elif op == "add_plain":
            (a,) = args
            plaintext = node.attrs["plaintext"]
            scale = rb.new.node(a).scale
            if not _close(scale, plaintext.scale):
                a = _rescale_towards(rb, a, plaintext.scale, stats)
                scale = rb.new.node(a).scale
                if not _close(scale, plaintext.scale):
                    raise ValueError(
                        f"cannot align ciphertext scale {scale} with plaintext "
                        f"scale {plaintext.scale} feeding node {node.id} (add_plain)"
                    )
            rb.map[node.id] = rb.new.add_node(
                op, (a,), level=rb.new.node(a).level, scale=scale,
                attrs=dict(node.attrs),
            )
        elif op == "multiply_plain":
            (a,) = args
            arg = rb.new.node(a)
            rb.map[node.id] = rb.new.add_node(
                op, (a,), level=arg.level,
                scale=arg.scale * node.attrs["plaintext"].scale,
                attrs=dict(node.attrs),
            )
        elif op == "rescale":
            (a,) = args
            arg = rb.new.node(a)
            if arg.level < 1:
                raise ValueError(f"node {node.id} rescales a level-0 value")
            rb.map[node.id] = rb.new.add_node(
                op, (a,), level=arg.level - 1,
                scale=arg.scale / params.moduli[arg.level],
            )
        elif op == "mod_down":
            (a,) = args
            arg = rb.new.node(a)
            level = node.attrs["level"]
            if level > arg.level:
                raise ValueError(f"node {node.id} mod-downs to a higher level")
            rb.map[node.id] = _mod_down(rb, a, level, stats)
        elif op == "pmult_mac":
            # Re-planning a planned program: the fused MAC's operands are
            # already mutually aligned; metadata follows the first one.
            arg0 = rb.new.node(args[0])
            rb.map[node.id] = rb.new.add_node(
                op, tuple(args), level=arg0.level,
                scale=arg0.scale * node.attrs["plaintexts"][0].scale,
                domain=node.domain, attrs=dict(node.attrs),
            )
        elif op in ("to_eval", "to_coeff"):
            (a,) = args
            arg = rb.new.node(a)
            rb.map[node.id] = rb.new.add_node(
                op, (a,), level=arg.level, scale=arg.scale,
                domain="eval" if op == "to_eval" else "coeff",
            )
        else:
            # negate / multiply_scalar / rotate / conjugate: unary, metadata
            # follows the arg.
            (a,) = args
            arg = rb.new.node(a)
            rb.map[node.id] = rb.new.add_node(
                op, (a,), level=arg.level, scale=arg.scale, domain=arg.domain,
                attrs=dict(node.attrs),
            )
    return rb.finish()


# ---------------------------------------------------------------------------
# 1b. Dead-code elimination
# ---------------------------------------------------------------------------

def _eliminate_dead_code(old: HEProgram, stats: Dict[str, int]) -> HEProgram:
    """Drop nodes unreachable from any program output.

    Tracing convenience code frequently materializes values it then never
    uses — the canonical case is a BSGS transform over a *sparse* stage
    matrix, where ``trace`` creates every baby rotation but only the
    diagonals present in the matrix consume them.  Removing the dead
    rotations both skips their execution and shrinks the Galois-key set
    :meth:`PlannedProgram.required_galois_elements` reports.  Named inputs
    are always kept (they are the program signature, not computed work).

    Reachability is scheme-agnostic, which makes the pass safe across
    scheme boundaries by construction: a ``ckks_to_tfhe`` node whose only
    consumer sits in the TFHE subgraph is reachable *through* that
    consumer and survives, while a TFHE island none of whose nodes feeds
    an output (extraction, bootstraps, and all) is pruned whole.
    """
    live = [False] * len(old)
    stack = list(old.outputs.values())
    while stack:
        node_id = stack.pop()
        if live[node_id]:
            continue
        live[node_id] = True
        stack.extend(old.node(node_id).args)
    for node_id in old.inputs.values():
        live[node_id] = True
    dead = sum(1 for flag in live if not flag)
    if not dead:
        return old
    stats["dead_nodes_removed"] += dead
    rb = _Rebuilder(old)
    for node in old.nodes:
        if not live[node.id]:
            rb.map[node.id] = None
            continue
        if node.op in ("input", "input_lwe"):
            rb.rebuild_input(node)
            continue
        rb.map[node.id] = rb.new.add_node(
            node.op, tuple(rb.arg(a) for a in node.args), level=node.level,
            scale=node.scale, domain=node.domain, attrs=dict(node.attrs),
        )
    return rb.finish()


# ---------------------------------------------------------------------------
# 2. Domain-residency planning
# ---------------------------------------------------------------------------

#: Ops whose ciphertext arguments should be evaluation-resident: the tensor
#: product and the plaintext product are *pointwise* there (a coefficient-
#: domain PMult would be a full negacyclic convolution per component).
_WANTS_EVAL_ARGS = frozenset({"multiply", "multiply_plain", "pmult_mac"})


def _plan_domains(old: HEProgram, stats: Dict[str, int]) -> HEProgram:
    """Assign execution domains and insert the minimal conversion set."""
    consumers = old.consumers()
    # Backward sweep: does this node's result want to live in the evaluation
    # domain?  Multiplies and plaintext products consume eval operands;
    # pass-through ops inherit the preference of any eval-hungry consumer.
    prefer_eval = [False] * len(old)
    for node in reversed(old.nodes):
        if node.op == "multiply":
            prefer_eval[node.id] = True
            continue
        for user_id in consumers[node.id]:
            user = old.node(user_id)
            if user.op in _WANTS_EVAL_ARGS or (
                user.op in _PASSTHROUGH and prefer_eval[user_id]
            ):
                prefer_eval[node.id] = True
                break
    # Forward sweep: the planned domain of each node.  TFHE islands and
    # scheme switches are pinned to the coefficient domain (_COEFF_ONLY):
    # LWE scalars have no NTT residency and SampleExtract reads polynomial
    # coefficients, so the eval-domain contagion stops at the boundary.
    domain = ["coeff"] * len(old)
    for node in old.nodes:
        if node.op == "input" or node.op in _COEFF_ONLY:
            continue                      # ciphertexts arrive coefficient-resident
        if node.op in ("to_eval", "to_coeff"):
            domain[node.id] = "eval" if node.op == "to_eval" else "coeff"
        elif node.op in _WANTS_EVAL_ARGS:
            domain[node.id] = "eval"      # eval inputs, eval output
        elif prefer_eval[node.id] or any(
            domain[a] == "eval" for a in node.args
        ):
            domain[node.id] = "eval"
    # Rebuild with explicit (hash-consed) conversions on mismatched edges.
    rb = _Rebuilder(old)
    for node in old.nodes:
        if node.op in ("input", "input_lwe"):
            rb.rebuild_input(node)
            continue
        if node.op in ("to_eval", "to_coeff"):
            # Already a conversion (re-planning): keep it, never wrap it.
            a = rb.arg(node.args[0])
            arg = rb.new.node(a)
            rb.map[node.id] = rb.new.add_node(
                node.op, (a,), level=arg.level, scale=arg.scale,
                domain=domain[node.id],
            )
            continue
        wanted = "eval" if node.op in _WANTS_EVAL_ARGS else domain[node.id]
        args = []
        for a in node.args:
            new_a = rb.arg(a)
            arg = rb.new.node(new_a)
            if arg.domain != wanted:
                before = len(rb.new)
                new_a = rb.new.add_node(
                    "to_eval" if wanted == "eval" else "to_coeff",
                    (new_a,), level=arg.level, scale=arg.scale, domain=wanted,
                )
                stats["conversions_inserted"] += len(rb.new) - before
            args.append(new_a)
        rb.map[node.id] = rb.new.add_node(
            node.op, tuple(args), level=node.level, scale=node.scale,
            domain=domain[node.id], attrs=dict(node.attrs),
        )
    return rb.finish()


# ---------------------------------------------------------------------------
# 3. Multi-ciphertext batching (fused plaintext MACs)
# ---------------------------------------------------------------------------

def _fuse_pmult_macs(old: HEProgram, stats: Dict[str, int]) -> HEProgram:
    """Collapse eval-domain multiply_plain addition trees into pmult_mac.

    A *pure* tree is built bottom-up: a single-use evaluation-domain
    ``multiply_plain`` is a pure leaf, and an evaluation-domain ``add`` of
    two single-use pure subtrees is a pure interior node.  The maximal pure
    trees (those not absorbed into a larger one — e.g. the per-giant-block
    inner sums of a BSGS transform, whose outer accumulation mixes in
    rotations) become single ``pmult_mac`` nodes.
    """
    use_counts = old.use_counts()
    consumers = old.consumers()
    # leaves[i] = multiply_plain leaf ids (left-to-right) of the pure tree
    # rooted at i; members[i] = every node of that tree including the root.
    leaves: Dict[int, List[int]] = {}
    members: Dict[int, List[int]] = {}
    for node in old.nodes:
        if node.domain != "eval":
            continue
        if node.op == "multiply_plain":
            leaves[node.id] = [node.id]
            members[node.id] = [node.id]
        elif node.op == "add":
            a, b = node.args
            if (
                a in leaves and b in leaves and a != b
                and use_counts[a] == 1 and use_counts[b] == 1
            ):
                leaves[node.id] = leaves[a] + leaves[b]
                members[node.id] = members[a] + members[b] + [node.id]
    absorbed: Dict[int, int] = {}        # absorbed node id -> root id
    fused: Dict[int, Tuple[Tuple[int, ...], tuple]] = {}
    for node in old.nodes:
        if node.op != "add" or node.id not in leaves:
            continue
        # Maximal roots only: skip a pure add absorbed into a larger pure
        # tree.  A node whose single use is a program *output* has no
        # consumer entry (consumers() counts args only) and is a root.
        if use_counts[node.id] == 1 and consumers[node.id]:
            user = old.node(consumers[node.id][0])
            if user.op == "add" and user.id in leaves:
                continue
        leaf_nodes = [old.node(leaf) for leaf in leaves[node.id]]
        for member in members[node.id]:
            absorbed[member] = node.id
        del absorbed[node.id]
        fused[node.id] = (
            tuple(leaf.args[0] for leaf in leaf_nodes),
            tuple(leaf.attrs["plaintext"] for leaf in leaf_nodes),
        )
        stats["batched_groups"] += 1
        stats["batched_pmults"] += len(leaf_nodes)
    if not fused:
        return old
    rb = _Rebuilder(old)
    for node in old.nodes:
        if node.id in absorbed:
            rb.map[node.id] = None
            continue
        if node.id in fused:
            ct_args, plaintexts = fused[node.id]
            rb.map[node.id] = rb.new.add_node(
                "pmult_mac", tuple(rb.arg(a) for a in ct_args),
                level=node.level, scale=node.scale, domain="eval",
                attrs={"plaintexts": plaintexts},
            )
            continue
        if node.op in ("input", "input_lwe"):
            rb.rebuild_input(node)
            continue
        rb.map[node.id] = rb.new.add_node(
            node.op, tuple(rb.arg(a) for a in node.args), level=node.level,
            scale=node.scale, domain=node.domain, attrs=dict(node.attrs),
        )
    return rb.finish()


# ---------------------------------------------------------------------------
# 3b. Stacked conversion batching (annotation)
# ---------------------------------------------------------------------------

def _annotate_conversion_groups(program: HEProgram, stats: Dict[str, int]) -> None:
    """Group sibling ``to_eval``/``to_coeff`` nodes into stacked dispatches.

    A group shares one ``stacked_ntt``/``stacked_intt`` backend call at
    execution.  Members must agree on the conversion direction and the level
    (one NTT-context stack per dispatch), and every member's *source* must
    precede the group's first member — the executor converts the whole group
    the moment it reaches that first member, so all inputs have to be
    computed by then.  The greedy scan preserves those invariants by
    construction; groups that stay singletons execute as plain conversions.
    """
    open_groups: Dict[tuple, List[List[int]]] = {}
    groups: List[List[int]] = []
    for node in program.nodes:
        if node.op not in ("to_eval", "to_coeff"):
            continue
        key = (node.op, node.level)
        placed = False
        for group in open_groups.setdefault(key, []):
            if node.args[0] < group[0]:
                group.append(node.id)
                placed = True
                break
        if not placed:
            group = [node.id]
            open_groups[key].append(group)
            groups.append(group)
    index = 0
    for group in groups:
        if len(group) < 2:
            continue
        for member in group:
            program.node(member).attrs["conv_group"] = index
        index += 1
        stats["stacked_conversion_groups"] += 1
        stats["stacked_conversions"] += len(group)


# ---------------------------------------------------------------------------
# 3c. Batched PBS dispatch (annotation)
# ---------------------------------------------------------------------------

def _schedule_pbs_waves(old: HEProgram, stats: Dict[str, int]) -> HEProgram:
    """Reorder the program into bootstrap *waves* and group each wave into
    one batched PBS dispatch.

    A node's wave is the largest number of ``pbs``/``gate_bootstrap`` nodes
    on any path ending at it (inclusive).  Two bootstrap nodes in the same
    wave can never depend on each other, and every source of a wave-``w``
    bootstrap sits in a wave ``< w`` — so the stable re-sort by
    ``(wave, id)`` is a valid topological order in which all of a wave's
    sources precede its first member (the same executor invariant stacked
    conversions rely on).  Traces that interleave per-slot chains
    (extract, switch, bootstrap per slot) therefore still batch: the sort
    pulls the independent bootstraps together.

    Members of a group run as *one* batched blind rotation: per CMux
    iteration the gadget decompositions of every member are concatenated
    into a single ``ntt_forward_batch``/``ntt_inverse_batch`` pair against
    the shared bootstrapping-key row (``repro.fhe.tfhe.batched``).  ``pbs``
    and ``gate_bootstrap`` nodes mix freely in one group (they differ only
    in their test vectors).

    ``lwe_keyswitch`` nodes wave-schedule the same way: every member of a
    wave crossing the key boundary in the same direction shares one bridge
    key, so the group runs as a single ``digits @ ksk`` dispatch
    (:func:`~repro.fhe.tfhe.batched.batched_lwe_keyswitch`) — the
    ``ks_group`` attribute mirrors ``pbs_group``.
    """
    boot_ops = ("pbs", "gate_bootstrap")
    waves = [0] * len(old)
    wave_members: Dict[int, List[int]] = {}
    ks_members: Dict[Tuple[int, str], List[int]] = {}
    for node in old.nodes:
        wave = max((waves[arg] for arg in node.args), default=0)
        if node.op in boot_ops:
            wave += 1
            wave_members.setdefault(wave, []).append(node.id)
        elif node.op == "lwe_keyswitch":
            wave += 1
            ks_members.setdefault(
                (wave, node.attrs["direction"]), []
            ).append(node.id)
        waves[node.id] = wave
    if not wave_members and not ks_members:
        return old
    order = sorted(range(len(old)), key=lambda i: (waves[i], i))
    rb = _Rebuilder(old)
    for old_id in order:
        node = old.node(old_id)
        if node.op in ("input", "input_lwe"):
            rb.rebuild_input(node)
            continue
        rb.map[node.id] = rb.new.add_node(
            node.op, tuple(rb.arg(a) for a in node.args), level=node.level,
            scale=node.scale, domain=node.domain, attrs=dict(node.attrs),
        )
    new = rb.finish()
    index = 0
    for wave in sorted(wave_members):
        members = wave_members[wave]
        if len(members) < 2:
            continue
        for member in members:
            new.node(rb.arg(member)).attrs["pbs_group"] = index
        index += 1
        stats["pbs_groups"] += 1
        stats["grouped_pbs"] += len(members)
    ks_index = 0
    for key in sorted(ks_members):
        members = ks_members[key]
        if len(members) < 2:
            continue
        for member in members:
            new.node(rb.arg(member)).attrs["ks_group"] = ks_index
        ks_index += 1
        stats["ks_groups"] += 1
        stats["grouped_keyswitches"] += len(members)
    return new


# ---------------------------------------------------------------------------
# 4. Hoist fusion (annotation)
# ---------------------------------------------------------------------------

def _annotate_hoist_groups(program: HEProgram, stats: Dict[str, int]) -> None:
    """Group rotations/conjugations by source: one hoist_decompose each."""
    groups: Dict[int, List[int]] = {}
    for node in program.nodes:
        if node.op in ("rotate", "conjugate"):
            groups.setdefault(node.args[0], []).append(node.id)
    for index, (source, members) in enumerate(groups.items()):
        for member in members:
            program.node(member).attrs["hoist_group"] = index
        if len(members) > 1:
            stats["hoisted_rotations"] += len(members)
        else:
            stats["outer_rotations"] += 1
    stats["hoist_groups"] = len(groups)
    stats["rotations"] = sum(len(m) for m in groups.values())


# ---------------------------------------------------------------------------
# Pipeline entry point
# ---------------------------------------------------------------------------

def plan_program(program: HEProgram, optimize: bool = True) -> PlannedProgram:
    """Run the pass pipeline: align always, optimize when requested.

    ``optimize=False`` yields the *aligned* program only — the node
    sequence the eager reference executor runs, with every waterline
    rescale and mod_down explicit but no residency planning, batching, or
    hoist sharing.  Dead-code elimination runs in **both** modes (a dead
    node is not part of the computation either path should perform, and
    both paths must agree on the Galois-key set they demand).
    Domain/batching passes are skipped automatically on non-NTT-friendly
    moduli (no evaluation domain exists there).
    """
    stats = {
        "rescales_inserted": 0, "mod_downs_inserted": 0,
        "conversions_inserted": 0, "dead_nodes_removed": 0,
        "hoist_groups": 0,
        "hoisted_rotations": 0, "outer_rotations": 0, "rotations": 0,
        "plain_multiplies": 0, "batched_groups": 0, "batched_pmults": 0,
        "stacked_conversion_groups": 0, "stacked_conversions": 0,
        "pbs_groups": 0, "grouped_pbs": 0, "scheme_switches": 0,
        "ks_groups": 0, "grouped_keyswitches": 0,
    }
    planned = _align(program, stats)
    planned = _eliminate_dead_code(planned, stats)
    ntt_friendly = (
        _limb_contexts(program.params.ring_degree, program.params.basis())
        is not None
    )
    if optimize:
        # PBS batching depends on the TFHE modulus (always NTT-friendly by
        # construction), not the CKKS chain, so it is not gated on
        # ntt_friendly.  The wave reorder runs *before* the residency and
        # conversion-stacking passes: those rebuild in program order and
        # their grouping invariant (sources precede the group's first
        # member) must be established on the final node order.
        planned = _schedule_pbs_waves(planned, stats)
    if optimize and ntt_friendly:
        planned = _plan_domains(planned, stats)
        planned = _fuse_pmult_macs(planned, stats)
        _annotate_conversion_groups(planned, stats)
    _annotate_hoist_groups(planned, stats)
    stats["scheme_switches"] = sum(
        1 for node in planned.nodes if node.op in SCHEME_SWITCH_OPS
    )
    stats["plain_multiplies"] = sum(
        1 if node.op == "multiply_plain" else len(node.attrs["plaintexts"])
        for node in planned.nodes
        if node.op in ("multiply_plain", "pmult_mac")
    )
    planned.validate()
    return PlannedProgram(program=planned, stats=stats, optimized=optimize)
