"""Operator-overloaded tracing front-end for :class:`HEProgram`.

Users describe a homomorphic computation on lazy handles instead of driving
the eager evaluator call by call::

    trace = HETrace(params)
    x = trace.input("x")
    y = (x * w_plain + b_plain).rotate(4)
    y = y + y.conjugate()
    trace.output("y", y)

Nothing executes during tracing: each operation appends a typed node to the
underlying :class:`~repro.fhe.program.ir.HEProgram` carrying the level and
scale metadata the planner needs.  Handles mirror the evaluator's operation
set (``+``/``-``/``*`` with ciphertext handles, :class:`CKKSPlaintext`
objects, or integer scalars, plus ``rotate``/``conjugate``/``rescale``/
``mod_down_to``/``inner_sum``).  Level and scale *mismatches are allowed at
trace time* — the planner's alignment pass inserts the ``mod_down``/
``rescale`` waterline instead of the caller bookkeeping them (the eager
evaluator's ``_check_levels`` discipline).
"""

from __future__ import annotations

from typing import Sequence

from ..ckks.ciphertext import CKKSPlaintext
from .ir import HENode, HEProgram

__all__ = ["HEHandle", "HETrace"]


class HEHandle:
    """A lazy ciphertext value: one node of the traced program."""

    __slots__ = ("trace", "id")

    def __init__(self, trace: "HETrace", node_id: int):
        self.trace = trace
        self.id = node_id

    # -- metadata -----------------------------------------------------------
    @property
    def _node(self) -> HENode:
        return self.trace.program.node(self.id)

    @property
    def level(self) -> int:
        return self._node.level

    @property
    def scale(self) -> float:
        return self._node.scale

    def _wrap(self, node_id: int) -> "HEHandle":
        return HEHandle(self.trace, node_id)

    def _emit(self, op, args, level, scale, attrs=None) -> "HEHandle":
        return self._wrap(
            self.trace.program.add_node(op, args, level=level, scale=scale,
                                        attrs=attrs)
        )

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other) -> "HEHandle":
        if isinstance(other, HEHandle):
            self.trace._check_same(other)
            return self._emit("add", (self.id, other.id),
                              level=min(self.level, other.level),
                              scale=self.scale)
        if isinstance(other, CKKSPlaintext):
            return self._emit("add_plain", (self.id,), level=self.level,
                              scale=self.scale, attrs={"plaintext": other})
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other) -> "HEHandle":
        if isinstance(other, HEHandle):
            self.trace._check_same(other)
            return self._emit("sub", (self.id, other.id),
                              level=min(self.level, other.level),
                              scale=self.scale)
        return NotImplemented

    def __neg__(self) -> "HEHandle":
        return self._emit("negate", (self.id,), level=self.level, scale=self.scale)

    def __mul__(self, other) -> "HEHandle":
        if isinstance(other, HEHandle):
            self.trace._check_same(other)
            return self._emit("multiply", (self.id, other.id),
                              level=min(self.level, other.level),
                              scale=self.scale * other.scale)
        if isinstance(other, CKKSPlaintext):
            return self._emit("multiply_plain", (self.id,), level=self.level,
                              scale=self.scale * other.scale,
                              attrs={"plaintext": other})
        if isinstance(other, int):
            return self._emit("multiply_scalar", (self.id,), level=self.level,
                              scale=self.scale, attrs={"scalar": other})
        return NotImplemented

    __rmul__ = __mul__

    def square(self) -> "HEHandle":
        return self * self

    # -- rotations ----------------------------------------------------------
    def rotate(self, steps: int) -> "HEHandle":
        """Slot rotation by ``steps`` (0 is the identity and adds no node)."""
        if steps == 0:
            return self
        return self._emit("rotate", (self.id,), level=self.level,
                          scale=self.scale, attrs={"steps": steps})

    def conjugate(self) -> "HEHandle":
        return self._emit("conjugate", (self.id,), level=self.level,
                          scale=self.scale)

    # -- level / scale management -------------------------------------------
    def rescale(self) -> "HEHandle":
        if self.level < 1:
            raise ValueError("cannot rescale a level-0 value")
        dropped = self.trace.params.moduli[self.level]
        return self._emit("rescale", (self.id,), level=self.level - 1,
                          scale=self.scale / dropped)

    def mod_down_to(self, level: int) -> "HEHandle":
        if level > self.level:
            raise ValueError("cannot mod-down to a higher level")
        if level == self.level:
            return self
        return self._emit("mod_down", (self.id,), level=level,
                          scale=self.scale, attrs={"level": level})

    # -- composite helpers ----------------------------------------------------
    def inner_sum(self, count: int) -> "HEHandle":
        """Sum ``count`` adjacent slots into every slot (binary rotation
        decomposition — the same structure as ``CKKSEvaluator.inner_sum``)."""
        if count < 1:
            raise ValueError("count must be positive")
        result = None
        processed = 0
        acc = self
        bit = 1
        while bit <= count:
            if count & bit:
                if result is None:
                    result = acc
                else:
                    result = result + acc.rotate(processed)
                processed += bit
            if (bit << 1) <= count:
                acc = acc + acc.rotate(bit)
            bit <<= 1
        return result


class HETrace:
    """Builds one :class:`HEProgram` through lazy :class:`HEHandle` values."""

    def __init__(self, params, program: "HEProgram | None" = None):
        self.params = params
        self.program = HEProgram(params) if program is None else program

    def input(self, name: str, level: "int | None" = None,
              scale: "float | None" = None) -> HEHandle:
        """Declare a ciphertext input (bound at execution time by name)."""
        level = self.params.max_level if level is None else level
        scale = float(self.params.scale) if scale is None else float(scale)
        return HEHandle(self, self.program.add_input(name, level, scale))

    def output(self, name: str, handle: HEHandle) -> None:
        """Mark a handle as a named program output."""
        self._check_same(handle)
        self.program.set_output(name, handle.id)

    def _check_same(self, handle: HEHandle) -> None:
        if handle.trace.program is not self.program:
            raise ValueError("cannot mix handles from different traces")
