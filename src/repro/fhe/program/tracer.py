"""Operator-overloaded tracing front-end for :class:`HEProgram`.

Users describe a homomorphic computation on lazy handles instead of driving
the eager evaluator call by call::

    trace = HETrace(params)
    x = trace.input("x")
    y = (x * w_plain + b_plain).rotate(4)
    y = y + y.conjugate()
    trace.output("y", y)

Nothing executes during tracing: each operation appends a typed node to the
underlying :class:`~repro.fhe.program.ir.HEProgram` carrying the level and
scale metadata the planner needs.  Handles mirror the evaluator's operation
set (``+``/``-``/``*`` with ciphertext handles, :class:`CKKSPlaintext`
objects, or integer scalars, plus ``rotate``/``conjugate``/``rescale``/
``mod_down_to``/``inner_sum``).  Level and scale *mismatches are allowed at
trace time* — the planner's alignment pass inserts the ``mod_down``/
``rescale`` waterline instead of the caller bookkeeping them (the eager
evaluator's ``_check_levels`` discipline).

Hybrid programs mix schemes: :meth:`HEHandle.extract_lwe` crosses into the
TFHE domain (a :class:`LWEHandle`), LWE handles carry linear arithmetic,
cross-scheme keyswitches, and programmable bootstraps, and
:meth:`HETrace.repack` crosses back to CKKS.  Handles carry a ``scheme``
tag and LWE handles additionally a key ``kind`` (``"ckks"`` for
dimension-N ciphertexts under the CKKS coefficient key, ``"small"`` for
the TFHE LWE key), so scheme and key mismatches are *type errors at trace
time* — mixing an :class:`HEHandle` into LWE arithmetic, bootstrapping a
ciphertext that is still under the CKKS key, or repacking small-key LWEs
all raise before a program is ever planned.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..ckks.ciphertext import CKKSPlaintext
from .ir import HENode, HEProgram

__all__ = ["HEHandle", "LWEHandle", "HETrace"]


class HEHandle:
    """A lazy ciphertext value: one node of the traced program."""

    __slots__ = ("trace", "id")

    #: Scheme tag of the handle's value (mirrored by ``HENode.scheme``).
    scheme = "ckks"

    def __init__(self, trace: "HETrace", node_id: int):
        self.trace = trace
        self.id = node_id

    # -- metadata -----------------------------------------------------------
    @property
    def _node(self) -> HENode:
        return self.trace.program.node(self.id)

    @property
    def level(self) -> int:
        return self._node.level

    @property
    def scale(self) -> float:
        return self._node.scale

    def _wrap(self, node_id: int) -> "HEHandle":
        return HEHandle(self.trace, node_id)

    def _emit(self, op, args, level, scale, attrs=None) -> "HEHandle":
        return self._wrap(
            self.trace.program.add_node(op, args, level=level, scale=scale,
                                        attrs=attrs)
        )

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other) -> "HEHandle":
        if isinstance(other, LWEHandle):
            raise TypeError(
                "cannot mix a CKKS handle with a TFHE (LWE) handle; cross "
                "the scheme boundary explicitly with extract_lwe/repack")
        if isinstance(other, HEHandle):
            self.trace._check_same(other)
            return self._emit("add", (self.id, other.id),
                              level=min(self.level, other.level),
                              scale=self.scale)
        if isinstance(other, CKKSPlaintext):
            return self._emit("add_plain", (self.id,), level=self.level,
                              scale=self.scale, attrs={"plaintext": other})
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other) -> "HEHandle":
        if isinstance(other, LWEHandle):
            raise TypeError(
                "cannot mix a CKKS handle with a TFHE (LWE) handle; cross "
                "the scheme boundary explicitly with extract_lwe/repack")
        if isinstance(other, HEHandle):
            self.trace._check_same(other)
            return self._emit("sub", (self.id, other.id),
                              level=min(self.level, other.level),
                              scale=self.scale)
        return NotImplemented

    def __neg__(self) -> "HEHandle":
        return self._emit("negate", (self.id,), level=self.level, scale=self.scale)

    def __mul__(self, other) -> "HEHandle":
        if isinstance(other, LWEHandle):
            raise TypeError(
                "cannot mix a CKKS handle with a TFHE (LWE) handle; cross "
                "the scheme boundary explicitly with extract_lwe/repack")
        if isinstance(other, HEHandle):
            self.trace._check_same(other)
            return self._emit("multiply", (self.id, other.id),
                              level=min(self.level, other.level),
                              scale=self.scale * other.scale)
        if isinstance(other, CKKSPlaintext):
            return self._emit("multiply_plain", (self.id,), level=self.level,
                              scale=self.scale * other.scale,
                              attrs={"plaintext": other})
        if isinstance(other, int):
            return self._emit("multiply_scalar", (self.id,), level=self.level,
                              scale=self.scale, attrs={"scalar": other})
        return NotImplemented

    __rmul__ = __mul__

    def square(self) -> "HEHandle":
        return self * self

    # -- rotations ----------------------------------------------------------
    def rotate(self, steps: int) -> "HEHandle":
        """Slot rotation by ``steps`` (0 is the identity and adds no node)."""
        if steps == 0:
            return self
        return self._emit("rotate", (self.id,), level=self.level,
                          scale=self.scale, attrs={"steps": steps})

    def conjugate(self) -> "HEHandle":
        return self._emit("conjugate", (self.id,), level=self.level,
                          scale=self.scale)

    # -- level / scale management -------------------------------------------
    def rescale(self) -> "HEHandle":
        if self.level < 1:
            raise ValueError("cannot rescale a level-0 value")
        dropped = self.trace.params.moduli[self.level]
        return self._emit("rescale", (self.id,), level=self.level - 1,
                          scale=self.scale / dropped)

    def mod_down_to(self, level: int) -> "HEHandle":
        if level > self.level:
            raise ValueError("cannot mod-down to a higher level")
        if level == self.level:
            return self
        return self._emit("mod_down", (self.id,), level=level,
                          scale=self.scale, attrs={"level": level})

    # -- composite helpers ----------------------------------------------------
    def inner_sum(self, count: int) -> "HEHandle":
        """Sum ``count`` adjacent slots into every slot (binary rotation
        decomposition — the same structure as ``CKKSEvaluator.inner_sum``)."""
        if count < 1:
            raise ValueError("count must be positive")
        result = None
        processed = 0
        acc = self
        bit = 1
        while bit <= count:
            if count & bit:
                if result is None:
                    result = acc
                else:
                    result = result + acc.rotate(processed)
                processed += bit
            if (bit << 1) <= count:
                acc = acc + acc.rotate(bit)
            bit <<= 1
        return result

    # -- scheme switching ------------------------------------------------------
    def extract_lwe(self, index: int) -> "LWEHandle":
        """Cross into the TFHE domain: extract polynomial coefficient
        ``index`` as an LWE ciphertext under the CKKS coefficient key.

        The planner mod-downs the source to level 0 (SampleExtract reads
        the single-limb representation); the LWE value keeps this handle's
        scale as its encoding factor.
        """
        n = self.trace.params.ring_degree
        if not 0 <= index < n:
            raise ValueError(f"extract index {index} out of range [0, {n})")
        node_id = self.trace.program.add_node(
            "ckks_to_tfhe", (self.id,), level=0, scale=self.scale,
            attrs={"index": index, "lwe": "ckks"},
        )
        return LWEHandle(self.trace, node_id, kind="ckks")

    def extract_lwes(self, nslot: int, stride: "int | None" = None
                     ) -> "list[LWEHandle]":
        """Extract ``nslot`` coefficients at ``stride`` spacing (defaults to
        ``N / nslot``, the positions :meth:`HETrace.repack` later fills)."""
        n = self.trace.params.ring_degree
        stride = (n // nslot) if stride is None else stride
        return [self.extract_lwe(i * stride) for i in range(nslot)]


class LWEHandle:
    """A lazy LWE (TFHE) scalar value: one node of the traced program.

    ``kind`` names the key the ciphertext is under: ``"ckks"`` for
    dimension-N ciphertexts keyed by the CKKS secret's coefficients (what
    extraction produces and repacking consumes), ``"small"`` for the TFHE
    LWE key that bootstrapping operates on.  Operations check kinds at
    trace time, so a PBS on a CKKS-keyed ciphertext (or a repack of
    small-keyed ones) fails during tracing, not execution.
    """

    __slots__ = ("trace", "id", "kind")

    scheme = "tfhe"

    def __init__(self, trace: "HETrace", node_id: int, kind: str):
        if kind not in ("ckks", "small"):
            raise ValueError(f"unknown LWE key kind {kind!r}")
        self.trace = trace
        self.id = node_id
        self.kind = kind

    # -- metadata -----------------------------------------------------------
    @property
    def _node(self) -> HENode:
        return self.trace.program.node(self.id)

    @property
    def scale(self) -> float:
        """The encoding factor of the LWE message (phase ~ scale * m)."""
        return self._node.scale

    def _emit(self, op, args, scale, attrs=None, kind=None) -> "LWEHandle":
        attrs = dict(attrs or {})
        kind = self.kind if kind is None else kind
        attrs.setdefault("lwe", kind)
        node_id = self.trace.program.add_node(op, args, level=0, scale=scale,
                                              attrs=attrs)
        return LWEHandle(self.trace, node_id, kind=kind)

    def _check_compatible(self, other, op: str) -> "LWEHandle":
        if isinstance(other, HEHandle):
            raise TypeError(
                f"cannot {op} a CKKS handle with a TFHE (LWE) handle; cross "
                f"the scheme boundary explicitly with extract_lwe/repack")
        if not isinstance(other, LWEHandle):
            raise TypeError(f"cannot {op} LWEHandle and {type(other).__name__}")
        self.trace._check_same(other)
        if other.kind != self.kind:
            raise TypeError(
                f"cannot {op} LWE ciphertexts under different keys "
                f"({self.kind!r} vs {other.kind!r}); keyswitch first")
        if not 0.99 < (self.scale / other.scale) < 1.01:
            raise ValueError(
                f"cannot {op} LWE ciphertexts with different encoding "
                f"factors ({self.scale:g} vs {other.scale:g})")
        return other

    # -- linear arithmetic (the free LWE homomorphisms) ---------------------
    def __add__(self, other) -> "LWEHandle":
        other = self._check_compatible(other, "add")
        return self._emit("lwe_add", (self.id, other.id), scale=self.scale)

    def __sub__(self, other) -> "LWEHandle":
        other = self._check_compatible(other, "subtract")
        return self._emit("lwe_sub", (self.id, other.id), scale=self.scale)

    def __neg__(self) -> "LWEHandle":
        return self._emit("lwe_negate", (self.id,), scale=self.scale)

    def scalar_mul(self, scalar: int) -> "LWEHandle":
        """Multiply the message (and its encoding factor) by an integer."""
        if not isinstance(scalar, int):
            raise TypeError("LWE scalar multiplication takes an integer")
        return self._emit("lwe_scalar_mul", (self.id,),
                          scale=self.scale * abs(scalar) if scalar else 1.0,
                          attrs={"scalar": scalar})

    def add_encoded(self, value: int) -> "LWEHandle":
        """Add an already-encoded plaintext constant to the message."""
        return self._emit("lwe_add_const", (self.id,), scale=self.scale,
                          attrs={"value": int(value)})

    # -- cross-scheme keyswitches -------------------------------------------
    def keyswitch_to_tfhe(self) -> "LWEHandle":
        """Switch a CKKS-keyed LWE onto the small TFHE key (and the TFHE
        modulus), scaling the encoding factor by ``q_tfhe / q0``."""
        if self.kind != "ckks":
            raise TypeError("keyswitch_to_tfhe expects a CKKS-keyed LWE "
                            f"(got kind {self.kind!r})")
        tfhe = self.trace._require_tfhe("keyswitch_to_tfhe")
        q0 = self.trace.params.moduli[0]
        return self._emit("lwe_keyswitch", (self.id,),
                          scale=self.scale * tfhe.modulus / q0,
                          attrs={"direction": "c2t"}, kind="small")

    def keyswitch_to_ckks(self) -> "LWEHandle":
        """Switch a small-keyed LWE back onto the CKKS coefficient key (and
        the level-0 CKKS modulus) so it can be repacked."""
        if self.kind != "small":
            raise TypeError("keyswitch_to_ckks expects a small-keyed LWE "
                            f"(got kind {self.kind!r})")
        tfhe = self.trace._require_tfhe("keyswitch_to_ckks")
        q0 = self.trace.params.moduli[0]
        return self._emit("lwe_keyswitch", (self.id,),
                          scale=self.scale * q0 / tfhe.modulus,
                          attrs={"direction": "t2c"}, kind="ckks")

    # -- bootstrapping ------------------------------------------------------
    def pbs(self, fn: Callable[[int], int]) -> "LWEHandle":
        """Programmable bootstrap: apply the lookup table of ``fn`` (a map
        over ``[0, t)`` messages) while refreshing noise."""
        if self.kind != "small":
            raise TypeError("pbs expects a small-keyed LWE ciphertext; "
                            "keyswitch_to_tfhe first")
        tfhe = self.trace._require_tfhe("pbs")
        return self._emit("pbs", (self.id,), scale=float(tfhe.delta),
                          attrs={"fn": fn})

    def bootstrap_sign(self, amplitude: int) -> "LWEHandle":
        """Gate bootstrap with a constant test vector: the result encodes
        ``2 * amplitude`` when the input phase is in ``[0, q/2)`` and ``0``
        otherwise — i.e. a threshold bit with encoding factor
        ``2 * amplitude``."""
        if self.kind != "small":
            raise TypeError("bootstrap_sign expects a small-keyed LWE "
                            "ciphertext; keyswitch_to_tfhe first")
        self.trace._require_tfhe("bootstrap_sign")
        if amplitude <= 0:
            raise ValueError("amplitude must be positive")
        return self._emit("gate_bootstrap", (self.id,),
                          scale=2.0 * amplitude,
                          attrs={"amplitude": int(amplitude)})


class HETrace:
    """Builds one :class:`HEProgram` through lazy handle values.

    ``tfhe_params`` is required for traces that cross into the TFHE domain
    (keyswitches and bootstraps need the TFHE parameter set); pure-CKKS
    traces leave it ``None``.
    """

    def __init__(self, params, program: "HEProgram | None" = None,
                 tfhe_params=None):
        self.params = params
        self.program = (HEProgram(params, tfhe_params=tfhe_params)
                        if program is None else program)
        if tfhe_params is not None:
            self.program.tfhe_params = tfhe_params

    @property
    def tfhe_params(self):
        return self.program.tfhe_params

    def _require_tfhe(self, op: str):
        tfhe = self.program.tfhe_params
        if tfhe is None:
            raise ValueError(
                f"{op} needs TFHE parameters; construct the trace with "
                f"HETrace(params, tfhe_params=...)")
        return tfhe

    def input(self, name: str, level: "int | None" = None,
              scale: "float | None" = None) -> HEHandle:
        """Declare a ciphertext input (bound at execution time by name)."""
        level = self.params.max_level if level is None else level
        scale = float(self.params.scale) if scale is None else float(scale)
        return HEHandle(self, self.program.add_input(name, level, scale))

    def input_lwe(self, name: str, scale: float,
                  kind: str = "small") -> LWEHandle:
        """Declare an LWE (TFHE) ciphertext input of key kind ``kind``."""
        if kind not in ("ckks", "small"):
            raise ValueError(f"unknown LWE key kind {kind!r}")
        if kind == "small":
            self._require_tfhe("input_lwe")
        node_id = self.program.add_input(name, level=0, scale=float(scale),
                                         lwe=kind)
        return LWEHandle(self, node_id, kind=kind)

    def repack(self, lwes: "Sequence[LWEHandle]") -> HEHandle:
        """Cross back into CKKS: repack ``nslot`` CKKS-keyed LWE handles
        into one level-0 CKKS ciphertext (Ring Embedding + PackLWEs +
        Field Trace).  The j-th message lands at coefficient
        ``j * N / nslot``; the output scale is the common LWE encoding
        factor, so decryption divides it back out."""
        lwes = list(lwes)
        if not lwes:
            raise ValueError("cannot repack an empty list of LWE handles")
        nslot = len(lwes)
        if nslot & (nslot - 1):
            raise ValueError("the number of repacked LWEs must be a power of two")
        for lwe in lwes:
            if not isinstance(lwe, LWEHandle):
                raise TypeError("repack takes LWE handles, got "
                                f"{type(lwe).__name__}")
            self._check_same(lwe)
            if lwe.kind != "ckks":
                raise TypeError(
                    "repack expects CKKS-keyed LWE handles; apply "
                    "keyswitch_to_ckks to small-keyed values first")
        scale = lwes[0].scale
        for lwe in lwes[1:]:
            if not 0.99 < (lwe.scale / scale) < 1.01:
                raise ValueError(
                    "repacked LWE handles must share one encoding factor "
                    f"({scale:g} vs {lwe.scale:g})")
        node_id = self.program.add_node(
            "tfhe_to_ckks", tuple(lwe.id for lwe in lwes), level=0,
            scale=scale, attrs={"nslot": nslot},
        )
        return HEHandle(self, node_id)

    def output(self, name: str, handle) -> None:
        """Mark a handle (CKKS or LWE) as a named program output."""
        if not isinstance(handle, (HEHandle, LWEHandle)):
            raise TypeError(f"cannot output a {type(handle).__name__}")
        self._check_same(handle)
        self.program.set_output(name, handle.id)

    def _check_same(self, handle) -> None:
        if handle.trace.program is not self.program:
            raise ValueError("cannot mix handles from different traces")
