"""``repro.fhe.program`` — lazy homomorphic computation graphs.

The program-level front-end of the FHE layer: trace a computation on
operator-overloaded handles into a typed DAG, let the pass pipeline plan
execution (level/scale alignment, domain residency, hoist fusion,
multi-ciphertext batching), then either execute it functionally on the
vectorized backend or lower it to the ``HomomorphicOp`` stream the Trinity
cost model consumes — one trace, both worlds::

    from repro.fhe.program import HETrace, ProgramExecutor, plan_program

    trace = HETrace(params)
    x = trace.input("x")
    y = (x * weights + bias).rotate(4)
    trace.output("y", y + y.conjugate())

    planned = plan_program(trace.program)
    result = ProgramExecutor(evaluator).run(planned, {"x": ciphertext})["y"]

    from repro.fhe.program import operation_histogram, trinity_cycle_estimate
    operation_histogram(planned)          # Table II op counts
    trinity_cycle_estimate(planned)       # cycles on the hardware model

The eager :class:`~repro.fhe.ckks.CKKSEvaluator` remains the bit-exact
reference executor: ``ProgramExecutor.run_eager`` runs the same program as
a plain call sequence, and the planned path is gated bit-exact against it.

Programs may be *hybrid*: :class:`LWEHandle` values cross into the TFHE
domain through ``extract_lwe``/``keyswitch_to_tfhe``, bootstrap there, and
return through ``keyswitch_to_ckks``/``repack``.  Hybrid programs execute
through the same two executor paths (construct :class:`ProgramExecutor`
with a ``TFHEContext`` and a ``SchemeBridge``) and lower to scheme-grouped
workloads for the interleaved Trinity scheduler via
:func:`lower_hybrid_to_workloads` / :func:`hybrid_cycle_estimate`.
"""

from .cache import LRUCache
from .ir import (
    HENode,
    HEProgram,
    SCHEME_SWITCH_OPS,
    TFHE_OPS,
    op_scheme,
)
from .tracer import HEHandle, HETrace, LWEHandle
from .passes import PlannedProgram, plan_program
from .executor import ProgramExecutor
from .lowering import (
    conversion_counts,
    hybrid_cycle_estimate,
    hybrid_kernel_histogram,
    lower_hybrid_to_workloads,
    lower_to_operations,
    lower_to_traces,
    operation_histogram,
    trinity_cycle_estimate,
)

__all__ = [
    "LRUCache",
    "HENode",
    "HEProgram",
    "TFHE_OPS",
    "SCHEME_SWITCH_OPS",
    "op_scheme",
    "HEHandle",
    "LWEHandle",
    "HETrace",
    "PlannedProgram",
    "plan_program",
    "ProgramExecutor",
    "lower_to_operations",
    "operation_histogram",
    "conversion_counts",
    "lower_to_traces",
    "trinity_cycle_estimate",
    "lower_hybrid_to_workloads",
    "hybrid_kernel_histogram",
    "hybrid_cycle_estimate",
]
