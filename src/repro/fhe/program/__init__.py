"""``repro.fhe.program`` — lazy homomorphic computation graphs.

The program-level front-end of the FHE layer: trace a computation on
operator-overloaded handles into a typed DAG, let the pass pipeline plan
execution (level/scale alignment, domain residency, hoist fusion,
multi-ciphertext batching), then either execute it functionally on the
vectorized backend or lower it to the ``HomomorphicOp`` stream the Trinity
cost model consumes — one trace, both worlds::

    from repro.fhe.program import HETrace, ProgramExecutor, plan_program

    trace = HETrace(params)
    x = trace.input("x")
    y = (x * weights + bias).rotate(4)
    trace.output("y", y + y.conjugate())

    planned = plan_program(trace.program)
    result = ProgramExecutor(evaluator).run(planned, {"x": ciphertext})["y"]

    from repro.fhe.program import operation_histogram, trinity_cycle_estimate
    operation_histogram(planned)          # Table II op counts
    trinity_cycle_estimate(planned)       # cycles on the hardware model

The eager :class:`~repro.fhe.ckks.CKKSEvaluator` remains the bit-exact
reference executor: ``ProgramExecutor.run_eager`` runs the same program as
a plain call sequence, and the planned path is gated bit-exact against it.
"""

from .cache import LRUCache
from .ir import HENode, HEProgram
from .tracer import HEHandle, HETrace
from .passes import PlannedProgram, plan_program
from .executor import ProgramExecutor
from .lowering import (
    conversion_counts,
    lower_to_operations,
    lower_to_traces,
    operation_histogram,
    trinity_cycle_estimate,
)

__all__ = [
    "LRUCache",
    "HENode",
    "HEProgram",
    "HEHandle",
    "HETrace",
    "PlannedProgram",
    "plan_program",
    "ProgramExecutor",
    "lower_to_operations",
    "operation_histogram",
    "conversion_counts",
    "lower_to_traces",
    "trinity_cycle_estimate",
]
