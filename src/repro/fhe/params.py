"""Parameter sets for CKKS, TFHE, and the scheme conversion (paper Table IV).

Two kinds of parameter objects live here:

* **Paper-scale** parameter sets (``CKKS_DEFAULT``, ``TFHE_SET_I/II/III``,
  ``CONVERSION_DEFAULT``) — these carry the *shape* parameters (N, L, dnum,
  k, lb, n_lwe, ...) that the kernel-level cost model and the hardware
  simulator consume.  They never materialise moduli, keys, or ciphertexts,
  so using N = 2^16 costs nothing.
* **Functional** parameter sets (``toy``/``small`` factories) — reduced-size
  versions with real NTT-friendly prime moduli, used by the functional CKKS /
  TFHE / conversion implementations and by the unit, integration, and
  property tests.  They keep every structural knob of the full sets (RNS
  limbs, dnum digits, decomposition levels) but shrink N so the pure-Python
  arithmetic stays fast.

The dataclasses are frozen: a parameter set is a value, not a mutable object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property, lru_cache
from typing import Tuple

from .modmath import find_ntt_prime
from .rns import RNSBasis


@lru_cache(maxsize=1024)
def _cached_basis(moduli: Tuple[int, ...]) -> RNSBasis:
    """One RNSBasis per modulus tuple — basis objects (and their CRT
    constants) recur on every Rescale/KeySwitch, so build each once."""
    return RNSBasis(moduli)

__all__ = [
    "CKKSParameters",
    "TFHEParameters",
    "ConversionParameters",
    "CKKS_DEFAULT",
    "CKKS_KEYSWITCH_BREAKDOWN",
    "TFHE_SET_I",
    "TFHE_SET_II",
    "TFHE_SET_III",
    "TFHE_PARAMETER_SETS",
    "CONVERSION_DEFAULT",
]


@dataclass(frozen=True)
class CKKSParameters:
    """Shape and (optionally) concrete moduli of a CKKS instantiation.

    Attributes mirror the notation of the paper (Table I): ``ring_degree`` is
    N, ``max_level`` is L, ``dnum`` the keyswitch decomposition number, and
    ``alpha = ceil((L+1)/dnum)`` the number of RNS moduli per digit.
    """

    ring_degree: int
    max_level: int
    dnum: int
    scale_bits: int = 40
    modulus_bits: int = 36
    special_modulus_bits: int = 36
    security_bits: int = 128
    name: str = "ckks"

    def __post_init__(self) -> None:
        if self.ring_degree & (self.ring_degree - 1):
            raise ValueError("ring_degree must be a power of two")
        if self.max_level < 1:
            raise ValueError("max_level must be >= 1")
        if self.dnum < 1:
            raise ValueError("dnum must be >= 1")

    # -- shape-derived quantities (used by the cost model) --------------------
    @property
    def num_moduli(self) -> int:
        """Number of RNS moduli in the full chain (L + 1)."""
        return self.max_level + 1

    @property
    def alpha(self) -> int:
        """Number of RNS moduli per keyswitch digit, ``ceil((L+1)/dnum)``."""
        return math.ceil((self.max_level + 1) / self.dnum)

    @property
    def num_special_moduli(self) -> int:
        """Number of special (P) moduli used by hybrid keyswitch (= alpha)."""
        return self.alpha

    @property
    def slots(self) -> int:
        """Number of plaintext slots (N / 2)."""
        return self.ring_degree // 2

    def beta(self, level: int) -> int:
        """Number of keyswitch digits at ``level``: ``ceil((l+1)/alpha)``.

        (The paper's Table I writes this as ``ceil((l+1)/dnum)`` using dnum
        for the per-digit modulus count; with alpha = moduli-per-digit the
        digit count is ``ceil((l+1)/alpha)``, which never exceeds dnum.)
        """
        return math.ceil((level + 1) / self.alpha)

    # -- functional instantiation (lazy; only touched by the FHE layer) -------
    @cached_property
    def moduli(self) -> Tuple[int, ...]:
        """The concrete RNS moduli q_0..q_L (NTT-friendly primes)."""
        return tuple(
            find_ntt_prime(self.modulus_bits, self.ring_degree, index=i)
            for i in range(self.num_moduli)
        )

    @cached_property
    def special_moduli(self) -> Tuple[int, ...]:
        """The special moduli p_0..p_{alpha-1} used by hybrid keyswitch."""
        return tuple(
            find_ntt_prime(
                self.special_modulus_bits, self.ring_degree, index=self.num_moduli + i
            )
            for i in range(self.num_special_moduli)
        )

    def basis(self, level: int | None = None) -> RNSBasis:
        """RNS basis C_l for the given level (defaults to the top level)."""
        level = self.max_level if level is None else level
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} out of range [0, {self.max_level}]")
        return _cached_basis(self.moduli[: level + 1])

    def extended_basis(self, level: int | None = None) -> RNSBasis:
        """Basis C_l ∪ P used during hybrid keyswitch."""
        level = self.max_level if level is None else level
        return _cached_basis(self.moduli[: level + 1] + self.special_moduli)

    def special_basis(self) -> RNSBasis:
        """The basis formed by the special (P) moduli alone (ModDown's source)."""
        return _cached_basis(self.special_moduli)

    @property
    def scale(self) -> int:
        """The CKKS scale factor Delta."""
        return 1 << self.scale_bits

    # -- factories -------------------------------------------------------------
    @classmethod
    def toy(cls, ring_degree: int = 64, max_level: int = 3, dnum: int = 2) -> "CKKSParameters":
        """A tiny functional parameter set for fast unit tests."""
        return cls(
            ring_degree=ring_degree,
            max_level=max_level,
            dnum=dnum,
            scale_bits=40,
            modulus_bits=40,
            special_modulus_bits=42,
            security_bits=0,
            name="ckks-toy",
        )

    @classmethod
    def small(cls, ring_degree: int = 1024, max_level: int = 5, dnum: int = 3) -> "CKKSParameters":
        """A small but realistic functional parameter set for integration tests."""
        return cls(
            ring_degree=ring_degree,
            max_level=max_level,
            dnum=dnum,
            scale_bits=40,
            modulus_bits=40,
            special_modulus_bits=42,
            security_bits=0,
            name="ckks-small",
        )


@dataclass(frozen=True)
class TFHEParameters:
    """Shape and (optionally) concrete moduli of a TFHE instantiation.

    Follows the paper's Table IV: ``polynomial_size`` is the GLWE ring degree
    N, ``lwe_dimension`` is n_lwe, ``glwe_dimension`` is k, and
    ``bsk_levels`` (l_b) / ``ksk_levels`` (l_k) are the gadget decomposition
    depths of the bootstrapping and keyswitching keys.
    """

    polynomial_size: int
    lwe_dimension: int
    glwe_dimension: int = 1
    bsk_levels: int = 2
    bsk_base_log: int = 8
    ksk_levels: int = 2
    ksk_base_log: int = 4
    modulus_bits: int = 32
    plaintext_modulus: int = 4
    noise_stddev: float = 3.2
    security_bits: int = 128
    name: str = "tfhe"

    def __post_init__(self) -> None:
        if self.polynomial_size & (self.polynomial_size - 1):
            raise ValueError("polynomial_size must be a power of two")
        if self.lwe_dimension < 1:
            raise ValueError("lwe_dimension must be >= 1")
        if self.glwe_dimension < 1:
            raise ValueError("glwe_dimension must be >= 1")

    # -- shape-derived quantities ------------------------------------------------
    @property
    def glwe_lwe_dimension(self) -> int:
        """Dimension of the LWE ciphertext extracted from a GLWE (k * N)."""
        return self.glwe_dimension * self.polynomial_size

    @property
    def external_product_branches(self) -> int:
        """Number of NTT/MAC branches per external product: (k + 1) * l_b."""
        return (self.glwe_dimension + 1) * self.bsk_levels

    @property
    def bsk_base(self) -> int:
        return 1 << self.bsk_base_log

    @property
    def ksk_base(self) -> int:
        return 1 << self.ksk_base_log

    # -- functional instantiation --------------------------------------------------
    @cached_property
    def modulus(self) -> int:
        """NTT-friendly prime closest to 2^modulus_bits (the paper's FFT->NTT swap)."""
        return find_ntt_prime(self.modulus_bits, self.polynomial_size, index=0)

    @property
    def delta(self) -> int:
        """Encoding scale: messages are placed in the top bits, q / (2 * t)."""
        return self.modulus // (2 * self.plaintext_modulus)

    # -- factories -----------------------------------------------------------------
    @classmethod
    def toy(cls) -> "TFHEParameters":
        """A tiny functional parameter set: fast PBS in pure Python."""
        return cls(
            polynomial_size=64,
            lwe_dimension=16,
            glwe_dimension=1,
            bsk_levels=3,
            bsk_base_log=6,
            ksk_levels=4,
            ksk_base_log=4,
            modulus_bits=32,
            plaintext_modulus=4,
            noise_stddev=0.0,
            security_bits=0,
            name="tfhe-toy",
        )

    @classmethod
    def small(cls) -> "TFHEParameters":
        """A mid-size functional set exercising realistic decomposition depths."""
        return cls(
            polynomial_size=256,
            lwe_dimension=32,
            glwe_dimension=1,
            bsk_levels=3,
            bsk_base_log=7,
            ksk_levels=5,
            ksk_base_log=3,
            modulus_bits=32,
            plaintext_modulus=4,
            noise_stddev=0.0,
            security_bits=0,
            name="tfhe-small",
        )

    @classmethod
    def hybrid(cls) -> "TFHEParameters":
        """The functional set used by hybrid CKKS<->TFHE programs.

        The gadget chains are *exact*: ``modulus`` is the NTT prime just
        below 2^31, and ``base^levels = 2^30`` makes the last gadget factor
        ``q // 2^30 = 1``, so signed decomposition reconstructs values with
        zero residual.  With ``noise_stddev = 0`` the whole PBS pipeline is
        then errorless up to modulus-switch rounding, which is what lets the
        hybrid example assert exact plaintext results after repacking.
        """
        return cls(
            polynomial_size=256,
            lwe_dimension=16,
            glwe_dimension=1,
            bsk_levels=5,
            bsk_base_log=6,
            ksk_levels=5,
            ksk_base_log=6,
            modulus_bits=31,
            plaintext_modulus=4,
            noise_stddev=0.0,
            security_bits=0,
            name="tfhe-hybrid",
        )


@dataclass(frozen=True)
class ConversionParameters:
    """Parameters for the CKKS<->TFHE conversion benchmark (Section V-B3).

    The paper fixes N = 2^14 and L = 8 for the repacking experiment and
    sweeps the number of packed LWE ciphertexts ``n_slot``.
    """

    ckks: CKKSParameters
    tfhe: TFHEParameters
    nslot: int = 32
    name: str = "conversion"

    def __post_init__(self) -> None:
        if self.nslot & (self.nslot - 1):
            raise ValueError("nslot must be a power of two")
        if self.nslot > self.ckks.ring_degree:
            raise ValueError("nslot cannot exceed the CKKS ring degree")


# ---------------------------------------------------------------------------
# Paper parameter sets (Table IV)
# ---------------------------------------------------------------------------

#: Default CKKS set used by every CKKS benchmark: N = 2^16, L = 35, dnum = 3.
CKKS_DEFAULT = CKKSParameters(
    ring_degree=65536, max_level=35, dnum=3, scale_bits=36, modulus_bits=36,
    special_modulus_bits=36, security_bits=128, name="ckks-default",
)

#: The KeySwitch configuration used for the Fig. 2 breakdown (L = 23, dnum = 3).
CKKS_KEYSWITCH_BREAKDOWN = CKKSParameters(
    ring_degree=65536, max_level=23, dnum=3, scale_bits=36, modulus_bits=36,
    special_modulus_bits=36, security_bits=128, name="ckks-keyswitch-breakdown",
)

#: TFHE Set-I (Table IV): N = 1024, n_lwe = 500, k = 1, l_b = 2, 80-bit security.
TFHE_SET_I = TFHEParameters(
    polynomial_size=1024, lwe_dimension=500, glwe_dimension=1, bsk_levels=2,
    bsk_base_log=10, ksk_levels=2, ksk_base_log=8, modulus_bits=32,
    security_bits=80, name="tfhe-set-i",
)

#: TFHE Set-II (Table IV): N = 1024, n_lwe = 630, k = 1, l_b = 3, 110-bit security.
TFHE_SET_II = TFHEParameters(
    polynomial_size=1024, lwe_dimension=630, glwe_dimension=1, bsk_levels=3,
    bsk_base_log=7, ksk_levels=3, ksk_base_log=6, modulus_bits=32,
    security_bits=110, name="tfhe-set-ii",
)

#: TFHE Set-III (Table IV): N = 2048, n_lwe = 592, k = 1, l_b = 3, 128-bit security.
TFHE_SET_III = TFHEParameters(
    polynomial_size=2048, lwe_dimension=592, glwe_dimension=1, bsk_levels=3,
    bsk_base_log=7, ksk_levels=3, ksk_base_log=6, modulus_bits=32,
    security_bits=128, name="tfhe-set-iii",
)

#: All three TFHE sets keyed the way the paper's tables label them.
TFHE_PARAMETER_SETS = {
    "Set-I": TFHE_SET_I,
    "Set-II": TFHE_SET_II,
    "Set-III": TFHE_SET_III,
}

#: Scheme-conversion benchmark parameters (Section V-B3): N = 2^14, L = 8.
CONVERSION_DEFAULT = ConversionParameters(
    ckks=CKKSParameters(
        ring_degree=16384, max_level=8, dnum=3, scale_bits=36, modulus_bits=36,
        special_modulus_bits=36, security_bits=128, name="ckks-conversion",
    ),
    tfhe=TFHE_SET_III,
    nslot=32,
    name="conversion-default",
)
