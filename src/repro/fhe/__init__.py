"""Functional FHE substrate: modular arithmetic, NTT, RNS, CKKS, TFHE, conversion.

This package is the *algorithmic* half of the reproduction — everything the
Trinity accelerator computes, implemented exactly so that kernel structure,
operation counts, and correctness properties can be derived and tested rather
than assumed.

Arithmetic backends
-------------------
All ring arithmetic dispatches through a pluggable backend
(:mod:`repro.fhe.backend`).  Two implementations ship:

* ``"python"`` — exact pure-Python integers; the golden reference.
* ``"numpy"`` — vectorized ``uint64`` arithmetic (direct-word products for
  <=32-bit moduli, Montgomery/Shoup reduction up to 62-bit moduli); roughly
  an order of magnitude faster on realistic ring degrees.

Selecting a backend:

* process-wide: set the ``REPRO_BACKEND`` environment variable to ``python``
  or ``numpy`` before importing, or call
  :func:`repro.fhe.backend.set_active_backend` at runtime;
* scoped: ``with repro.fhe.backend.use_backend("numpy"): ...``;
* per object: pass ``backend=`` to :class:`~repro.fhe.ckks.CKKSContext`,
  :class:`~repro.fhe.ckks.CKKSEvaluator`,
  :class:`~repro.fhe.tfhe.TFHEContext`, or
  :class:`~repro.fhe.ntt.NTTContext`.

**Exactness guarantee:** every backend computes identical integers — the
numpy backend is a bit-for-bit drop-in, not an approximation.  The
differential suite ``tests/test_backend_parity.py`` runs every ported kernel
on both backends over every parameter-set modulus/degree combination and
asserts exact equality, and moduli outside a backend's fast-path range fall
back to the exact python path automatically.  NumPy itself is optional:
without it, everything runs on the python backend.
"""

from . import backend, modmath, ntt, params, polynomial, program, rns
from .backend import active_backend, available_backends, get_backend, set_active_backend, use_backend
from .params import (
    CKKS_DEFAULT,
    CKKS_KEYSWITCH_BREAKDOWN,
    CKKSParameters,
    CONVERSION_DEFAULT,
    ConversionParameters,
    TFHE_PARAMETER_SETS,
    TFHE_SET_I,
    TFHE_SET_II,
    TFHE_SET_III,
    TFHEParameters,
)

__all__ = [
    "backend",
    "modmath",
    "ntt",
    "params",
    "polynomial",
    "program",
    "rns",
    "active_backend",
    "available_backends",
    "get_backend",
    "set_active_backend",
    "use_backend",
    "CKKSParameters",
    "TFHEParameters",
    "ConversionParameters",
    "CKKS_DEFAULT",
    "CKKS_KEYSWITCH_BREAKDOWN",
    "TFHE_SET_I",
    "TFHE_SET_II",
    "TFHE_SET_III",
    "TFHE_PARAMETER_SETS",
    "CONVERSION_DEFAULT",
]
