"""Functional FHE substrate: modular arithmetic, NTT, RNS, CKKS, TFHE, conversion.

This package is the *algorithmic* half of the reproduction — everything the
Trinity accelerator computes, implemented exactly in pure Python so that
kernel structure, operation counts, and correctness properties can be derived
and tested rather than assumed.
"""

from . import modmath, ntt, params, polynomial, rns
from .params import (
    CKKS_DEFAULT,
    CKKS_KEYSWITCH_BREAKDOWN,
    CKKSParameters,
    CONVERSION_DEFAULT,
    ConversionParameters,
    TFHE_PARAMETER_SETS,
    TFHE_SET_I,
    TFHE_SET_II,
    TFHE_SET_III,
    TFHEParameters,
)

__all__ = [
    "modmath",
    "ntt",
    "params",
    "polynomial",
    "rns",
    "CKKSParameters",
    "TFHEParameters",
    "ConversionParameters",
    "CKKS_DEFAULT",
    "CKKS_KEYSWITCH_BREAKDOWN",
    "TFHE_SET_I",
    "TFHE_SET_II",
    "TFHE_SET_III",
    "TFHE_PARAMETER_SETS",
    "CONVERSION_DEFAULT",
]
