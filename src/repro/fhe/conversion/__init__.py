"""Scheme conversion between CKKS (RLWE) and TFHE (LWE) ciphertexts.

Implements the Chen-Dai-Kim-Song conversion the paper adopts (its Algorithms
3-5):

* :mod:`ckks_to_tfhe` — RLWE -> many LWE via SampleExtract (Algorithm 3),
* :mod:`tfhe_to_ckks` — many LWE -> one RLWE via Ring Embedding, PackLWEs
  (Algorithm 4) and the Field Trace (Algorithm 5).

The functional implementations work inside a single-limb CKKS ring so that a
full round trip (CKKS -> LWE -> CKKS) can be verified exactly in the tests;
the hardware model consumes only the operation structure, which is identical
at paper scale.
"""

from .ckks_to_tfhe import ckks_to_lwe_ciphertexts, sample_extract_rlwe
from .tfhe_to_ckks import lwe_to_rlwe_embedding, pack_lwes, field_trace, repack_lwe_ciphertexts

__all__ = [
    "ckks_to_lwe_ciphertexts",
    "sample_extract_rlwe",
    "lwe_to_rlwe_embedding",
    "pack_lwes",
    "field_trace",
    "repack_lwe_ciphertexts",
]
