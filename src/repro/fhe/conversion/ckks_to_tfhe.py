"""Scheme conversion CKKS -> TFHE (Algorithm 3): SampleExtract on RLWE.

A CKKS ciphertext at level 0 is an RLWE ciphertext ``(c0, c1)`` with
``c0 + c1 * s ~ Delta * m(X)``.  Extracting coefficient ``i`` produces an LWE
ciphertext of ``Delta * m_i`` under the CKKS secret viewed as an LWE key of
dimension N.  The conversion is purely a data-rearrangement (no keyswitching),
which is why the paper maps it onto the Rotator unit alone.
"""

from __future__ import annotations

from typing import List

from ..ckks.ciphertext import CKKSCiphertext
from ..tfhe.lwe import LWECiphertext

__all__ = ["sample_extract_rlwe", "ckks_to_lwe_ciphertexts"]


def sample_extract_rlwe(ciphertext: CKKSCiphertext, index: int) -> LWECiphertext:
    """Extract coefficient ``index`` of a single-limb CKKS ciphertext as LWE.

    The returned LWE ciphertext ``(a, b)`` satisfies
    ``b + <a, s> = (c0 + c1 * s)[index]`` where ``s`` is the CKKS secret's
    coefficient vector — i.e. the LWE convention here is ``phase = b + <a, s>``
    rewritten to the standard ``b - <a, -s>``; we return it with the mask
    already negated so the standard ``b - <a, s>`` convention holds.
    """
    if len(ciphertext.c0.limbs) != 1:
        raise ValueError("sample_extract_rlwe expects a single-limb (level-0) ciphertext")
    n = ciphertext.ring_degree
    if not 0 <= index < n:
        raise ValueError(f"index {index} out of range [0, {n})")
    q = ciphertext.c0.basis.moduli[0]
    c0 = ciphertext.c0.limbs[0].coefficients
    c1 = ciphertext.c1.limbs[0].coefficients
    # (c1 * s)[index] = sum_j m_j * s_j with m_j = c1[index-j] for j <= index
    # and m_j = -c1[index-j+N] for j > index.  phase = b - <a, s> with a = -m.
    a: List[int] = []
    for j in range(n):
        if j <= index:
            a.append((-c1[index - j]) % q)
        else:
            a.append(c1[index - j + n] % q)
    return LWECiphertext(a=a, b=c0[index] % q, modulus=q)


def ckks_to_lwe_ciphertexts(ciphertext: CKKSCiphertext, nslot: int,
                            stride: int | None = None) -> List[LWECiphertext]:
    """Algorithm 3: extract ``nslot`` coefficients as LWE ciphertexts.

    ``stride`` controls which coefficients are extracted (defaults to
    ``N / nslot`` so the extracted positions match what PackLWEs later fills).
    """
    n = ciphertext.ring_degree
    stride = (n // nslot) if stride is None else stride
    return [sample_extract_rlwe(ciphertext, i * stride) for i in range(nslot)]
