"""The key bridge between the CKKS and TFHE key domains.

Extraction (:func:`..ckks_to_tfhe.sample_extract_rlwe`) produces LWE
ciphertexts of dimension N under the *CKKS secret's coefficient vector*
modulo the level-0 CKKS prime ``q0``; the TFHE evaluator wants dimension
``n_lwe`` ciphertexts under the small binary key modulo the TFHE prime
``q_t`` (and repacking wants the reverse).  The :class:`SchemeBridge` holds
the two LWE key-switching keys that cross this gap:

* **c2t** — ``ksk[i][j]`` encrypts ``s_i * g_j`` (CKKS secret coefficient
  ``s_i``, centred ternary) under the small TFHE key modulo ``q_t``, using
  the TFHE parameter set's own ksk gadget.  ``switch_to_tfhe`` is then
  ModSwitch(q0 -> q_t) followed by the standard :func:`lwe_keyswitch`.
* **t2c** — ``ksk[i][j]`` encrypts ``s'_i * g_j`` (TFHE secret bit) under
  the CKKS-coefficient key modulo ``q0``.  The gadget is chosen per-modulus
  so decomposition is *exact* (some ``base^j`` lands in ``(q0/2, q0]``, so a
  gadget factor equals 1): with zero-noise key material the switch then adds
  no error beyond ModSwitch rounding, which is what keeps the hybrid
  differential tests bit-stable.

Both directions reuse :class:`~repro.fhe.tfhe.pbs.KeySwitchingKey` and
:func:`~repro.fhe.tfhe.pbs.lwe_keyswitch` verbatim — the bridge is key
material, not a new algorithm.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..params import CKKSParameters
from ..tfhe.ggsw import gadget_factors
from ..tfhe.lwe import LWECiphertext
from ..tfhe.pbs import KeySwitchingKey, TFHEContext, lwe_keyswitch, modulus_switch

__all__ = ["SchemeBridge", "exact_gadget"]


def exact_gadget(modulus: int, max_base_log: int = 16) -> Tuple[int, int]:
    """``(base, levels)`` whose signed decomposition is exact for ``modulus``.

    Exactness needs a gadget factor ``modulus // base**j == 1``, i.e.
    ``base**j`` in ``(modulus/2, modulus]`` — with power-of-two bases that
    means ``base_log * levels == modulus.bit_length() - 1``.  We pick the
    largest divisor ``<= max_base_log`` so the chain stays short (prime bit
    counts degrade to base 2, which is slow but still exact).
    """
    bits = modulus.bit_length() - 1
    for base_log in range(min(max_base_log, bits), 0, -1):
        if bits % base_log == 0:
            return 1 << base_log, bits // base_log
    return 2, bits  # pragma: no cover - base_log 1 always divides


class SchemeBridge:
    """Key-switching keys crossing the CKKS<->TFHE key boundary.

    ``ckks_secret`` is the CKKS secret key (its ``coefficients`` tuple is the
    LWE key extraction produces ciphertexts under); ``tfhe`` supplies the
    small binary key and the TFHE-side encryption context.  ``seed`` makes
    key generation deterministic, matching the repo's other key material.
    """

    def __init__(self, ckks_params: CKKSParameters, ckks_secret,
                 tfhe: TFHEContext, seed: int = 0):
        self.ckks_params = ckks_params
        self.tfhe = tfhe
        self.q0 = ckks_params.moduli[0]
        self.rng = random.Random(seed ^ 0x5B1D)
        self._ckks_coeffs = tuple(ckks_secret.coefficients)
        self.c2t = self._make_c2t()
        self.t2c = self._make_t2c()

    # -- key generation ------------------------------------------------------
    def _make_c2t(self) -> KeySwitchingKey:
        """Encrypt each CKKS secret coefficient under the small TFHE key."""
        params = self.tfhe.params
        q = params.modulus
        base, levels = params.ksk_base, params.ksk_levels
        factors = gadget_factors(q, base, levels)
        rows = [
            [self.tfhe.lwe.encrypt_raw((coeff * factor) % q) for factor in factors]
            for coeff in self._ckks_coeffs
        ]
        return KeySwitchingKey(rows=rows, base=base, levels=levels, modulus=q)

    def _make_t2c(self) -> KeySwitchingKey:
        """Encrypt each TFHE secret bit under the CKKS-coefficient key."""
        q = self.q0
        base, levels = exact_gadget(q)
        factors = gadget_factors(q, base, levels)
        key = self._ckks_coeffs
        noise = self.tfhe.params.noise_stddev
        rows: List[List[LWECiphertext]] = []
        for bit in self.tfhe.lwe.secret.coefficients:
            row = []
            for factor in factors:
                a = [self.rng.randrange(q) for _ in key]
                e = round(self.rng.gauss(0.0, noise)) if noise > 0 else 0
                b = (sum(x * s for x, s in zip(a, key)) + bit * factor + e) % q
                row.append(LWECiphertext(a=a, b=b, modulus=q))
            rows.append(row)
        return KeySwitchingKey(rows=rows, base=base, levels=levels, modulus=q)

    # -- the two switches ----------------------------------------------------
    def switch_to_tfhe(self, lwe: LWECiphertext) -> LWECiphertext:
        """CKKS-extracted LWE (dim N, mod q0) -> small TFHE key (n_lwe, q_t)."""
        if lwe.modulus != self.q0:
            raise ValueError(
                f"expected a mod-{self.q0} extracted ciphertext, got {lwe.modulus}"
            )
        switched = modulus_switch(lwe, self.tfhe.params.modulus)
        return lwe_keyswitch(switched, self.c2t, self.tfhe.params.lwe_dimension)

    def switch_to_ckks(self, lwe: LWECiphertext) -> LWECiphertext:
        """Small-key TFHE LWE (n_lwe, q_t) -> CKKS-coefficient key (N, q0)."""
        if lwe.modulus != self.tfhe.params.modulus:
            raise ValueError(
                f"expected a mod-{self.tfhe.params.modulus} TFHE ciphertext, "
                f"got {lwe.modulus}"
            )
        switched = modulus_switch(lwe, self.q0)
        return lwe_keyswitch(switched, self.t2c, self.ckks_params.ring_degree)

    # -- batched crossings ----------------------------------------------------
    def switch_many_to_tfhe(self, lwes: List[LWECiphertext]) -> List[LWECiphertext]:
        """Batched :meth:`switch_to_tfhe`: one keyswitch dispatch for a wave.

        Bit-identical to mapping :meth:`switch_to_tfhe` — all members share
        the ``c2t`` key, so their gadget digits stack into a single
        ``digits @ ksk`` product (see
        :func:`~repro.fhe.tfhe.batched.batched_lwe_keyswitch`).
        """
        from ..tfhe.batched import batched_lwe_keyswitch

        for lwe in lwes:
            if lwe.modulus != self.q0:
                raise ValueError(
                    f"expected a mod-{self.q0} extracted ciphertext, "
                    f"got {lwe.modulus}"
                )
        switched = [
            modulus_switch(lwe, self.tfhe.params.modulus) for lwe in lwes
        ]
        return batched_lwe_keyswitch(
            switched, self.c2t, self.tfhe.params.lwe_dimension
        )

    def switch_many_to_ckks(self, lwes: List[LWECiphertext]) -> List[LWECiphertext]:
        """Batched :meth:`switch_to_ckks` over the shared ``t2c`` key."""
        from ..tfhe.batched import batched_lwe_keyswitch

        for lwe in lwes:
            if lwe.modulus != self.tfhe.params.modulus:
                raise ValueError(
                    f"expected a mod-{self.tfhe.params.modulus} TFHE "
                    f"ciphertext, got {lwe.modulus}"
                )
        switched = [modulus_switch(lwe, self.q0) for lwe in lwes]
        return batched_lwe_keyswitch(
            switched, self.t2c, self.ckks_params.ring_degree
        )

    # -- decryption helpers (tests / examples only) --------------------------
    def ckks_key_phase(self, lwe: LWECiphertext) -> int:
        """Centred phase of a dim-N ciphertext under the CKKS-coefficient key."""
        from ..modmath import centered

        q = lwe.modulus
        inner = sum(x * s for x, s in zip(lwe.a, self._ckks_coeffs)) % q
        return centered((lwe.b - inner) % q, q)
