"""Scheme conversion TFHE -> CKKS (Algorithms 4 and 5): LWE repacking.

The conversion packs ``nslot`` LWE ciphertexts into a single RLWE (CKKS)
ciphertext in three steps:

1. **Ring Embedding** — re-interpret each LWE ciphertext ``(a, b)`` as an
   RLWE ciphertext whose plaintext's *constant coefficient* is the LWE
   message (all other coefficients are meaningless),
2. **Ciphertext Packing** (:func:`pack_lwes`, Algorithm 4) — a recursive
   even/odd merge: each merge step uses one monomial rotation and one
   homomorphic automorphism (HRotate) and doubles the number of packed
   messages, spreading them to coefficient positions ``j * N / nslot``,
3. **Field Trace** (:func:`field_trace`, Algorithm 5) — ``log2(N / nslot)``
   automorphism-and-add steps that annihilate every unwanted coefficient.

After the trace, coefficient ``j * N / nslot`` of the decrypted polynomial
equals ``N * mu_j`` where ``mu_j`` is the j-th LWE message (each of the
``log2(N)`` automorphism levels doubles the wanted coefficients); callers that
need unscaled messages multiply the inputs by ``N^{-1} mod q`` first, which is
what :func:`repack_lwe_ciphertexts` does.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..ckks.ciphertext import CKKSCiphertext
from ..ckks.evaluator import CKKSEvaluator
from ..modmath import mod_inverse
from ..polynomial import Polynomial
from ..rns import RNSPolynomial
from ..tfhe.lwe import LWECiphertext

__all__ = ["lwe_to_rlwe_embedding", "pack_lwes", "field_trace", "repack_lwe_ciphertexts"]


def lwe_to_rlwe_embedding(lwe: LWECiphertext, evaluator: CKKSEvaluator,
                          scale: float = 1.0) -> CKKSCiphertext:
    """Ring Embedding: build an RLWE ciphertext whose constant coeff is the LWE message.

    The LWE ciphertext must have dimension N (i.e. be keyed by the CKKS secret
    coefficients, as produced by :func:`...ckks_to_tfhe.sample_extract_rlwe`).
    Under the CKKS convention ``m = c0 + c1 * s`` we need the constant
    coefficient of ``c1 * s`` to equal ``-<a, s>``; the embedding
    ``c1[0] = -a[0], c1[i] = a[N - i]`` achieves exactly that.
    """
    params = evaluator.params
    n = params.ring_degree
    if lwe.dimension != n:
        raise ValueError(
            f"LWE dimension {lwe.dimension} must equal the CKKS ring degree {n}"
        )
    basis = params.basis(0)
    q = basis.moduli[0]
    if lwe.modulus != q:
        raise ValueError("LWE modulus must match the level-0 CKKS modulus")
    c1_coeffs = [0] * n
    c1_coeffs[0] = (-lwe.a[0]) % q
    for i in range(1, n):
        c1_coeffs[i] = lwe.a[n - i] % q
    c0_coeffs = [0] * n
    c0_coeffs[0] = lwe.b % q
    c0 = RNSPolynomial(n, basis, [Polynomial(n, q, c0_coeffs)])
    c1 = RNSPolynomial(n, basis, [Polynomial(n, q, c1_coeffs)])
    return CKKSCiphertext(c0=c0, c1=c1, level=0, scale=scale)


def _rotate_monomial(ciphertext: CKKSCiphertext, degree: int) -> CKKSCiphertext:
    """Multiply both components by ``X^degree`` (the plain Rotate of Algorithm 4).

    One batched signed-permutation dispatch per component (all limbs at once).
    """
    return CKKSCiphertext(
        c0=ciphertext.c0.multiply_by_monomial(degree),
        c1=ciphertext.c1.multiply_by_monomial(degree),
        level=ciphertext.level,
        scale=ciphertext.scale,
    )


def pack_lwes(ciphertexts: Sequence[CKKSCiphertext], evaluator: CKKSEvaluator) -> CKKSCiphertext:
    """Algorithm 4 (PackLWEs): recursively merge ring-embedded ciphertexts.

    After packing ``nslot`` ciphertexts, the plaintext coefficient at position
    ``j * N / nslot`` equals ``nslot * mu_j`` (plus not-yet-cancelled garbage
    at other positions, removed later by the field trace).
    """
    ciphertexts = list(ciphertexts)
    nslot = len(ciphertexts)
    if nslot == 0:
        raise ValueError("cannot pack an empty list of ciphertexts")
    if nslot & (nslot - 1):
        raise ValueError("the number of ciphertexts must be a power of two")
    if nslot == 1:
        return ciphertexts[0]
    n = evaluator.params.ring_degree
    evens = pack_lwes(ciphertexts[0::2], evaluator)
    odds = pack_lwes(ciphertexts[1::2], evaluator)
    shift = n // nslot
    rotated_odds = _rotate_monomial(odds, shift)
    combined = evaluator.add(evens, rotated_odds)
    difference = evaluator.sub(evens, rotated_odds)
    # HRotate with Galois element (nslot + 1): fixes coefficients at multiples
    # of 2N/nslot and negates the odd multiples of N/nslot, so the sum doubles
    # the wanted coefficients of both halves.
    rotated = evaluator.apply_galois(difference, nslot + 1)
    return evaluator.add(combined, rotated)


def field_trace(ciphertext: CKKSCiphertext, nslot: int, evaluator: CKKSEvaluator) -> CKKSCiphertext:
    """Algorithm 5 (Field Trace): cancel every coefficient not at a slot position.

    Applies ``log2(N / nslot)`` steps of ``ct <- ct + sigma_g(ct)`` with
    ``g = 2N / 2^k + 1``; each step doubles the wanted coefficients and kills
    half of the remaining garbage positions.
    """
    n = evaluator.params.ring_degree
    steps = int(math.log2(n // nslot))
    result = ciphertext
    for k in range(1, steps + 1):
        galois_element = (2 * n) // (1 << k) + 1
        result = evaluator.add(result, evaluator.apply_galois(result, galois_element))
    return result


def repack_lwe_ciphertexts(lwe_ciphertexts: Sequence[LWECiphertext],
                           evaluator: CKKSEvaluator) -> CKKSCiphertext:
    """Full TFHE -> CKKS conversion (Ring Embedding + PackLWEs + Field Trace).

    The inputs are pre-multiplied by ``N^{-1} mod q`` so the packed plaintext
    coefficient at position ``j * N / nslot`` equals ``mu_j`` exactly (instead
    of ``N * mu_j``).
    """
    params = evaluator.params
    n = params.ring_degree
    q = params.basis(0).moduli[0]
    n_inverse = mod_inverse(n % q, q)
    nslot = len(lwe_ciphertexts)
    embedded = [
        lwe_to_rlwe_embedding(lwe.scalar_multiply(n_inverse), evaluator)
        for lwe in lwe_ciphertexts
    ]
    packed = pack_lwes(embedded, evaluator)
    return field_trace(packed, nslot, evaluator)
