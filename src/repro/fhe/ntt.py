"""Number Theoretic Transform over Z_q[X]/(X^N + 1).

Implements the negacyclic (a.k.a. *twisted*) NTT used throughout CKKS and the
NTT-substituted TFHE of the paper:

* :class:`NTTContext` — precomputed tables (psi powers, bit-reversed twiddles)
  for one ``(N, q)`` pair, with forward/inverse transforms and negacyclic
  convolution.
* :func:`four_step_ntt` / :func:`four_step_intt` — the four-step (Bailey)
  decomposition of a large NTT into two passes of smaller NTTs with a twisting
  step in between.  This mirrors exactly the hardware split used by Trinity
  (NTTU computes phase-1, the CUs compute phase-2), and it is validated
  against the direct transform in the tests.

The transforms operate on Python-int lists (exact arithmetic); the sizes used
in functional tests are small (N <= 2^12), where pure-Python NTT is fast
enough and never overflows.
"""

from __future__ import annotations

from typing import List, Sequence

from .modmath import find_2nth_root_of_unity, is_prime, mod_inverse

__all__ = ["NTTContext", "bit_reverse_permutation", "four_step_ntt", "four_step_intt"]


def bit_reverse_permutation(length: int) -> List[int]:
    """Return the bit-reversal permutation of ``range(length)`` (power of two)."""
    if length & (length - 1):
        raise ValueError("length must be a power of two")
    bits = length.bit_length() - 1
    return [int(format(i, f"0{bits}b")[::-1], 2) if bits else 0 for i in range(length)]


class NTTContext:
    """Precomputed negacyclic NTT for a fixed ring degree and prime modulus."""

    def __init__(self, ring_degree: int, modulus: int):
        if ring_degree <= 0 or ring_degree & (ring_degree - 1):
            raise ValueError("ring_degree must be a power of two")
        if not is_prime(modulus):
            raise ValueError(f"modulus {modulus} must be prime")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={ring_degree}"
            )
        self.ring_degree = ring_degree
        self.modulus = modulus
        self.psi = find_2nth_root_of_unity(ring_degree, modulus)
        self.psi_inv = mod_inverse(self.psi, modulus)
        self.omega = (self.psi * self.psi) % modulus
        self.omega_inv = mod_inverse(self.omega, modulus)
        self.n_inv = mod_inverse(ring_degree, modulus)
        self._psi_powers = self._powers(self.psi)
        self._psi_inv_powers = self._powers(self.psi_inv)
        self._fwd_twiddles = self._bit_reversed_powers(self.psi)
        self._inv_twiddles = self._bit_reversed_powers(self.psi_inv)

    def _powers(self, base: int) -> List[int]:
        powers = [1] * self.ring_degree
        for i in range(1, self.ring_degree):
            powers[i] = (powers[i - 1] * base) % self.modulus
        return powers

    def _bit_reversed_powers(self, base: int) -> List[int]:
        powers = self._powers(base) if base == self.psi else None
        if powers is None:
            powers = [1] * self.ring_degree
            for i in range(1, self.ring_degree):
                powers[i] = (powers[i - 1] * base) % self.modulus
        order = bit_reverse_permutation(self.ring_degree)
        return [powers[order[i]] for i in range(self.ring_degree)]

    # -- forward / inverse ------------------------------------------------
    def forward(self, coefficients: Sequence[int]) -> List[int]:
        """Negacyclic forward NTT (coefficient -> evaluation representation)."""
        n = self.ring_degree
        if len(coefficients) != n:
            raise ValueError(f"expected {n} coefficients, got {len(coefficients)}")
        q = self.modulus
        values = [int(c) % q for c in coefficients]
        # Cooley-Tukey, decimation in time, merged psi twisting (Longa-Naehrig).
        t = n
        m = 1
        while m < n:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                j2 = j1 + t
                s = self._fwd_twiddles[m + i]
                for j in range(j1, j2):
                    u = values[j]
                    v = (values[j + t] * s) % q
                    values[j] = (u + v) % q
                    values[j + t] = (u - v) % q
            m *= 2
        return values

    def inverse(self, values: Sequence[int]) -> List[int]:
        """Negacyclic inverse NTT (evaluation -> coefficient representation)."""
        n = self.ring_degree
        if len(values) != n:
            raise ValueError(f"expected {n} values, got {len(values)}")
        q = self.modulus
        coeffs = [int(v) % q for v in values]
        # Gentleman-Sande, decimation in frequency, merged psi^-1 twisting.
        t = 1
        m = n
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                j2 = j1 + t
                s = self._inv_twiddles[h + i]
                for j in range(j1, j2):
                    u = coeffs[j]
                    v = coeffs[j + t]
                    coeffs[j] = (u + v) % q
                    coeffs[j + t] = ((u - v) * s) % q
                j1 += 2 * t
            t *= 2
            m = h
        return [(c * self.n_inv) % q for c in coeffs]

    # -- convenience ------------------------------------------------------
    def negacyclic_convolution(
        self, a: Sequence[int], b: Sequence[int]
    ) -> List[int]:
        """Multiply two polynomials in Z_q[X]/(X^N+1) via the NTT."""
        fa = self.forward(a)
        fb = self.forward(b)
        q = self.modulus
        return self.inverse([(x * y) % q for x, y in zip(fa, fb)])

    def pointwise_multiply(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Element-wise modular multiplication (evaluation representation)."""
        q = self.modulus
        return [(int(x) * int(y)) % q for x, y in zip(a, b)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NTTContext(N={self.ring_degree}, q={self.modulus})"


def _cyclic_ntt(values: List[int], omega: int, modulus: int) -> List[int]:
    """In-order iterative radix-2 *cyclic* NTT of a power-of-two length."""
    n = len(values)
    order = bit_reverse_permutation(n)
    data = [values[order[i]] for i in range(n)]
    length = 2
    while length <= n:
        w_len = pow(omega, n // length, modulus)
        for start in range(0, n, length):
            w = 1
            half = length // 2
            for j in range(start, start + half):
                u = data[j]
                v = (data[j + half] * w) % modulus
                data[j] = (u + v) % modulus
                data[j + half] = (u - v) % modulus
                w = (w * w_len) % modulus
        length *= 2
    return data


def four_step_ntt(context: NTTContext, coefficients: Sequence[int], rows: int) -> List[int]:
    """Compute the negacyclic NTT using the four-step (Bailey) decomposition.

    The length-N transform is computed as ``rows`` x ``cols`` smaller
    transforms with an element-wise *twisting* in between — the same split the
    Trinity NTTU + CU pipeline performs in hardware.  The output matches
    :meth:`NTTContext.forward` exactly (asserted by the test-suite).

    Steps (negacyclic variant):
      1. pre-twist by psi^i (turns the negacyclic transform into a cyclic one),
      2. column NTTs of size ``rows`` (phase-1, done by the NTTU),
      3. twiddle-factor twist by omega^(r*c) plus transpose,
      4. row NTTs of size ``cols`` (phase-2, done by the CUs),
      and a final index permutation back to the standard NTT output order.
    """
    n = context.ring_degree
    if n % rows != 0:
        raise ValueError("rows must divide the ring degree")
    cols = n // rows
    if rows & (rows - 1) or cols & (cols - 1):
        raise ValueError("rows and cols must both be powers of two")
    q = context.modulus
    # Step 0: psi pre-twist makes the remaining problem a plain cyclic DFT.
    twisted = [(int(coefficients[i]) * context._psi_powers[i]) % q for i in range(n)]
    # View as a rows x cols matrix stored row-major: element (r, c) = twisted[r*cols + c].
    # Cyclic DFT of size n decomposes as: column DFTs (size rows), twiddle, row DFTs (size cols).
    omega = context.omega
    omega_rows = pow(omega, cols, q)   # primitive `rows`-th root
    omega_cols = pow(omega, rows, q)   # primitive `cols`-th root
    # Phase 1: DFT along columns (stride cols).
    matrix = [[twisted[r * cols + c] for r in range(rows)] for c in range(cols)]
    matrix = [_cyclic_ntt(column, omega_rows, q) for column in matrix]
    # Twiddle: multiply element (r, c) by omega^(r*c).
    for c in range(cols):
        for r in range(rows):
            matrix[c][r] = (matrix[c][r] * pow(omega, r * c, q)) % q
    # Phase 2: DFT along rows (after transpose the "rows" of the result).
    rows_data = [[matrix[c][r] for c in range(cols)] for r in range(rows)]
    rows_data = [_cyclic_ntt(row, omega_cols, q) for row in rows_data]
    # Output index k corresponds to (k mod rows, k div rows) in the two-phase result,
    # i.e. X[k1 + rows*k2] = rows_data[k1][k2].
    cyclic = [0] * n
    for k1 in range(rows):
        for k2 in range(cols):
            cyclic[k1 + rows * k2] = rows_data[k1][k2]
    # `cyclic` holds the natural-order negacyclic NTT (X[k] at psi^(2k+1)).
    # NTTContext.forward emits bit-reversed order, so permute to match it.
    order = bit_reverse_permutation(n)
    return [cyclic[order[i]] for i in range(n)]


def four_step_intt(context: NTTContext, values: Sequence[int], rows: int) -> List[int]:
    """Inverse of :func:`four_step_ntt` (validated against ``NTTContext.inverse``)."""
    n = context.ring_degree
    q = context.modulus
    cols = n // rows
    # Invert the cyclic DFT by running the same decomposition with omega^-1.
    omega_inv = context.omega_inv
    omega_rows_inv = pow(omega_inv, cols, q)
    omega_cols_inv = pow(omega_inv, rows, q)
    # Undo the bit-reversed output order of four_step_ntt, then the two-phase layout:
    # rows_data[k1][k2] = X_natural[k1 + rows*k2].
    order = bit_reverse_permutation(n)
    natural = [0] * n
    for i in range(n):
        natural[order[i]] = int(values[i]) % q
    rows_data = [[natural[k1 + rows * k2] for k2 in range(cols)] for k1 in range(rows)]
    rows_data = [_cyclic_ntt(row, omega_cols_inv, q) for row in rows_data]
    matrix = [[rows_data[r][c] for r in range(rows)] for c in range(cols)]
    for c in range(cols):
        for r in range(rows):
            matrix[c][r] = (matrix[c][r] * pow(omega_inv, r * c, q)) % q
    matrix = [_cyclic_ntt(column, omega_rows_inv, q) for column in matrix]
    twisted = [0] * n
    for c in range(cols):
        for r in range(rows):
            twisted[r * cols + c] = matrix[c][r]
    n_inv = context.n_inv
    return [
        (twisted[i] * n_inv % q) * context._psi_inv_powers[i] % q for i in range(n)
    ]
