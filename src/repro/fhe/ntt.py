"""Number Theoretic Transform over Z_q[X]/(X^N + 1).

Implements the negacyclic (a.k.a. *twisted*) NTT used throughout CKKS and the
NTT-substituted TFHE of the paper:

* :class:`NTTContext` — precomputed tables (psi powers, bit-reversed twiddles)
  for one ``(N, q)`` pair, with forward/inverse transforms and negacyclic
  convolution.
* :func:`four_step_ntt` / :func:`four_step_intt` — the four-step (Bailey)
  decomposition of a large NTT into two passes of smaller NTTs with a twisting
  step in between.  This mirrors exactly the hardware split used by Trinity
  (NTTU computes phase-1, the CUs compute phase-2), and it is validated
  against the direct transform in the tests.

The transforms execute on the active :mod:`repro.fhe.backend`
(:func:`~repro.fhe.backend.active_backend`): the exact pure-Python reference
by default, or the vectorized numpy backend when selected.  Both produce
bit-identical results (enforced by ``tests/test_backend_parity.py``); an
:class:`NTTContext` can also pin a specific backend via its ``backend``
argument.
"""

from __future__ import annotations

from typing import List, Sequence

from .backend import ArithmeticBackend, _bit_reverse_indices, active_backend
from .modmath import find_2nth_root_of_unity, is_prime, mod_inverse

__all__ = ["NTTContext", "bit_reverse_permutation", "four_step_ntt", "four_step_intt"]


def bit_reverse_permutation(length: int) -> List[int]:
    """Return the bit-reversal permutation of ``range(length)`` (power of two)."""
    return list(_bit_reverse_indices(length))


class NTTContext:
    """Precomputed negacyclic NTT for a fixed ring degree and prime modulus.

    ``backend`` pins the arithmetic backend used by this context's
    transforms; the default (``None``) resolves the process-wide active
    backend at every call, so a context transparently follows
    :func:`~repro.fhe.backend.use_backend` selections.
    """

    def __init__(self, ring_degree: int, modulus: int,
                 backend: "ArithmeticBackend | None" = None):
        if ring_degree <= 0 or ring_degree & (ring_degree - 1):
            raise ValueError("ring_degree must be a power of two")
        if not is_prime(modulus):
            raise ValueError(f"modulus {modulus} must be prime")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={ring_degree}"
            )
        self.ring_degree = ring_degree
        self.modulus = modulus
        self.backend = backend
        self.psi = find_2nth_root_of_unity(ring_degree, modulus)
        self.psi_inv = mod_inverse(self.psi, modulus)
        self.omega = (self.psi * self.psi) % modulus
        self.omega_inv = mod_inverse(self.omega, modulus)
        self.n_inv = mod_inverse(ring_degree, modulus)
        self._psi_powers = self._powers(self.psi)
        self._psi_inv_powers = self._powers(self.psi_inv)
        self._fwd_twiddles = self._bit_reversed_powers(self.psi)
        self._inv_twiddles = self._bit_reversed_powers(self.psi_inv)
        self._four_step_twiddle_cache: dict = {}

    def _powers(self, base: int) -> List[int]:
        powers = [1] * self.ring_degree
        for i in range(1, self.ring_degree):
            powers[i] = (powers[i - 1] * base) % self.modulus
        return powers

    def _bit_reversed_powers(self, base: int) -> List[int]:
        powers = self._psi_powers if base == self.psi else None
        if powers is None:
            powers = [1] * self.ring_degree
            for i in range(1, self.ring_degree):
                powers[i] = (powers[i - 1] * base) % self.modulus
        order = bit_reverse_permutation(self.ring_degree)
        return [powers[order[i]] for i in range(self.ring_degree)]

    def active_backend(self) -> ArithmeticBackend:
        """The backend this context's transforms run on right now."""
        return self.backend if self.backend is not None else active_backend()

    # -- forward / inverse ------------------------------------------------
    def forward(self, coefficients: Sequence[int]) -> List[int]:
        """Negacyclic forward NTT (coefficient -> evaluation representation)."""
        return self.active_backend().ntt_forward(self, coefficients)

    def inverse(self, values: Sequence[int]) -> List[int]:
        """Negacyclic inverse NTT (evaluation -> coefficient representation)."""
        return self.active_backend().ntt_inverse(self, values)

    # -- convenience ------------------------------------------------------
    def negacyclic_convolution(
        self, a: Sequence[int], b: Sequence[int]
    ) -> List[int]:
        """Multiply two polynomials in Z_q[X]/(X^N+1) via the NTT."""
        return self.active_backend().negacyclic_convolution(self, a, b)

    def pointwise_multiply(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Element-wise modular multiplication (evaluation representation)."""
        return self.active_backend().mul(a, b, self.modulus)

    # -- four-step twiddle tables ------------------------------------------
    def four_step_twiddles(self, rows: int, inverse: bool = False) -> List[int]:
        """Flattened ``omega^(r*c)`` table for the four-step decomposition.

        Stored column-major — entry ``c * rows + r`` holds
        ``omega^(+-r*c)`` — to match the matrix layout of
        :func:`four_step_ntt`.  Cached per ``(rows, inverse)``.
        """
        key = (rows, inverse)
        table = self._four_step_twiddle_cache.get(key)
        if table is None:
            n = self.ring_degree
            q = self.modulus
            cols = n // rows
            base = self.omega_inv if inverse else self.omega
            table = [0] * n
            for c in range(cols):
                factor = pow(base, c, q)
                value = 1
                offset = c * rows
                for r in range(rows):
                    table[offset + r] = value
                    value = (value * factor) % q
            self._four_step_twiddle_cache[key] = table
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NTTContext(N={self.ring_degree}, q={self.modulus})"


def _four_step_geometry(context: NTTContext, rows: int) -> int:
    n = context.ring_degree
    if n % rows != 0:
        raise ValueError("rows must divide the ring degree")
    cols = n // rows
    if rows & (rows - 1) or cols & (cols - 1):
        raise ValueError("rows and cols must both be powers of two")
    return cols


def four_step_ntt(context: NTTContext, coefficients: Sequence[int], rows: int) -> List[int]:
    """Compute the negacyclic NTT using the four-step (Bailey) decomposition.

    The length-N transform is computed as ``rows`` x ``cols`` smaller
    transforms with an element-wise *twisting* in between — the same split the
    Trinity NTTU + CU pipeline performs in hardware.  The output matches
    :meth:`NTTContext.forward` exactly (asserted by the test-suite).

    Steps (negacyclic variant):
      1. pre-twist by psi^i (turns the negacyclic transform into a cyclic one),
      2. column NTTs of size ``rows`` (phase-1, done by the NTTU),
      3. twiddle-factor twist by omega^(r*c) plus transpose,
      4. row NTTs of size ``cols`` (phase-2, done by the CUs),
      and a final index permutation back to the standard NTT output order.

    The whole decomposition is a single backend dispatch
    (:meth:`ArithmeticBackend.four_step_ntt`): the python backend composes
    the element-wise and cyclic-batch primitives with list gather/scatter in
    between, while the numpy backend keeps every transpose and permutation
    resident as array operations.
    """
    _four_step_geometry(context, rows)
    return context.active_backend().four_step_ntt(context, coefficients, rows)


def four_step_intt(context: NTTContext, values: Sequence[int], rows: int) -> List[int]:
    """Inverse of :func:`four_step_ntt` (validated against ``NTTContext.inverse``)."""
    _four_step_geometry(context, rows)
    return context.active_backend().four_step_intt(context, values, rows)
