"""LWE ciphertexts: the scalar ciphertext type of TFHE.

An LWE ciphertext of a message ``m`` under a binary secret ``s`` of dimension
``n`` is ``(a, b)`` with ``a`` uniform in ``Z_q^n`` and

    b = <a, s> + encode(m) + e        (mod q),

where ``encode(m) = m * Delta`` places the message in the top bits of the
modulus.  The *phase* ``b - <a, s>`` recovers ``encode(m) + e`` and rounding
recovers ``m``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..modmath import centered
from ..params import TFHEParameters

__all__ = ["LWESecretKey", "LWECiphertext", "LWEContext"]


@dataclass(frozen=True)
class LWESecretKey:
    """A binary LWE secret of dimension ``n``."""

    coefficients: Tuple[int, ...]

    @property
    def dimension(self) -> int:
        return len(self.coefficients)


@dataclass
class LWECiphertext:
    """An LWE ciphertext ``(a, b)`` with explicit modulus."""

    a: List[int]
    b: int
    modulus: int

    @property
    def dimension(self) -> int:
        return len(self.a)

    # -- linear homomorphisms (free operations on LWE) -------------------------
    def __add__(self, other: "LWECiphertext") -> "LWECiphertext":
        self._check(other)
        q = self.modulus
        return LWECiphertext(
            a=[(x + y) % q for x, y in zip(self.a, other.a)],
            b=(self.b + other.b) % q,
            modulus=q,
        )

    def __sub__(self, other: "LWECiphertext") -> "LWECiphertext":
        self._check(other)
        q = self.modulus
        return LWECiphertext(
            a=[(x - y) % q for x, y in zip(self.a, other.a)],
            b=(self.b - other.b) % q,
            modulus=q,
        )

    def __neg__(self) -> "LWECiphertext":
        q = self.modulus
        return LWECiphertext(a=[(-x) % q for x in self.a], b=(-self.b) % q, modulus=q)

    def scalar_multiply(self, scalar: int) -> "LWECiphertext":
        """Multiply the ciphertext (and hence the message) by an integer."""
        q = self.modulus
        return LWECiphertext(
            a=[(x * scalar) % q for x in self.a], b=(self.b * scalar) % q, modulus=q
        )

    def add_constant(self, value: int) -> "LWECiphertext":
        """Add a plaintext constant (already encoded/scaled) to the message."""
        return LWECiphertext(a=list(self.a), b=(self.b + value) % self.modulus, modulus=self.modulus)

    def _check(self, other: "LWECiphertext") -> None:
        if self.modulus != other.modulus or self.dimension != other.dimension:
            raise ValueError("LWE ciphertexts are incompatible")


class LWEContext:
    """Encrypt/decrypt scalar messages under a TFHE parameter set."""

    def __init__(self, params: TFHEParameters, seed: int = 0):
        self.params = params
        self.rng = random.Random(seed ^ 0x1F3E)
        self.secret = LWESecretKey(
            tuple(self.rng.randrange(2) for _ in range(params.lwe_dimension))
        )

    # -- encoding -----------------------------------------------------------------
    def encode(self, message: int) -> int:
        """Scale a message in ``[0, t)`` into the top bits of the modulus."""
        t = self.params.plaintext_modulus
        return (message % t) * (self.params.modulus // t)

    def decode(self, value: int) -> int:
        """Round a phase back to a message in ``[0, t)``."""
        t = self.params.plaintext_modulus
        q = self.params.modulus
        return round(value * t / q) % t

    # -- encryption ------------------------------------------------------------------
    def encrypt(self, message: int, secret: LWESecretKey | None = None,
                noise_stddev: float | None = None) -> LWECiphertext:
        """Encrypt a message in ``[0, plaintext_modulus)``."""
        return self.encrypt_raw(self.encode(message), secret=secret, noise_stddev=noise_stddev)

    def encrypt_raw(self, encoded: int, secret: LWESecretKey | None = None,
                    noise_stddev: float | None = None) -> LWECiphertext:
        """Encrypt an already-encoded value (used by keyswitch key generation)."""
        secret = secret or self.secret
        q = self.params.modulus
        stddev = self.params.noise_stddev if noise_stddev is None else noise_stddev
        a = [self.rng.randrange(q) for _ in range(secret.dimension)]
        noise = round(self.rng.gauss(0.0, stddev)) if stddev > 0 else 0
        b = (sum(x * s for x, s in zip(a, secret.coefficients)) + encoded + noise) % q
        return LWECiphertext(a=a, b=b, modulus=q)

    def trivial(self, encoded: int, dimension: int | None = None) -> LWECiphertext:
        """A noiseless ciphertext of an encoded value with zero mask (public)."""
        dimension = self.params.lwe_dimension if dimension is None else dimension
        return LWECiphertext(a=[0] * dimension, b=encoded % self.params.modulus,
                             modulus=self.params.modulus)

    # -- decryption ------------------------------------------------------------------
    def phase(self, ciphertext: LWECiphertext, secret: LWESecretKey | None = None) -> int:
        """The raw phase ``b - <a, s>`` (encoded message plus noise), centred."""
        secret = secret or self.secret
        q = ciphertext.modulus
        inner = sum(x * s for x, s in zip(ciphertext.a, secret.coefficients)) % q
        return centered((ciphertext.b - inner) % q, q)

    def decrypt(self, ciphertext: LWECiphertext, secret: LWESecretKey | None = None) -> int:
        """Decrypt back to a message in ``[0, plaintext_modulus)``."""
        return self.decode(self.phase(ciphertext, secret))
