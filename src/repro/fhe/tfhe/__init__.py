"""Functional TFHE implementation (CGGI) with the paper's FFT->NTT substitution.

Modules:

* :mod:`lwe`   — LWE ciphertexts, secret keys, encryption/decryption,
* :mod:`glwe`  — GLWE (ring) ciphertexts and secret keys,
* :mod:`ggsw`  — GGSW ciphertexts, gadget decomposition, external product,
* :mod:`pbs`   — programmable bootstrapping (Algorithm 2): ModSwitch, blind
  rotation, SampleExtract, and TFHE KeySwitch,
* :mod:`gates` — homomorphic boolean gates built on gate bootstrapping.

All polynomial arithmetic runs over an NTT-friendly prime modulus (the
closest prime to 2^32 with ``p = 1 mod 2N``), which is exactly the
substitution the paper makes so the CKKS NTT hardware can be reused for TFHE.
"""

from .lwe import LWECiphertext, LWESecretKey, LWEContext
from .glwe import GLWECiphertext, GLWESecretKey
from .ggsw import GGSWCiphertext, external_product, gadget_factors
from .pbs import (
    BootstrappingKey,
    KeySwitchingKey,
    TFHEContext,
    blind_rotate,
    modulus_switch,
    sample_extract,
)
from .gates import TFHEGateEvaluator

__all__ = [
    "LWECiphertext",
    "LWESecretKey",
    "LWEContext",
    "GLWECiphertext",
    "GLWESecretKey",
    "GGSWCiphertext",
    "external_product",
    "gadget_factors",
    "BootstrappingKey",
    "KeySwitchingKey",
    "TFHEContext",
    "blind_rotate",
    "modulus_switch",
    "sample_extract",
    "TFHEGateEvaluator",
]
