"""Programmable Bootstrapping (PBS) — Algorithm 2 of the paper.

PBS refreshes the noise of an LWE ciphertext while applying an arbitrary
function (the *test vector*).  It is composed of exactly the stages the paper
lists, each of which becomes a kernel group in the hardware model:

1. **ModSwitch** — rescale the LWE ciphertext from modulus ``q`` to ``2N``;
2. **Blind Rotation** — ``n_lwe`` CMux iterations, each an External Product
   (``(k+1) * l_b`` NTTs + MACs + ``k+1`` iNTTs);
3. **SampleExtract** — extract the constant coefficient as an LWE ciphertext
   under the flattened GLWE key;
4. **TFHE KeySwitch** — switch back to the small LWE key using the
   key-switching key ``ksk``.

The functional code below is exact (pure Python integers); the tests verify
end-to-end PBS correctness on the toy and small parameter sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..backend import ArithmeticBackend, active_backend, use_backend
from ..params import TFHEParameters
from ..polynomial import Polynomial
from .ggsw import GGSWCiphertext, GGSWContext, cmux, gadget_factors
from .glwe import GLWECiphertext, GLWEContext, GLWESecretKey
from .lwe import LWECiphertext, LWEContext, LWESecretKey

__all__ = [
    "BootstrappingKey",
    "KeySwitchingKey",
    "modulus_switch",
    "blind_rotate",
    "sample_extract",
    "lwe_keyswitch",
    "signed_decompose",
    "TFHEContext",
]


# ---------------------------------------------------------------------------
# Key material
# ---------------------------------------------------------------------------

@dataclass
class BootstrappingKey:
    """``bsk[i]`` = GGSW encryption of the i-th LWE secret bit under the GLWE key."""

    ggsw_rows: List[GGSWCiphertext]

    @property
    def lwe_dimension(self) -> int:
        return len(self.ggsw_rows)


@dataclass
class KeySwitchingKey:
    """``ksk[i][j]`` = LWE encryption of ``s'_i * g_j`` under the small LWE key."""

    rows: List[List[LWECiphertext]]
    base: int
    levels: int
    modulus: int

    @property
    def input_dimension(self) -> int:
        return len(self.rows)


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

def modulus_switch(ciphertext: LWECiphertext, new_modulus: int) -> LWECiphertext:
    """Rescale an LWE ciphertext to a (much smaller) modulus, rounding."""
    q = ciphertext.modulus
    def switch(value: int) -> int:
        return ((value * new_modulus + q // 2) // q) % new_modulus
    return LWECiphertext(
        a=[switch(x) for x in ciphertext.a], b=switch(ciphertext.b), modulus=new_modulus
    )


def blind_rotate(
    test_vector: GLWECiphertext,
    switched: LWECiphertext,
    bootstrapping_key: BootstrappingKey,
) -> GLWECiphertext:
    """Rotate the test vector by the (encrypted) phase of ``switched``.

    ``switched`` must already be modulus-switched to ``2N``.  The result is a
    GLWE ciphertext whose plaintext is ``X^{-phase} * tv``.
    """
    ring_degree = test_vector.ring_degree
    if switched.modulus != 2 * ring_degree:
        raise ValueError("blind_rotate expects a ciphertext modulus-switched to 2N")
    accumulator = test_vector.multiply_by_monomial(-switched.b)
    for a_i, ggsw in zip(switched.a, bootstrapping_key.ggsw_rows):
        if a_i == 0:
            continue
        rotated = accumulator.multiply_by_monomial(a_i)
        accumulator = cmux(ggsw, rotated, accumulator)
    return accumulator


def sample_extract(glwe: GLWECiphertext, index: int = 0) -> LWECiphertext:
    """Extract coefficient ``index`` of a GLWE ciphertext as an LWE ciphertext.

    The output is an LWE ciphertext of dimension ``k * N`` under the GLWE
    secret key flattened coefficient-wise.
    """
    n = glwe.ring_degree
    q = glwe.modulus
    if not 0 <= index < n:
        raise ValueError(f"index {index} out of range [0, {n})")
    a: List[int] = []
    for mask_poly in glwe.mask:
        coeffs = mask_poly.coefficients
        for j in range(n):
            if j <= index:
                a.append(coeffs[index - j] % q)
            else:
                a.append((-coeffs[index - j + n]) % q)
    return LWECiphertext(a=a, b=glwe.body.coefficients[index] % q, modulus=q)


def signed_decompose(value: int, base: int, levels: int, modulus: int) -> List[int]:
    """Signed base-``base`` decomposition of a scalar (most significant first).

    Returns digits ``d_0..d_{levels-1}`` with ``|d_j|`` about ``base/2`` such
    that ``sum_j d_j * (modulus // base^(j+1))`` approximates ``value`` modulo
    ``modulus`` (same greedy gadget as :meth:`Polynomial.decompose`).
    """
    factors = gadget_factors(modulus, base, levels)
    residual = value % modulus
    if residual > modulus // 2:
        residual -= modulus
    digits: List[int] = []
    for factor in factors:
        if factor == 0:
            digits.append(0)
            continue
        digit = (2 * residual + factor) // (2 * factor)
        residual -= digit * factor
        digits.append(digit)
    return digits


def lwe_keyswitch(ciphertext: LWECiphertext, ksk: KeySwitchingKey,
                  output_dimension: int) -> LWECiphertext:
    """Switch an LWE ciphertext to the key encrypted inside ``ksk``.

    Implements line 17 of Algorithm 2:
    ``c'' = (0, ..., 0, b') - sum_i sum_j Decomp(a'_i)_j * ksk[i][j]``.
    The mask accumulation runs as one ``weighted_sum`` backend dispatch over
    all contributing ksk rows instead of ``k*N*l_k`` per-row vector updates.
    """
    q = ciphertext.modulus
    rows: List[List[int]] = []
    weights: List[int] = []
    b_acc = ciphertext.b % q
    for i, a_i in enumerate(ciphertext.a):
        if a_i == 0:
            continue
        digits = signed_decompose(a_i, ksk.base, ksk.levels, q)
        for j, digit in enumerate(digits):
            if digit == 0:
                continue
            row = ksk.rows[i][j]
            rows.append(row.a)
            weights.append((-digit) % q)
            b_acc = (b_acc - digit * row.b) % q
    if not rows:
        return LWECiphertext(a=[0] * output_dimension, b=b_acc, modulus=q)
    a = active_backend().weighted_sum(rows, weights, q)
    return LWECiphertext(a=a, b=b_acc, modulus=q)


# ---------------------------------------------------------------------------
# Full TFHE context
# ---------------------------------------------------------------------------

class TFHEContext:
    """A complete TFHE instance: LWE + GLWE keys, bsk, ksk, and PBS.

    ``backend`` pins the arithmetic backend for every ring operation rooted
    at this context — key generation and the full PBS pipeline — so an
    end-to-end bootstrap runs entirely on the chosen implementation.
    """

    def __init__(self, params: TFHEParameters, seed: int = 0,
                 backend: "ArithmeticBackend | str | None" = None):
        self.params = params
        self.backend = backend
        self.rng = random.Random(seed ^ 0x7F4E)
        self.lwe = LWEContext(params, seed=seed)
        self.glwe = GLWEContext(params, seed=seed, backend=backend)
        self.ggsw = GGSWContext(params, self.glwe)
        with use_backend(backend):
            self.bootstrapping_key = self._make_bootstrapping_key()
            self.keyswitching_key = self._make_keyswitching_key()

    # -- key generation ------------------------------------------------------
    def _make_bootstrapping_key(self) -> BootstrappingKey:
        rows = [
            self.ggsw.encrypt_scalar(bit)
            for bit in self.lwe.secret.coefficients
        ]
        return BootstrappingKey(ggsw_rows=rows)

    def _make_keyswitching_key(self) -> KeySwitchingKey:
        params = self.params
        q = params.modulus
        base = params.ksk_base
        levels = params.ksk_levels
        factors = gadget_factors(q, base, levels)
        flattened = self.glwe.secret.flattened_lwe_coefficients()
        rows = []
        for coeff in flattened:
            row = [
                self.lwe.encrypt_raw((coeff * factor) % q)
                for factor in factors
            ]
            rows.append(row)
        return KeySwitchingKey(rows=rows, base=base, levels=levels, modulus=q)

    # -- test vectors -----------------------------------------------------------
    def make_test_vector(self, function: Callable[[int], int]) -> GLWECiphertext:
        """Trivial GLWE encryption of the lookup table for ``function``.

        ``function`` maps a message in ``[0, t)`` to a message in ``[0, t)``.
        Only messages in the lower half ``[0, t/2)`` evaluate correctly (the
        standard padding-bit restriction), unless the function satisfies the
        negacyclic condition ``f(m + t/2) = -f(m)``.
        """
        params = self.params
        n = params.polynomial_size
        q = params.modulus
        t = params.plaintext_modulus
        coefficients = []
        for j in range(n):
            message = round(j * t / (2 * n)) % t
            coefficients.append(self.lwe.encode(function(message)))
        table = Polynomial(n, q, coefficients)
        return GLWECiphertext.trivial(table, params.glwe_dimension)

    def identity_test_vector(self) -> GLWECiphertext:
        """Test vector for the identity function (plain noise refresh)."""
        return self.make_test_vector(lambda m: m)

    # -- the PBS pipeline ----------------------------------------------------------
    def programmable_bootstrap(
        self, ciphertext: LWECiphertext, test_vector: GLWECiphertext | None = None
    ) -> LWECiphertext:
        """Full PBS (Algorithm 2): ModSwitch, blind rotation, extract, keyswitch."""
        params = self.params
        with use_backend(self.backend):
            test_vector = test_vector if test_vector is not None else self.identity_test_vector()
            switched = modulus_switch(ciphertext, 2 * params.polynomial_size)
            accumulator = blind_rotate(test_vector, switched, self.bootstrapping_key)
            extracted = sample_extract(accumulator, 0)
            return lwe_keyswitch(extracted, self.keyswitching_key, params.lwe_dimension)

    def bootstrap_function(self, ciphertext: LWECiphertext,
                           function: Callable[[int], int]) -> LWECiphertext:
        """PBS that homomorphically applies ``function`` to the message."""
        return self.programmable_bootstrap(ciphertext, self.make_test_vector(function))

    # -- convenience ----------------------------------------------------------------
    def encrypt(self, message: int) -> LWECiphertext:
        """Encrypt a message in ``[0, plaintext_modulus)`` under the LWE key."""
        return self.lwe.encrypt(message)

    def decrypt(self, ciphertext: LWECiphertext) -> int:
        """Decrypt an LWE ciphertext under whichever key matches its dimension."""
        if ciphertext.dimension == self.params.lwe_dimension:
            return self.lwe.decrypt(ciphertext)
        if ciphertext.dimension == self.params.glwe_lwe_dimension:
            extracted_key = LWESecretKey(
                tuple(self.glwe.secret.flattened_lwe_coefficients())
            )
            return self.lwe.decrypt(ciphertext, secret=extracted_key)
        raise ValueError(f"unexpected LWE dimension {ciphertext.dimension}")

    def phase(self, ciphertext: LWECiphertext) -> int:
        """Centred phase of an LWE ciphertext under the matching key."""
        if ciphertext.dimension == self.params.lwe_dimension:
            return self.lwe.phase(ciphertext)
        extracted_key = LWESecretKey(tuple(self.glwe.secret.flattened_lwe_coefficients()))
        return self.lwe.phase(ciphertext, secret=extracted_key)
