"""Batched programmable bootstrapping: many PBS sharing each NTT dispatch.

The planner groups independent ``pbs``/``gate_bootstrap`` nodes into one
dispatch (``attrs["pbs_group"]``); this module is the execution side.  All
members share the bootstrapping key, so blind rotation iterates the key rows
*once* and, at each CMux, concatenates every member's gadget-decomposed
digit rows into a single ``ntt_forward_batch`` / ``ntt_inverse_batch`` pair
instead of one pair per member — the same stacking the conversion planner
applies to domain conversions, and the batching the paper's hardware gets
for free from its wide NTT units.

The result is bit-identical to running :meth:`TFHEContext.programmable_bootstrap`
per ciphertext: decomposition, MAC reduction, and the inverse transform are
exact integer operations applied row-wise, and members whose ``a_i`` is zero
at an iteration are skipped exactly like the sequential loop skips them.
"""

from __future__ import annotations

from typing import List, Sequence

from ..backend import active_backend, use_backend
from ..polynomial import Polynomial, _ntt_context
from .ggsw import GGSWCiphertext, _ggsw_eval_rows, cmux, gadget_factors
from .glwe import GLWECiphertext
from .lwe import LWECiphertext
from .pbs import (
    KeySwitchingKey, TFHEContext, modulus_switch, sample_extract,
)

__all__ = [
    "sign_test_vector",
    "batched_programmable_bootstrap",
    "batched_lwe_keyswitch",
    "gate_bootstrap",
]


def sign_test_vector(context: TFHEContext, amplitude: int) -> GLWECiphertext:
    """The constant test vector of a sign bootstrap.

    Blind rotation by a phase in ``[0, q/2)`` leaves the constant coefficient
    at ``+amplitude``; a phase in ``[-q/2, 0)`` crosses the negacyclic wrap
    and yields ``-amplitude``.  Adding ``amplitude`` afterwards maps the two
    outcomes to ``{2 * amplitude, 0}`` (see :func:`gate_bootstrap`).
    """
    params = context.params
    n, q = params.polynomial_size, params.modulus
    table = Polynomial(n, q, [amplitude % q] * n)
    return GLWECiphertext.trivial(table, params.glwe_dimension)


def gate_bootstrap(context: TFHEContext, ciphertext: LWECiphertext,
                   amplitude: int) -> LWECiphertext:
    """Sign bootstrap: phase >= 0 -> ``2 * amplitude``, phase < 0 -> ``0``."""
    out = context.programmable_bootstrap(
        ciphertext, sign_test_vector(context, amplitude)
    )
    return out.add_constant(amplitude)


def _batched_external_products(
    ggsw: GGSWCiphertext, glwes: Sequence[GLWECiphertext], context, backend,
) -> List[GLWECiphertext]:
    """External products of one GGSW against many GLWEs, stacked per dispatch.

    Mirrors :func:`~repro.fhe.tfhe.ggsw.external_product` exactly, but the
    forward and inverse NTT batches carry every member's rows at once (the
    MAC reduction stays per-member: each pairs its own digit transforms with
    the shared cached key-row transforms).
    """
    base, levels, k = ggsw.base, ggsw.levels, ggsw.glwe_dimension
    n = glwes[0].ring_degree
    q = glwes[0].modulus
    factors = gadget_factors(q, base, levels)
    digit_rows: List[List[int]] = []
    for glwe in glwes:
        for component in list(glwe.mask) + [glwe.body]:
            digit_rows.extend(
                backend.gadget_decompose(component.coefficients, q, factors)
            )
    fwd = backend.ntt_forward_batch(context, digit_rows)
    key_eval = _ggsw_eval_rows(ggsw, context, backend)
    per_member = (k + 1) * levels
    groups = [[key_eval[r][m] for r in range(per_member)] for m in range(k + 1)]
    out_rows: List[List[int]] = []
    for g in range(len(glwes)):
        member_fwd = fwd[g * per_member:(g + 1) * per_member]
        out_rows.extend(backend.pointwise_mac_many(member_fwd, groups, q))
    inv = backend.ntt_inverse_batch(context, out_rows)
    results = []
    for g in range(len(glwes)):
        polys = [
            Polynomial._from_reduced(n, q, row)
            for row in inv[g * (k + 1):(g + 1) * (k + 1)]
        ]
        results.append(GLWECiphertext(mask=polys[:k], body=polys[k]))
    return results


def _ksk_flat_rows(ksk: KeySwitchingKey) -> List[List[int]]:
    """Flatten ``ksk`` into one ``(levels * n_in) x (n_out + 1)`` matrix.

    Row ``j * n_in + i`` is ``ksk.rows[i][j].a + [ksk.rows[i][j].b]`` —
    level-major to match :meth:`Backend.gadget_decompose` output order,
    with the body riding along as the final column.  Cached on the key:
    every PBS wave under one key reuses the same matrix.
    """
    matrix = getattr(ksk, "_flat_rows", None)
    if matrix is None:
        matrix = [
            list(ksk.rows[i][j].a) + [ksk.rows[i][j].b]
            for j in range(ksk.levels)
            for i in range(ksk.input_dimension)
        ]
        ksk._flat_rows = matrix
    return matrix


def batched_lwe_keyswitch(
    ciphertexts: Sequence[LWECiphertext],
    ksk: KeySwitchingKey,
    output_dimension: int,
) -> List[LWECiphertext]:
    """Switch many LWE ciphertexts to ``ksk``'s key in one shared dispatch.

    Bit-identical to calling :func:`~repro.fhe.tfhe.pbs.lwe_keyswitch` per
    ciphertext: the accumulation is the same exact modular sum
    ``(0, .., 0, b') - sum_ij Decomp(a'_i)_j * ksk[i][j]``, evaluated as a
    single ``digits @ ksk`` matrix product over every member at once
    instead of one per-row ``weighted_sum`` walk per member.  Zero digits
    contribute nothing either way, so skipping the sparsity filter changes
    no output bit.
    """
    if not ciphertexts:
        return []
    q = ciphertexts[0].modulus
    for ciphertext in ciphertexts:
        if len(ciphertext.a) != ksk.input_dimension:
            raise ValueError(
                f"keyswitch input has dimension {len(ciphertext.a)}, "
                f"key expects {ksk.input_dimension}"
            )
    backend = active_backend()
    factors = gadget_factors(q, ksk.base, ksk.levels)
    digit_rows: List[List[int]] = []
    for ciphertext in ciphertexts:
        levels = backend.gadget_decompose(ciphertext.a, q, factors)
        negated: List[int] = []
        for level_row in levels:
            negated.extend((q - digit) % q for digit in level_row)
        digit_rows.append(negated)
    sums = backend.mat_mulmod(digit_rows, _ksk_flat_rows(ksk), q)
    return [
        LWECiphertext(
            a=[value % q for value in acc[:output_dimension]],
            b=(ciphertext.b + acc[output_dimension]) % q,
            modulus=q,
        )
        for ciphertext, acc in zip(ciphertexts, sums)
    ]


def batched_programmable_bootstrap(
    context: TFHEContext,
    ciphertexts: Sequence[LWECiphertext],
    test_vectors: "Sequence[GLWECiphertext] | None" = None,
) -> List[LWECiphertext]:
    """Run PBS on every ciphertext, sharing blind-rotation NTT dispatches.

    ``test_vectors`` may differ per member (a LUT per ``pbs`` node, a sign
    table per ``gate_bootstrap``); defaults to the identity table.  Returns
    outputs in input order, each bit-identical to the sequential PBS.
    """
    params = context.params
    with use_backend(context.backend):
        if test_vectors is None:
            identity = context.identity_test_vector()
            test_vectors = [identity] * len(ciphertexts)
        if len(test_vectors) != len(ciphertexts):
            raise ValueError("need one test vector per ciphertext")
        n, q = params.polynomial_size, params.modulus
        switched = [modulus_switch(ct, 2 * n) for ct in ciphertexts]
        accumulators = [
            tv.multiply_by_monomial(-sw.b)
            for tv, sw in zip(test_vectors, switched)
        ]
        ntt = _ntt_context(n, q)
        backend = active_backend()
        for i, ggsw in enumerate(context.bootstrapping_key.ggsw_rows):
            active = [
                m for m in range(len(accumulators)) if switched[m].a[i] != 0
            ]
            if not active:
                continue
            if ntt is None or len(active) == 1:
                # Non-NTT ring (or nothing to stack): plain per-member CMux.
                for m in active:
                    rotated = accumulators[m].multiply_by_monomial(switched[m].a[i])
                    accumulators[m] = cmux(ggsw, rotated, accumulators[m])
                continue
            differences = [
                accumulators[m].multiply_by_monomial(switched[m].a[i])
                - accumulators[m]
                for m in active
            ]
            products = _batched_external_products(ggsw, differences, ntt, backend)
            for m, product in zip(active, products):
                accumulators[m] = accumulators[m] + product
        return batched_lwe_keyswitch(
            [sample_extract(acc, 0) for acc in accumulators],
            context.keyswitching_key, params.lwe_dimension,
        )
