"""GLWE ciphertexts: the ring ciphertext type used inside TFHE bootstrapping.

A GLWE ciphertext under a secret ``(S_1, ..., S_k)`` of ring polynomials is

    (A_1, ..., A_k, B)   with   B = sum_i A_i * S_i + M + E,

all in ``R_q = Z_q[X]/(X^N + 1)``.  For ``k = 1`` this is an RLWE ciphertext;
for ``N = 1`` it degenerates to LWE.  The *phase* is ``B - sum_i A_i * S_i``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..backend import ArithmeticBackend, active_backend, use_backend
from ..params import TFHEParameters
from ..polynomial import Polynomial, monomial_spec, sample_gaussian, sample_uniform

__all__ = ["GLWESecretKey", "GLWECiphertext", "GLWEContext"]


@dataclass(frozen=True)
class GLWESecretKey:
    """A GLWE secret: ``k`` binary polynomials of degree ``N``."""

    polynomials: Tuple[Polynomial, ...]

    @property
    def glwe_dimension(self) -> int:
        return len(self.polynomials)

    @property
    def ring_degree(self) -> int:
        return self.polynomials[0].ring_degree

    def flattened_lwe_coefficients(self) -> List[int]:
        """The secret viewed as a length-(k*N) LWE key (for SampleExtract)."""
        coefficients: List[int] = []
        for poly in self.polynomials:
            coefficients.extend(poly.centered_coefficients())
        return coefficients


@dataclass
class GLWECiphertext:
    """A GLWE ciphertext ``(A_1, ..., A_k, B)``."""

    mask: List[Polynomial]
    body: Polynomial

    @property
    def glwe_dimension(self) -> int:
        return len(self.mask)

    @property
    def ring_degree(self) -> int:
        return self.body.ring_degree

    @property
    def modulus(self) -> int:
        return self.body.modulus

    # -- linear homomorphisms -------------------------------------------------
    def __add__(self, other: "GLWECiphertext") -> "GLWECiphertext":
        self._check(other)
        return GLWECiphertext(
            mask=[a + b for a, b in zip(self.mask, other.mask)],
            body=self.body + other.body,
        )

    def __sub__(self, other: "GLWECiphertext") -> "GLWECiphertext":
        self._check(other)
        return GLWECiphertext(
            mask=[a - b for a, b in zip(self.mask, other.mask)],
            body=self.body - other.body,
        )

    def __neg__(self) -> "GLWECiphertext":
        return GLWECiphertext(mask=[-a for a in self.mask], body=-self.body)

    def multiply_by_monomial(self, degree: int) -> "GLWECiphertext":
        """Rotate: multiply every component by ``X^degree`` (negacyclic).

        All ``k + 1`` components ride one batched signed-permutation
        dispatch — this runs twice per blind-rotation iteration.
        """
        n = self.ring_degree
        q = self.modulus
        backend = active_backend()
        spec = monomial_spec(n, degree % (2 * n))
        rows = [poly.coefficients for poly in self.mask] + [self.body.coefficients]
        out = backend.unpack_limbs(
            backend.limbs_signed_permute(rows, (q,) * len(rows), spec)
        )
        polys = [Polynomial._from_reduced(n, q, row) for row in out]
        return GLWECiphertext(mask=polys[:-1], body=polys[-1])

    def multiply_by_polynomial(self, poly: Polynomial) -> "GLWECiphertext":
        """Multiply every component by a public plaintext polynomial."""
        return GLWECiphertext(
            mask=[a * poly for a in self.mask], body=self.body * poly
        )

    def _check(self, other: "GLWECiphertext") -> None:
        if (
            self.glwe_dimension != other.glwe_dimension
            or self.ring_degree != other.ring_degree
            or self.modulus != other.modulus
        ):
            raise ValueError("GLWE ciphertexts are incompatible")

    @classmethod
    def zero(cls, glwe_dimension: int, ring_degree: int, modulus: int) -> "GLWECiphertext":
        """The trivial encryption of zero (all components zero)."""
        return cls(
            mask=[Polynomial.zero(ring_degree, modulus) for _ in range(glwe_dimension)],
            body=Polynomial.zero(ring_degree, modulus),
        )

    @classmethod
    def trivial(cls, message: Polynomial, glwe_dimension: int) -> "GLWECiphertext":
        """A noiseless public encryption (zero mask, body = message)."""
        return cls(
            mask=[Polynomial.zero(message.ring_degree, message.modulus) for _ in range(glwe_dimension)],
            body=message,
        )


class GLWEContext:
    """Encrypt/decrypt polynomial messages under a TFHE parameter set.

    ``backend`` pins the arithmetic backend used by this context's ring
    operations (encryption mask products and phase computation).
    """

    def __init__(self, params: TFHEParameters, seed: int = 0,
                 backend: "ArithmeticBackend | str | None" = None):
        self.params = params
        self.backend = backend
        self.rng = random.Random(seed ^ 0x61E3)
        n = params.polynomial_size
        q = params.modulus
        self.secret = GLWESecretKey(
            tuple(
                Polynomial(n, q, [self.rng.randrange(2) for _ in range(n)])
                for _ in range(params.glwe_dimension)
            )
        )

    def encrypt(self, message: Polynomial, noise_stddev: float | None = None) -> GLWECiphertext:
        """Encrypt a plaintext polynomial (already encoded/scaled by the caller)."""
        params = self.params
        n = params.polynomial_size
        q = params.modulus
        stddev = params.noise_stddev if noise_stddev is None else noise_stddev
        mask = [sample_uniform(n, q, self.rng) for _ in range(params.glwe_dimension)]
        if stddev > 0:
            error = sample_gaussian(n, q, self.rng, stddev)
        else:
            error = Polynomial.zero(n, q)
        with use_backend(self.backend):
            body = error + message
            for a, s in zip(mask, self.secret.polynomials):
                body = body + a * s
        return GLWECiphertext(mask=mask, body=body)

    def phase(self, ciphertext: GLWECiphertext) -> Polynomial:
        """``B - sum_i A_i * S_i``: the encoded message plus noise."""
        with use_backend(self.backend):
            result = ciphertext.body
            for a, s in zip(ciphertext.mask, self.secret.polynomials):
                result = result - a * s
        return result
