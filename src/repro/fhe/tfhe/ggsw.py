"""GGSW ciphertexts, gadget decomposition, and the External Product.

A GGSW ciphertext of a (small) message ``m`` is a matrix of
``(k + 1) * l_b`` GLWE ciphertexts: row ``(i, j)`` encrypts
``-m * S_i * g_j`` for the mask rows (``i < k``) and ``m * g_j`` for the body
rows (``i = k``), where ``g_j = q / B^(j+1)`` are the gadget factors.

The **External Product** (the core kernel of TFHE blind rotation, Algorithm 2
lines 7-10) multiplies a GLWE ciphertext by a GGSW ciphertext: decompose each
GLWE component into ``l_b`` digits, then multiply-accumulate the digits
against the GGSW rows.  In hardware this is ``(k+1) * l_b`` NTTs plus a MAC
reduction — exactly the kernel split the Trinity CU balances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..params import TFHEParameters
from ..polynomial import Polynomial
from .glwe import GLWECiphertext, GLWEContext

__all__ = ["gadget_factors", "GGSWCiphertext", "GGSWContext", "external_product", "cmux"]


def gadget_factors(modulus: int, base: int, levels: int) -> List[int]:
    """The gadget vector ``g_j = round(q / B^(j+1))`` for ``j = 0..levels-1``."""
    return [modulus // (base ** (j + 1)) for j in range(levels)]


@dataclass
class GGSWCiphertext:
    """A GGSW ciphertext: ``(k+1) * l_b`` GLWE rows (grouped per component)."""

    rows: List[List[GLWECiphertext]]   # rows[i][j]: component i, level j
    base: int
    levels: int

    @property
    def glwe_dimension(self) -> int:
        return len(self.rows) - 1

    @property
    def ring_degree(self) -> int:
        return self.rows[0][0].ring_degree

    @property
    def modulus(self) -> int:
        return self.rows[0][0].modulus


class GGSWContext:
    """Generates GGSW encryptions under a GLWE secret (used for bsk rows)."""

    def __init__(self, params: TFHEParameters, glwe_context: GLWEContext):
        self.params = params
        self.glwe_context = glwe_context

    def encrypt_scalar(self, message: int, noise_stddev: float | None = None) -> GGSWCiphertext:
        """GGSW encryption of a small scalar (typically a secret key bit)."""
        return self.encrypt_polynomial(
            Polynomial.monomial(
                self.params.polynomial_size, self.params.modulus, 0, message
            ),
            noise_stddev=noise_stddev,
        )

    def encrypt_polynomial(self, message: Polynomial,
                           noise_stddev: float | None = None) -> GGSWCiphertext:
        """GGSW encryption of a small polynomial message."""
        params = self.params
        q = params.modulus
        k = params.glwe_dimension
        base = params.bsk_base
        levels = params.bsk_levels
        factors = gadget_factors(q, base, levels)
        secret_polys = self.glwe_context.secret.polynomials
        rows: List[List[GLWECiphertext]] = []
        for i in range(k + 1):
            component_rows = []
            for j in range(levels):
                zero_enc = self.glwe_context.encrypt(
                    Polynomial.zero(params.polynomial_size, q), noise_stddev=noise_stddev
                )
                if i < k:
                    # Mask row: add m * g_j to mask component i, so that the
                    # row's phase is -m * S_i * g_j (phase = B - sum A_u S_u).
                    payload = message.scalar_multiply(factors[j])
                    new_mask = list(zero_enc.mask)
                    new_mask[i] = new_mask[i] + payload
                    row = GLWECiphertext(mask=new_mask, body=zero_enc.body)
                else:
                    # Body row: add m * g_j to the body (phase = m * g_j).
                    payload = message.scalar_multiply(factors[j])
                    row = GLWECiphertext(mask=list(zero_enc.mask), body=zero_enc.body + payload)
                component_rows.append(row)
            rows.append(component_rows)
        return GGSWCiphertext(rows=rows, base=base, levels=levels)


def external_product(ggsw: GGSWCiphertext, glwe: GLWECiphertext) -> GLWECiphertext:
    """GGSW ⊡ GLWE: returns a GLWE encryption of ``m_ggsw * m_glwe``.

    The decomposition-multiply-accumulate structure below is the exact
    workload the hardware model charges as ``(k+1)*l_b`` forward NTTs, a MAC
    reduction over the GGSW rows, and ``k+1`` inverse NTTs.
    """
    if ggsw.ring_degree != glwe.ring_degree or ggsw.modulus != glwe.modulus:
        raise ValueError("GGSW and GLWE ciphertexts are incompatible")
    base = ggsw.base
    levels = ggsw.levels
    k = ggsw.glwe_dimension
    components = list(glwe.mask) + [glwe.body]
    accumulator = GLWECiphertext.zero(k, glwe.ring_degree, glwe.modulus)
    for i in range(k + 1):
        digits = components[i].decompose(base, levels)
        for j in range(levels):
            row = ggsw.rows[i][j]
            accumulator = accumulator + row.multiply_by_polynomial(digits[j])
    return accumulator


def cmux(selector: GGSWCiphertext, when_true: GLWECiphertext,
         when_false: GLWECiphertext) -> GLWECiphertext:
    """Homomorphic multiplexer: ``selector ? when_true : when_false``.

    ``cmux(b, c1, c0) = c0 + b ⊡ (c1 - c0)`` — one external product.  This is
    the per-iteration step of blind rotation.
    """
    return when_false + external_product(selector, when_true - when_false)
