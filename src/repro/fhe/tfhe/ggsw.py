"""GGSW ciphertexts, gadget decomposition, and the External Product.

A GGSW ciphertext of a (small) message ``m`` is a matrix of
``(k + 1) * l_b`` GLWE ciphertexts: row ``(i, j)`` encrypts
``-m * S_i * g_j`` for the mask rows (``i < k``) and ``m * g_j`` for the body
rows (``i = k``), where ``g_j = q / B^(j+1)`` are the gadget factors.

The **External Product** (the core kernel of TFHE blind rotation, Algorithm 2
lines 7-10) multiplies a GLWE ciphertext by a GGSW ciphertext: decompose each
GLWE component into ``l_b`` digits, then multiply-accumulate the digits
against the GGSW rows.  In hardware this is ``(k+1) * l_b`` NTTs plus a MAC
reduction — exactly the kernel split the Trinity CU balances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..backend import active_backend
from ..params import TFHEParameters
from ..polynomial import Polynomial, _ntt_context
from .glwe import GLWECiphertext, GLWEContext

__all__ = ["gadget_factors", "GGSWCiphertext", "GGSWContext", "external_product", "cmux"]


def gadget_factors(modulus: int, base: int, levels: int) -> List[int]:
    """The gadget vector ``g_j = round(q / B^(j+1))`` for ``j = 0..levels-1``."""
    return [modulus // (base ** (j + 1)) for j in range(levels)]


@dataclass
class GGSWCiphertext:
    """A GGSW ciphertext: ``(k+1) * l_b`` GLWE rows (grouped per component)."""

    rows: List[List[GLWECiphertext]]   # rows[i][j]: component i, level j
    base: int
    levels: int
    # Evaluation-domain (forward-NTT) images of the key rows, computed once
    # per ring and reused by every external product against this ciphertext.
    # The transforms are exact integers, so the cache is backend-independent.
    _eval_cache: Dict[tuple, list] = field(default_factory=dict, repr=False, compare=False)

    @property
    def glwe_dimension(self) -> int:
        return len(self.rows) - 1

    @property
    def ring_degree(self) -> int:
        return self.rows[0][0].ring_degree

    @property
    def modulus(self) -> int:
        return self.rows[0][0].modulus


class GGSWContext:
    """Generates GGSW encryptions under a GLWE secret (used for bsk rows)."""

    def __init__(self, params: TFHEParameters, glwe_context: GLWEContext):
        self.params = params
        self.glwe_context = glwe_context

    def encrypt_scalar(self, message: int, noise_stddev: float | None = None) -> GGSWCiphertext:
        """GGSW encryption of a small scalar (typically a secret key bit)."""
        return self.encrypt_polynomial(
            Polynomial.monomial(
                self.params.polynomial_size, self.params.modulus, 0, message
            ),
            noise_stddev=noise_stddev,
        )

    def encrypt_polynomial(self, message: Polynomial,
                           noise_stddev: float | None = None) -> GGSWCiphertext:
        """GGSW encryption of a small polynomial message."""
        params = self.params
        q = params.modulus
        k = params.glwe_dimension
        base = params.bsk_base
        levels = params.bsk_levels
        factors = gadget_factors(q, base, levels)
        secret_polys = self.glwe_context.secret.polynomials
        rows: List[List[GLWECiphertext]] = []
        for i in range(k + 1):
            component_rows = []
            for j in range(levels):
                zero_enc = self.glwe_context.encrypt(
                    Polynomial.zero(params.polynomial_size, q), noise_stddev=noise_stddev
                )
                if i < k:
                    # Mask row: add m * g_j to mask component i, so that the
                    # row's phase is -m * S_i * g_j (phase = B - sum A_u S_u).
                    payload = message.scalar_multiply(factors[j])
                    new_mask = list(zero_enc.mask)
                    new_mask[i] = new_mask[i] + payload
                    row = GLWECiphertext(mask=new_mask, body=zero_enc.body)
                else:
                    # Body row: add m * g_j to the body (phase = m * g_j).
                    payload = message.scalar_multiply(factors[j])
                    row = GLWECiphertext(mask=list(zero_enc.mask), body=zero_enc.body + payload)
                component_rows.append(row)
            rows.append(component_rows)
        return GGSWCiphertext(rows=rows, base=base, levels=levels)


def _ggsw_eval_rows(ggsw: GGSWCiphertext, context, backend) -> list:
    """Forward-NTT images of every GGSW row component, cached on the ciphertext.

    Returns a flat list indexed ``i * levels + j`` (matching the digit order
    of :func:`external_product`), each entry holding the ``k + 1`` component
    rows of GLWE row ``(i, j)`` in evaluation representation.
    """
    key = (context.ring_degree, context.modulus)
    cached = ggsw._eval_cache.get(key)
    if cached is None:
        flat: List[List[int]] = []
        for component_rows in ggsw.rows:
            for row in component_rows:
                for poly in list(row.mask) + [row.body]:
                    flat.append(poly.coefficients)
        fwd = backend.ntt_forward_batch(context, flat)
        width = ggsw.glwe_dimension + 1
        cached = [fwd[r * width:(r + 1) * width] for r in range(len(fwd) // width)]
        ggsw._eval_cache[key] = cached
    return cached


def external_product(ggsw: GGSWCiphertext, glwe: GLWECiphertext) -> GLWECiphertext:
    """GGSW ⊡ GLWE: returns a GLWE encryption of ``m_ggsw * m_glwe``.

    Runs exactly the workload the hardware model charges: ``(k+1)*l_b``
    forward NTTs of the decomposition digits (one batched dispatch), a MAC
    reduction over the GGSW rows in the evaluation domain (against the
    cached key-row transforms), and ``k+1`` inverse NTTs (one batched
    dispatch).  Summing in the evaluation domain before the single inverse
    transform is exact, so the result is bit-identical to the per-row
    convolution formulation.
    """
    if ggsw.ring_degree != glwe.ring_degree or ggsw.modulus != glwe.modulus:
        raise ValueError("GGSW and GLWE ciphertexts are incompatible")
    base = ggsw.base
    levels = ggsw.levels
    k = ggsw.glwe_dimension
    n = glwe.ring_degree
    q = glwe.modulus
    components = list(glwe.mask) + [glwe.body]
    context = _ntt_context(n, q)
    if context is None:
        # Non-NTT-friendly ring: fall back to per-row polynomial products.
        accumulator = GLWECiphertext.zero(k, n, q)
        for i in range(k + 1):
            digits = components[i].decompose(base, levels)
            for j in range(levels):
                row = ggsw.rows[i][j]
                accumulator = accumulator + row.multiply_by_polynomial(digits[j])
        return accumulator
    backend = active_backend()
    factors = gadget_factors(q, base, levels)
    digit_rows: List[List[int]] = []
    for component in components:
        digit_rows.extend(backend.gadget_decompose(component.coefficients, q, factors))
    fwd = backend.ntt_forward_batch(context, digit_rows)
    key_eval = _ggsw_eval_rows(ggsw, context, backend)
    groups = [
        [key_eval[r][m] for r in range(len(fwd))] for m in range(k + 1)
    ]
    out_rows = backend.pointwise_mac_many(fwd, groups, q)
    inv = backend.ntt_inverse_batch(context, out_rows)
    polys = [Polynomial._from_reduced(n, q, row) for row in inv]
    return GLWECiphertext(mask=polys[:k], body=polys[k])


def cmux(selector: GGSWCiphertext, when_true: GLWECiphertext,
         when_false: GLWECiphertext) -> GLWECiphertext:
    """Homomorphic multiplexer: ``selector ? when_true : when_false``.

    ``cmux(b, c1, c0) = c0 + b ⊡ (c1 - c0)`` — one external product.  This is
    the per-iteration step of blind rotation.
    """
    return when_false + external_product(selector, when_true - when_false)
