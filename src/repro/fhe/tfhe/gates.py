"""Homomorphic boolean gates via gate bootstrapping (CGGI).

Bits are encoded on the torus as ``+q/8`` (True) and ``-q/8`` (False).  Every
binary gate is one affine combination of the input ciphertexts followed by a
single gate bootstrap whose test vector maps a positive phase to ``+q/8`` and
a negative phase to ``-q/8``.  NOT is free (negation).

These gates are what the paper's TFHE NN-x benchmark and the HE3DB filter
stage are ultimately built from; the gate evaluator also powers the
``examples/hybrid_database.py`` example.
"""

from __future__ import annotations

from typing import Iterable, List

from ..polynomial import Polynomial
from .glwe import GLWECiphertext
from .lwe import LWECiphertext
from .pbs import TFHEContext, blind_rotate, lwe_keyswitch, modulus_switch, sample_extract

__all__ = ["TFHEGateEvaluator"]


class TFHEGateEvaluator:
    """Encrypt bits and evaluate boolean circuits with gate bootstrapping."""

    def __init__(self, context: TFHEContext):
        self.context = context
        self.params = context.params
        q = self.params.modulus
        self._true_encoding = q // 8
        self._false_encoding = (-(q // 8)) % q
        self._sign_test_vector = self._make_sign_test_vector()

    # -- encoding ----------------------------------------------------------
    def encrypt(self, bit: bool) -> LWECiphertext:
        """Encrypt one boolean under the LWE key."""
        encoded = self._true_encoding if bit else self._false_encoding
        return self.context.lwe.encrypt_raw(encoded)

    def decrypt(self, ciphertext: LWECiphertext) -> bool:
        """Decrypt a boolean: the sign of the phase is the bit."""
        return self.context.phase(ciphertext) > 0

    def trivial(self, bit: bool) -> LWECiphertext:
        """A noiseless public constant."""
        encoded = self._true_encoding if bit else self._false_encoding
        return self.context.lwe.trivial(encoded)

    # -- gate bootstrap ---------------------------------------------------------
    def _make_sign_test_vector(self) -> GLWECiphertext:
        params = self.params
        n = params.polynomial_size
        q = params.modulus
        table = Polynomial(n, q, [q // 8] * n)
        return GLWECiphertext.trivial(table, params.glwe_dimension)

    def bootstrap_sign(self, ciphertext: LWECiphertext) -> LWECiphertext:
        """Map any ciphertext to a fresh encryption of ``sign(phase)`` (+-q/8)."""
        params = self.params
        switched = modulus_switch(ciphertext, 2 * params.polynomial_size)
        accumulator = blind_rotate(
            self._sign_test_vector, switched, self.context.bootstrapping_key
        )
        extracted = sample_extract(accumulator, 0)
        return lwe_keyswitch(
            extracted, self.context.keyswitching_key, params.lwe_dimension
        )

    # -- gates -----------------------------------------------------------------
    def not_(self, a: LWECiphertext) -> LWECiphertext:
        """NOT is ciphertext negation: no bootstrap required."""
        return -a

    def nand(self, a: LWECiphertext, b: LWECiphertext) -> LWECiphertext:
        """NAND: bootstrap(q/8 - a - b)."""
        combined = self.context.lwe.trivial(self.params.modulus // 8) - a - b
        return self.bootstrap_sign(combined)

    def and_(self, a: LWECiphertext, b: LWECiphertext) -> LWECiphertext:
        """AND: bootstrap(-q/8 + a + b)."""
        combined = self.context.lwe.trivial((-(self.params.modulus // 8)) % self.params.modulus) + a + b
        return self.bootstrap_sign(combined)

    def or_(self, a: LWECiphertext, b: LWECiphertext) -> LWECiphertext:
        """OR: bootstrap(q/8 + a + b)."""
        combined = self.context.lwe.trivial(self.params.modulus // 8) + a + b
        return self.bootstrap_sign(combined)

    def nor(self, a: LWECiphertext, b: LWECiphertext) -> LWECiphertext:
        """NOR: NOT(OR) computed in a single bootstrap."""
        combined = self.context.lwe.trivial(self.params.modulus // 8) + a + b
        return -self.bootstrap_sign(combined)

    def xor(self, a: LWECiphertext, b: LWECiphertext) -> LWECiphertext:
        """XOR: bootstrap(q/4 + 2*(a + b))."""
        combined = self.context.lwe.trivial(self.params.modulus // 4) + (a + b).scalar_multiply(2)
        return self.bootstrap_sign(combined)

    def xnor(self, a: LWECiphertext, b: LWECiphertext) -> LWECiphertext:
        """XNOR: NOT(XOR) in a single bootstrap."""
        combined = self.context.lwe.trivial(self.params.modulus // 4) + (a + b).scalar_multiply(2)
        return -self.bootstrap_sign(combined)

    def mux(self, selector: LWECiphertext, when_true: LWECiphertext,
            when_false: LWECiphertext) -> LWECiphertext:
        """MUX(s, a, b) = (s AND a) OR (NOT s AND b): three bootstraps."""
        first = self.and_(selector, when_true)
        second = self.and_(self.not_(selector), when_false)
        return self.or_(first, second)

    # -- small circuits (used by examples / integration tests) ---------------------
    def equality(self, a_bits: Iterable[LWECiphertext], b_bits: Iterable[LWECiphertext]) -> LWECiphertext:
        """Bitwise equality of two encrypted bit-vectors."""
        result: LWECiphertext | None = None
        for a_bit, b_bit in zip(a_bits, b_bits):
            bit_equal = self.xnor(a_bit, b_bit)
            result = bit_equal if result is None else self.and_(result, bit_equal)
        if result is None:
            return self.trivial(True)
        return result

    def less_than(self, a_bits: List[LWECiphertext], b_bits: List[LWECiphertext]) -> LWECiphertext:
        """Unsigned comparison ``a < b`` over little-endian encrypted bit-vectors."""
        if len(a_bits) != len(b_bits):
            raise ValueError("bit vectors must have the same length")
        result = self.trivial(False)
        for a_bit, b_bit in zip(a_bits, b_bits):  # little-endian scan
            bit_equal = self.xnor(a_bit, b_bit)
            bit_less = self.and_(self.not_(a_bit), b_bit)
            result = self.or_(bit_less, self.and_(bit_equal, result))
        return result
