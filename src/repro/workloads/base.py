"""Workload value type shared by the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..kernels.kernel import KernelTrace

__all__ = ["Workload"]


@dataclass
class Workload:
    """A named application expanded into kernel traces.

    ``traces`` is the ordered list of operation-level traces; hardware models
    either run them as one sequential workload (latency benchmarks) or use
    the steady-state throughput of a single representative trace (throughput
    benchmarks such as PBS).  ``parallel_operations`` tells throughput-style
    evaluations how many independent instances of the trace exist (e.g. the
    number of neurons per NN layer, or the number of table entries filtered
    by HE3DB).
    """

    name: str
    scheme: str
    traces: List[KernelTrace]
    parallel_operations: int = 1
    metadata: Dict[str, object] = field(default_factory=dict)

    def combined_trace(self) -> KernelTrace:
        """All traces concatenated into one (for latency-style evaluation)."""
        return KernelTrace.concatenate(self.name, self.traces, scheme=self.scheme)

    @property
    def num_operations(self) -> int:
        return len(self.traces)
