"""CKKS benchmark workloads (Section V-B1): Bootstrapping, HELR, ResNet-20.

Each generator expands the application into the Table II operation sequence
(level-annotated) using the bootstrapping pipeline model of
:mod:`repro.fhe.ckks.bootstrap`, then lowers every operation to kernels with
:func:`repro.kernels.ckks_flows.ckks_operation_flow`.  The operation mixes
follow the published structure of each benchmark:

* **Packed Bootstrapping** — one fully-packed CKKS bootstrap (level
  consumption 15, as in the paper's benchmark description);
* **HELR** — one iteration of encrypted logistic-regression training with a
  batch of 1024 samples: the inner products, sigmoid polynomial, and weight
  update are keyswitch-heavy (HMult / HRotate dominated), which is exactly
  why the paper sees its largest CKKS gain (1.85x) here;
* **ResNet-20** — CIFAR-10 inference with multiplexed-parallel convolutions:
  convolution layers are PMult/HRotate dominated with periodic
  bootstrapping, giving a more element-wise-bound mix.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..fhe.ckks.bootstrap import BootstrapPlan, HomomorphicOp, linear_transform_plan
from ..fhe.params import CKKSParameters, CKKS_DEFAULT
from ..kernels.ckks_flows import ckks_operation_flow
from ..kernels.kernel import KernelTrace
from .base import Workload

__all__ = [
    "operations_to_traces",
    "program_workload",
    "packed_bootstrapping_workload",
    "helr_workload",
    "resnet20_workload",
    "CKKS_WORKLOADS",
]


def program_workload(program, params: "CKKSParameters | None" = None,
                     name: str = "HEProgram") -> Workload:
    """Lower a traced :class:`~repro.fhe.program.HEProgram` into a workload.

    The bridge between the two worlds the program API serves: the same DAG
    that executes functionally lowers — via
    :func:`repro.fhe.program.lowering.lower_to_operations` — to the
    level-annotated ``HomomorphicOp`` stream, whose kernel traces feed the
    scheduler and the Trinity simulator like any paper benchmark.  Pass the
    *planned* program to charge exactly what the optimized execution runs.
    """
    from ..fhe.program.lowering import lower_to_operations, operation_histogram
    from ..fhe.program.passes import PlannedProgram

    ir = program.program if isinstance(program, PlannedProgram) else program
    params = ir.params if params is None else params
    operations = lower_to_operations(program)
    return Workload(
        name=name,
        scheme="ckks",
        traces=operations_to_traces(operations, params),
        metadata={
            "operation_histogram": operation_histogram(program),
            "params": params.name,
            "nodes": len(ir),
        },
    )


def operations_to_traces(operations: List[HomomorphicOp],
                         params: CKKSParameters) -> List[KernelTrace]:
    """Lower a level-annotated operation list into kernel traces."""
    traces: List[KernelTrace] = []
    for op in operations:
        trace = ckks_operation_flow(op.name, params, op.level)
        if op.count > 1:
            repeated = KernelTrace(name=f"{trace.name}x{op.count}", scheme="ckks",
                                   metadata=dict(trace.metadata))
            repeated.extend(trace, repeat=op.count)
            trace = repeated
        traces.append(trace)
    return traces


# ---------------------------------------------------------------------------
# Packed bootstrapping
# ---------------------------------------------------------------------------

def packed_bootstrapping_workload(params: CKKSParameters = CKKS_DEFAULT,
                                  levels_consumed: int = 15) -> Workload:
    """One fully-packed CKKS bootstrapping (the paper's Bootstrap benchmark)."""
    plan = BootstrapPlan(
        ring_degree=params.ring_degree,
        start_level=params.max_level,
        levels_consumed=levels_consumed,
    )
    operations = plan.operations()
    traces = operations_to_traces(operations, params)
    return Workload(
        name="Packed Bootstrapping",
        scheme="ckks",
        traces=traces,
        metadata={
            "levels_consumed": levels_consumed,
            "operation_histogram": plan.operation_histogram(),
            "params": params.name,
        },
    )


# ---------------------------------------------------------------------------
# HELR: logistic regression training
# ---------------------------------------------------------------------------

def helr_iteration_operations(params: CKKSParameters, features: int = 256,
                              start_level: int | None = None) -> List[HomomorphicOp]:
    """One HELR training iteration (batch packed into the slots).

    Structure per iteration (Han et al. logistic regression on HE):

    1. inner products <x_i, w>: one HMult plus log2(features) rotate-and-add
       reductions,
    2. degree-3 sigmoid approximation: two HMult levels plus PMults,
    3. gradient aggregation over the batch: log2(batch-block) rotations,
    4. weight update: PMult by the learning rate and an addition.
    """
    level = params.max_level if start_level is None else start_level
    rotations_per_reduction = int(math.log2(features))
    ops: List[HomomorphicOp] = []
    # 1. batched inner product.
    ops.append(HomomorphicOp("HMult", level, 1))
    ops.append(HomomorphicOp("Rescale", level, 1))
    level -= 1
    ops.append(HomomorphicOp("HRotate", level, rotations_per_reduction))
    ops.append(HomomorphicOp("HAdd", level, rotations_per_reduction))
    # 2. sigmoid(x) ~ a0 + a1*x + a3*x^3: two multiplicative levels.
    for _ in range(2):
        ops.append(HomomorphicOp("HMult", level, 1))
        ops.append(HomomorphicOp("PMult", level, 1))
        ops.append(HomomorphicOp("HAdd", level, 2))
        ops.append(HomomorphicOp("Rescale", level, 1))
        level -= 1
    # 3. gradient aggregation across the batch block.
    ops.append(HomomorphicOp("HMult", level, 1))
    ops.append(HomomorphicOp("Rescale", level, 1))
    level -= 1
    ops.append(HomomorphicOp("HRotate", level, rotations_per_reduction))
    ops.append(HomomorphicOp("HAdd", level, rotations_per_reduction))
    # 4. weight update.
    ops.append(HomomorphicOp("PMult", level, 1))
    ops.append(HomomorphicOp("HAdd", level, 1))
    ops.append(HomomorphicOp("Rescale", level, 1))
    return ops


def helr_workload(params: CKKSParameters = CKKS_DEFAULT, batch: int = 1024,
                  iterations: int = 1, features: int = 256) -> Workload:
    """HELR logistic-regression training (batch 1024, per-iteration latency).

    The paper reports the per-iteration latency (Table VI); pass
    ``iterations=32`` for the full training run of the benchmark description.
    """
    operations: List[HomomorphicOp] = []
    for _ in range(iterations):
        operations.extend(helr_iteration_operations(params, features=features))
    traces = operations_to_traces(operations, params)
    return Workload(
        name="HELR",
        scheme="ckks",
        traces=traces,
        metadata={"batch": batch, "iterations": iterations, "features": features,
                  "params": params.name},
    )


# ---------------------------------------------------------------------------
# ResNet-20 inference
# ---------------------------------------------------------------------------

def resnet20_layer_operations(params: CKKSParameters, level: int,
                              channels: int, kernel_size: int = 3) -> List[HomomorphicOp]:
    """One multiplexed-parallel convolution layer plus its activation.

    A convolution over packed channels is a linear transform whose diagonal
    count is ``kernel_size^2 * channel-block``; the ReLU replacement is a
    low-degree polynomial (three multiplicative levels).
    """
    diagonals = kernel_size * kernel_size * max(1, channels // 4)
    plan = linear_transform_plan(params.slots, level, diagonals=diagonals)
    ops = list(plan.operations())
    level -= 1
    # Polynomial activation (degree-7 approximation: 3 levels).
    for _ in range(3):
        ops.append(HomomorphicOp("HMult", max(level, 1), 1))
        ops.append(HomomorphicOp("PMult", max(level, 1), 2))
        ops.append(HomomorphicOp("HAdd", max(level, 1), 2))
        ops.append(HomomorphicOp("Rescale", max(level, 1), 1))
        level -= 1
    return ops


def resnet20_workload(params: CKKSParameters = CKKS_DEFAULT,
                      bootstraps: int = 9) -> Workload:
    """ResNet-20 CIFAR-10 inference under CKKS (Lee et al. structure).

    Twenty convolution layers in three channel groups (16/32/64), an average
    pool and a fully-connected head, with a bootstrap inserted whenever the
    level budget is exhausted (every other residual block, ``bootstraps``
    times in total).
    """
    operations: List[HomomorphicOp] = []
    layer_channels = [16] * 7 + [32] * 6 + [64] * 6 + [64]   # 20 layers
    level = params.max_level
    boot_plan = BootstrapPlan(
        ring_degree=params.ring_degree,
        start_level=params.max_level,
        levels_consumed=15,
    )
    bootstraps_done = 0
    per_layer_levels = 4
    for index, channels in enumerate(layer_channels):
        if level - per_layer_levels <= boot_plan.end_level - 10 or level <= per_layer_levels + 1:
            if bootstraps_done < bootstraps:
                operations.extend(boot_plan.operations())
                bootstraps_done += 1
                level = boot_plan.end_level
        operations.extend(resnet20_layer_operations(params, level, channels))
        level -= per_layer_levels
    # Ensure the declared number of bootstraps is reached (the published
    # network uses one per residual block group boundary as well).
    while bootstraps_done < bootstraps:
        operations.extend(boot_plan.operations())
        bootstraps_done += 1
    # Average pooling + fully connected layer.
    final_level = max(2, boot_plan.end_level - 2)
    operations.append(HomomorphicOp("HRotate", final_level, int(math.log2(64))))
    operations.append(HomomorphicOp("HAdd", final_level, int(math.log2(64))))
    operations.append(HomomorphicOp("PMult", final_level, 10))
    operations.append(HomomorphicOp("HAdd", final_level, 10))
    traces = operations_to_traces(operations, params)
    return Workload(
        name="ResNet-20",
        scheme="ckks",
        traces=traces,
        metadata={"bootstraps": bootstraps, "layers": len(layer_channels),
                  "params": params.name},
    )


#: The Table VI workload set, keyed the way the paper labels them.
CKKS_WORKLOADS = {
    "Bootstrap": packed_bootstrapping_workload,
    "HELR": helr_workload,
    "ResNet-20": resnet20_workload,
}
