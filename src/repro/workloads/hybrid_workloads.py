"""Hybrid-scheme workloads (Sections V-B3 and V-B4).

* :func:`conversion_workload` — the TFHE -> CKKS repacking benchmark of
  Table IX (N = 2^14, L = 8, nslot in {2, 8, 32}).  The CKKS -> TFHE
  direction is pure SampleExtract and is exposed for completeness.
* :func:`he3db_workload` / :func:`he3db_hybrid_segments` — HE3DB-x: TPC-H
  Query 6 evaluated homomorphically over ``entries`` table rows.  The filter
  predicates run in the TFHE domain (a handful of PBS-based comparisons per
  row), the aggregation runs in the CKKS domain, and scheme conversions sit
  between them.  The segment form feeds the SHARP+Morphling two-chip model,
  which additionally pays PCIe transfers of the (large) extracted LWE
  ciphertexts at every conversion boundary — the system-level cost Trinity
  avoids.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..baselines.combined import HybridSegment
from ..fhe.params import (
    CKKSParameters,
    CONVERSION_DEFAULT,
    TFHEParameters,
    TFHE_SET_III,
)
from ..kernels.ckks_flows import hadd_flow, hmult_flow, hrotate_flow, pmult_flow, rescale_flow
from ..kernels.conversion_flows import (
    bridge_keyswitch_flow,
    ckks_to_tfhe_flow,
    tfhe_to_ckks_flow,
)
from ..kernels.kernel import Kernel, KernelKind, KernelTrace
from ..kernels.tfhe_flows import gate_bootstrap_flow, pbs_flow
from .base import Workload

__all__ = [
    "conversion_workload",
    "he3db_workload",
    "he3db_hybrid_segments",
    "hybrid_query_parameters",
    "hybrid_query_workloads",
    "PBS_PER_FILTERED_ENTRY",
]


#: PBS-based comparisons needed to filter one table row of TPC-H Query 6
#: (three range predicates over bit-decomposed encrypted columns).
PBS_PER_FILTERED_ENTRY = 12


def conversion_workload(nslot: int,
                        params: CKKSParameters | None = None,
                        direction: str = "tfhe-to-ckks") -> Workload:
    """The scheme-conversion benchmark of Table IX (repacking of nslot LWEs)."""
    params = CONVERSION_DEFAULT.ckks if params is None else params
    if direction == "tfhe-to-ckks":
        trace = tfhe_to_ckks_flow(params, nslot, level=params.max_level)
    elif direction == "ckks-to-tfhe":
        trace = ckks_to_tfhe_flow(params, nslot)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    return Workload(
        name=f"SchemeConversion[{direction}, nslot={nslot}]",
        scheme="conversion",
        traces=[trace],
        metadata={"nslot": nslot, "direction": direction, "ring_degree": params.ring_degree,
                  "levels": params.max_level},
    )


# ---------------------------------------------------------------------------
# HE3DB-x (TPC-H Query 6)
# ---------------------------------------------------------------------------

def _filter_trace(tfhe_params: TFHEParameters, entries: int) -> KernelTrace:
    """TFHE filter phase: PBS_PER_FILTERED_ENTRY comparisons per table row."""
    trace = KernelTrace(name=f"he3db.filter[{entries}]", scheme="tfhe",
                        metadata={"entries": entries})
    pbs = pbs_flow(tfhe_params)
    parallel_pbs = entries * PBS_PER_FILTERED_ENTRY
    for step in pbs.steps:
        scaled = [kernel.scaled(parallel_pbs) for kernel in step.kernels]
        trace.add_step(scaled, repeat=step.repeat, label=f"filter.{step.label}")
    return trace


def _aggregation_traces(ckks_params: CKKSParameters, entries: int) -> List[KernelTrace]:
    """CKKS aggregation phase: masked sum of (price * discount) over the slots."""
    level = min(ckks_params.max_level, 6)
    slots_per_ct = ckks_params.slots
    ciphertexts = max(1, math.ceil(entries / slots_per_ct))
    traces: List[KernelTrace] = []
    for _ in range(ciphertexts):
        traces.append(hmult_flow(ckks_params, level))          # price * discount
        traces.append(rescale_flow(ckks_params, level))
        traces.append(pmult_flow(ckks_params, level - 1))       # apply the filter mask
        traces.append(hadd_flow(ckks_params, level - 1))
        # log2(slots) rotate-and-add reduction for the final SUM.
        reduction = hrotate_flow(ckks_params, level - 1)
        repeated = KernelTrace(name="he3db.reduce", scheme="ckks")
        repeated.extend(reduction, repeat=int(math.log2(slots_per_ct)))
        traces.append(repeated)
    return traces


def he3db_workload(entries: int,
                   ckks_params: CKKSParameters | None = None,
                   tfhe_params: TFHEParameters = TFHE_SET_III) -> Workload:
    """HE3DB-``entries``: filter (TFHE) + conversion + aggregation (CKKS)."""
    ckks_params = CONVERSION_DEFAULT.ckks if ckks_params is None else ckks_params
    traces: List[KernelTrace] = []
    # 1. CKKS -> TFHE: extract one LWE per entry (per filtered column).
    traces.append(ckks_to_tfhe_flow(ckks_params, nslot=min(entries, ckks_params.slots)))
    # 2. TFHE filter phase.
    traces.append(_filter_trace(tfhe_params, entries))
    # 3. TFHE -> CKKS: repack the filter bits into CKKS slots.  Repacking is
    #    done per ciphertext of `slots` entries with nslot = 256 blocks.
    repack_blocks = max(1, entries // 256)
    repack = tfhe_to_ckks_flow(ckks_params, nslot=256, level=min(ckks_params.max_level, 6))
    repack_all = KernelTrace(name="he3db.repack", scheme="conversion")
    repack_all.extend(repack, repeat=repack_blocks)
    traces.append(repack_all)
    # 4. CKKS aggregation.
    traces.extend(_aggregation_traces(ckks_params, entries))
    return Workload(
        name=f"HE3DB-{entries}",
        scheme="mixed",
        traces=traces,
        parallel_operations=entries,
        metadata={"entries": entries, "pbs_per_entry": PBS_PER_FILTERED_ENTRY,
                  "ckks_params": ckks_params.name, "tfhe_params": tfhe_params.name},
    )


def he3db_hybrid_segments(entries: int,
                          ckks_params: CKKSParameters | None = None,
                          tfhe_params: TFHEParameters = TFHE_SET_III
                          ) -> List[HybridSegment]:
    """The HE3DB workload split into chip-level segments for SHARP+Morphling.

    The CKKS -> TFHE boundary ships the extracted LWE ciphertexts (dimension
    N of the CKKS ring, i.e. ~16K words each) from SHARP to Morphling; the
    TFHE -> CKKS boundary ships the filter-result LWE ciphertexts back.
    These transfers are what make the two-chip system an order of magnitude
    slower than Trinity on hybrid queries.
    """
    ckks_params = CONVERSION_DEFAULT.ckks if ckks_params is None else ckks_params
    word_bytes = 8.0   # the CPU/host representation of a coefficient
    extracted_lwe_bytes = entries * (ckks_params.ring_degree + 1) * word_bytes
    filtered_lwe_bytes = entries * (tfhe_params.lwe_dimension + 1) * word_bytes
    extraction = HybridSegment(
        scheme="conversion",
        traces=(ckks_to_tfhe_flow(ckks_params, nslot=min(entries, ckks_params.slots)),),
        transfer_bytes=extracted_lwe_bytes,
    )
    filtering = HybridSegment(
        scheme="tfhe",
        traces=(_filter_trace(tfhe_params, entries),),
        transfer_bytes=filtered_lwe_bytes,
    )
    repack_blocks = max(1, entries // 256)
    repack = tfhe_to_ckks_flow(ckks_params, nslot=256, level=min(ckks_params.max_level, 6))
    repack_all = KernelTrace(name="he3db.repack", scheme="conversion")
    repack_all.extend(repack, repeat=repack_blocks)
    aggregation = HybridSegment(
        scheme="ckks",
        traces=tuple([repack_all] + _aggregation_traces(ckks_params, entries)),
        transfer_bytes=0.0,
    )
    return [extraction, filtering, aggregation]


# ---------------------------------------------------------------------------
# The encrypted-database threshold query (examples/hybrid_database_query.py)
# ---------------------------------------------------------------------------

def hybrid_query_parameters() -> Tuple[CKKSParameters, TFHEParameters]:
    """The functional parameter pair of ``examples/hybrid_database_query.py``.

    Small zero-noise sets chosen so the scheme bridge's gadget decompositions
    are exact and the planned program is bit-identical to eager execution;
    the example and its differential tests share them through this helper.
    """
    ckks = CKKSParameters(
        ring_degree=64, max_level=1, dnum=1, scale_bits=4, modulus_bits=40,
        special_modulus_bits=42, security_bits=0, name="ckks-hybrid-query",
    )
    return ckks, TFHEParameters.hybrid()


def hybrid_query_workloads(nslot: int = 4,
                           ckks_params: CKKSParameters | None = None,
                           tfhe_params: TFHEParameters | None = None
                           ) -> List[Workload]:
    """Hand-built cost entry for the hybrid threshold query, per scheme.

    Mirrors what ``lower_hybrid_to_workloads`` produces for the traced
    example program — one CKKS workload (the boost PMult at level 1 and the
    filter PMult at level 0), one TFHE workload (per slot: a ``c2t`` bridge
    keyswitch, the negate/add-encoded linear pair, one gate bootstrap, a
    ``t2c`` bridge keyswitch) and one conversion workload (``nslot``
    extractions plus one repack).  The reconciliation test asserts the two
    kernel histograms are equal, so this entry *is* the example's cost when
    fed through ``WorkloadScheduler.run_interleaved``.
    """
    default_ckks, default_tfhe = hybrid_query_parameters()
    ckks = default_ckks if ckks_params is None else ckks_params
    tfhe = default_tfhe if tfhe_params is None else tfhe_params

    ckks_traces = [pmult_flow(ckks, 1), pmult_flow(ckks, 0)]

    tfhe_traces: List[KernelTrace] = []
    for _ in range(nslot):
        tfhe_traces.append(bridge_keyswitch_flow("c2t", ckks, tfhe))
        tfhe_traces.append(gate_bootstrap_flow(tfhe))
        tfhe_traces.append(bridge_keyswitch_flow("t2c", ckks, tfhe))
    linear = KernelTrace(name="lwe-linear", scheme="tfhe")
    linear.add_step(
        [Kernel(KernelKind.MODADD, tfhe.lwe_dimension + 1, count=2 * nslot,
                scheme="tfhe", tag="lwe.linear")],
        label="lwe-linear",
    )
    tfhe_traces.append(linear)

    conversion_traces = [
        ckks_to_tfhe_flow(ckks, nslot=nslot),
        tfhe_to_ckks_flow(ckks, nslot=nslot, level=0),
    ]
    return [
        Workload(name="hybrid.ckks", scheme="ckks", traces=ckks_traces,
                 metadata={"params": ckks.name}),
        Workload(name="hybrid.tfhe", scheme="tfhe", traces=tfhe_traces,
                 metadata={"params": tfhe.name}),
        Workload(name="hybrid.conversion", scheme="conversion",
                 traces=conversion_traces, metadata={"extractions": nslot}),
    ]
