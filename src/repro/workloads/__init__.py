"""Benchmark workload generators (Section V-B of the paper).

Each workload expands an application into the kernel traces the hardware
models consume:

* :mod:`ckks_workloads` — Packed Bootstrapping, HELR logistic-regression
  training, and ResNet-20 CIFAR-10 inference,
* :mod:`tfhe_workloads` — PBS under Set-I/II/III and the NN-20/50/100 MNIST
  networks,
* :mod:`hybrid_workloads` — the TFHE->CKKS repacking benchmark and the
  HE3DB TPC-H Query-6 hybrid workload.
"""

from .base import Workload
from .ckks_workloads import (
    packed_bootstrapping_workload,
    program_workload,
    helr_workload,
    resnet20_workload,
    CKKS_WORKLOADS,
)
from .tfhe_workloads import pbs_workload, nn_workload, TFHE_NN_DEPTHS
from .hybrid_workloads import (
    conversion_workload,
    he3db_workload,
    he3db_hybrid_segments,
)

__all__ = [
    "Workload",
    "packed_bootstrapping_workload",
    "program_workload",
    "helr_workload",
    "resnet20_workload",
    "CKKS_WORKLOADS",
    "pbs_workload",
    "nn_workload",
    "TFHE_NN_DEPTHS",
    "conversion_workload",
    "he3db_workload",
    "he3db_hybrid_segments",
]
