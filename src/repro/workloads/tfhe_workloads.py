"""TFHE benchmark workloads (Section V-B2): PBS throughput and NN-x inference.

* :func:`pbs_workload` — a single programmable bootstrapping under one of the
  Table IV parameter sets; the Table VII metric is its steady-state
  throughput (operations per second) when the accelerator pipeline is kept
  full with independent PBS operations.
* :func:`nn_workload` — the NN-20/50/100 MNIST networks of the
  Concrete/Strix/Morphling evaluations: ``depth`` fully-connected layers of
  ``neurons_per_layer`` neurons, one PBS activation per neuron, with the
  layers forming a sequential dependency chain.
"""

from __future__ import annotations

from typing import Dict, List

from ..fhe.params import TFHEParameters, TFHE_PARAMETER_SETS, TFHE_SET_III
from ..kernels.kernel import Kernel, KernelKind, KernelTrace
from ..kernels.tfhe_flows import pbs_flow
from .base import Workload

__all__ = ["pbs_workload", "nn_workload", "TFHE_NN_DEPTHS", "NN_NEURONS_PER_LAYER"]


#: The NN depths evaluated in Table VIII.
TFHE_NN_DEPTHS = (20, 50, 100)

#: Neurons (hence PBS activations) per hidden layer of the NN-x benchmark.
NN_NEURONS_PER_LAYER = 512


def pbs_workload(params: TFHEParameters) -> Workload:
    """One programmable bootstrapping under ``params`` (Table VII benchmark)."""
    trace = pbs_flow(params)
    return Workload(
        name=f"PBS {params.name}",
        scheme="tfhe",
        traces=[trace],
        parallel_operations=1,
        metadata={"parameter_set": params.name,
                  "lwe_dimension": params.lwe_dimension,
                  "polynomial_size": params.polynomial_size},
    )


def _layer_trace(params: TFHEParameters, neurons: int, inputs: int, label: str) -> KernelTrace:
    """One NN layer: an encrypted dot product per neuron, then a PBS activation."""
    trace = KernelTrace(name=label, scheme="tfhe", metadata={"neurons": neurons})
    # Dot products: neurons x inputs scalar MACs over (n_lwe+1)-element LWE
    # ciphertexts — cheap linear work on the VPU/EWE.
    trace.add_step(
        [Kernel(KernelKind.MODADD, params.lwe_dimension + 1, count=neurons,
                inner=1, scheme="tfhe", tag="nn.dot")],
        repeat=max(1, inputs // 8),
        label=f"{label}.dot",
    )
    # One PBS per neuron; the neurons of a layer are mutually independent, so
    # their bootstrappings fill the accelerator pipeline.
    pbs = pbs_flow(params)
    for step in pbs.steps:
        scaled = [kernel.scaled(neurons) for kernel in step.kernels]
        trace.add_step(scaled, repeat=step.repeat, label=f"{label}.{step.label}")
    return trace


def nn_workload(depth: int, params: TFHEParameters = TFHE_SET_III,
                neurons_per_layer: int = NN_NEURONS_PER_LAYER,
                input_size: int = 784) -> Workload:
    """The NN-``depth`` MNIST benchmark (Table VIII).

    The default parameter set is Set-III (128-bit security), matching the
    security level at which the paper reports Trinity's NN-x numbers.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    traces: List[KernelTrace] = []
    inputs = input_size
    for layer in range(depth):
        traces.append(_layer_trace(params, neurons_per_layer, inputs,
                                   label=f"NN-{depth}.layer{layer}"))
        inputs = neurons_per_layer
    total_pbs = depth * neurons_per_layer
    return Workload(
        name=f"NN-{depth}",
        scheme="tfhe",
        traces=traces,
        parallel_operations=neurons_per_layer,
        metadata={"depth": depth, "neurons_per_layer": neurons_per_layer,
                  "total_pbs": total_pbs, "parameter_set": params.name},
    )
