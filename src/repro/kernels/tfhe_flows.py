"""Kernel flows for TFHE operations (Algorithm 2 of the paper).

PBS is lowered to the four stages the paper identifies — ModSwitch, Blind
Rotation (``n_lwe`` strictly sequential External Products), SampleExtract and
the TFHE KeySwitch — with the External Product exposing exactly the
``(k+1) * l_b`` NTT + MAC structure that Trinity's configurable units balance.
"""

from __future__ import annotations

from ..fhe.params import TFHEParameters
from .kernel import Kernel, KernelKind, KernelStep, KernelTrace

__all__ = [
    "external_product_flow",
    "blind_rotation_flow",
    "pbs_flow",
    "lwe_keyswitch_flow",
    "gate_bootstrap_flow",
]


def external_product_flow(params: TFHEParameters, tag: str = "external-product") -> KernelTrace:
    """One External Product: decompose, (k+1)*l_b NTTs, MAC reduce, (k+1) iNTTs."""
    n = params.polynomial_size
    k = params.glwe_dimension
    branches = params.external_product_branches  # (k + 1) * l_b
    trace = KernelTrace(name=tag, scheme="tfhe", metadata={"branches": branches})
    trace.add_step(
        [
            Kernel(KernelKind.DECOMPOSE, n, count=k + 1, inner=params.bsk_levels,
                   scheme="tfhe", tag=f"{tag}.decompose"),
            Kernel(KernelKind.NTT, n, count=branches, scheme="tfhe", tag=f"{tag}.ntt"),
        ],
        label="decompose-ntt",
    )
    trace.add_step(
        [Kernel(KernelKind.MAC, n, count=k + 1, inner=branches, scheme="tfhe",
                tag=f"{tag}.mac")],
        label="mac",
    )
    trace.add_step(
        [
            Kernel(KernelKind.INTT, n, count=k + 1, scheme="tfhe", tag=f"{tag}.intt"),
            Kernel(KernelKind.MODADD, n, count=k + 1, scheme="tfhe", tag=f"{tag}.accumulate"),
        ],
        label="intt-accumulate",
    )
    return trace


def blind_rotation_flow(params: TFHEParameters) -> KernelTrace:
    """Blind Rotation: ``n_lwe`` sequential CMux iterations (Algorithm 2, lines 4-12)."""
    n = params.polynomial_size
    k = params.glwe_dimension
    trace = KernelTrace(name="blind-rotation", scheme="tfhe",
                        metadata={"iterations": params.lwe_dimension})
    iteration = KernelTrace(name="blind-rotation-iteration", scheme="tfhe")
    iteration.add_step(
        [
            Kernel(KernelKind.ROTATE, n, count=k + 1, scheme="tfhe", tag="blindrot.rotate"),
            Kernel(KernelKind.MODADD, n, count=k + 1, scheme="tfhe", tag="blindrot.sub"),
        ],
        label="rotate",
    )
    iteration.extend(external_product_flow(params, tag="blindrot.extprod"))
    # The n_lwe iterations form a strict dependency chain: repeat sequentially.
    for step in iteration.steps:
        trace.steps.append(KernelStep(kernels=list(step.kernels),
                                      repeat=step.repeat * params.lwe_dimension,
                                      label=step.label))
    return trace


def lwe_keyswitch_flow(params: TFHEParameters) -> KernelTrace:
    """TFHE KeySwitch: a (k*N*l_k)-deep MAC producing an (n_lwe+1)-element LWE."""
    trace = KernelTrace(name="tfhe-keyswitch", scheme="tfhe")
    reduction_depth = params.glwe_lwe_dimension * params.ksk_levels
    trace.add_step(
        [
            Kernel(KernelKind.DECOMPOSE, params.glwe_lwe_dimension, count=1,
                   inner=params.ksk_levels, scheme="tfhe", tag="ksk.decompose"),
            Kernel(KernelKind.LWE_KEYSWITCH, params.lwe_dimension + 1, count=1,
                   inner=reduction_depth, scheme="tfhe", tag="ksk.mac"),
        ],
        label="keyswitch",
    )
    return trace


def pbs_flow(params: TFHEParameters) -> KernelTrace:
    """Full programmable bootstrapping (Algorithm 2)."""
    trace = KernelTrace(name=f"PBS[{params.name}]", scheme="tfhe",
                        metadata={"parameter_set": params.name})
    # 1. ModSwitch of the (n_lwe + 1)-element LWE ciphertext.
    trace.add_step(
        [Kernel(KernelKind.MODSWITCH, params.lwe_dimension + 1, count=1,
                scheme="tfhe", tag="pbs.modswitch")],
        label="modswitch",
    )
    # 2. Blind rotation (the dominant stage).
    trace.extend(blind_rotation_flow(params))
    # 3. SampleExtract of the constant coefficient.
    trace.add_step(
        [Kernel(KernelKind.SAMPLE_EXTRACT, params.polynomial_size,
                count=params.glwe_dimension, scheme="tfhe", tag="pbs.extract")],
        label="sample-extract",
    )
    # 4. TFHE KeySwitch back to the small LWE key.
    trace.extend(lwe_keyswitch_flow(params))
    return trace


def gate_bootstrap_flow(params: TFHEParameters) -> KernelTrace:
    """A boolean gate: one linear combination plus one PBS."""
    trace = KernelTrace(name=f"gate[{params.name}]", scheme="tfhe")
    trace.add_step(
        [Kernel(KernelKind.MODADD, params.lwe_dimension + 1, count=2, scheme="tfhe",
                tag="gate.linear")],
        label="linear",
    )
    trace.extend(pbs_flow(params))
    return trace
