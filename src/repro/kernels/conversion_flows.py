"""Kernel flows for the CKKS <-> TFHE scheme conversion (Algorithms 3-5).

* CKKS -> TFHE is pure SampleExtract (handled by the Rotator in Trinity).
* TFHE -> CKKS is the LWE repacking: ``nslot - 1`` PackLWEs merges (each one
  monomial Rotate, one HRotate, and additions) followed by ``log2(N/nslot)``
  field-trace steps (each one HRotate and one addition).  The HRotate reuses
  the CKKS keyswitch flow, which is exactly how the paper maps the conversion
  onto the CKKS datapath (Section IV-G).
"""

from __future__ import annotations

import math

from ..fhe.params import CKKSParameters, TFHEParameters
from .ckks_flows import hrotate_flow
from .kernel import Kernel, KernelKind, KernelTrace

__all__ = ["ckks_to_tfhe_flow", "tfhe_to_ckks_flow", "bridge_keyswitch_flow"]


def ckks_to_tfhe_flow(params: CKKSParameters, nslot: int) -> KernelTrace:
    """Algorithm 3: ``nslot`` SampleExtract operations on a level-0 RLWE."""
    trace = KernelTrace(name=f"CKKS->TFHE[nslot={nslot}]", scheme="conversion",
                        metadata={"nslot": nslot})
    trace.add_step(
        [Kernel(KernelKind.SAMPLE_EXTRACT, params.ring_degree, count=nslot,
                scheme="conversion", tag="c2t.extract")],
        label="sample-extract",
    )
    return trace


def tfhe_to_ckks_flow(params: CKKSParameters, nslot: int,
                      level: int | None = None) -> KernelTrace:
    """Algorithms 4 + 5: Ring Embedding, PackLWEs merges, Field Trace."""
    if nslot < 1 or nslot & (nslot - 1):
        raise ValueError("nslot must be a power of two")
    n = params.ring_degree
    level = params.max_level if level is None else level
    limbs = level + 1
    trace = KernelTrace(name=f"TFHE->CKKS[nslot={nslot}]", scheme="conversion",
                        metadata={"nslot": nslot, "level": level})
    # Ring embedding: pure data movement of nslot LWE ciphertexts.
    trace.add_step(
        [Kernel(KernelKind.ROTATE, n, count=nslot, scheme="conversion", tag="t2c.embed")],
        label="ring-embedding",
    )
    # PackLWEs: log2(nslot) merge rounds; round d performs nslot / 2^d merges
    # in parallel, each needing one monomial Rotate, adds, and one HRotate.
    rounds = int(math.log2(nslot)) if nslot > 1 else 0
    for round_index in range(1, rounds + 1):
        merges = nslot >> round_index
        trace.add_step(
            [
                Kernel(KernelKind.ROTATE, n, count=2 * limbs * merges, scheme="conversion",
                       tag="t2c.pack.rotate"),
                Kernel(KernelKind.MODADD, n, count=4 * limbs * merges, scheme="conversion",
                       tag="t2c.pack.add"),
            ],
            label=f"pack-round-{round_index}-rotate",
        )
        hrotate = hrotate_flow(params, level)
        for step in hrotate.steps:
            scaled = [kernel.scaled(merges) for kernel in step.kernels] if merges > 1 \
                else list(step.kernels)
            trace.add_step(scaled, repeat=step.repeat,
                           label=f"pack-round-{round_index}-{step.label}")
    # Field trace: log2(N / nslot) sequential HRotate + add steps.
    trace_steps = int(math.log2(n // nslot)) if n > nslot else 0
    for step_index in range(1, trace_steps + 1):
        hrotate = hrotate_flow(params, level)
        for step in hrotate.steps:
            trace.add_step(list(step.kernels), repeat=step.repeat,
                           label=f"trace-{step_index}-{step.label}")
        trace.add_step(
            [Kernel(KernelKind.MODADD, n, count=2 * limbs, scheme="conversion",
                    tag="t2c.trace.add")],
            label=f"trace-{step_index}-add",
        )
    return trace


def bridge_keyswitch_flow(direction: str, ckks_params: CKKSParameters,
                          tfhe_params: TFHEParameters) -> KernelTrace:
    """Cost trace of one cross-scheme LWE keyswitch (the ``SchemeBridge``).

    Both directions are ModSwitch followed by a gadget-decomposed vector MAC
    against the bridge key-switching key — structurally the TFHE KeySwitch of
    :func:`repro.kernels.tfhe_flows.lwe_keyswitch_flow`, but with the input
    and output dimensions crossing the key boundary: ``c2t`` reduces a
    dimension-``N`` extracted ciphertext onto the small LWE key using the
    TFHE set's ksk gadget; ``t2c`` expands a small-key ciphertext to
    dimension ``N`` using the exact per-modulus gadget of the bridge.
    """
    from ..fhe.conversion.bridge import exact_gadget

    if direction == "c2t":
        in_dim = ckks_params.ring_degree
        out_dim = tfhe_params.lwe_dimension
        levels = tfhe_params.ksk_levels
    elif direction == "t2c":
        in_dim = tfhe_params.lwe_dimension
        out_dim = ckks_params.ring_degree
        levels = exact_gadget(ckks_params.moduli[0])[1]
    else:
        raise ValueError(f"unknown bridge direction {direction!r}")
    trace = KernelTrace(name=f"bridge-keyswitch[{direction}]", scheme="tfhe",
                        metadata={"direction": direction})
    trace.add_step(
        [Kernel(KernelKind.MODSWITCH, in_dim + 1, count=1, scheme="tfhe",
                tag=f"bridge.{direction}.modswitch")],
        label="modswitch",
    )
    trace.add_step(
        [
            Kernel(KernelKind.DECOMPOSE, in_dim, count=1, inner=levels,
                   scheme="tfhe", tag=f"bridge.{direction}.decompose"),
            Kernel(KernelKind.LWE_KEYSWITCH, out_dim + 1, count=1,
                   inner=in_dim * levels, scheme="tfhe",
                   tag=f"bridge.{direction}.mac"),
        ],
        label="keyswitch",
    )
    return trace
