"""Kernel flows for CKKS operations (Table II / Algorithm 1 of the paper).

Each function lowers one homomorphic operation at a given ciphertext level
into a :class:`~repro.kernels.kernel.KernelTrace`.  The flows follow the
hierarchical reconstruction model of Table II:

==========  =====================================================
HMult        NTT, BConv, IP, ModMul, ModAdd   (tensor + keyswitch)
PMult        ModMul, ModAdd
HRotate      NTT, BConv, IP, ModMul, ModAdd, Auto
HAdd         ModAdd
PAdd         ModAdd
Rescale      NTT, ModAdd
==========  =====================================================

and the hybrid keyswitch of Algorithm 1 (Decompose -> per-digit BConv + NTT ->
IP -> iNTT -> ModDown).
"""

from __future__ import annotations

import math

from ..fhe.params import CKKSParameters
from .kernel import Kernel, KernelKind, KernelStep, KernelTrace

__all__ = [
    "keyswitch_flow",
    "hmult_flow",
    "hrotate_flow",
    "hadd_flow",
    "padd_flow",
    "pmult_flow",
    "rescale_flow",
    "conjugate_flow",
    "ckks_operation_flow",
]


def _level_quantities(params: CKKSParameters, level: int) -> tuple[int, int, int, int]:
    """(limbs, alpha, beta, extended limbs) at the given level."""
    limbs = level + 1
    alpha = params.alpha
    beta = math.ceil(limbs / alpha)
    extended = limbs + params.num_special_moduli
    return limbs, alpha, beta, extended


def keyswitch_flow(params: CKKSParameters, level: int, tag: str = "keyswitch") -> KernelTrace:
    """Hybrid KeySwitch (Algorithm 1) on one polynomial at ``level``."""
    n = params.ring_degree
    limbs, alpha, beta, extended = _level_quantities(params, level)
    trace = KernelTrace(name=f"{tag}@L{level}", scheme="ckks",
                        metadata={"level": level, "beta": beta})
    # 1. Digit decomposition (RNS limb selection): pure data movement.
    trace.add_step(
        [Kernel(KernelKind.DECOMPOSE, n, count=limbs, scheme="ckks", tag=f"{tag}.decompose")],
        label="decompose",
    )
    # 2. Per-digit BConv into the extended basis C_l ∪ P, then forward NTT
    #    (Algorithm 1 lines 3-6).  Digits are independent -> single step.
    trace.add_step(
        [
            Kernel(KernelKind.BCONV, n, count=beta * extended, inner=alpha,
                   scheme="ckks", tag=f"{tag}.bconv"),
            Kernel(KernelKind.NTT, n, count=beta * extended, scheme="ckks", tag=f"{tag}.ntt"),
        ],
        label="digit-lift",
    )
    # 3. Inner product with the evaluation key (lines 7-10): two output
    #    polynomials, each a beta-deep reduction across the digits.
    trace.add_step(
        [Kernel(KernelKind.IP, n, count=2 * extended, inner=beta, scheme="ckks",
                tag=f"{tag}.ip")],
        label="inner-product",
    )
    # 4. Inverse NTT of both accumulated polynomials (line 11).
    trace.add_step(
        [Kernel(KernelKind.INTT, n, count=2 * extended, scheme="ckks", tag=f"{tag}.intt")],
        label="intt",
    )
    # 5. ModDown: BConv of the P-part back to C_l, subtraction and scaling by
    #    P^{-1} (line 12).
    trace.add_step(
        [
            Kernel(KernelKind.BCONV, n, count=2 * limbs, inner=params.num_special_moduli,
                   scheme="ckks", tag=f"{tag}.moddown.bconv"),
            Kernel(KernelKind.MODADD, n, count=2 * limbs, scheme="ckks",
                   tag=f"{tag}.moddown.sub"),
            Kernel(KernelKind.MODMUL, n, count=2 * limbs, scheme="ckks",
                   tag=f"{tag}.moddown.scale"),
        ],
        label="moddown",
    )
    return trace


def hmult_flow(params: CKKSParameters, level: int, include_rescale: bool = False) -> KernelTrace:
    """HMult: tensor product, relinearisation keyswitch, optional rescale."""
    n = params.ring_degree
    limbs, *_ = _level_quantities(params, level)
    trace = KernelTrace(name=f"HMult@L{level}", scheme="ckks", metadata={"level": level})
    # Tensor product d0 = c0*d0', d1 = c0*d1' + c1*d0', d2 = c1*d1' (NTT form).
    trace.add_step(
        [
            Kernel(KernelKind.MODMUL, n, count=4 * limbs, scheme="ckks", tag="hmult.tensor.mul"),
            Kernel(KernelKind.MODADD, n, count=limbs, scheme="ckks", tag="hmult.tensor.add"),
        ],
        label="tensor",
    )
    trace.extend(keyswitch_flow(params, level, tag="hmult.keyswitch"))
    # Fold the keyswitch output back into (d0, d1).
    trace.add_step(
        [Kernel(KernelKind.MODADD, n, count=2 * limbs, scheme="ckks", tag="hmult.accumulate")],
        label="accumulate",
    )
    if include_rescale:
        trace.extend(rescale_flow(params, level))
    return trace


def hrotate_flow(params: CKKSParameters, level: int) -> KernelTrace:
    """HRotate: automorphism of both components plus a keyswitch."""
    n = params.ring_degree
    limbs, *_ = _level_quantities(params, level)
    trace = KernelTrace(name=f"HRotate@L{level}", scheme="ckks", metadata={"level": level})
    trace.add_step(
        [Kernel(KernelKind.AUTO, n, count=2 * limbs, scheme="ckks", tag="hrotate.auto")],
        label="automorphism",
    )
    trace.extend(keyswitch_flow(params, level, tag="hrotate.keyswitch"))
    trace.add_step(
        [Kernel(KernelKind.MODADD, n, count=limbs, scheme="ckks", tag="hrotate.accumulate")],
        label="accumulate",
    )
    return trace


def conjugate_flow(params: CKKSParameters, level: int) -> KernelTrace:
    """Complex conjugation: same kernel structure as HRotate."""
    trace = hrotate_flow(params, level)
    trace.name = f"Conjugate@L{level}"
    return trace


def hadd_flow(params: CKKSParameters, level: int) -> KernelTrace:
    """HAdd: element-wise addition of both ciphertext components."""
    n = params.ring_degree
    limbs = level + 1
    trace = KernelTrace(name=f"HAdd@L{level}", scheme="ckks", metadata={"level": level})
    trace.add_step(
        [Kernel(KernelKind.MODADD, n, count=2 * limbs, scheme="ckks", tag="hadd")],
        label="add",
    )
    return trace


def padd_flow(params: CKKSParameters, level: int) -> KernelTrace:
    """PAdd: plaintext addition touches only the c0 component."""
    n = params.ring_degree
    limbs = level + 1
    trace = KernelTrace(name=f"PAdd@L{level}", scheme="ckks", metadata={"level": level})
    trace.add_step(
        [Kernel(KernelKind.MODADD, n, count=limbs, scheme="ckks", tag="padd")],
        label="add",
    )
    return trace


def pmult_flow(params: CKKSParameters, level: int) -> KernelTrace:
    """PMult: element-wise plaintext multiplication of both components."""
    n = params.ring_degree
    limbs = level + 1
    trace = KernelTrace(name=f"PMult@L{level}", scheme="ckks", metadata={"level": level})
    trace.add_step(
        [
            Kernel(KernelKind.MODMUL, n, count=2 * limbs, scheme="ckks", tag="pmult.mul"),
            Kernel(KernelKind.MODADD, n, count=limbs, scheme="ckks", tag="pmult.add"),
        ],
        label="multiply",
    )
    return trace


def rescale_flow(params: CKKSParameters, level: int) -> KernelTrace:
    """Rescale: iNTT of the dropped limb, broadcast NTT, subtract, scale."""
    if level < 1:
        raise ValueError("cannot rescale below level 0")
    n = params.ring_degree
    remaining = level  # limbs after the drop
    trace = KernelTrace(name=f"Rescale@L{level}", scheme="ckks", metadata={"level": level})
    trace.add_step(
        [Kernel(KernelKind.INTT, n, count=2, scheme="ckks", tag="rescale.intt")],
        label="to-coefficient",
    )
    trace.add_step(
        [
            Kernel(KernelKind.NTT, n, count=2 * remaining, scheme="ckks", tag="rescale.ntt"),
            Kernel(KernelKind.MODADD, n, count=2 * remaining, scheme="ckks", tag="rescale.sub"),
            Kernel(KernelKind.MODMUL, n, count=2 * remaining, scheme="ckks", tag="rescale.scale"),
        ],
        label="rescale",
    )
    return trace


#: Dispatcher from Table II operation names to flow constructors.
_OPERATION_FLOWS = {
    "HMult": hmult_flow,
    "PMult": pmult_flow,
    "HAdd": hadd_flow,
    "PAdd": padd_flow,
    "HRotate": hrotate_flow,
    "Rescale": rescale_flow,
    "Conjugate": conjugate_flow,
}


def ckks_operation_flow(name: str, params: CKKSParameters, level: int) -> KernelTrace:
    """Lower a Table II operation name to its kernel trace at ``level``."""
    try:
        constructor = _OPERATION_FLOWS[name]
    except KeyError:
        raise ValueError(f"unknown CKKS operation {name!r}") from None
    return constructor(params, level)
