"""Kernel intermediate representation shared by all hardware models.

The paper's key observation (Section II) is that CKKS, TFHE, and their
conversion are all composed of a *finite set of kernels*: NTT, iNTT, BConv,
IP, ModMul, ModAdd, Auto, Rotate, SampleExtract, Decompose (plus the small
TFHE-specific ModSwitch and LWE KeySwitch).  Every workload in this repository
is lowered to a :class:`~repro.kernels.kernel.KernelTrace` — a sequence of
steps, each containing kernels that may execute concurrently — and every
hardware model (Trinity, SHARP, Morphling, the CPU baseline, ...) consumes the
same traces.  That shared IR is what makes the cross-accelerator comparisons
of Tables VI-X apples-to-apples.
"""

from .kernel import Kernel, KernelKind, KernelStep, KernelTrace
from .opcounts import (
    kernel_multiplications,
    kernel_additions,
    kernel_elements,
    trace_multiplications,
    trace_operation_breakdown,
    KERNEL_CLASS,
)
from .ckks_flows import (
    hadd_flow,
    hmult_flow,
    hrotate_flow,
    keyswitch_flow,
    pmult_flow,
    rescale_flow,
    ckks_operation_flow,
)
from .tfhe_flows import (
    blind_rotation_flow,
    external_product_flow,
    pbs_flow,
    lwe_keyswitch_flow,
)
from .conversion_flows import ckks_to_tfhe_flow, tfhe_to_ckks_flow

__all__ = [
    "Kernel",
    "KernelKind",
    "KernelStep",
    "KernelTrace",
    "kernel_multiplications",
    "kernel_additions",
    "kernel_elements",
    "trace_multiplications",
    "trace_operation_breakdown",
    "KERNEL_CLASS",
    "keyswitch_flow",
    "hmult_flow",
    "hrotate_flow",
    "hadd_flow",
    "pmult_flow",
    "rescale_flow",
    "ckks_operation_flow",
    "external_product_flow",
    "blind_rotation_flow",
    "pbs_flow",
    "lwe_keyswitch_flow",
    "ckks_to_tfhe_flow",
    "tfhe_to_ckks_flow",
]
