"""Analytic operation counts per kernel.

These counts are what Figure 2 of the paper plots (the NTT-vs-MAC breakdown
of CKKS KeySwitch and TFHE PBS) and what the CPU/GPU baseline models charge
per kernel.  Counting conventions:

* an NTT/iNTT of length N costs ``N/2 * log2(N)`` butterfly stages, each one
  modular multiplication and two modular additions, plus ``N`` twisting
  multiplications for the negacyclic pre/post twist (merged in hardware but
  counted so that the four-step split stays cost-neutral);
* BConv of ``inner`` input limbs to one output limb is an ``N x inner``
  dot product per coefficient: ``N * inner`` multiplications;
* IP/MAC reduce ``inner`` operands per output element: ``N * inner``
  multiplications;
* ModMul is one multiplication per element, ModAdd one addition;
* Auto / Rotate / SampleExtract / Decompose / Transpose move or split data
  and cost no multiplications (their cost in hardware is cycles on the
  permutation units, which the hardware model charges separately).

``KERNEL_CLASS`` buckets every kernel into ``"ntt" | "mac" | "elementwise" |
"data"`` — the same split the paper uses for its workload-balance analysis.
"""

from __future__ import annotations

import math
from typing import Dict

from .kernel import Kernel, KernelKind, KernelTrace

__all__ = [
    "KERNEL_CLASS",
    "kernel_multiplications",
    "kernel_additions",
    "kernel_elements",
    "trace_multiplications",
    "trace_additions",
    "trace_operation_breakdown",
]


#: Workload-balance class of every kernel kind (paper Figure 2 buckets).
KERNEL_CLASS: Dict[KernelKind, str] = {
    KernelKind.NTT: "ntt",
    KernelKind.INTT: "ntt",
    KernelKind.BCONV: "mac",
    KernelKind.IP: "mac",
    KernelKind.MAC: "mac",
    KernelKind.LWE_KEYSWITCH: "mac",
    KernelKind.MODMUL: "elementwise",
    KernelKind.MODADD: "elementwise",
    KernelKind.MODSWITCH: "elementwise",
    KernelKind.AUTO: "data",
    KernelKind.ROTATE: "data",
    KernelKind.SAMPLE_EXTRACT: "data",
    KernelKind.DECOMPOSE: "data",
    KernelKind.TRANSPOSE: "data",
}


def kernel_elements(kernel: Kernel) -> int:
    """Output elements produced by the kernel."""
    return kernel.elements


def kernel_multiplications(kernel: Kernel) -> int:
    """Modular multiplications performed by one kernel invocation."""
    n = kernel.poly_length
    count = kernel.count
    if kernel.kind in (KernelKind.NTT, KernelKind.INTT):
        stages = max(1, int(math.log2(n)))
        return count * (n // 2 * stages + n)
    if kernel.kind in (KernelKind.BCONV, KernelKind.IP, KernelKind.MAC,
                       KernelKind.LWE_KEYSWITCH):
        return count * n * kernel.inner
    if kernel.kind == KernelKind.MODMUL:
        return count * n
    if kernel.kind == KernelKind.MODSWITCH:
        return count * n
    # ModAdd and all data-movement kernels perform no multiplications.
    return 0


def kernel_additions(kernel: Kernel) -> int:
    """Modular additions performed by one kernel invocation."""
    n = kernel.poly_length
    count = kernel.count
    if kernel.kind in (KernelKind.NTT, KernelKind.INTT):
        stages = max(1, int(math.log2(n)))
        return count * n * stages
    if kernel.kind in (KernelKind.BCONV, KernelKind.IP, KernelKind.MAC,
                       KernelKind.LWE_KEYSWITCH):
        return count * n * max(0, kernel.inner - 1)
    if kernel.kind == KernelKind.MODADD:
        return count * n
    return 0


def trace_multiplications(trace: KernelTrace) -> int:
    """Total modular multiplications of a kernel trace (repeat-expanded)."""
    return sum(kernel_multiplications(k) for k in trace.kernels())


def trace_additions(trace: KernelTrace) -> int:
    """Total modular additions of a kernel trace (repeat-expanded)."""
    return sum(kernel_additions(k) for k in trace.kernels())


def trace_operation_breakdown(trace: KernelTrace) -> Dict[str, int]:
    """Multiplication count per workload-balance class (Figure 2 buckets).

    Element-wise and data-movement kernels are folded into the ``mac`` bucket
    only if they perform multiplications; pure data movement contributes 0 and
    is reported under ``data`` for completeness.
    """
    breakdown = {"ntt": 0, "mac": 0, "elementwise": 0, "data": 0}
    for kernel in trace.kernels():
        breakdown[KERNEL_CLASS[kernel.kind]] += kernel_multiplications(kernel)
    return breakdown
